"""Deployment inspection and the CLI runner."""

import pytest

from repro.cli import EXPERIMENTS, main
from repro.core.inspect import snapshot
from repro.experiments.harness import Testbed, TestbedConfig
from repro.http.client import BrowserClient


@pytest.fixture(scope="module")
def bed():
    return Testbed(TestbedConfig(
        seed=12, lb="yoda", num_lb_instances=3, num_store_servers=2,
        num_backends=2, corpus="flat", flat_object_count=2,
        flat_object_bytes=20_000,
    ))


class TestSnapshot:
    def test_snapshot_structure(self, bed):
        snap = snapshot(bed.yoda)
        assert len(snap.instances) == 3
        assert len(snap.vips) == 1
        assert len(snap.stores) == 2
        assert snap.vips[0].vip == bed.vip
        assert snap.vips[0].backends_healthy == 2

    def test_snapshot_reflects_failure(self, bed):
        bed.yoda.instances[0].fail()
        bed.run(1.0)
        snap = snapshot(bed.yoda)
        victim = snap.instance(bed.yoda.instances[0].name)
        assert victim is not None and not victim.alive
        assert bed.yoda.instances[0].ip not in snap.vips[0].mapped_ips
        bed.yoda.instances[0].recover()
        bed.run(1.0)

    def test_snapshot_counts_flows(self, bed):
        results = []
        browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target())
        browser.fetch("/obj/0.bin", results.append)
        bed.run(0.12)  # mid-flight
        snap = snapshot(bed.yoda)
        assert snap.total_flows() >= 1
        bed.run(30.0)

    def test_render_contains_sections(self, bed):
        text = snapshot(bed.yoda).render()
        assert "L7 instances" in text
        assert "VIPs" in text
        assert "TCPStore" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_quick_fig15(self, capsys):
        assert main(["run", "fig15", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out
        assert "finished in" in out

    def test_run_quick_fig6(self, capsys):
        assert main(["run", "fig6", "--quick"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_every_experiment_registered(self):
        # one CLI entry per paper table/figure (+ the CPU section, the
        # qos flash-crowd ablation, the multi-region failover study, the
        # controller-HA outage study, the stateless-dispatch ablation,
        # the sharded-simulation scaling study and the elastic
        # provisioning cost study)
        expected = {"table1", "fig6", "fig9", "sec71", "fig10", "fig12",
                    "fig12b", "fig13", "fig14", "fig15", "fig16",
                    "overload", "failover", "ctrl", "stateless", "scale",
                    "elastic"}
        assert set(EXPERIMENTS) == expected
