"""1-shard sharded runs must be bit-identical to the pinned goldens.

``TestbedConfig.num_shards=1`` is documented as "today's in-process path
untouched", and this suite is the proof: every pinned chaos scenario
(the single-site corpus *and* the multi-region corpus) run through
``run_scenario_sharded`` -- windowed loop stepping, digest folding, the
whole shard execution shape -- must reproduce the committed golden
digest, record count, and engine digest exactly.  One scenario also runs
``forked=True`` so the result crossing a process boundary is covered.

If these fail but ``test_golden_traces`` passes, the sharded wrapper
changed the simulation; that is always a bug in the shard layer.
"""

from __future__ import annotations

import pytest

from repro.shard import run_scenario_sharded

from tests.test_golden_traces import (
    GOLDEN_SEED,
    SCENARIO_VARIANTS,
    load_golden,
)
from tests.test_region_golden import REGION_VARIANTS
from tests.test_region_golden import load_golden as load_region_golden

# deliberately not aligned with any scenario timing: window boundaries
# must be able to fall anywhere without perturbing the schedule
STEP_WINDOW = 0.37


def _check(result, golden):
    assert golden is not None, "golden file missing; run the golden suites"
    assert result["digest"] == golden["digest"], (
        f"sharded run diverged from golden for {result['scenario']!r}"
    )
    assert result["records"] == golden["record_count"]
    assert result["engine_digest"] == golden["engine_digest"]


@pytest.mark.parametrize("name", sorted(SCENARIO_VARIANTS))
def test_single_site_scenario_matches_golden(name):
    result = run_scenario_sharded(
        name, overrides=SCENARIO_VARIANTS[name], seed=GOLDEN_SEED,
        step_window=STEP_WINDOW)
    _check(result, load_golden(name))


@pytest.mark.parametrize("name", sorted(REGION_VARIANTS))
def test_region_scenario_matches_golden(name):
    spec = REGION_VARIANTS[name]
    result = run_scenario_sharded(
        spec["scenario"], seed=GOLDEN_SEED, step_window=STEP_WINDOW,
        replication=spec["replication"])
    _check(dict(result, scenario=name), load_region_golden(name))


def test_forked_worker_matches_golden():
    """The digest computed inside a shard worker process and shipped back
    over the pipe is the same digest an in-process run produces."""
    name = "probe-loss"
    result = run_scenario_sharded(
        name, overrides=SCENARIO_VARIANTS[name], seed=GOLDEN_SEED,
        step_window=STEP_WINDOW, forked=True)
    _check(result, load_golden(name))
