"""Packet model: flags, sizes, copies, and the free-list pool."""

import pytest

from repro.errors import NetworkError
from repro.net.addresses import Endpoint
from repro.net.packet import (
    ACK, FIN, IP_TCP_HEADER_BYTES, PSH, RST, SYN,
    Packet, PacketPool, flags_to_str, make_ack, make_rst, make_syn,
    make_syn_ack,
)

A = Endpoint("1.1.1.1", 1000)
B = Endpoint("2.2.2.2", 80)


class TestFlags:
    def test_flag_properties(self):
        pkt = Packet(src=A, dst=B, flags=SYN | ACK)
        assert pkt.syn and pkt.has_ack and not pkt.fin and not pkt.rst

    def test_pure_ack(self):
        assert Packet(src=A, dst=B, flags=ACK).is_pure_ack
        assert not Packet(src=A, dst=B, flags=ACK, payload=b"x").is_pure_ack
        assert not Packet(src=A, dst=B, flags=ACK | FIN).is_pure_ack
        assert not Packet(src=A, dst=B, flags=ACK | SYN).is_pure_ack

    def test_flags_to_str(self):
        assert flags_to_str(SYN) == "S"
        assert flags_to_str(SYN | ACK) == "S."
        assert flags_to_str(ACK) == "."
        assert flags_to_str(FIN | ACK) == "F."
        assert flags_to_str(RST) == "R"
        assert flags_to_str(PSH | ACK) == "P."
        assert flags_to_str(0) == "-"


class TestSizes:
    def test_wire_len_includes_headers(self):
        pkt = Packet(src=A, dst=B, payload=b"x" * 100)
        assert pkt.wire_len == IP_TCP_HEADER_BYTES + 100
        assert pkt.payload_len == 100

    def test_seq_span_counts_syn_and_fin(self):
        assert Packet(src=A, dst=B, flags=SYN).seq_span == 1
        assert Packet(src=A, dst=B, flags=FIN | ACK).seq_span == 1
        assert Packet(src=A, dst=B, flags=ACK, payload=b"ab").seq_span == 2
        assert Packet(src=A, dst=B, flags=SYN | FIN, payload=b"ab").seq_span == 4


class TestCopy:
    def test_copy_changes_fields_and_id(self):
        pkt = Packet(src=A, dst=B, flags=ACK, seq=5, ack=9, payload=b"hi",
                     meta={"k": 1})
        dup = pkt.copy(seq=100)
        assert dup.seq == 100
        assert dup.ack == 9
        assert dup.payload == b"hi"
        assert dup.packet_id != pkt.packet_id

    def test_copy_meta_is_independent(self):
        pkt = Packet(src=A, dst=B, meta={"k": 1})
        dup = pkt.copy()
        dup.meta["k"] = 2
        assert pkt.meta["k"] == 1


class TestBuilders:
    def test_make_syn(self):
        pkt = make_syn(A, B, isn=42)
        assert pkt.syn and not pkt.has_ack and pkt.seq == 42

    def test_make_syn_ack(self):
        pkt = make_syn_ack(B, A, isn=7, ack=43)
        assert pkt.syn and pkt.has_ack and pkt.ack == 43

    def test_make_ack(self):
        pkt = make_ack(A, B, seq=1, ack=2)
        assert pkt.is_pure_ack

    def test_make_rst(self):
        assert make_rst(A, B, seq=1).rst

    def test_four_tuple(self):
        pkt = make_syn(A, B, 1)
        assert pkt.four_tuple.src == A
        assert pkt.four_tuple.dst == B


class TestPacketPool:
    def test_acquire_constructs_when_empty(self):
        pool = PacketPool()
        pkt = pool.acquire(A, B, flags=SYN, seq=7)
        assert pkt.src == A and pkt.syn and pkt.seq == 7
        assert pool.created == 1 and pool.recycled == 0

    def test_release_then_acquire_recycles_same_object(self):
        pool = PacketPool()
        first = pool.acquire(A, B, flags=SYN, seq=1)
        first.meta["stale"] = True
        old_id = first.packet_id
        assert pool.release(first)
        again = pool.acquire(B, A, flags=ACK, ack=2)
        assert again is first  # same object, recycled
        assert pool.recycled == 1
        # recycled packets carry no trace of their previous life
        assert again.packet_id != old_id
        assert again.meta == {}
        assert again.src == B and again.has_ack and again.seq == 0

    def test_release_foreign_packet_is_noop(self):
        pool = PacketPool()
        pkt = Packet(src=A, dst=B)  # constructed directly, not pooled
        assert pool.release(pkt) is False
        assert pool.free_count() == 0

    def test_double_release_raises(self):
        pool = PacketPool()
        pkt = pool.acquire(A, B)
        pool.release(pkt)
        with pytest.raises(NetworkError, match="released twice"):
            pool.release(pkt)

    def test_double_release_raises_without_debug_mode(self):
        # the double-release guard is always on, not just under debug
        pool = PacketPool(debug=False)
        pkt = pool.acquire(A, B)
        pool.release(pkt)
        with pytest.raises(NetworkError):
            pool.release(pkt)

    def test_mutate_after_release_raises_in_debug_mode(self):
        pool = PacketPool(debug=True)
        pkt = pool.acquire(A, B, seq=1)
        pool.release(pkt)
        pkt.seq = 999  # use-after-free: writer still holds a reference
        with pytest.raises(NetworkError, match="mutated after release"):
            pool.acquire(A, B)

    def test_meta_mutation_after_release_raises_in_debug_mode(self):
        pool = PacketPool(debug=True)
        pkt = pool.acquire(A, B)
        pool.release(pkt)
        pkt.meta["encap"] = "10.0.0.9"
        with pytest.raises(NetworkError, match="mutated after release"):
            pool.acquire(A, B)

    def test_clean_roundtrip_in_debug_mode(self):
        pool = PacketPool(debug=True)
        pkt = pool.acquire(A, B, payload=b"hello")
        pool.release(pkt)
        again = pool.acquire(B, A)  # no mutation happened: must not raise
        assert again is pkt

    def test_reacquired_packet_can_be_released_again(self):
        pool = PacketPool()
        pkt = pool.acquire(A, B)
        pool.release(pkt)
        pkt = pool.acquire(A, B)
        assert pool.release(pkt)  # live again, so release is legal
        assert pool.free_count() == 1
