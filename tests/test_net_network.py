"""Network fabric: routing, latency, failure, tracing, ip claiming."""

import pytest

from repro.errors import NetworkError
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.sim.tracing import PacketTrace


def _pkt(src_ip, dst_ip, payload=b""):
    return Packet(src=Endpoint(src_ip, 1), dst=Endpoint(dst_ip, 2),
                  payload=payload)


@pytest.fixture
def net():
    loop = EventLoop()
    return loop, Network(loop, SeededRng(1), default_latency=FixedLatency(0.001))


def test_delivery_with_latency(net):
    loop, network = net
    a = network.attach(Host("a", ["10.0.0.1"]))
    b = network.attach(Host("b", ["10.0.0.2"]))
    got = []
    b.set_handler(lambda p: got.append((loop.now(), p)))
    a.send(_pkt("10.0.0.1", "10.0.0.2"))
    loop.run()
    assert len(got) == 1
    assert got[0][0] == pytest.approx(0.001)


def test_site_pair_latency(net):
    loop, network = net
    network.set_symmetric_latency("internet", "dc", FixedLatency(0.05))
    a = network.attach(Host("a", ["10.0.0.1"], site="internet"))
    b = network.attach(Host("b", ["10.0.0.2"], site="dc"))
    got = []
    b.set_handler(lambda p: got.append(loop.now()))
    a.send(_pkt("10.0.0.1", "10.0.0.2"))
    loop.run()
    assert got == [pytest.approx(0.05)]


def test_no_route_drops(net):
    loop, network = net
    a = network.attach(Host("a", ["10.0.0.1"]))
    a.send(_pkt("10.0.0.1", "10.9.9.9"))
    loop.run()
    assert network.metrics.counter("no_route").value == 1


def test_duplicate_host_name_rejected(net):
    _, network = net
    network.attach(Host("a", ["10.0.0.1"]))
    with pytest.raises(NetworkError):
        network.attach(Host("a", ["10.0.0.2"]))


def test_duplicate_ip_rejected(net):
    _, network = net
    network.attach(Host("a", ["10.0.0.1"]))
    with pytest.raises(NetworkError):
        network.attach(Host("b", ["10.0.0.1"]))


def test_failed_host_drops_rx(net):
    loop, network = net
    a = network.attach(Host("a", ["10.0.0.1"]))
    b = network.attach(Host("b", ["10.0.0.2"]))
    got = []
    b.set_handler(lambda p: got.append(p))
    b.fail()
    a.send(_pkt("10.0.0.1", "10.0.0.2"))
    loop.run()
    assert got == []
    assert b.metrics.counter("rx_dropped_failed").value == 1


def test_failed_host_does_not_send(net):
    loop, network = net
    a = network.attach(Host("a", ["10.0.0.1"]))
    b = network.attach(Host("b", ["10.0.0.2"]))
    got = []
    b.set_handler(lambda p: got.append(p))
    a.fail()
    a.send(_pkt("10.0.0.1", "10.0.0.2"))
    loop.run()
    assert got == []


def test_recovered_host_receives_again(net):
    loop, network = net
    a = network.attach(Host("a", ["10.0.0.1"]))
    b = network.attach(Host("b", ["10.0.0.2"]))
    got = []
    b.set_handler(lambda p: got.append(p))
    b.fail()
    b.recover()
    a.send(_pkt("10.0.0.1", "10.0.0.2"))
    loop.run()
    assert len(got) == 1


def test_claim_ip_moves_ownership(net):
    loop, network = net
    a = network.attach(Host("a", ["10.0.0.1"]))
    b = network.attach(Host("b", ["10.0.0.2"]))
    c = network.attach(Host("c", ["10.0.0.3"]))
    network.claim_ip(b, "100.0.0.1")
    got_b, got_c = [], []
    b.set_handler(lambda p: got_b.append(p))
    c.set_handler(lambda p: got_c.append(p))
    a.send(_pkt("10.0.0.1", "100.0.0.1"))
    loop.run()
    assert len(got_b) == 1
    network.claim_ip(c, "100.0.0.1")
    assert "100.0.0.1" not in b.ips
    a.send(_pkt("10.0.0.1", "100.0.0.1"))
    loop.run()
    assert len(got_c) == 1 and len(got_b) == 1


def test_loss_rate_drops_packets(net):
    loop, network = net
    network.set_loss_rate(0.5)
    a = network.attach(Host("a", ["10.0.0.1"]))
    b = network.attach(Host("b", ["10.0.0.2"]))
    got = []
    b.set_handler(lambda p: got.append(p))
    for _ in range(200):
        a.send(_pkt("10.0.0.1", "10.0.0.2"))
    loop.run()
    assert 40 < len(got) < 160  # ~100 expected


def test_invalid_loss_rate(net):
    _, network = net
    with pytest.raises(NetworkError):
        network.set_loss_rate(1.0)


def test_trace_records_tx_and_rx(net):
    loop, network = net
    trace = network.add_trace(PacketTrace())
    a = network.attach(Host("a", ["10.0.0.1"]))
    b = network.attach(Host("b", ["10.0.0.2"]))
    b.set_handler(lambda p: None)
    a.send(_pkt("10.0.0.1", "10.0.0.2", payload=b"xyz"))
    loop.run()
    points = [(r.point, r.direction) for r in trace]
    assert ("wire", "tx") in points
    assert ("b", "rx") in points


def test_trace_marks_drops_at_failed_host(net):
    loop, network = net
    trace = network.add_trace(PacketTrace())
    a = network.attach(Host("a", ["10.0.0.1"]))
    b = network.attach(Host("b", ["10.0.0.2"]))
    b.fail()
    a.send(_pkt("10.0.0.1", "10.0.0.2"))
    loop.run()
    rx = [r for r in trace if r.direction == "rx"]
    assert rx and rx[0].dropped


def test_detach_removes_routes(net):
    loop, network = net
    a = network.attach(Host("a", ["10.0.0.1"]))
    b = network.attach(Host("b", ["10.0.0.2"]))
    network.detach(b)
    a.send(_pkt("10.0.0.1", "10.0.0.2"))
    loop.run()
    assert network.metrics.counter("no_route").value == 1


def test_host_byte_counters(net):
    loop, network = net
    a = network.attach(Host("a", ["10.0.0.1"]))
    b = network.attach(Host("b", ["10.0.0.2"]))
    b.set_handler(lambda p: None)
    a.send(_pkt("10.0.0.1", "10.0.0.2", payload=b"x" * 60))
    loop.run()
    assert a.metrics.counter("tx_bytes").value == 100  # 40 hdr + 60
    assert b.metrics.counter("rx_bytes").value == 100


# ------------------------------------------------------------ path faults --
@pytest.fixture
def two_sites(net):
    loop, network = net
    a = network.attach(Host("a", ["10.0.0.1"], site="internet"))
    b = network.attach(Host("b", ["10.0.0.2"], site="dc"))
    got_a, got_b = [], []
    a.set_handler(lambda p: got_a.append(p))
    b.set_handler(lambda p: got_b.append(p))
    return loop, network, a, b, got_a, got_b


def test_per_path_loss_is_asymmetric(two_sites):
    loop, network, a, b, got_a, got_b = two_sites
    network.set_loss_rate(0.5, src="internet", dst="dc")
    for _ in range(200):
        a.send(_pkt("10.0.0.1", "10.0.0.2"))
        b.send(_pkt("10.0.0.2", "10.0.0.1"))
    loop.run()
    assert 40 < len(got_b) < 160  # lossy direction, ~100 expected
    assert len(got_a) == 200  # reverse path untouched


def test_partition_blackholes_both_ways(two_sites):
    loop, network, a, b, got_a, got_b = two_sites
    network.partition("a", "b")
    a.send(_pkt("10.0.0.1", "10.0.0.2"))
    b.send(_pkt("10.0.0.2", "10.0.0.1"))
    loop.run()
    assert got_a == [] and got_b == []
    assert network.metrics.counter("path_lost_packets").value == 2


def test_asymmetric_partition_keeps_reverse_path(two_sites):
    loop, network, a, b, got_a, got_b = two_sites
    network.partition("a", "b", symmetric=False)
    a.send(_pkt("10.0.0.1", "10.0.0.2"))
    b.send(_pkt("10.0.0.2", "10.0.0.1"))
    loop.run()
    assert got_b == [] and len(got_a) == 1


def test_heal_restores_partitioned_path(two_sites):
    loop, network, a, b, _, got_b = two_sites
    network.partition("a", "b")
    network.heal("a", "b")
    a.send(_pkt("10.0.0.1", "10.0.0.2"))
    loop.run()
    assert len(got_b) == 1


def test_host_rule_overrides_site_rule(two_sites):
    loop, network, a, b, _, _ = two_sites
    network.set_extra_latency(0.030, src="internet", dst="dc")
    network.set_extra_latency(0.010, src="a", dst="b")  # most specific wins
    arrived = []
    b.set_handler(lambda p: arrived.append(loop.now()))
    a.send(_pkt("10.0.0.1", "10.0.0.2"))
    loop.run()
    assert arrived == [pytest.approx(0.011)]  # base 1 ms + host-pair 10 ms


def test_duplicate_rate_delivers_twice(two_sites):
    loop, network, a, b, _, got_b = two_sites
    network.set_duplicate_rate(1.0, src="internet", dst="dc")
    a.send(_pkt("10.0.0.1", "10.0.0.2"))
    loop.run()
    assert len(got_b) == 2
    assert network.metrics.counter("duplicated_packets").value == 1


def test_extra_latency_delays_one_direction(two_sites):
    loop, network, a, b, got_a, _ = two_sites
    network.set_extra_latency(0.030, src="dc", dst="internet")
    arrived = []
    a.set_handler(lambda p: arrived.append(loop.now()))
    b.send(_pkt("10.0.0.2", "10.0.0.1"))
    loop.run()
    assert arrived == [pytest.approx(0.031)]  # base 1 ms + 30 ms spike


def test_per_path_total_loss_allowed_global_still_rejected(net):
    _, network = net
    network.set_loss_rate(1.0, src="x", dst="y")  # blackhole form is legal
    with pytest.raises(NetworkError):
        network.set_loss_rate(1.0)
