"""repro.autoscale: policy arithmetic, engine actuation, journal replay.

The policy tests are pure (snapshots in, decisions out); the engine
tests run against a real wired deployment so spare adoption, drains and
store-membership bumps exercise the actual control plane.
"""

import math

import pytest

from repro.autoscale import (
    Autoscaler,
    ElasticPolicy,
    PolicyEngine,
    ScaleEvent,
    SignalReader,
    SignalSnapshot,
)
from repro.chaos.library import get_scenario
from repro.core.controller import AutoscaleConfig
from repro.errors import ScaleEventConflict, SpareExhausted
from repro.experiments.harness import Testbed, TestbedConfig


def snap(time=0.0, live=3, cpu=0.5, admission=0.0, limiter=0.0):
    return SignalSnapshot(
        time=time, live=live, avg_cpu=cpu, max_cpu=cpu,
        admission_pressure=admission, limiter_saturation=limiter,
    )


def make_bed(**overrides) -> Testbed:
    defaults = dict(
        seed=7, lb="yoda", num_lb_instances=3, num_store_servers=2,
        num_backends=3, corpus="flat", flat_object_count=2,
    )
    defaults.update(overrides)
    return Testbed(TestbedConfig(**defaults))


# =============================================================== policy ==
class TestHysteresis:
    def test_in_band_holds(self):
        eng = PolicyEngine(ElasticPolicy(scale_down=True))
        decision = eng.decide(snap(cpu=0.5))
        assert decision.kind == "hold"
        assert decision.reason == "in band"

    def test_pressure_above_high_scales_out(self):
        eng = PolicyEngine(ElasticPolicy())
        decision = eng.decide(snap(cpu=0.9))
        assert decision.kind == "out"
        assert decision.count >= 1

    def test_idle_below_low_scales_in_only_when_armed(self):
        idle = snap(cpu=0.1, live=3)
        held = PolicyEngine(ElasticPolicy(scale_down=False)).decide(idle)
        assert held.kind == "hold"
        moved = PolicyEngine(ElasticPolicy(scale_down=True)).decide(idle)
        assert moved.kind == "in"

    def test_secondary_admission_signal_trips_scale_out(self):
        eng = PolicyEngine(ElasticPolicy(admission_pressure_high=0.4))
        decision = eng.decide(snap(cpu=0.3, admission=0.8))
        assert decision.kind == "out"
        assert "admission" in decision.reason

    def test_secondary_pressure_blocks_scale_in(self):
        eng = PolicyEngine(ElasticPolicy(
            scale_down=True, admission_pressure_high=0.4))
        # CPU looks idle but the buckets are half depleted: hold
        decision = eng.decide(snap(cpu=0.1, admission=0.3, live=3))
        assert decision.kind == "hold"


class TestSizing:
    def test_target_sizing_rule(self):
        # the legacy Fig. 13 arithmetic: live * cpu / target, ceil'd
        eng = PolicyEngine(ElasticPolicy(target=0.55))
        decision = eng.decide(snap(cpu=0.9, live=4))
        assert decision.count == math.ceil(4 * 0.9 / 0.55) - 4  # +3

    def test_always_moves_at_least_one(self):
        # pressure with a sizing formula that rounds to "stay": still +1
        eng = PolicyEngine(ElasticPolicy(high_watermark=0.70, target=0.75))
        decision = eng.decide(snap(cpu=0.72, live=4))
        assert decision.kind == "out"
        assert decision.count == 1

    def test_step_out_caps_additions(self):
        eng = PolicyEngine(ElasticPolicy(target=0.3, step_out=2))
        decision = eng.decide(snap(cpu=0.95, live=6))
        assert decision.count == 2

    def test_ceiling_caps_and_then_holds(self):
        eng = PolicyEngine(ElasticPolicy(target=0.3, max_instances=5))
        assert eng.decide(snap(cpu=0.95, live=4)).count == 1
        decision = eng.decide(snap(cpu=0.95, live=5))
        assert decision.kind == "hold"
        assert decision.reason == "at max_instances"

    def test_scale_in_step_and_floor(self):
        eng = PolicyEngine(ElasticPolicy(
            scale_down=True, step_in=2, min_instances=2))
        assert eng.decide(snap(cpu=0.1, live=5)).count == 2
        # floor clamps the step
        assert eng.decide(snap(cpu=0.1, live=3)).count == 1
        assert eng.decide(snap(cpu=0.1, live=2)).kind == "hold"


class TestCooldowns:
    def test_cooldown_out_refuses_then_expires(self):
        eng = PolicyEngine(ElasticPolicy(cooldown_out=5.0))
        assert eng.decide(snap(time=10.0, cpu=0.9)).kind == "out"
        eng.last_out_at = 10.0
        held = eng.decide(snap(time=12.0, cpu=0.9))
        assert held.kind == "hold"
        assert "cooldown-out" in held.reason
        assert eng.refusals == 1
        assert eng.decide(snap(time=15.1, cpu=0.9)).kind == "out"

    def test_scale_in_cools_down_after_any_event(self):
        # a scale-OUT also arms the scale-in cooldown: releasing capacity
        # right after adding it is the flap the converge invariant forbids
        eng = PolicyEngine(ElasticPolicy(scale_down=True, cooldown_in=8.0))
        eng.last_out_at = 10.0
        held = eng.decide(snap(time=14.0, cpu=0.1, live=4))
        assert held.kind == "hold"
        assert "cooldown-in" in held.reason
        assert eng.decide(snap(time=18.1, cpu=0.1, live=4)).kind == "in"

    def test_serialized_engine_refuses_during_drain(self):
        eng = PolicyEngine(ElasticPolicy(
            scale_down=True, serialize_events=True))
        for pressure in (0.9, 0.1):
            decision = eng.decide(snap(cpu=pressure, live=4),
                                  drain_in_flight=True)
            assert decision.kind == "hold"
            assert "conflict" in decision.reason
        # the legacy preset keeps the historical quiet behavior
        legacy = PolicyEngine(ElasticPolicy.from_legacy(AutoscaleConfig()))
        assert legacy.decide(snap(cpu=0.9), drain_in_flight=True).kind == "out"


class TestLegacyPreset:
    def test_from_legacy_is_decision_identical_arithmetic(self):
        cfg = AutoscaleConfig(high_watermark=0.6, low_watermark=0.2,
                              target=0.5, check_interval=2.0)
        policy = ElasticPolicy.from_legacy(cfg)
        assert (policy.high_watermark, policy.low_watermark,
                policy.target) == (0.6, 0.2, 0.5)
        # no modern safety rails: the preset must reproduce the
        # historical pass decision-for-decision
        assert policy.cooldown_out == 0.0 and policy.cooldown_in == 0.0
        assert policy.step_out == 0 and not policy.serialize_events
        eng = PolicyEngine(policy)
        decision = eng.decide(snap(cpu=0.9, live=4))
        assert decision.count == math.ceil(4 * 0.9 / 0.5) - 4


class TestPolicyJournal:
    def test_clock_roundtrip(self):
        eng = PolicyEngine(ElasticPolicy())
        eng.last_out_at, eng.last_in_at = 12.5, 30.0
        fresh = PolicyEngine(ElasticPolicy())
        fresh.restore(eng.journal_state())
        assert fresh.last_out_at == 12.5
        assert fresh.last_in_at == 30.0


# =============================================================== engine ==
def quiet_policy(**overrides):
    """A policy whose periodic ticks always hold, so tests drive the
    engine only through operator requests."""
    defaults = dict(high_watermark=10.0, low_watermark=-1.0,
                    serialize_events=True, drain_deadline=3.0,
                    min_instances=1)
    defaults.update(overrides)
    return ElasticPolicy(**defaults)


class TestSpareAdoption:
    def test_scale_out_adopts_spare_into_mapping(self):
        bed = make_bed(spare_instances=2)
        ctl = bed.yoda.controller
        scaler = Autoscaler(ctl, quiet_policy())
        spare = ctl.spares[0]
        scaler.request_scale_out(1)
        bed.run(1.0)
        assert spare.name in ctl.active
        assert spare.ip in bed.l4lb.mapping(bed.vip)
        assert [e.kind for e in scaler.events] == ["out"]

    def test_no_double_adoption_of_same_spare(self):
        bed = make_bed(spare_instances=2)
        ctl = bed.yoda.controller
        scaler = Autoscaler(ctl, quiet_policy())
        scaler.request_scale_out(2)
        bed.run(1.0)
        assert not ctl.spares
        adopted = [n for n in ctl.instances if ctl.active.get(n)]
        assert len(adopted) == len(set(adopted)) == 5

    def test_spare_exhaustion_is_typed(self):
        bed = make_bed(spare_instances=0)
        scaler = Autoscaler(bed.yoda.controller, quiet_policy())
        with pytest.raises(SpareExhausted):
            scaler.request_scale_out(1)

    def test_partial_adoption_records_starvation(self):
        bed = make_bed(spare_instances=1)
        scaler = Autoscaler(bed.yoda.controller, quiet_policy())
        with pytest.raises(SpareExhausted):
            scaler.request_scale_out(2)
        # the one available spare WAS adopted before the starvation raise
        assert [e.kind for e in scaler.events] == ["out", "starved"]
        assert scaler.events[0].count == 1


class TestDrainRaces:
    def test_scale_out_refused_while_drain_in_flight(self):
        bed = make_bed(spare_instances=1, num_lb_instances=4)
        ctl = bed.yoda.controller
        scaler = Autoscaler(ctl, quiet_policy())
        victim = next(iter(ctl.active))
        ctl.drain_instance(victim, deadline=2.0, to_spare=True)
        assert scaler.in_flight()
        with pytest.raises(ScaleEventConflict):
            scaler.request_scale_out(1)
        # the policy engine refuses the same way on its periodic path
        decision = scaler.engine.decide(snap(cpu=0.9, live=3),
                                        drain_in_flight=True)
        assert decision.kind == "hold"

    def test_scale_out_allowed_after_drain_completes(self):
        bed = make_bed(spare_instances=1, num_lb_instances=4)
        ctl = bed.yoda.controller
        scaler = Autoscaler(ctl, quiet_policy())
        victim = next(iter(ctl.active))
        ctl.drain_instance(victim, deadline=1.0, to_spare=True)
        bed.run(3.0)
        assert not ctl.draining
        scaler.request_scale_out(1)
        assert scaler.events[-1].kind == "out"

    def test_scale_in_drains_make_before_break_to_spare(self):
        bed = make_bed(num_lb_instances=4)
        ctl = bed.yoda.controller
        scaler = Autoscaler(ctl, quiet_policy())
        scaler.request_scale_in(1)
        assert len(ctl.draining) == 1
        drained = next(iter(ctl.draining))
        bed.run(5.0)
        assert not ctl.draining
        assert any(s.name == drained for s in ctl.spares)

    def test_cooldown_in_blocks_operator_whiplash(self):
        bed = make_bed(spare_instances=1, num_lb_instances=4)
        scaler = Autoscaler(bed.yoda.controller,
                            quiet_policy(cooldown_in=30.0, scale_down=True))
        scaler.request_scale_out(1)
        with pytest.raises(ScaleEventConflict):
            scaler.request_scale_in(1)


class TestStoreScaling:
    def test_membership_grows_with_instance_pool(self):
        policy = quiet_policy(
            check_interval=0.2, scale_stores=True,
            instances_per_store=1, min_stores=2, max_stores=4)
        bed = make_bed(num_lb_instances=3, num_store_servers=2,
                       autoscale=policy)
        cluster = bed.yoda.kv_cluster
        bed.run(1.0)
        # target ceil(3/1)=3 capped by max_stores; one move per tick,
        # and the add bumped the membership epoch (anti-entropy trigger)
        assert len(cluster.servers) == 3
        assert cluster.epoch >= 1
        scaler = bed.yoda.autoscalers[0]
        assert any(e.kind == "store-out" for e in scaler.events)


class TestEngineJournal:
    def test_events_and_clocks_survive_restore(self):
        bed = make_bed(spare_instances=1)
        ctl = bed.yoda.controller
        scaler = Autoscaler(ctl, quiet_policy())
        scaler.request_scale_out(1)
        state = scaler.journal_state()
        assert state["event_count"] == 1

        heir = Autoscaler(ctl, quiet_policy())
        heir.restore(state)
        assert [e.kind for e in heir.events] == ["out"]
        assert heir.engine.last_out_at == scaler.engine.last_out_at

    def test_controller_journal_carries_autoscale_section(self):
        bed = make_bed(spare_instances=1)
        ctl = bed.yoda.controller
        ctl.attach_autoscaler(Autoscaler(ctl, quiet_policy()))
        assert "autoscale" in ctl._journal_state()


# ========================================================= regressions ==
class TestScaleChurnRegressions:
    """Bugs found running the elastic benchmark: every one of these cost
    a scale-churned flow a SYN-RTO (3 s) or an RST, blowing the SLO."""

    def test_snat_cursor_clamped_after_block_reassignment(self):
        # drain-to-spare releases the block; an interloper claims it
        # before this instance is re-adopted.  The stale cursor must not
        # mint ports inside what is now the interloper's block (return
        # traffic would route to the wrong owner and both connects wedge
        # in SERVER_SYN_SENT).
        bed = make_bed()
        inst = bed.yoda.instances[0]
        snat = bed.l4lb.snat
        first = inst._alloc_snat_port(bed.vip)
        lo_old, hi_old = snat.range_of(bed.vip, inst.ip)
        assert lo_old <= first < hi_old
        snat.release(bed.vip, inst.ip)
        snat.ensure_range(bed.vip, "10.9.9.9")  # takes the freed block
        lo_new, hi_new = snat.ensure_range(bed.vip, inst.ip)
        assert (lo_new, hi_new) != (lo_old, hi_old)
        port = inst._alloc_snat_port(bed.vip)
        assert lo_new <= port < hi_new

    def test_graceful_drain_flushes_mux_flow_pins(self):
        # a graceful drain's flows are complete, but the muxes pin their
        # 5-tuples until idle timeout; a stale server-side pin steers the
        # NEXT owner of the reallocated snat block's SYN-ACKs at this
        # parked spare, which RSTs them
        from repro.l4lb.mux import _FlowEntry

        bed = make_bed(num_lb_instances=4)
        ctl = bed.yoda.controller
        victim = bed.yoda.instances[0]
        mux = bed.l4lb.muxes[0]
        mux.flow_table["10.3.0.1:80>100.0.0.1:40123"] = _FlowEntry(
            victim.ip, bed.loop.now())
        ctl.drain_instance(victim.name, deadline=2.0, to_spare=True)
        bed.run(4.0)
        assert not ctl.draining
        assert all(e.instance_ip != victim.ip
                   for e in mux.flow_table.values())

    def test_drain_grace_accepts_syn_then_refuses(self):
        # the drain push needs a propagation round-trip to pull the
        # instance from every mux ring; a SYN ring-routed here inside
        # that window must be served, not dropped (a refused SYN costs
        # the client a full 3 s SYN-RTO -- an SLO miss by itself)
        from repro.core.instance import DRAIN_SYN_GRACE, flow_key
        from repro.net.addresses import Endpoint
        from repro.net.packet import SYN, Packet

        bed = make_bed()
        inst = bed.yoda.instances[0]
        policy = inst.policies[bed.vip]
        inst.start_drain()

        early = Packet(src=Endpoint("172.16.0.9", 5555),
                       dst=Endpoint(bed.vip, 80), flags=SYN, seq=100)
        inst._handle_client_packet(early, policy)
        assert flow_key(early.src, early.dst) in inst.flows

        bed.run(DRAIN_SYN_GRACE + 0.1)
        late = Packet(src=Endpoint("172.16.0.10", 5555),
                      dst=Endpoint(bed.vip, 80), flags=SYN, seq=200)
        inst._handle_client_packet(late, policy)
        assert flow_key(late.src, late.dst) not in inst.flows
        assert inst.metrics.counter("syns_refused_draining").value == 1


# =========================================================== scenarios ==
class TestChaosRegistration:
    def test_flash_crowd_autoscale_registered_and_armed(self):
        scenario = get_scenario("flash-crowd-autoscale")
        assert scenario.autoscale is not None
        assert scenario.spare_instances > 0
        # the surge trips the qos signal before CPU moves
        assert scenario.autoscale.admission_pressure_high is not None

    def test_scale_in_during_region_kill_registered(self):
        scenario = get_scenario("scale-in-during-region-kill")
        assert scenario.autoscale is not None
        assert scenario.autoscale.scale_down
        assert scenario.standby_site
