"""HTTP message model and serialization."""

import pytest

from repro.errors import HttpError
from repro.http.message import (
    Headers, HttpRequest, HttpResponse, parse_request_line, parse_status_line,
)


class TestHeaders:
    def test_case_insensitive_get(self):
        h = Headers({"Content-Type": "text/html"})
        assert h.get("content-type") == "text/html"
        assert "CONTENT-TYPE" in h

    def test_set_overwrites_case_insensitively(self):
        h = Headers()
        h.set("Host", "a")
        h.set("host", "b")
        assert h.get("Host") == "b"
        assert len(h) == 1

    def test_serialize_preserves_original_casing(self):
        h = Headers()
        h.set("X-Custom-Header", "v")
        assert b"X-Custom-Header: v\r\n" == h.serialize()

    def test_copy_is_independent(self):
        h = Headers({"A": "1"})
        c = h.copy()
        c.set("A", "2")
        assert h.get("A") == "1"


class TestHttpRequest:
    def test_serialize_roundtrip_shape(self):
        req = HttpRequest("get", "/x", host="example.com")
        wire = req.serialize()
        assert wire.startswith(b"GET /x HTTP/1.1\r\n")
        assert b"Host: example.com\r\n" in wire
        assert wire.endswith(b"\r\n\r\n")

    def test_url_combines_host_and_path(self):
        req = HttpRequest("GET", "/a/b.jpg", host="mysite.com")
        assert req.url == "mysite.com/a/b.jpg"

    def test_body_sets_content_length(self):
        req = HttpRequest("POST", "/", body=b"12345")
        assert req.headers.get("Content-Length") == "5"

    def test_cookie_parsing(self):
        req = HttpRequest("GET", "/", headers={"Cookie": "a=1; session=xyz; b=2"})
        assert req.cookie("session") == "xyz"
        assert req.cookie("missing") is None
        assert req.cookies == {"a": "1", "session": "xyz", "b": "2"}

    def test_no_cookie_header(self):
        req = HttpRequest("GET", "/")
        assert req.cookie("a") is None
        assert req.cookies == {}


class TestHttpResponse:
    def test_default_reason(self):
        assert HttpResponse(200).reason == "OK"
        assert HttpResponse(404).reason == "Not Found"

    def test_ok_property(self):
        assert HttpResponse(204).ok
        assert not HttpResponse(500).ok

    def test_content_length_always_set(self):
        resp = HttpResponse(200, body=b"abc")
        assert resp.headers.get("Content-Length") == "3"

    def test_serialize_shape(self):
        wire = HttpResponse(200, body=b"hi").serialize()
        assert wire.startswith(b"HTTP/1.1 200 OK\r\n")
        assert wire.endswith(b"\r\n\r\nhi")


class TestStartLines:
    def test_parse_request_line(self):
        assert parse_request_line(b"GET /x HTTP/1.0") == ("GET", "/x", "HTTP/1.0")

    def test_parse_request_line_rejects_garbage(self):
        with pytest.raises(HttpError):
            parse_request_line(b"GET /x")
        with pytest.raises(HttpError):
            parse_request_line(b"GET /x FTP/1.0")

    def test_parse_status_line(self):
        assert parse_status_line(b"HTTP/1.1 404 Not Found") == ("HTTP/1.1", 404, "Not Found")

    def test_parse_status_line_no_reason(self):
        assert parse_status_line(b"HTTP/1.1 200") == ("HTTP/1.1", 200, "")

    def test_parse_status_line_rejects_garbage(self):
        with pytest.raises(HttpError):
            parse_status_line(b"HTTP/1.1 abc OK")
        with pytest.raises(HttpError):
            parse_status_line(b"FTP/1.1 200 OK")
