"""Property suite for the compact Othello-style dispatch table.

The builder's incremental XOR maintenance (detach / flip-propagate /
re-attach, deterministic reseed-and-replay on cycles) is checked against
the obvious oracle -- a plain dict -- under seeded random insert / update
/ delete / churn sequences.  The frozen snapshot is additionally required
to (a) never name an instance outside its live set for *any* bucket,
tracked or not, (b) be deterministic across identically-driven builders,
and (c) be immutable once frozen: builder mutations after ``snapshot()``
must not bleed into the published table.
"""

import random

import pytest

from repro.errors import NetworkError
from repro.l4lb.compact import (
    CompactTableBuilder,
    DispatchMode,
    StatelessConfig,
    bucket_of,
    bucket_targets,
    maybe_config,
)


def check_against_oracle(builder, oracle, instances):
    """Every tracked bucket resolves to its oracle value, and every
    bucket -- tracked or not -- resolves inside the live set."""
    table = builder.snapshot(version=1, instances=instances)
    for bucket, want in oracle.items():
        assert table.lookup_bucket(bucket) == instances[want], (
            f"bucket {bucket}: want index {want}"
        )
    for bucket in range(builder.num_buckets):
        assert table.lookup_bucket(bucket) in instances


class TestBuilderOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_ops_match_dict_oracle(self, seed):
        rng = random.Random(seed)
        num_buckets = 96
        instances = tuple(f"10.1.0.{i}" for i in range(7))
        builder = CompactTableBuilder(num_buckets=num_buckets)
        oracle = {}
        for step in range(400):
            op = rng.random()
            bucket = rng.randrange(num_buckets)
            if op < 0.70:
                value = rng.randrange(len(instances))
                builder.assign(bucket, value)
                oracle[bucket] = value
            elif op < 0.85:
                builder.remove(bucket)
                oracle.pop(bucket, None)
            else:
                targets = {
                    b: rng.randrange(len(instances))
                    for b in rng.sample(range(num_buckets), 12)
                }
                builder.update(targets)
                oracle = dict(targets)
            if step % 25 == 0:
                check_against_oracle(builder, oracle, instances)
        check_against_oracle(builder, oracle, instances)
        assert len(builder) == len(oracle)

    @pytest.mark.parametrize("num_buckets", [10, 31, 49])
    def test_cycle_buckets_force_and_survive_rebuilds(self, num_buckets):
        """These bucket counts are chosen so the seed-0 bipartite graph of
        a full fill contains at least one cycle (verified by union-find
        offline): whichever edge closes the cycle triggers the
        reseed-and-replay path, for any insertion order.  Correctness
        must hold through it."""
        rng = random.Random(99)
        instances = tuple(f"i{i}" for i in range(5))
        builder = CompactTableBuilder(num_buckets=num_buckets)
        oracle = {}
        order = list(range(num_buckets))
        rng.shuffle(order)
        for bucket in order:
            value = rng.randrange(len(instances))
            builder.assign(bucket, value)
            oracle[bucket] = value
        check_against_oracle(builder, oracle, instances)
        assert builder.rebuilds > 0, (
            "the cycle/rebuild path was never exercised; these bucket "
            "counts are supposed to guarantee a cycle at seed 0"
        )
        assert builder._seed > 0  # the reseed really happened

    def test_identical_histories_build_identical_tables(self):
        """Rebuild seeds are counter-driven, so two builders fed the same
        operations land on byte-identical snapshots."""
        def drive(builder):
            rng = random.Random(7)
            for _ in range(300):
                if rng.random() < 0.8:
                    builder.assign(rng.randrange(64), rng.randrange(6))
                else:
                    builder.remove(rng.randrange(64))

        b1 = CompactTableBuilder(num_buckets=64)
        b2 = CompactTableBuilder(num_buckets=64)
        drive(b1)
        drive(b2)
        instances = tuple(f"i{i}" for i in range(6))
        t1 = b1.snapshot(version=3, instances=instances)
        t2 = b2.snapshot(version=3, instances=instances)
        assert t1.seed == t2.seed
        assert t1._a == t2._a and t1._b == t2._b
        for bucket in range(64):
            assert t1.lookup_bucket(bucket) == t2.lookup_bucket(bucket)

    def test_snapshot_is_isolated_from_later_mutation(self):
        instances = ("a", "b", "c")
        builder = CompactTableBuilder(num_buckets=32)
        for bucket in range(32):
            builder.assign(bucket, bucket % 3)
        frozen = builder.snapshot(version=1, instances=instances)
        before = [frozen.lookup_bucket(b) for b in range(32)]
        for bucket in range(32):  # rewrite everything afterwards
            builder.assign(bucket, (bucket + 1) % 3)
        assert [frozen.lookup_bucket(b) for b in range(32)] == before

    def test_assign_rejects_out_of_range_bucket(self):
        builder = CompactTableBuilder(num_buckets=8)
        with pytest.raises(ValueError):
            builder.assign(8, 0)
        with pytest.raises(ValueError):
            builder.assign(-1, 0)

    def test_unsatisfiable_layout_raises(self):
        """With rebuild attempts exhausted the builder must fail loudly,
        not publish a wrong table.  num_buckets=31 guarantees a cycle at
        seed 0 (see test_cycle_buckets_force_and_survive_rebuilds), and 0
        attempts means the first cycle gives up immediately."""
        builder = CompactTableBuilder(num_buckets=31, max_rebuild_attempts=0)
        with pytest.raises(NetworkError):
            for bucket in range(31):
                builder.assign(bucket, bucket % 3)


class TestSnapshotProperties:
    def test_lookup_clamps_even_for_stale_array_values(self):
        """Shrinking the instance list between builds must never let a
        stale XOR value index outside the new live set."""
        builder = CompactTableBuilder(num_buckets=32)
        for bucket in range(32):
            builder.assign(bucket, bucket % 6)
        table = builder.snapshot(version=2, instances=("only-one",))
        for bucket in range(32):
            assert table.lookup_bucket(bucket) == "only-one"

    def test_flow_key_lookup_is_bucket_consistent(self):
        builder = CompactTableBuilder(num_buckets=64)
        instances = tuple(f"10.0.0.{i}" for i in range(4))
        for bucket in range(64):
            builder.assign(bucket, bucket % 4)
        table = builder.snapshot(version=1, instances=instances)
        for port in range(40000, 40100):
            key = f"172.16.0.1:{port}>100.0.0.1:80"
            assert table.lookup(key) == table.lookup_bucket(
                bucket_of(key, 64))

    def test_size_is_flow_count_independent(self):
        builder = CompactTableBuilder(num_buckets=128)
        instances = ("10.0.0.1", "10.0.0.2")
        builder.assign(0, 1)
        sparse = builder.snapshot(version=1, instances=instances)
        for bucket in range(128):
            builder.assign(bucket, bucket % 2)
        dense = builder.snapshot(version=2, instances=instances)
        assert sparse.size_bytes() == dense.size_bytes()


class TestBucketAssignment:
    def test_bucket_targets_cover_all_buckets_and_instances(self):
        ips = [f"10.1.0.{i}" for i in range(5)]
        targets = bucket_targets("100.0.0.1", ips, 256)
        assert set(targets) == set(range(256))
        assert set(targets.values()) == set(range(5))  # all get a share

    def test_membership_change_moves_a_minority_of_buckets(self):
        """Ring-based assignment: adding one instance must remap roughly
        1/n of the buckets, not reshuffle the space."""
        ips = [f"10.1.0.{i}" for i in range(6)]
        before = bucket_targets("100.0.0.1", ips, 512)
        after = bucket_targets("100.0.0.1", ips + ["10.1.0.99"], 512)
        moved = sum(1 for b in range(512)
                    if ips[before[b]] != (ips + ["10.1.0.99"])[after[b]])
        assert 0 < moved < 512 * 0.40

    def test_bucket_of_is_stable_and_in_range(self):
        key = "172.16.0.9:40001>100.0.0.1:80"
        assert bucket_of(key, 512) == bucket_of(key, 512)
        assert 0 <= bucket_of(key, 512) < 512


class TestConfig:
    def test_default_config_is_armed_but_stateful(self):
        cfg = StatelessConfig()
        assert cfg.enabled is False
        assert cfg.mode is DispatchMode.STATEFUL
        assert maybe_config(cfg) is DispatchMode.STATEFUL
        assert maybe_config(None) is DispatchMode.STATEFUL

    def test_enabled_config_switches_mode(self):
        cfg = StatelessConfig(enabled=True)
        assert cfg.mode is DispatchMode.STATELESS
        assert maybe_config(cfg) is DispatchMode.STATELESS
