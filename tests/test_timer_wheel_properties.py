"""Property tests for the fast-path scheduler.

The optimized :class:`EventLoop` (tuple heap + lazy-deletion tombstones +
hashed timer wheel) must be observably identical to a naive reference
scheduler that scans a flat list for the ``(time, seq)`` minimum.  These
tests drive both with the same seeded workloads and compare the full
dispatch logs, plus targeted checks for the properties the golden-trace
suite depends on:

- same-timestamp FIFO ordering, including across the wheel/heap boundary;
- a cancelled event is never delivered, no matter when the cancel lands
  (before wheeling, while wheeled, after flushing, mid same-tick batch);
- reschedule monotonicity: a re-armed timer fires exactly once, at the
  deadline set by the *last* re-arm, never at a superseded one.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.events import WHEEL_GRANULARITY, WHEEL_MIN_DELAY, EventLoop
from repro.sim.process import Timer


class NaiveScheduler:
    """O(n)-per-step reference implementation of the EventLoop contract.

    No heap, no wheel, no tombstones: every step scans a flat list for the
    ``(time, seq)`` minimum.  Slow but trivially correct -- the property
    tests trust this and check the optimized loop against it.
    """

    class _Ev:
        __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired")

        def __init__(self, time, seq, fn, args):
            self.time = time
            self.seq = seq
            self.fn = fn
            self.args = args
            self.cancelled = False
            self.fired = False

        def cancel(self):
            if not self.fired:
                self.cancelled = True

        @property
        def pending(self):
            return not (self.cancelled or self.fired)

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._events = []
        self._seq = 0

    def now(self):
        return self._now

    def call_at(self, time, fn, *args):
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f}, before now={self._now:.6f}"
            )
        ev = self._Ev(float(time), self._seq, fn, args)
        self._seq += 1
        self._events.append(ev)
        return ev

    def call_later(self, delay, fn, *args):
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, fn, *args)

    def run(self, until=None):
        fired = 0
        while True:
            live = [e for e in self._events if e.pending]
            if not live:
                break
            ev = min(live, key=lambda e: (e.time, e.seq))
            if until is not None and ev.time > until:
                break
            self._now = ev.time
            ev.fired = True
            ev.fn(*ev.args)
            fired += 1
        self._events = [e for e in self._events if e.pending]
        if until is not None and self._now < until:
            self._now = until
        return fired

    def pending_count(self):
        return sum(1 for e in self._events if e.pending)


# Delays chosen to hit every scheduling path: the heap (below
# WHEEL_MIN_DELAY), the wheel (above it), exact slot boundaries, and
# float-noise just past a boundary.
_INTERESTING_DELAYS = [
    0.0,
    0.001,
    0.01,
    WHEEL_GRANULARITY,
    WHEEL_MIN_DELAY - 1e-9,
    WHEEL_MIN_DELAY,
    WHEEL_MIN_DELAY + 1e-9,
    0.15,
    3 * WHEEL_GRANULARITY,
    0.30000000000000004,
    0.5,
    1.0,
]


class _Fuzzer:
    """Runs one seeded workload against a scheduler and records dispatch.

    The same seed produces the same operation script on both schedulers
    *provided* dispatch order matches -- which is exactly the property
    under test; any divergence shows up as differing logs.
    """

    def __init__(self, loop, seed, steps):
        self.loop = loop
        self.rng = random.Random(seed)
        self.steps = steps
        self.log = []
        self.next_token = 0
        self.cancelled_tokens = set()
        self.handles = []  # (event, token), in creation order

    def schedule(self):
        token = self.next_token
        self.next_token += 1
        if self.rng.random() < 0.7:
            delay = self.rng.choice(_INTERESTING_DELAYS)
        else:
            delay = self.rng.uniform(0.0, 1.5)
        ev = self.loop.call_later(delay, self._fire, token)
        self.handles.append((ev, token))

    def _fire(self, token):
        assert token not in self.cancelled_tokens, (
            f"cancelled event {token} was delivered at t={self.loop.now()}"
        )
        self.log.append((round(self.loop.now(), 9), token))
        if self.steps <= 0:
            return
        for _ in range(self.rng.randint(0, 2)):
            self.steps -= 1
            self.schedule()
        if self.handles and self.rng.random() < 0.4:
            ev, tok = self.handles.pop(self.rng.randrange(len(self.handles)))
            if ev.pending:
                self.cancelled_tokens.add(tok)
            ev.cancel()
            self.log.append(("cancel", tok))


def _run_workload(loop, seed):
    fz = _Fuzzer(loop, seed, steps=300)
    for _ in range(25):
        fz.schedule()
    loop.run(until=0.4)
    for _ in range(10):
        fz.schedule()
    loop.run(until=1.1)
    loop.run()
    assert loop.pending_count() == 0
    return fz.log


@pytest.mark.parametrize("seed", range(8))
def test_random_workload_matches_reference(seed):
    fast = _run_workload(EventLoop(), seed)
    naive = _run_workload(NaiveScheduler(), seed)
    assert fast, "workload dispatched nothing; fuzzer is broken"
    if fast != naive:
        for i, (a, b) in enumerate(zip(fast, naive)):
            if a != b:
                pytest.fail(
                    f"seed {seed}: first divergence at dispatch #{i}: "
                    f"optimized={a} reference={b}"
                )
        pytest.fail(
            f"seed {seed}: logs are a prefix mismatch: "
            f"{len(fast)} vs {len(naive)} entries"
        )


def test_same_timestamp_fifo_across_wheel_and_heap():
    # Events landing at the same instant must fire in scheduling order even
    # when some were wheeled (scheduled far out) and some went straight to
    # the heap (scheduled near the deadline).
    logs = []
    for loop in (EventLoop(), NaiveScheduler()):
        order = []
        deadline = 1.0
        loop.call_at(deadline, order.append, "wheeled-1")
        loop.call_at(deadline, order.append, "wheeled-2")
        # scheduled 0.05 before the deadline -> below WHEEL_MIN_DELAY, so
        # the optimized loop puts it on the heap directly
        loop.call_at(0.95, lambda: loop.call_at(deadline, order.append, "late"))
        loop.call_at(deadline, order.append, "wheeled-3")
        loop.run()
        logs.append(order)
    assert logs[0] == logs[1]
    assert logs[0] == ["wheeled-1", "wheeled-2", "wheeled-3", "late"]


def test_float_noise_at_slot_boundaries_matches_reference():
    # 0.30000000000000004 vs 0.3: the wheel's int(time/granularity) slot
    # math must not reorder events whose times differ only by float noise.
    times = [0.30000000000000004, 0.3, 6 * WHEEL_GRANULARITY,
             0.3 - 1e-12, 0.15000000000000002, 0.15]
    logs = []
    for loop in (EventLoop(), NaiveScheduler()):
        order = []
        for i, t in enumerate(times):
            loop.call_at(t, order.append, i)
        loop.run()
        logs.append(order)
    assert logs[0] == logs[1]


def test_cancel_wheeled_event_just_before_flush():
    # Cancel lands from a heap event one tick before the victim's wheel
    # slot is due: the flush must drop the tombstone, not deliver it.
    loop = EventLoop()
    fired = []
    victim = loop.call_at(0.5, fired.append, "victim")
    loop.call_at(0.449, victim.cancel)
    loop.call_at(0.6, fired.append, "after")
    loop.run()
    assert fired == ["after"]


def test_cancel_within_same_tick_batch():
    # First event of a same-tick batch cancels a later one: the batched
    # dispatch must still honour the tombstone.
    for loop in (EventLoop(), NaiveScheduler()):
        fired = []
        second = loop.call_at(1.0, fired.append, "second")
        loop.call_at(1.0, second.cancel)
        loop.run()
        # NB: 'second' was scheduled first, so it fires *before* the
        # cancel runs -- cancel-after-fire is a no-op on both loops.
        assert fired == ["second"]


def test_cancel_before_fire_in_same_tick_batch():
    for loop in (EventLoop(), NaiveScheduler()):
        fired = []
        holder = {}
        loop.call_at(1.0, lambda: holder["ev"].cancel())
        holder["ev"] = loop.call_at(1.0, fired.append, "victim")
        loop.run()
        assert fired == []


def test_reschedule_monotonicity_with_timer():
    # A re-armed Timer fires exactly once, at the deadline of the last
    # start(); earlier deadlines (wheeled or heaped) are all superseded.
    loop = EventLoop()
    fired = []
    timer = Timer(loop, lambda: fired.append(loop.now()))
    timer.start(0.2)                                   # wheeled
    loop.call_at(0.1, lambda: timer.start(0.5))        # push out (wheeled)
    loop.call_at(0.3, lambda: timer.start(0.05))       # pull in (heap path)
    loop.run()
    assert fired == [pytest.approx(0.35)]
    assert not timer.armed


@pytest.mark.parametrize("seed", range(4))
def test_reschedule_storm_fires_once_at_last_deadline(seed):
    # KV-client shape: one timer re-armed many times per op.  However the
    # re-arms interleave, exactly one delivery happens, at the final
    # deadline.
    rng = random.Random(seed)
    loop = EventLoop()
    fired = []
    timer = Timer(loop, lambda: fired.append(loop.now()))
    timer.start(5.0)  # initial far deadline, always superseded below
    last_deadline = 5.0
    at = 0.0
    for _ in range(50):
        at += rng.uniform(0.0, 0.05)
        # every delay exceeds the max gap between re-arms, so the timer
        # can never fire before the next re-arm supersedes it
        delay = rng.choice([0.06, WHEEL_MIN_DELAY, 0.15,
                            0.30000000000000004, 0.5, 1.0])
        last_deadline = at + delay

        def rearm(d=delay):
            timer.start(d)

        loop.call_at(at, rearm)
    loop.run()
    assert fired == [pytest.approx(last_deadline)]
