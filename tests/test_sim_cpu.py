"""CPU model: queueing, utilization windows, shedding."""

import pytest

from repro.sim.cpu import CpuModel, CpuSampler
from repro.sim.events import EventLoop


def test_work_completes_after_cost():
    loop = EventLoop()
    cpu = CpuModel(loop)
    done = []
    cpu.execute(0.5, lambda: done.append(loop.now()))
    loop.run()
    assert done == [0.5]


def test_work_queues_fifo():
    loop = EventLoop()
    cpu = CpuModel(loop)
    done = []
    cpu.execute(0.5, done.append, "a")
    cpu.execute(0.5, done.append, "b")
    loop.run()
    assert done == ["a", "b"]
    assert loop.now() == 1.0


def test_queue_delay_reflects_backlog():
    loop = EventLoop()
    cpu = CpuModel(loop)
    cpu.execute(2.0)
    assert cpu.queue_delay() == 2.0


def test_idle_gap_is_not_busy():
    loop = EventLoop()
    cpu = CpuModel(loop)
    cpu.execute(1.0)
    loop.run(until=1.0)
    loop.run(until=4.0)  # 3s idle
    cpu.execute(1.0)
    loop.run(until=5.0)
    assert cpu.busy_seconds == pytest.approx(2.0)


def test_utilization_window():
    loop = EventLoop()
    cpu = CpuModel(loop)
    cpu.reset_window()
    cpu.execute(1.0)
    loop.run(until=2.0)
    assert cpu.utilization_window() == pytest.approx(0.5)
    cpu.reset_window()
    loop.run(until=4.0)
    assert cpu.utilization_window() == pytest.approx(0.0)


def test_cores_divide_cost():
    loop = EventLoop()
    cpu = CpuModel(loop, cores=4.0)
    done = []
    cpu.execute(1.0, lambda: done.append(loop.now()))
    loop.run()
    assert done == [0.25]


def test_max_queue_delay_sheds():
    loop = EventLoop()
    cpu = CpuModel(loop, max_queue_delay=1.0)
    assert cpu.execute(2.0) is not None
    assert cpu.execute(0.1) is None  # would wait 2s > 1s bound
    assert cpu.dropped == 1


def test_negative_cost_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        CpuModel(loop).execute(-1.0)


def test_invalid_cores_rejected():
    with pytest.raises(ValueError):
        CpuModel(EventLoop(), cores=0)


def test_slowdown_stretches_service_time():
    loop = EventLoop()
    cpu = CpuModel(loop)
    cpu.set_slowdown(30.0)
    done = []
    cpu.execute(0.1, lambda: done.append(loop.now()))
    loop.run()
    assert done == [pytest.approx(3.0)]


def test_slowdown_reset_restores_speed():
    loop = EventLoop()
    cpu = CpuModel(loop)
    cpu.set_slowdown(10.0)
    cpu.set_slowdown(1.0)
    done = []
    cpu.execute(0.1, lambda: done.append(loop.now()))
    loop.run()
    assert done == [pytest.approx(0.1)]


def test_slowdown_leaves_queued_work_untouched():
    loop = EventLoop()
    cpu = CpuModel(loop)
    done = []
    cpu.execute(1.0, lambda: done.append(loop.now()))
    cpu.set_slowdown(10.0)  # gray failure strikes mid-burst
    cpu.execute(1.0, lambda: done.append(loop.now()))
    loop.run()
    assert done[0] == pytest.approx(1.0)  # admitted before the fault
    assert done[1] == pytest.approx(11.0)


def test_invalid_slowdown_rejected():
    with pytest.raises(ValueError):
        CpuModel(EventLoop()).set_slowdown(0.0)


def test_sampler_records_series():
    loop = EventLoop()
    cpu = CpuModel(loop)
    sampler = CpuSampler(loop, cpu, interval=1.0)
    cpu.execute(0.5)
    loop.run(until=3.0)
    sampler.stop()
    assert len(sampler.series) == 3
    assert sampler.series.values[0] == pytest.approx(0.5)
    assert sampler.series.values[1] == pytest.approx(0.0)
