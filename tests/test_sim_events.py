"""Event loop semantics: ordering, cancellation, budgets, determinism."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    order = []
    loop.call_later(2.0, order.append, "c")
    loop.call_later(1.0, order.append, "b")
    loop.call_later(0.5, order.append, "a")
    loop.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    loop = EventLoop()
    order = []
    for i in range(10):
        loop.call_at(1.0, order.append, i)
    loop.run()
    assert order == list(range(10))


def test_call_soon_runs_at_current_time():
    loop = EventLoop()
    seen = []
    loop.call_later(1.0, lambda: loop.call_soon(seen.append, loop.now()))
    loop.run()
    assert seen == [1.0]


def test_clock_advances_to_event_time():
    loop = EventLoop()
    times = []
    loop.call_later(3.5, lambda: times.append(loop.now()))
    loop.run()
    assert times == [3.5]
    assert loop.now() == 3.5


def test_run_until_stops_before_later_events():
    loop = EventLoop()
    fired = []
    loop.call_at(1.0, fired.append, 1)
    loop.call_at(5.0, fired.append, 5)
    loop.run(until=2.0)
    assert fired == [1]
    assert loop.now() == 2.0
    loop.run()
    assert fired == [1, 5]


def test_run_until_advances_clock_even_without_events():
    loop = EventLoop()
    loop.run(until=7.0)
    assert loop.now() == 7.0


def test_run_for_is_relative():
    loop = EventLoop()
    loop.run(until=2.0)
    loop.run_for(3.0)
    assert loop.now() == 5.0


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.call_later(1.0, fired.append, 1)
    event.cancel()
    loop.run()
    assert fired == []
    assert not event.pending


def test_cancel_inside_handler():
    loop = EventLoop()
    fired = []
    later = loop.call_at(2.0, fired.append, "later")
    loop.call_at(1.0, later.cancel)
    loop.run()
    assert fired == []


def test_scheduling_in_past_raises():
    loop = EventLoop()
    loop.run(until=5.0)
    with pytest.raises(SimulationError):
        loop.call_at(1.0, lambda: None)


def test_negative_delay_raises():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.call_later(-1.0, lambda: None)


def test_max_events_budget():
    loop = EventLoop()

    def reschedule():
        loop.call_later(0.1, reschedule)

    loop.call_later(0.1, reschedule)
    with pytest.raises(SimulationError):
        loop.run(max_events=100)


def test_stop_halts_run():
    loop = EventLoop()
    fired = []
    loop.call_at(1.0, fired.append, 1)
    loop.call_at(1.0, loop.stop)
    loop.call_at(1.0, fired.append, 2)
    loop.run()
    assert fired == [1]
    # remaining event still pending
    assert loop.pending_count() == 1


def test_run_not_reentrant():
    loop = EventLoop()
    errors = []

    def nested():
        try:
            loop.run()
        except SimulationError as exc:
            errors.append(exc)

    loop.call_later(0.1, nested)
    loop.run()
    assert len(errors) == 1


def test_run_returns_fired_count():
    loop = EventLoop()
    for i in range(5):
        loop.call_later(i * 0.1, lambda: None)
    assert loop.run() == 5


def test_peek_time_skips_cancelled():
    loop = EventLoop()
    first = loop.call_at(1.0, lambda: None)
    loop.call_at(2.0, lambda: None)
    first.cancel()
    assert loop.peek_time() == 2.0


def test_event_fired_flag():
    loop = EventLoop()
    event = loop.call_later(0.1, lambda: None)
    loop.run()
    assert event.fired and not event.pending


# -- lazy deletion must not leak dead entries --------------------------------
#
# Regression: the old loop left every cancelled event in the heap until its
# timestamp surfaced, so N schedule/cancel cycles (the shape of TCP
# retransmission timers on a healthy network) grew the queue O(N).  The
# tombstone accounting must keep internal storage proportional to *live*
# events, with only a bounded compaction slack.

_CHURN = 20_000
# compaction triggers once tombstones exceed 64 AND outnumber live entries;
# with ~10 live anchors the depth ceiling is small and N-independent
_SLACK = 200


def test_queue_depth_stays_o_live_under_wheel_churn():
    loop = EventLoop()
    for i in range(10):  # long-lived timers, like health-check periods
        loop.call_later(500.0 + i, lambda: None)
    for _ in range(_CHURN):
        loop.call_later(1.0, lambda: None).cancel()  # wheeled, then dead
    assert loop.pending_count() == 10
    assert loop.queue_depth() <= 10 + _SLACK


def test_queue_depth_stays_o_live_under_heap_churn():
    loop = EventLoop()
    for i in range(10):
        loop.call_later(500.0 + i, lambda: None)
    for _ in range(_CHURN):
        loop.call_later(0.01, lambda: None).cancel()  # below the wheel cutoff
    assert loop.pending_count() == 10
    assert loop.queue_depth() <= 10 + _SLACK


def test_queue_drains_completely():
    loop = EventLoop()
    for i in range(100):
        ev = loop.call_later(0.01 * i, lambda: None)
        if i % 3 == 0:
            ev.cancel()
    loop.run()
    assert loop.pending_count() == 0
    assert loop.queue_depth() == 0
