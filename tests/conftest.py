"""Shared fixtures: small wired deployments for integration tests."""

from __future__ import annotations

import pytest

from repro.net.host import Host
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng


@pytest.fixture
def loop() -> EventLoop:
    return EventLoop()


@pytest.fixture
def rng() -> SeededRng:
    return SeededRng(1234)


@pytest.fixture
def network(loop, rng) -> Network:
    return Network(loop, rng)


def make_host(network: Network, name: str, ip: str, site: str = "dc") -> Host:
    return network.attach(Host(name, [ip], site=site))
