"""Golden-trace equivalence suite: the correctness gate for fast-path work.

Every optimization of the simulator core (event loop, timer wheel, packet
pooling, network caches) must be *provably behavior-identical*: with the
same seed, the full packet schedule of a chaos scenario must not move by a
single event.  This suite pins SHA-256 digests of the packet schedule for a
corpus of chaos scenarios (including the store-repair-heavy
``rolling-store-restart`` and ``crash-heal-crash``) into
``tests/golden/*.json`` and fails loudly -- with a readable diff of the
first diverging event -- when any run no longer matches.

The golden files also store per-block checkpoint digests (every
``CHECKPOINT_INTERVAL`` records) plus sampled boundary lines, so a
divergence deep inside a 100k-record trace is localized to a small window
and reported with the actual events in that window.

Regenerating (ONLY when a change is *meant* to alter the packet schedule,
e.g. a new scenario or an intentional protocol change -- never to make an
"optimization" pass):

    GOLDEN_UPDATE=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py

This suite intentionally has no skip paths: a missing or unreadable golden
file is a hard failure, so CI can never silently lose the gate.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, List, Optional

import pytest

from repro.chaos.library import get_scenario
from repro.chaos.scenario import ScenarioEngine
from repro.sim.tracing import TraceRecord

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_SCHEMA = "golden-trace/v1"
CHECKPOINT_INTERVAL = 100  # records per checkpoint digest
BOUNDARY_EVERY = 2000  # keep one full record line every this many records
HEAD_LINES = 100  # full record lines kept from the start of the trace
GOLDEN_SEED = 2016

# The pinned corpus: built-in scenarios, shrunk (fewer clients / smaller
# objects / shorter drains) so the whole suite runs in tens of seconds
# while still exercising every fault primitive: partitions, loss,
# duplication, probe loss, flapping, gray CPU, store restarts and the
# repair machinery.  Fault *schedules* are the built-ins' own.
SCENARIO_VARIANTS: Dict[str, Dict] = {
    "store-partition": dict(clients=2, object_count=3, duration=8.0, drain=6.0),
    "asym-loss": dict(clients=2, object_count=3, duration=8.0, drain=8.0),
    "store-death-midhandshake": dict(clients=2, object_count=3,
                                     duration=6.0, drain=6.0),
    "instance-flap": dict(clients=2, object_count=3, duration=7.0, drain=6.0),
    "probe-loss": dict(clients=2, object_count=3, duration=6.0, drain=6.0),
    "rolling-store-restart": dict(clients=2, object_bytes=1_500_000, drain=8.0),
    "crash-heal-crash": dict(clients=2, object_bytes=1_500_000, drain=8.0),
}


def canonical_line(rec: TraceRecord) -> str:
    """One record as a stable, readable line; the digest is over these."""
    return (
        f"{rec.time:.9f} {rec.point} {rec.direction} "
        f"{rec.src}>{rec.dst} {rec.flags} seq={rec.seq} ack={rec.ack} "
        f"len={rec.payload_len}{' DROPPED' if rec.dropped else ''}"
    )


class GoldenRecorder:
    """A packet-trace tap that folds every record into SHA-256 digests.

    Keeps: the full-trace digest, a checkpoint digest per
    ``CHECKPOINT_INTERVAL``-record block (for localizing divergence), and
    every rendered line in memory (for reporting the actual events around
    the first diverging block).
    """

    def __init__(self):
        self._full = hashlib.sha256()
        self._block = hashlib.sha256()
        self.checkpoints: List[str] = []
        self.lines: List[str] = []

    def record(self, rec: TraceRecord) -> None:
        line = canonical_line(rec)
        data = line.encode()
        self._full.update(data)
        self._block.update(data)
        self.lines.append(line)
        if len(self.lines) % CHECKPOINT_INTERVAL == 0:
            self.checkpoints.append(self._block.hexdigest()[:16])
            self._block = hashlib.sha256()

    @property
    def count(self) -> int:
        return len(self.lines)

    def digest(self) -> str:
        return self._full.hexdigest()

    def boundary_lines(self) -> Dict[str, str]:
        return {str(i): self.lines[i]
                for i in range(0, len(self.lines), BOUNDARY_EVERY)}


def run_golden_scenario(name: str):
    """Run one pinned scenario variant and return (recorder, outcome)."""
    scenario = dataclasses.replace(get_scenario(name),
                                   **SCENARIO_VARIANTS[name])
    recorder = GoldenRecorder()
    engine = ScenarioEngine(scenario, lb="yoda", seed=GOLDEN_SEED,
                            taps=[recorder])
    outcome = engine.run()
    return recorder, outcome


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def write_golden(name: str, recorder: GoldenRecorder, outcome) -> None:
    doc = {
        "schema": GOLDEN_SCHEMA,
        "scenario": name,
        "seed": GOLDEN_SEED,
        "overrides": SCENARIO_VARIANTS[name],
        "digest": recorder.digest(),
        "engine_digest": outcome.trace_digest,
        "record_count": recorder.count,
        "checkpoint_interval": CHECKPOINT_INTERVAL,
        "checkpoints": recorder.checkpoints,
        "head_lines": recorder.lines[:HEAD_LINES],
        "boundary_every": BOUNDARY_EVERY,
        "boundary_lines": recorder.boundary_lines(),
    }
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    with open(golden_path(name), "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


def first_divergence_report(name: str, golden: dict,
                            recorder: GoldenRecorder) -> str:
    """A readable report locating the first diverging event."""
    out = [
        f"golden trace mismatch for scenario {name!r} (seed {GOLDEN_SEED})",
        f"  expected digest {golden['digest']}",
        f"  actual   digest {recorder.digest()}",
        f"  expected {golden['record_count']} records, "
        f"got {recorder.count}",
    ]
    # exact first-event diff while inside the stored head window
    head: List[str] = golden.get("head_lines", [])
    for i, expected in enumerate(head):
        actual = recorder.lines[i] if i < len(recorder.lines) else "<missing>"
        if actual != expected:
            out.append(f"  first diverging event is record #{i}:")
            out.append(f"    expected: {expected}")
            out.append(f"    actual:   {actual}")
            for j in range(max(0, i - 3), i):
                out.append(f"    context:  #{j} {recorder.lines[j]}")
            return "\n".join(out)
    # otherwise localize via checkpoint digests
    exp_cp: List[str] = golden.get("checkpoints", [])
    act_cp = recorder.checkpoints
    interval = golden.get("checkpoint_interval", CHECKPOINT_INTERVAL)
    block = None
    for k in range(min(len(exp_cp), len(act_cp))):
        if exp_cp[k] != act_cp[k]:
            block = k
            break
    if block is None:
        if len(exp_cp) == len(act_cp):
            out.append("  divergence is in the trailing partial block")
            block = len(act_cp)
        else:
            block = min(len(exp_cp), len(act_cp))
            out.append("  one trace is a strict prefix of the other")
    lo, hi = block * interval, (block + 1) * interval
    out.append(f"  first diverging event lies in records [{lo}, {hi})")
    boundaries = golden.get("boundary_lines", {})
    anchor = max((int(i) for i in boundaries if int(i) <= lo), default=None)
    if anchor is not None:
        out.append(f"  last pinned record before the window (#{anchor}):")
        out.append(f"    expected: {boundaries[str(anchor)]}")
        if anchor < len(recorder.lines):
            out.append(f"    actual:   {recorder.lines[anchor]}")
    out.append("  actual events at the start of the window:")
    for i in range(lo, min(hi, lo + 12, len(recorder.lines))):
        out.append(f"    #{i} {recorder.lines[i]}")
    out.append("  (regen ONLY for intentional schedule changes: "
               "GOLDEN_UPDATE=1 pytest tests/test_golden_traces.py)")
    return "\n".join(out)


def load_golden(name: str) -> Optional[dict]:
    path = golden_path(name)
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


class TestGoldenCorpusShape:
    """The corpus itself is part of the contract."""

    def test_at_least_six_scenarios_pinned(self):
        assert len(SCENARIO_VARIANTS) >= 6

    def test_required_store_repair_scenarios_pinned(self):
        assert "rolling-store-restart" in SCENARIO_VARIANTS
        assert "crash-heal-crash" in SCENARIO_VARIANTS

    def test_every_pinned_scenario_has_a_golden_file(self):
        missing = [n for n in SCENARIO_VARIANTS if load_golden(n) is None]
        assert not missing, (
            f"golden files missing for {missing}; generate with "
            f"GOLDEN_UPDATE=1 PYTHONPATH=src python -m pytest "
            f"tests/test_golden_traces.py"
        )

    def test_no_stale_golden_files(self):
        on_disk = {f[:-5] for f in os.listdir(GOLDEN_DIR)
                   if f.endswith(".json")}
        assert on_disk == set(SCENARIO_VARIANTS), (
            "tests/golden/ out of sync with SCENARIO_VARIANTS"
        )


@pytest.mark.parametrize("name", sorted(SCENARIO_VARIANTS))
def test_golden_trace(name):
    golden = load_golden(name)
    update = os.environ.get("GOLDEN_UPDATE") == "1"
    if golden is None and not update:
        pytest.fail(
            f"no golden file for scenario {name!r}; generate with "
            f"GOLDEN_UPDATE=1 PYTHONPATH=src python -m pytest "
            f"tests/test_golden_traces.py"
        )
    recorder, outcome = run_golden_scenario(name)
    if update:
        write_golden(name, recorder, outcome)
        return
    assert golden["schema"] == GOLDEN_SCHEMA
    if (recorder.digest() != golden["digest"]
            or recorder.count != golden["record_count"]):
        pytest.fail(first_divergence_report(name, golden, recorder),
                    pytrace=False)
    # the engine's own digest (InvariantMonitor's field format) is pinned
    # too: it must agree with what the chaos CLI reports for the same run
    assert outcome.trace_digest == golden["engine_digest"]


@pytest.mark.parametrize("name", sorted(SCENARIO_VARIANTS))
def test_golden_trace_obs_enabled(name):
    """Zero-perturbation gate for the observability plane: the packet
    schedule with tracing ENABLED must be bit-identical to the pinned
    (tracing-disabled) digest.

    Runs after ``test_golden_trace`` in file order, so under GOLDEN_UPDATE
    the plain test regenerates the file first and this test still
    *verifies* -- it never skips (CI greps for skips in this suite).
    """
    from repro.obs import OBS

    golden = load_golden(name)
    assert golden is not None, (
        f"no golden file for scenario {name!r}; generate with "
        f"GOLDEN_UPDATE=1 first"
    )
    OBS.enable()
    try:
        recorder, outcome = run_golden_scenario(name)
        spans_recorded = len(OBS.tracer.spans)
        flight_events = OBS.recorders.total_events()
    finally:
        OBS.disable()
    # the plane must have been genuinely live, not a disabled no-op
    assert spans_recorded > 0
    assert flight_events > 0  # at minimum, the injected faults are noted
    if (recorder.digest() != golden["digest"]
            or recorder.count != golden["record_count"]):
        pytest.fail(
            "observability plane perturbed the packet schedule:\n"
            + first_divergence_report(name, golden, recorder),
            pytrace=False,
        )
    assert outcome.trace_digest == golden["engine_digest"]
