"""Sequence-space arithmetic, including wraparound (property-based)."""

from hypothesis import given, strategies as st

from repro.tcp.segment import (
    SEQ_MOD, seq_add, seq_between, seq_diff, seq_ge, seq_gt, seq_le, seq_lt,
)

seqs = st.integers(0, SEQ_MOD - 1)
small = st.integers(-(2**30), 2**30)


def test_add_wraps():
    assert seq_add(SEQ_MOD - 1, 1) == 0
    assert seq_add(0, -1) == SEQ_MOD - 1


def test_diff_simple():
    assert seq_diff(10, 5) == 5
    assert seq_diff(5, 10) == -5


def test_diff_across_wrap():
    assert seq_diff(5, SEQ_MOD - 5) == 10
    assert seq_diff(SEQ_MOD - 5, 5) == -10


def test_comparisons_across_wrap():
    a = SEQ_MOD - 10
    b = 10  # "after" a in sequence space
    assert seq_lt(a, b)
    assert seq_gt(b, a)
    assert seq_le(a, a) and seq_ge(a, a)


def test_between():
    assert seq_between(10, 15, 20)
    assert seq_between(10, 10, 20)
    assert not seq_between(10, 20, 20)
    # straddling the wrap point
    assert seq_between(SEQ_MOD - 5, 2, 10)
    assert not seq_between(SEQ_MOD - 5, 20, 10)


@given(seqs, small)
def test_add_then_diff_roundtrip(a, d):
    assert seq_diff(seq_add(a, d), a) == d


@given(seqs, seqs)
def test_diff_antisymmetric(a, b):
    d = seq_diff(a, b)
    if d != -(1 << 31):  # the single ambiguous midpoint
        assert seq_diff(b, a) == -d


@given(seqs)
def test_reflexive(a):
    assert seq_diff(a, a) == 0
    assert seq_le(a, a)
    assert not seq_lt(a, a)


@given(seqs, st.integers(1, 2**30))
def test_strict_order(a, d):
    b = seq_add(a, d)
    assert seq_lt(a, b)
    assert seq_gt(b, a)
    assert not seq_lt(b, a)
