"""Chaos fault primitives: specs, target resolution, application."""

import pytest

from repro.chaos.faults import (
    apply_fault,
    crash,
    flap,
    latency_spike,
    loss,
    partition,
    probe_loss,
    resolve_target,
    slow_cpu,
)
from repro.errors import SimulationError
from repro.experiments.harness import Testbed, TestbedConfig


def make_bed(lb="yoda", **overrides):
    defaults = dict(seed=11, lb=lb, num_lb_instances=3, num_store_servers=2,
                    num_backends=2, corpus="flat", flat_object_count=2)
    defaults.update(overrides)
    return Testbed(TestbedConfig(**defaults))


class TestSpecs:
    def test_describe_mentions_kind_and_window(self):
        spec = loss(1.0, 0.10, "dc", "internet", duration=6.0)
        text = spec.describe()
        assert "loss" in text and "rate=0.1" in text and "for 6.0s" in text

    def test_describe_host_fault(self):
        assert "crash lb:serving" in crash(3.0, "lb:serving").describe()


class TestTargetResolution:
    def test_lb_index(self):
        bed = make_bed()
        assert resolve_target(bed, "lb:1") is bed.yoda.instances[1]

    def test_lb_serving_falls_back_to_pool_when_idle(self):
        bed = make_bed()
        assert resolve_target(bed, "lb:serving") is bed.yoda.instances[0]

    def test_store_index(self):
        bed = make_bed()
        assert resolve_target(bed, "store:1") is bed.yoda.store_servers[1]

    def test_store_vacuous_on_haproxy(self):
        bed = make_bed(lb="haproxy")
        assert resolve_target(bed, "store:0") is None

    def test_backend_index(self):
        bed = make_bed()
        assert resolve_target(bed, "backend:0") is bed.backends["srv-0"]

    def test_unknown_selector_raises(self):
        bed = make_bed()
        with pytest.raises(SimulationError):
            resolve_target(bed, "nonsense:0")


class TestApplication:
    def test_crash_fails_host_and_revert_recovers(self):
        bed = make_bed()
        applied = apply_fault(bed, crash(0.0, "lb:0"))
        victim = bed.yoda.instances[0]
        assert victim.host.failed
        assert applied.target_name == victim.host.name
        applied.revert()
        assert not victim.host.failed

    def test_vacuous_fault_applies_as_noop(self):
        bed = make_bed(lb="haproxy")
        applied = apply_fault(bed, crash(0.0, "store:0"))
        assert applied.revert is None and applied.target_name is None

    def test_partition_blackholes_and_reverts(self):
        bed = make_bed()
        store = bed.yoda.store_servers[0]
        applied = apply_fault(bed, partition(0.0, "store:0", "dc"))
        assert bed.network._resolve_faults(
            store.host, bed.yoda.instances[0].host).loss == 1.0
        applied.revert()
        assert bed.network._resolve_faults(
            store.host, bed.yoda.instances[0].host) is None

    def test_latency_spike_applies_one_direction(self):
        bed = make_bed()
        apply_fault(bed, latency_spike(0.0, 0.025, "internet", "dc"))
        faults = bed.network._path_faults
        assert faults[("internet", "dc")].extra_latency == 0.025
        assert ("dc", "internet") not in faults

    def test_flap_schedules_fail_recover_cycles(self):
        bed = make_bed()
        victim = bed.yoda.instances[0]
        apply_fault(bed, flap(0.0, "lb:0", period=1.0, count=2))
        bed.run(0.1)
        assert victim.host.failed  # cycle 1 down
        bed.run(0.5)
        assert not victim.host.failed  # cycle 1 up
        bed.run(0.5)
        assert victim.host.failed  # cycle 2 down
        bed.run(2.0)
        assert not victim.host.failed  # done, recovered

    def test_slow_cpu_sets_and_reverts_factor(self):
        bed = make_bed()
        applied = apply_fault(bed, slow_cpu(0.0, "lb:0", factor=30.0))
        assert bed.yoda.instances[0].cpu.slowdown == 30.0
        applied.revert()
        assert bed.yoda.instances[0].cpu.slowdown == 1.0

    def test_probe_loss_sets_controller_rate(self):
        bed = make_bed()
        applied = apply_fault(bed, probe_loss(0.0, 0.3))
        assert bed.yoda.controller.probe_loss_rate == 0.3
        applied.revert()
        assert bed.yoda.controller.probe_loss_rate == 0.0

    def test_probe_loss_vacuous_on_haproxy(self):
        bed = make_bed(lb="haproxy")
        assert apply_fault(bed, probe_loss(0.0, 0.3)).revert is None
