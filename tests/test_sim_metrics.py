"""Counters, gauges, histograms, time series."""

import pytest

from repro.sim.metrics import Counter, Gauge, Histogram, MetricRegistry, TimeSeries


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("g", initial=10.0)
        g.add(-3)
        g.set(5)
        assert g.value == 5


class TestHistogram:
    def test_median_of_odd_count(self):
        h = Histogram()
        h.extend([3, 1, 2])
        assert h.median() == 2

    def test_percentile_interpolates(self):
        h = Histogram()
        h.extend([0, 10])
        assert h.percentile(50) == 5.0
        assert h.percentile(25) == 2.5

    def test_percentile_bounds(self):
        h = Histogram()
        h.extend([5, 1, 9])
        assert h.percentile(0) == 1
        assert h.percentile(100) == 9

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(50)

    def test_out_of_range_percentile_raises(self):
        h = Histogram()
        h.observe(1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_mean_min_max(self):
        h = Histogram()
        h.extend([2.0, 4.0, 6.0])
        assert h.mean() == 4.0
        assert h.min() == 2.0
        assert h.max() == 6.0

    def test_observe_keeps_percentiles_correct_after_unsorted_insert(self):
        h = Histogram()
        h.extend([5, 1])
        assert h.median() == 3.0
        h.observe(0)
        assert h.min() == 0

    def test_cdf_reaches_one(self):
        h = Histogram()
        h.extend(range(100))
        cdf = h.cdf(points=10)
        assert cdf[-1] == (99, 1.0)
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)

    def test_fraction_above(self):
        h = Histogram()
        h.extend([1, 2, 3, 4])
        assert h.fraction_above(2) == 0.5
        assert h.fraction_above(10) == 0.0
        assert h.fraction_above(0) == 1.0

    def test_single_sample(self):
        h = Histogram()
        h.observe(7.0)
        assert h.percentile(90) == 7.0


class TestTimeSeries:
    def test_record_and_lookup(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        ts.record(2.0, 3.0)
        assert ts.value_at(1.5) == 2.0
        assert ts.value_at(2.0) == 3.0

    def test_rejects_out_of_order(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_value_before_first_sample_raises(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.value_at(4.0)

    def test_window(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(float(t), float(t))
        w = ts.window(2.0, 5.0)
        assert w.times == [2.0, 3.0, 4.0]

    def test_mean_and_max(self):
        ts = TimeSeries()
        ts.record(0, 1.0)
        ts.record(1, 3.0)
        assert ts.mean() == 2.0
        assert ts.max() == 3.0


class TestRegistry:
    def test_same_name_returns_same_metric(self):
        reg = MetricRegistry("node")
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.timeseries("t") is reg.timeseries("t")

    def test_metrics_are_namespaced(self):
        reg = MetricRegistry("node")
        assert reg.counter("a").name == "node.a"
