"""Unit tests for the observability plane: spans, flight recorders, the
sim-time profiler, exporters, the report renderer, and the scraper."""

from __future__ import annotations

import json

import pytest

from repro.obs import OBS, FlightRecorderHub, SimProfiler, Tracer
from repro.obs.export import (
    obs_snapshot,
    registry_snapshot,
    render_json,
    render_prometheus,
)
from repro.obs.plane import ObsPlane
from repro.obs.report import render_report, render_waterfall, slowest_trace
from repro.obs.scrape import MetricScraper
from repro.sim.events import EventLoop
from repro.sim.metrics import MetricRegistry


class _TestPlane(ObsPlane):
    """ObsPlane with a settable test clock (advance via ``plane._t[0]``)."""

    __slots__ = ("_t",)


@pytest.fixture
def plane():
    p = _TestPlane()
    p._t = [0.0]
    p.enable(clock=lambda: p._t[0])
    return p


@pytest.fixture(autouse=True)
def obs_off_after():
    yield
    OBS.disable()


class TestTracer:
    def test_root_and_child_spans(self, plane):
        root = plane.tracer.start("http.request", "client-0")
        assert root.parent_id is None
        plane._t[0] = 0.5
        child = plane.tracer.start("storage_a", "yoda-0",
                                   ctx=Tracer.ctx_of(root))
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        plane._t[0] = 0.7
        plane.tracer.end(child, ok=True)
        assert child.duration == pytest.approx(0.2)
        assert child.attr("ok") is True
        plane.tracer.end(root)
        traces = plane.tracer.traces()
        assert list(traces) == [root.trace_id]
        assert [s.name for s in traces[root.trace_id]] == [
            "http.request", "storage_a"]

    def test_ids_are_deterministic_counters(self, plane):
        a = plane.tracer.start("a")
        b = plane.tracer.start("b")
        assert (a.trace_id, a.span_id) == (1, 1)
        assert (b.trace_id, b.span_id) == (2, 2)

    def test_end_is_idempotent(self, plane):
        span = plane.tracer.start("x")
        plane.tracer.end(span, end=1.0)
        plane.tracer.end(span, end=9.0)
        assert span.end == 1.0
        assert plane.tracer.sketches[("", "x")].count == 1

    def test_durations_feed_sketches(self, plane):
        for i in range(5):
            s = plane.tracer.start("op", "comp", start=0.0)
            plane.tracer.end(s, end=0.001 * (i + 1))
        sketch = plane.tracer.sketches[("comp", "op")]
        assert sketch.count == 5
        assert sketch.max() == pytest.approx(0.005)

    def test_retention_cap_keeps_counting(self):
        p = ObsPlane()
        p.enable(clock=lambda: 0.0)
        p.tracer.max_spans = 3
        for _ in range(5):
            p.tracer.end(p.tracer.start("x"), end=1.0)
        assert len(p.tracer.spans) == 3
        assert p.tracer.dropped == 2
        assert p.tracer.sketches[("", "x")].count == 5

    def test_event_is_zero_duration(self, plane):
        plane._t[0] = 2.0
        ev = plane.tracer.event("l4.route", "mux-0")
        assert ev.start == ev.end == 2.0


class TestFlightRecorder:
    def test_ring_bounded_and_total_counted(self):
        hub = FlightRecorderHub(capacity=4)
        for i in range(10):
            hub.note(float(i), "mux-0", "route", f"flow-{i}")
        rec = hub.recorder("mux-0")
        assert len(rec) == 4
        assert rec.total == 10
        assert rec.events()[0][0] == 6.0

    def test_dump_tail_merges_components_in_time_order(self):
        hub = FlightRecorderHub()
        hub.note(1.0, "a", "k", "first")
        hub.note(3.0, "a", "k", "third")
        hub.note(2.0, "b", "k", "second")
        tail = hub.dump_tail(last=10)
        assert [line.split()[1] for line in tail] == ["[a]", "[b]", "[a]"]

    def test_plane_flight_uses_clock(self, plane):
        plane._t[0] = 4.25
        plane.flight("yoda-0", "drop", "why")
        (t, kind, detail), = plane.recorders.recorder("yoda-0").events()
        assert (t, kind, detail) == (4.25, "drop", "why")


class TestProfiler:
    def test_accumulates_and_ranks(self):
        prof = SimProfiler()
        prof.add("yoda-0", "packet", 0.002)
        prof.add("yoda-0", "packet", 0.003)
        prof.add("mux-0", "route", 0.001)
        assert prof.total() == pytest.approx(0.006)
        rows = prof.rows()
        assert rows[0]["component"] == "yoda-0"
        assert rows[0]["calls"] == 2
        assert prof.by_component() == pytest.approx(
            {"yoda-0": 0.005, "mux-0": 0.001})
        assert "yoda-0" in prof.top_table()
        assert "packet" in prof.flamegraph()


class TestDisabledPlane:
    def test_disabled_is_default_and_cheap(self):
        assert OBS.enabled is False
        # the canonical hot-path guard: one attribute load, no side effects
        if OBS.enabled:  # pragma: no cover
            pytest.fail("plane must start disabled")

    def test_enable_resets_collectors(self):
        OBS.enable(clock=lambda: 1.0)
        OBS.tracer.start("x")
        OBS.flight("c", "k", "d")
        OBS.enable()
        assert OBS.tracer.spans == []
        assert OBS.recorders.total_events() == 0


class TestExporters:
    def _registry(self):
        reg = MetricRegistry("test-reg")
        reg.counter("requests").inc(3)
        reg.gauge("live").set(2.0)
        for v in (0.001, 0.002, 0.003):
            reg.histogram("latency").observe(v)
        return reg

    def test_prometheus_format(self):
        reg = self._registry()
        text = render_prometheus([reg])
        assert 'repro_requests_total{registry="test-reg"} 3' in text
        assert 'repro_live{registry="test-reg"} 2.0' in text
        assert '# TYPE repro_latency summary' in text
        assert 'quantile="0.5"' in text
        assert 'repro_latency_count{registry="test-reg"} 3' in text

    def test_registry_snapshot(self):
        snap = registry_snapshot(self._registry())
        assert snap["counters"]["requests"] == 3
        assert snap["histograms"]["latency"]["count"] == 3
        assert snap["histograms"]["latency"]["p50"] == pytest.approx(0.002)

    def test_render_json_round_trips(self):
        reg = self._registry()
        doc = json.loads(render_json([reg]))
        assert doc["schema"] == "repro-obs/v1"
        assert doc["registries"][0]["name"] == "test-reg"
        assert "obs" in doc

    def test_obs_snapshot_includes_sketches(self, plane):
        s = plane.tracer.start("op", "c", start=0.0)
        plane.tracer.end(s, end=0.01)
        snap = obs_snapshot(plane)
        assert snap["spans"]["retained"] == 1
        assert snap["spans"]["sketches"]["c:op"]["count"] == 1


class TestReport:
    def test_waterfall_and_report(self, plane):
        root = plane.tracer.start("http.request", "client-0", start=0.0)
        child = plane.tracer.start("storage_a", "yoda-0", start=0.01,
                                   ctx=Tracer.ctx_of(root))
        plane.tracer.end(child, end=0.02, ok=True)
        plane.tracer.end(root, end=0.1, ok=True)
        plane.profiler.add("yoda-0", "packet", 0.004)
        plane.flight("yoda-0", "route", "x")
        spans = slowest_trace(plane)
        assert spans is not None
        waterfall = render_waterfall(spans)
        assert "http.request" in waterfall
        assert "storage_a" in waterfall
        report = render_report(plane)
        for section in ("span summary", "slowest request",
                        "simulated CPU profile", "flight recorders"):
            assert section in report

    def test_empty_plane_report(self):
        p = ObsPlane()
        p.enable(clock=lambda: 0.0)
        report = render_report(p)
        assert "(no spans recorded)" in report


class TestScraper:
    def test_scrapes_counters_and_gauges(self):
        loop = EventLoop()
        reg = MetricRegistry("scraped")
        scraper = MetricScraper(loop, registries=[reg], interval=0.5).start()
        reg.counter("hits").inc(10)
        reg.gauge("depth").set(3.0)
        loop.run(until=0.6)  # first scrape: baseline only, no rate point
        reg.counter("hits").inc(5)
        loop.run(until=2.0)
        scraper.stop()
        total = scraper.get("scraped.hits.total")
        assert total.values[-1] == 15
        rate = scraper.get("scraped.hits.rate")
        # pre-start history (10) is a baseline, never a rate spike; the 5
        # hits that landed inside one 0.5 s window show up as 10/s
        assert max(rate.values) == pytest.approx(10.0)
        assert scraper.get("scraped.depth").values[-1] == 3.0
        assert scraper.scrapes >= 3
