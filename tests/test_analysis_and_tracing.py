"""Analysis helpers and the packet tracer."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.report import render_table
from repro.analysis.stats import cdf_points, fraction, mean, median, percentile
from repro.sim.tracing import PacketTrace, TraceRecord


class TestStats:
    def test_median_even(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_percentile_bounds(self):
        assert percentile([5], 0) == 5
        assert percentile([1, 2, 3], 100) == 3

    def test_percentile_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_cdf_points(self):
        pts = cdf_points(list(range(10)))
        assert pts[-1] == (9, 1.0)
        fracs = [f for _, f in pts]
        assert fracs == sorted(fracs)

    def test_fraction(self):
        assert fraction([True, False, True, True]) == 0.75
        assert fraction([]) == 0.0

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=60))
    def test_percentile_monotone(self, values):
        p25 = percentile(values, 25)
        p75 = percentile(values, 75)
        assert p25 <= p75


class TestRenderTable:
    def test_renders_columns_aligned(self):
        rows = [{"a": 1, "bbb": "x"}, {"a": 22, "bbb": "yy"}]
        out = render_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a " in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5  # title, header, sep, 2 rows

    def test_empty(self):
        assert "(empty)" in render_table([])

    def test_float_formatting(self):
        out = render_table([{"v": 0.000123}, {"v": 123456.0}])
        assert "0.000123" in out
        assert "123,456" in out

    def test_missing_column_is_blank(self):
        out = render_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert out  # no crash


def rec(time, point="p", direction="rx", src="1.1.1.1:1", dst="2.2.2.2:2",
        flags=".", seq=0, ack=0, length=0, dropped=False):
    return TraceRecord(time=time, point=point, direction=direction,
                       summary="", src=src, dst=dst, flags=flags, seq=seq,
                       ack=ack, payload_len=length, dropped=dropped)


class TestPacketTrace:
    def test_filter_by_point_and_direction(self):
        trace = PacketTrace()
        trace.record(rec(1.0, point="a", direction="rx"))
        trace.record(rec(2.0, point="b", direction="tx"))
        assert len(trace.filter(point="a")) == 1
        assert len(trace.filter(direction="tx")) == 1

    def test_filter_flow_between(self):
        trace = PacketTrace()
        trace.record(rec(1.0, src="10.0.0.1:80", dst="10.0.0.2:99"))
        trace.record(rec(2.0, src="10.0.0.2:99", dst="10.0.0.1:80"))
        trace.record(rec(3.0, src="10.0.0.3:5", dst="10.0.0.1:80"))
        pair = trace.filter(flow_between=("10.0.0.1", "10.0.0.2"))
        assert len(pair) == 2

    def test_retransmissions_detected(self):
        trace = PacketTrace()
        trace.record(rec(1.0, seq=100, length=10))
        trace.record(rec(2.0, seq=100, length=10))  # retransmit
        trace.record(rec(3.0, seq=110, length=10))
        retrans = trace.retransmissions()
        assert len(retrans) == 1
        assert retrans[0].time == 2.0

    def test_pure_acks_not_counted_as_retransmissions(self):
        trace = PacketTrace()
        trace.record(rec(1.0, seq=1, length=0, flags="."))
        trace.record(rec(2.0, seq=1, length=0, flags="."))
        assert trace.retransmissions() == []

    def test_disabled_trace_records_nothing(self):
        trace = PacketTrace()
        trace.enabled = False
        trace.record(rec(1.0))
        assert len(trace) == 0

    def test_dump_format(self):
        trace = PacketTrace()
        trace.record(rec(1.5, flags="S", dropped=True))
        out = trace.dump()
        assert "S" in out and "DROPPED" in out
