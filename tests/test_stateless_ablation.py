"""The stateless-dispatch trade, pinned from both sides.

The compact fast path buys O(1) dispatch memory by giving up exactly one
thing: per-flow recoverability.  This suite pins the trade in both
directions on the ``double-crash`` schedule -- the stateful run must come
out clean, the stateless run must demonstrably lose established flows --
plus mux-level unit coverage of the stateless dispatch path and the
SNAT-exhaustion pin-release regression.
"""

import dataclasses

import pytest

from repro.chaos.library import get_scenario
from repro.chaos.scenario import run_scenario
from repro.errors import SnatExhausted
from repro.experiments.harness import Testbed, TestbedConfig
from repro.l4lb.compact import CompactTableBuilder, StatelessConfig
from repro.l4lb.service import L4LoadBalancer
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.net.packet import ACK, SYN, Packet
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng

VIP = "100.0.0.1"


def shrunk_double_crash(**extra):
    return dataclasses.replace(
        get_scenario("double-crash"),
        clients=2, object_count=3, duration=8.0, drain=6.0, **extra)


class TestCrashAblation:
    """One schedule, two modes, opposite verdicts -- both pinned."""

    @pytest.fixture(scope="class")
    def outcomes(self):
        stateful = run_scenario(shrunk_double_crash(), lb="yoda", seed=2016)
        stateless = run_scenario(
            shrunk_double_crash(
                stateless_config=StatelessConfig(enabled=True)),
            lb="yoda", seed=2016)
        return stateful, stateless

    def test_stateful_survives_the_double_crash(self, outcomes):
        stateful, _ = outcomes
        assert stateful.ok, stateful.render()
        assert stateful.stateless is False

    def test_stateless_loses_established_flows(self, outcomes):
        """The ablation's demonstrandum: with no durable flow state, an
        instance crash strands mid-flight flows -- the run must FAIL, and
        specifically on the accepted-work invariants."""
        _, stateless = outcomes
        assert stateless.stateless is True
        assert not stateless.ok, (
            "stateless dispatch survived an instance crash -- either the "
            "mode silently kept durable state or the scenario lost its "
            "teeth:\n" + stateless.render()
        )
        failed = {v.invariant for v in stateless.verdicts if not v.ok}
        assert failed & {"flow-conservation", "no-accepted-request-dropped"}, (
            f"expected mid-flow loss, got failures in {failed or 'nothing'}"
        )

    def test_stateless_mode_wrote_no_durable_records(self, outcomes):
        """storage-before-ack is waived in stateless mode because there
        is genuinely nothing to audit -- zero checks, not relaxed ones."""
        _, stateless = outcomes
        by_name = {v.invariant: v for v in stateless.verdicts}
        assert by_name["storage-before-ack"].checked == 0
        assert by_name["replication-factor"].checked == 0


@pytest.fixture
def stateless_world():
    loop = EventLoop()
    net = Network(loop, SeededRng(11), default_latency=FixedLatency(0.0002))
    lb = L4LoadBalancer(loop, net, SeededRng(11), num_muxes=1,
                        stateless=StatelessConfig(enabled=True))
    instances = []
    for i in range(3):
        host = net.attach(Host(f"lb-{i}", [f"10.1.0.{i + 1}"]))
        host.got = []
        host.set_handler(lambda p, h=host: h.got.append(p))
        instances.append(host)
    client = net.attach(Host("cli", ["172.16.0.1"]))
    lb.register_vip(VIP)
    lb.update_mapping(VIP, [i.ip for i in instances], immediate=True)
    loop.run(until=0.1)
    return loop, net, lb, instances, client


def syn(client_port):
    return Packet(src=Endpoint("172.16.0.1", client_port),
                  dst=Endpoint(VIP, 80), flags=SYN, seq=1)


def ack(client_port):
    return Packet(src=Endpoint("172.16.0.1", client_port),
                  dst=Endpoint(VIP, 80), flags=ACK, seq=2)


class TestStatelessMux:
    def test_syn_dispatch_writes_no_flow_state(self, stateless_world):
        loop, net, lb, instances, client = stateless_world
        for port in range(40000, 40080):
            client.send(syn(port))
        loop.run(until=1.0)
        assert sum(len(i.got) for i in instances) == 80
        assert all(len(m.flow_table) == 0 for m in lb.muxes)

    def test_established_packets_follow_the_table(self, stateless_world):
        loop, net, lb, instances, client = stateless_world
        table = lb.compact_table(VIP)
        port = 40000
        expected = table.lookup(f"172.16.0.1:{port}>{VIP}:80")
        for _ in range(5):
            client.send(ack(port))
        loop.run(until=1.0)
        receiver = next(i for i in instances if i.got)
        assert receiver.ip == expected
        assert len(receiver.got) == 5
        assert all(len(m.flow_table) == 0 for m in lb.muxes)

    def test_drain_materializes_lazy_pin_to_previous_owner(self,
                                                           stateless_world):
        """The one case stateless mode pins: a flow whose table target
        moved off a still-draining instance keeps reaching that instance
        through a lazily-materialized pin."""
        loop, net, lb, instances, client = stateless_world
        old_table = lb.compact_table(VIP)
        draining = instances[2]
        survivors = [i.ip for i in instances[:2]]
        lb.update_mapping(VIP, survivors, draining_ips=[draining.ip],
                          immediate=True)
        loop.run(until=0.2)
        new_table = lb.compact_table(VIP)
        moved_port = next(
            port for port in range(40000, 41000)
            if old_table.lookup(f"172.16.0.1:{port}>{VIP}:80") == draining.ip
            and new_table.lookup(f"172.16.0.1:{port}>{VIP}:80") != draining.ip
        )
        client.send(ack(moved_port))
        loop.run(until=0.5)
        assert len(draining.got) == 1, (
            "established flow was torn off its draining owner"
        )
        flow_key = f"172.16.0.1:{moved_port}>{VIP}:80"
        assert any(flow_key in m.flow_table for m in lb.muxes)

    def test_stale_compact_snapshot_cannot_regress_a_mux(self,
                                                         stateless_world):
        """Version gate: the snapshot swap is all-or-nothing and ordered
        -- a delayed push carrying an older table must be dropped whole."""
        loop, net, lb, instances, client = stateless_world
        mux = lb.muxes[0]
        current = mux.vips[VIP]
        builder = CompactTableBuilder(num_buckets=8)
        builder.assign(0, 0)
        stale = builder.snapshot(version=current.version - 1,
                                 instances=("10.9.9.9",))
        mux.apply_mapping(VIP, ["10.9.9.9"], current.version - 1,
                          compact=stale)
        entry = mux.vips[VIP]
        assert entry.version == current.version
        assert entry.compact is current.compact
        assert entry.instances == current.instances

    def test_mapping_update_retires_table_to_prev_compact(self,
                                                          stateless_world):
        loop, net, lb, instances, client = stateless_world
        mux = lb.muxes[0]
        old = mux.vips[VIP].compact
        lb.update_mapping(VIP, [i.ip for i in instances[:2]], immediate=True)
        loop.run(until=0.2)
        entry = mux.vips[VIP]
        assert entry.compact is not old
        assert entry.prev_compact is old
        assert entry.compact.version == old.version + 1


class TestSnatExhaustionRelease:
    """Regression: a flow refused on SNAT exhaustion must release its mux
    pin immediately, not squat on the 5-tuple until the idle timeout."""

    def test_release_flow_pops_the_pin(self):
        loop = EventLoop()
        net = Network(loop, SeededRng(5), default_latency=FixedLatency(0.0002))
        lb = L4LoadBalancer(loop, net, SeededRng(5), num_muxes=3)
        host = net.attach(Host("lb-0", ["10.1.0.1"]))
        host.set_handler(lambda p: None)
        client = net.attach(Host("cli", ["172.16.0.1"]))
        lb.register_vip(VIP)
        lb.update_mapping(VIP, ["10.1.0.1"], immediate=True)
        loop.run(until=0.1)
        client.send(syn(40000))
        loop.run(until=0.2)
        flow_key = f"172.16.0.1:40000>{VIP}:80"
        assert any(flow_key in m.flow_table for m in lb.muxes)
        # the instance passes Endpoint-shaped strings (ip:port on both
        # sides), matching the mux's flow-key format
        assert lb.release_flow("172.16.0.1:40000", f"{VIP}:80") is True
        assert not any(flow_key in m.flow_table for m in lb.muxes)
        assert lb.release_flow("172.16.0.1:40000", f"{VIP}:80") is False

    def test_refused_flow_releases_pin_and_rsts_client(self):
        """Drive a real SYN through a testbed whose instances cannot
        allocate SNAT ports: the client must get an RST and the mux pin
        must be gone well before the 60 s idle timeout."""
        bed = Testbed(TestbedConfig(
            seed=7, lb="yoda", num_lb_instances=2, num_store_servers=2,
            num_backends=2, corpus="flat", flat_object_bytes=5_000,
        ))
        for inst in bed.yoda.instances:
            def refuse(vip, _inst=inst):
                raise SnatExhausted(vip, _inst.ip)
            inst._alloc_snat_port = refuse
        gen = bed.open_loop(rate=20.0, http_timeout=2.0)
        bed.run(1.0)
        gen.stop()
        bed.run(4.0)  # refusals + RSTs resolve; far below idle timeout
        refused = sum(
            inst.metrics.counters["snat_refused_flows"].value
            for inst in bed.yoda.instances
            if "snat_refused_flows" in inst.metrics.counters)
        assert refused > 0, "the exhaustion-refusal path never ran"
        lingering = [
            key for mux in bed.l4lb.muxes for key in mux.flow_table
            if ">100.0.0.1:" in key
        ]
        assert not lingering, (
            f"refused 5-tuples still pinned: {lingering[:4]} -- the "
            f"SnatExhausted teardown is not releasing mux entries"
        )
