"""SSL termination (paper Section 5.2): handshake, decryption-based
selection, and failure during certificate transfer."""

import pytest

from repro.errors import HttpError
from repro.experiments.harness import Testbed, TestbedConfig
from repro.http import tls
from repro.http.client import HttpsFetcher
from repro.http.message import HttpRequest
from repro.net.addresses import Endpoint

CERT = tls.Certificate("secure.example", size=3_000)


def make_bed(**overrides):
    defaults = dict(
        seed=55, lb="yoda", num_lb_instances=3, num_store_servers=2,
        num_backends=2, corpus="flat", flat_object_count=2,
        flat_object_bytes=40_000, client_jitter=0.0, tls_certificate=CERT,
    )
    defaults.update(overrides)
    return Testbed(TestbedConfig(**defaults))


def https_fetch(bed, path="/obj/0.bin", deadline=60.0, on_start=None):
    results = []
    fetcher = HttpsFetcher(
        bed.client_stacks[0], bed.loop, bed.target(),
        HttpRequest("GET", path, host="secure.example"),
        results.append, sni="secure.example",
    )
    fetcher.start()
    if on_start:
        on_start(fetcher)
    bed.run(deadline)
    assert results, "https fetch never concluded"
    return results[0]


class TestTlsCodec:
    def test_record_roundtrip(self):
        codec = tls.TlsCodec()
        wire = tls.client_hello("h") + tls.app_data(b"payload")
        records = codec.feed(wire)
        assert [r[0] for r in records] == [tls.CLIENT_HELLO, tls.APP_DATA]
        assert records[1][1] == b"payload"

    def test_byte_by_byte(self):
        codec = tls.TlsCodec()
        wire = tls.certificate_flight(CERT)
        records = []
        for i in range(len(wire)):
            records.extend(codec.feed(wire[i:i + 1]))
        assert len(records) == 1
        assert records[0][1] == CERT.pem

    def test_bad_record_type_raises(self):
        with pytest.raises(HttpError):
            tls.TlsCodec().feed(b"\xff\x00\x00\x00\x01\x00z")

    def test_certificate_deterministic(self):
        assert tls.certificate_flight(CERT) == tls.certificate_flight(
            tls.Certificate("secure.example", size=3_000)
        )
        other = tls.Certificate("other.example", size=3_000)
        assert tls.certificate_flight(CERT) != tls.certificate_flight(other)

    def test_certificate_size(self):
        assert abs(len(CERT.pem) - 3_000) < 50


class TestHttpsThroughYoda:
    def test_basic_https_fetch(self):
        bed = make_bed()
        result = https_fetch(bed)
        assert result.ok
        assert len(result.response.body) == 40_000

    def test_rule_matching_on_decrypted_header(self):
        """The instance must see the plaintext header to select a backend
        (the whole point of SSL termination)."""
        from repro.core.policy import weighted_split

        bed = make_bed()
        controller = bed.yoda.controller
        new = controller.policies[bed.vip].updated(rules=[
            weighted_split("zero", "*obj/0.bin", {"srv-0": 1.0}, priority=2),
            weighted_split("rest", "*", {"srv-1": 1.0}, priority=1),
        ])
        controller.update_policy(new)
        bed.run(0.5)
        r0 = https_fetch(bed, "/obj/0.bin")
        r1 = https_fetch(bed, "/obj/1.bin")
        assert r0.response.headers.get("X-Backend") == "srv-0"
        assert r1.response.headers.get("X-Backend") == "srv-1"

    def test_client_receives_certificate_exactly_once(self):
        bed = make_bed(trace_packets=True)
        result = https_fetch(bed)
        assert result.ok
        # backend's duplicate handshake flight was suppressed: the client
        # got cert-length + response bytes, not 2x cert
        rx_bytes = sum(
            r.payload_len for r in bed.trace.filter(point="client-0",
                                                    direction="rx")
        )
        flight = len(tls.certificate_flight(CERT))
        response_records = len(tls.app_data(b"")) + 40_000 + 200  # + headers
        assert rx_bytes < flight * 2 + response_records


class TestTlsFailover:
    def _fail_mid_cert(self, bed):
        state = {}

        def poll():
            for inst in bed.yoda.instances:
                for flow in inst.flows.values():
                    if (flow.tls_hello_done and flow.resp_out
                            and flow.resp_acked < len(flow.resp_out)):
                        state["t"] = bed.loop.now()
                        inst.fail()
                        return
            if bed.loop.now() < 1.4:
                bed.loop.call_later(0.001, poll)

        bed.loop.call_at(1.05, poll)
        return state

    def test_failure_during_certificate_transfer(self):
        """Paper: 'another YODA instance resends the entire certificate
        (TCP buffer at the client will remove duplicate packets)'."""
        bed = make_bed()
        state = self._fail_mid_cert(bed)
        result = https_fetch(bed)
        assert state, "never caught the mid-certificate window"
        assert result.ok
        assert result.retries_used == 0
        recoveries = sum(
            i.metrics.counters["flows_recovered"].value
            for i in bed.yoda.instances
            if "flows_recovered" in i.metrics.counters
        )
        assert recoveries >= 1

    def test_failure_mid_tunnel_on_tls_flow(self):
        bed = make_bed(flat_object_bytes=1_200_000)
        state = {}

        def poll():
            for inst in bed.yoda.instances:
                if any(f.phase.value == "tunnel" for f in inst.flows.values()):
                    state["t"] = bed.loop.now()
                    inst.fail()
                    return
            if bed.loop.now() < 2.0:
                bed.loop.call_later(0.002, poll)

        bed.loop.call_at(1.12, poll)
        result = https_fetch(bed, deadline=120.0)
        assert state, "never caught the tunnel window"
        assert result.ok
        assert len(result.response.body) == 1_200_000

    def test_client_prefix_persisted_before_certificate(self):
        """store-before-ACK extends to TLS: the hello bytes are persisted
        before the first certificate byte (which ACKs them) leaves."""
        bed = make_bed(trace_packets=True)
        result = https_fetch(bed)
        assert result.ok
        cert_first = next(
            r for r in bed.trace.records
            if r.src.startswith("100.0.0.1:80") and r.payload_len > 0
        )
        store_writes = [
            r for r in bed.trace.records
            if r.dst.endswith(":11211") and r.time <= cert_first.time
        ]
        # SYN storage-a plus the hello-prefix update
        assert len(store_writes) >= 2
