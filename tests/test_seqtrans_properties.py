"""Property-based tests of YODA's sequence-number translation.

The entire tunneling phase rests on one constant-offset rewrite (paper
Figure 4).  These properties pin it down against the real implementation:

- relative stream positions are preserved exactly in both directions;
- client->server ACK translation inverts server->client seq translation;
- everything holds across 32-bit wraparound and HTTP/1.1 offsets.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flowstate import FlowPhase, FlowState, yoda_isn
from repro.core.instance import YodaInstance, _LocalFlow
from repro.core.tcpstore import TcpStore
from repro.kvstore.client import MemcachedCluster, ReplicatingKvClient
from repro.kvstore.memcached import MemcachedServer
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.network import Network
from repro.net.packet import ACK, Packet
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.tcp.segment import SEQ_MOD, seq_add, seq_diff

CLIENT = Endpoint("172.16.0.1", 40000)
VIP = Endpoint("100.0.0.1", 80)
SERVER = Endpoint("10.3.0.1", 80)


@pytest.fixture(scope="module")
def instance():
    loop = EventLoop()
    rng = SeededRng(1)
    network = Network(loop, rng)
    store_host = network.attach(Host("mc", ["10.2.0.1"]))
    cluster = MemcachedCluster([MemcachedServer(store_host, loop)])
    host = network.attach(Host("yoda", ["10.1.0.1"]))
    kv = ReplicatingKvClient(host, loop, cluster, replicas=1)
    return YodaInstance(host, loop, rng, TcpStore(kv))


def make_flow(instance, client_isn, server_isn, response_offset=0,
              request_offset=0, snat_port=2000):
    state = FlowState(
        client=CLIENT, vip=VIP, client_isn=client_isn,
        phase=FlowPhase.TUNNEL.value, server=SERVER,
        server_isn=server_isn, snat_port=snat_port,
        request_offset=request_offset, response_offset=response_offset,
    )
    return _LocalFlow(state, 0.0)


seqs = st.integers(0, SEQ_MOD - 1)
offsets = st.integers(0, 10_000_000)
lengths = st.integers(0, 1460)


@settings(max_examples=200, deadline=None)
@given(c=seqs, s=seqs, k=offsets, length=lengths)
def test_server_to_client_preserves_relative_position(instance, c, s, k, length):
    """Server response byte k must land at client stream position k."""
    flow = make_flow(instance, client_isn=c, server_isn=s)
    pkt = Packet(src=Endpoint(SERVER.ip, 80), dst=Endpoint(VIP.ip, 2000),
                 flags=ACK, seq=seq_add(s, 1 + k), ack=seq_add(c, 1),
                 payload=b"x" * length)
    out = instance._translate_to_client(flow, pkt)
    C = yoda_isn(CLIENT, VIP)
    assert seq_diff(out.seq, seq_add(C, 1)) == k
    assert out.src == VIP
    assert out.dst == CLIENT
    assert out.payload == pkt.payload
    # the server's ack of client bytes passes through untouched (ISN reuse)
    assert out.ack == pkt.ack


@settings(max_examples=200, deadline=None)
@given(c=seqs, s=seqs, k=offsets)
def test_client_ack_translation_inverts_seq_translation(instance, c, s, k):
    """If the client ACKs the translated byte k+1, the backend must see an
    ACK for its own byte k+1."""
    flow = make_flow(instance, client_isn=c, server_isn=s)
    C = yoda_isn(CLIENT, VIP)
    client_ack = seq_add(C, 1 + k)
    pkt = Packet(src=CLIENT, dst=VIP, flags=ACK, seq=seq_add(c, 1),
                 ack=client_ack)
    out = instance._translate_to_server(flow, pkt)
    assert seq_diff(out.ack, seq_add(s, 1)) == k
    assert out.dst == SERVER
    assert out.src.ip == VIP.ip
    assert out.src.port == flow.state.snat_port
    # client sequence numbers pass through untouched (ISN reuse)
    assert out.seq == pkt.seq


@settings(max_examples=200, deadline=None)
@given(c=seqs, s=seqs, k=offsets, resp_off=st.integers(0, 1_000_000))
def test_response_offset_shifts_translation(instance, c, s, k, resp_off):
    """After an HTTP/1.1 backend switch, server-2's byte k lands at client
    position resp_off + k (past everything earlier backends delivered)."""
    flow = make_flow(instance, client_isn=c, server_isn=s,
                     response_offset=resp_off)
    pkt = Packet(src=Endpoint(SERVER.ip, 80), dst=Endpoint(VIP.ip, 2000),
                 flags=ACK, seq=seq_add(s, 1 + k), ack=0)
    out = instance._translate_to_client(flow, pkt)
    C = yoda_isn(CLIENT, VIP)
    assert seq_diff(out.seq, seq_add(C, 1)) == resp_off + k


@settings(max_examples=100, deadline=None)
@given(c=seqs, s=seqs, k=st.integers(0, 100_000))
def test_roundtrip_is_identity_in_server_space(instance, c, s, k):
    """seq -> client-space -> (as an ack) -> server-space is the identity."""
    flow = make_flow(instance, client_isn=c, server_isn=s)
    server_seq = seq_add(s, 1 + k)
    data = Packet(src=Endpoint(SERVER.ip, 80), dst=Endpoint(VIP.ip, 2000),
                  flags=ACK, seq=server_seq, ack=0, payload=b"z")
    to_client = instance._translate_to_client(flow, data)
    client_ack = seq_add(to_client.seq, 1)  # client acks that byte
    ack_pkt = Packet(src=CLIENT, dst=VIP, flags=ACK, seq=0, ack=client_ack)
    back = instance._translate_to_server(flow, ack_pkt)
    assert back.ack == seq_add(server_seq, 1)
