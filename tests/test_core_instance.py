"""YODA instance integration: the paper's mechanisms at packet level.

Everything here runs against a real wired deployment (L4 LB + instances +
TCPStore + backends) built by the experiment harness.
"""

import pytest

from repro.core.flowstate import yoda_isn
from repro.experiments.harness import Testbed, TestbedConfig
from repro.http.client import BrowserClient
from repro.net.addresses import Endpoint
from repro.sim.tracing import PacketTrace


def make_bed(**overrides) -> Testbed:
    defaults = dict(
        seed=99, lb="yoda", num_lb_instances=4, num_store_servers=3,
        num_backends=3, corpus="flat", flat_object_count=3,
        flat_object_bytes=30_000, client_jitter=0.0, trace_packets=True,
    )
    defaults.update(overrides)
    return Testbed(TestbedConfig(**defaults))


def fetch(bed, path="/obj/0.bin", timeout=30.0, retries=0, deadline=120.0):
    results = []
    browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target(),
                            http_timeout=timeout, retries=retries)
    browser.fetch(path, results.append)
    bed.run(deadline)
    assert results, "fetch never concluded"
    return results[0]


def serving_instance(bed):
    for inst in bed.yoda.instances:
        if inst.flows:
            return inst
    return None


class TestBasicOperation:
    def test_end_to_end_fetch_through_vip(self):
        bed = make_bed()
        result = fetch(bed)
        assert result.ok
        assert len(result.response.body) == 30_000

    def test_client_only_ever_talks_to_vip(self):
        bed = make_bed()
        fetch(bed)
        for rec in bed.trace.filter(point="client-0", direction="rx"):
            assert rec.src.startswith("100.0.0.1:80"), rec

    def test_server_only_ever_talks_to_vip(self):
        bed = make_bed()
        fetch(bed)
        for rec in bed.trace.filter(point="srv-0", direction="rx"):
            assert rec.src.startswith("100.0.0.1:"), rec

    def test_synack_isn_is_the_hash(self):
        bed = make_bed()
        fetch(bed)
        synacks = [r for r in bed.trace.filter(point="client-0", direction="rx")
                   if r.flags == "S."]
        assert synacks
        client_ep = Endpoint.parse(synacks[0].dst)
        vip_ep = Endpoint("100.0.0.1", 80)
        assert synacks[0].seq == yoda_isn(client_ep, vip_ep)

    def test_server_syn_reuses_client_isn(self):
        """The paper's trick: client->server bytes need no seq rewriting."""
        bed = make_bed()
        fetch(bed)
        client_syns = [r for r in bed.trace.records
                       if r.flags == "S" and r.dst.startswith("100.0.0.1:80")]
        server_syns = [r for r in bed.trace.records
                       if r.flags == "S" and r.dst.startswith("10.3.")]
        assert client_syns and server_syns
        assert server_syns[0].seq == client_syns[0].seq

    def test_flow_state_cleaned_up_after_completion(self):
        bed = make_bed()
        fetch(bed)
        bed.run(40.0)  # linger + gc
        for inst in bed.yoda.instances:
            assert not inst.flows
        live_keys = sum(len(s) for s in bed.yoda.store_servers)
        assert live_keys == 0

    def test_storage_before_synack_ordering(self):
        """storage-a completes before the SYN-ACK leaves (Figure 3)."""
        bed = make_bed()
        fetch(bed)
        synack = next(r for r in bed.trace.records if r.flags == "S."
                      and r.src.startswith("100.0.0.1"))
        stores = [r for r in bed.trace.records
                  if r.dst.endswith(":11211") and r.time <= synack.time]
        assert stores, "no TCPStore write before the SYN-ACK"

    def test_traffic_accounting_per_vip(self):
        bed = make_bed()
        fetch(bed)
        bed.run(1.0)  # let the monitor collect instance counters
        assert bed.yoda.controller.traffic_stats.get("100.0.0.1", 0) > 0


class TestFailureRecovery:
    @pytest.mark.parametrize("fail_after", [0.05, 0.2, 0.5])
    def test_flow_survives_instance_failure(self, fail_after):
        bed = make_bed(flat_object_bytes=1_500_000)
        results = []
        browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target())
        browser.fetch("/obj/0.bin", results.append)
        bed.loop.call_later(fail_after, lambda: (
            serving_instance(bed).fail() if serving_instance(bed) else None
        ))
        bed.run(120.0)
        assert results and results[0].ok, "flow broke across instance failure"

    def test_recovery_uses_tcpstore(self):
        bed = make_bed(flat_object_bytes=1_500_000)
        results = []
        browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target())
        browser.fetch("/obj/0.bin", results.append)
        bed.loop.call_later(0.4, lambda: serving_instance(bed).fail())
        bed.run(120.0)
        recoveries = sum(
            inst.metrics.counters["flows_recovered"].value
            for inst in bed.yoda.instances
            if "flows_recovered" in inst.metrics.counters
        )
        assert recoveries >= 1
        assert results[0].ok

    def test_client_never_resends_http_request_on_failure(self):
        bed = make_bed(flat_object_bytes=1_500_000)
        results = []
        browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target())
        browser.fetch("/obj/0.bin", results.append)
        bed.loop.call_later(0.4, lambda: serving_instance(bed).fail())
        bed.run(120.0)
        assert results[0].ok
        assert results[0].retries_used == 0

    def test_failure_before_synack_client_syn_retry_starts_fresh(self):
        bed = make_bed()
        # fail every instance before the client connects, then recover
        # them all except one: the retransmitted SYN lands on a live one
        for inst in bed.yoda.instances:
            inst.fail()
        results = []
        browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target())
        browser.fetch("/obj/0.bin", results.append)

        def recover_all():
            for inst in bed.yoda.instances:
                inst.recover()

        bed.loop.call_later(1.0, recover_all)
        bed.run(60.0)
        assert results and results[0].ok

    def test_two_simultaneous_failures(self):
        bed = make_bed(num_lb_instances=6, flat_object_bytes=1_500_000)
        results = []
        browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target())
        browser.fetch("/obj/0.bin", results.append)

        def fail_two():
            victims = [i for i in bed.yoda.instances][:2]
            serving = serving_instance(bed)
            if serving is not None and serving not in victims:
                victims[0] = serving
            for v in victims:
                v.fail()

        bed.loop.call_later(0.4, fail_two)
        bed.run(120.0)
        assert results and results[0].ok

    def test_recovered_instance_translation_is_seamless(self):
        """After recovery the client sees perfectly contiguous bytes."""
        bed = make_bed(flat_object_bytes=800_000)
        results = []
        browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target())
        browser.fetch("/obj/0.bin", results.append)
        bed.loop.call_later(0.3, lambda: serving_instance(bed).fail())
        bed.run(120.0)
        assert results[0].ok
        assert len(results[0].response.body) == 800_000


class TestElasticity:
    def test_graceful_instance_removal_keeps_flows(self):
        bed = make_bed(flat_object_bytes=1_500_000)
        results = []
        browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target())
        browser.fetch("/obj/0.bin", results.append)

        def drain_serving():
            inst = serving_instance(bed)
            if inst is not None:
                bed.yoda.controller.remove_instance(inst.name)

        bed.loop.call_later(0.4, drain_serving)
        bed.run(120.0)
        assert results and results[0].ok

    def test_added_instance_receives_new_flows(self):
        bed = make_bed(num_lb_instances=1)
        spare = bed.yoda.new_spare_instance()
        bed.yoda.controller.add_instance(spare)
        bed.run(1.0)
        for port_offset in range(30):
            fetch(bed, deadline=3.0)
        got = spare.metrics.counters.get("flows_opened")
        assert got is not None and got.value > 0


class TestPolicyBehaviour:
    def test_policy_update_does_not_break_inflight_flow(self):
        bed = make_bed(flat_object_bytes=1_500_000)
        results = []
        browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target())
        browser.fetch("/obj/0.bin", results.append)

        def flip_policy():
            from repro.core.policy import weighted_split

            controller = bed.yoda.controller
            new = controller.policies[bed.vip].updated(
                rules=[weighted_split("only-2", "*", {"srv-2": 1.0})]
            )
            controller.update_policy(new)

        bed.loop.call_later(0.3, flip_policy)
        bed.run(120.0)
        assert results and results[0].ok

    def test_new_flows_follow_new_policy(self):
        bed = make_bed()
        from repro.core.policy import weighted_split

        controller = bed.yoda.controller
        new = controller.policies[bed.vip].updated(
            rules=[weighted_split("only-1", "*", {"srv-1": 1.0})]
        )
        controller.update_policy(new)
        bed.run(0.5)
        before = bed.backends["srv-1"].requests_served
        fetch(bed, deadline=5.0)
        fetch(bed, path="/obj/1.bin", deadline=5.0)
        assert bed.backends["srv-1"].requests_served == before + 2

    def test_backend_failure_detected_and_avoided(self):
        bed = make_bed()
        bed.backends["srv-0"].fail()
        bed.run(1.5)  # monitor detects within 600 ms
        for _ in range(8):
            result = fetch(bed, deadline=8.0)
            assert result.ok
            assert result.response.headers.get("X-Backend") != "srv-0"
