"""Latency models."""

import pytest

from repro.net.addresses import Endpoint
from repro.net.links import (
    BandwidthLatency, FixedLatency, JitterLatency, LognormalLatency,
)
from repro.net.packet import Packet
from repro.sim.random import SeededRng


PKT = Packet(src=Endpoint("1.1.1.1", 1), dst=Endpoint("2.2.2.2", 2),
             payload=b"x" * 960)  # wire_len = 1000


@pytest.fixture
def rng():
    return SeededRng(8)


class TestFixedLatency:
    def test_constant(self, rng):
        model = FixedLatency(0.005)
        assert model.delay(PKT, rng) == 0.005
        assert model.delay(PKT, rng) == 0.005

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-0.001)


class TestJitterLatency:
    def test_within_bounds(self, rng):
        model = JitterLatency(base=0.010, jitter=0.004)
        for _ in range(200):
            d = model.delay(PKT, rng)
            assert 0.010 <= d <= 0.014

    def test_varies(self, rng):
        model = JitterLatency(base=0.010, jitter=0.004)
        values = {model.delay(PKT, rng) for _ in range(20)}
        assert len(values) > 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            JitterLatency(-1, 0)
        with pytest.raises(ValueError):
            JitterLatency(0, -1)


class TestLognormalLatency:
    def test_always_above_base(self, rng):
        model = LognormalLatency(base=0.02, mu=-5.0, sigma=0.5)
        for _ in range(100):
            assert model.delay(PKT, rng) > 0.02

    def test_cap_bounds_the_tail(self, rng):
        model = LognormalLatency(base=0.0, mu=0.0, sigma=2.0, cap=0.05)
        for _ in range(200):
            assert model.delay(PKT, rng) <= 0.05

    def test_rejects_negative_base(self):
        with pytest.raises(ValueError):
            LognormalLatency(base=-1, mu=0, sigma=1)


class TestBandwidthLatency:
    def test_serialization_scales_with_size(self, rng):
        model = BandwidthLatency(base=0.001, bytes_per_second=1_000_000)
        d = model.delay(PKT, rng)
        assert d == pytest.approx(0.001 + 1000 / 1_000_000)
        small = Packet(src=PKT.src, dst=PKT.dst)
        assert model.delay(small, rng) < d

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            BandwidthLatency(0.0, 0.0)
