"""HTTP/1.1 keep-alive and mid-connection backend switching (Section 5.2)."""

import pytest

from repro.core.policy import weighted_split
from repro.experiments.harness import Testbed, TestbedConfig
from repro.http.message import HttpRequest
from repro.http.parser import HttpParser
from repro.net.addresses import Endpoint
from repro.tcp.endpoint import ConnectionHandler


def make_bed(**overrides):
    defaults = dict(
        seed=31, lb="yoda", num_lb_instances=2, num_store_servers=2,
        num_backends=3, corpus="flat", flat_object_count=3,
        flat_object_bytes=15_000, client_jitter=0.0,
    )
    defaults.update(overrides)
    bed = Testbed(TestbedConfig(**defaults))
    return bed


def content_switching_policy(bed):
    """obj/0 -> srv-0; everything else -> srv-1."""
    ctrl = bed.yoda.controller
    new = ctrl.policies[bed.vip].updated(rules=[
        weighted_split("bin0", "*obj/0.bin", {"srv-0": 1.0}, priority=2),
        weighted_split("rest", "*", {"srv-1": 1.0}, priority=1),
    ])
    ctrl.update_policy(new)
    bed.run(0.5)


class _KeepAliveClient(ConnectionHandler):
    """Sends ``paths`` sequentially over one connection."""

    def __init__(self, paths):
        self.paths = list(paths)
        self.parser = HttpParser("response")
        self.responses = []
        self.errors = []

    def on_connected(self, conn):
        conn.send(HttpRequest("GET", self.paths[0], host="h").serialize())

    def on_data(self, conn, data):
        for item in self.parser.feed(data):
            self.responses.append(item.message)
            if len(self.responses) < len(self.paths):
                conn.send(HttpRequest(
                    "GET", self.paths[len(self.responses)], host="h"
                ).serialize())
            else:
                conn.close()

    def on_error(self, conn, reason):
        self.errors.append(reason)


def run_keepalive(bed, paths, deadline=60.0):
    client = _KeepAliveClient(paths)
    bed.client_stacks[0].connect(Endpoint(bed.vip, 80), client)
    bed.run(deadline)
    return client


def switches(bed):
    return sum(i.metrics.counters.get("backend_switches").value
               for i in bed.yoda.instances
               if "backend_switches" in i.metrics.counters)


class TestKeepAliveSameBackend:
    def test_two_requests_one_connection_no_switch(self):
        bed = make_bed()
        ctrl = bed.yoda.controller
        new = ctrl.policies[bed.vip].updated(rules=[
            weighted_split("all", "*", {"srv-2": 1.0}),
        ])
        ctrl.update_policy(new)
        bed.run(0.5)
        client = run_keepalive(bed, ["/obj/0.bin", "/obj/1.bin"])
        assert not client.errors
        assert len(client.responses) == 2
        assert all(r.headers.get("X-Backend") == "srv-2"
                   for r in client.responses)
        assert switches(bed) == 0

    def test_three_requests_pipeline_order_preserved(self):
        bed = make_bed()
        ctrl = bed.yoda.controller
        new = ctrl.policies[bed.vip].updated(rules=[
            weighted_split("all", "*", {"srv-0": 1.0}),
        ])
        ctrl.update_policy(new)
        bed.run(0.5)
        client = run_keepalive(bed, ["/obj/0.bin", "/obj/1.bin", "/obj/2.bin"])
        assert len(client.responses) == 3
        assert all(len(r.body) == 15_000 for r in client.responses)


class TestBackendSwitching:
    def test_switch_to_different_backend(self):
        bed = make_bed()
        content_switching_policy(bed)
        client = run_keepalive(bed, ["/obj/0.bin", "/obj/1.bin"])
        assert not client.errors
        assert [r.headers.get("X-Backend") for r in client.responses] == \
            ["srv-0", "srv-1"]
        assert switches(bed) == 1

    def test_bodies_intact_across_switch(self):
        """Sequence translation with accumulated offsets delivers every
        byte of both responses, from two different TCP peers."""
        bed = make_bed()
        content_switching_policy(bed)
        client = run_keepalive(bed, ["/obj/0.bin", "/obj/1.bin"])
        assert [len(r.body) for r in client.responses] == [15_000, 15_000]
        assert all(r.status == 200 for r in client.responses)

    def test_switch_back_and_forth(self):
        bed = make_bed()
        content_switching_policy(bed)
        client = run_keepalive(
            bed, ["/obj/0.bin", "/obj/1.bin", "/obj/0.bin"], deadline=90.0,
        )
        assert not client.errors
        assert [r.headers.get("X-Backend") for r in client.responses] == \
            ["srv-0", "srv-1", "srv-0"]
        assert switches(bed) == 2

    def test_old_backend_connection_is_reset(self):
        bed = make_bed(trace_packets=True)
        content_switching_policy(bed)
        run_keepalive(bed, ["/obj/0.bin", "/obj/1.bin"])
        # the retired srv-0 connection received a RST from the VIP
        rsts = [r for r in bed.trace.filter(point="srv-0", direction="rx")
                if "R" in r.flags]
        assert rsts, "old backend connection was not torn down"

    def test_flow_state_updated_in_tcpstore_after_switch(self):
        bed = make_bed()
        content_switching_policy(bed)
        run_keepalive(bed, ["/obj/0.bin", "/obj/1.bin"])
        # mid-stream (before linger cleanup) the stored state names srv-1
        from repro.core.flowstate import FlowState

        states = []
        for server in bed.yoda.store_servers:
            for key in list(server._store):
                if key.startswith("yoda:c:"):
                    states.append(FlowState.from_bytes(server.peek(key)))
        if states:  # flow may already be cleaned up; both are acceptable
            assert any(s.server and s.server.ip == "10.3.0.2"
                       for s in states)
