"""PacketPool ownership transfer: detach/adopt round-trips and misuse.

A packet crossing a shard boundary is serialized by ``detach()`` (the
sending pool gives up ownership; the object is fenced) and rebuilt by
``adopt()`` on the receiving pool.  Every way of violating the transfer
protocol -- double release, double detach, detaching a freed packet,
releasing after detach, mutating a detached packet before the barrier
reclaims it, feeding garbage to adopt -- must raise ``ShardError``
loudly rather than corrupt state silently.
"""

from __future__ import annotations

import pytest

from repro.errors import ShardError
from repro.net.addresses import Endpoint
from repro.net.packet import ACK, SYN, PacketPool, WIRE_VERSION


def _mk(pool, **kw):
    return pool.acquire(Endpoint("10.0.0.1", 1234), Endpoint("10.0.1.1", 80),
                        **kw)


class TestDetachAdoptRoundTrip:
    def test_wire_fields_survive(self):
        a, b = PacketPool(), PacketPool()
        pkt = _mk(a, flags=SYN | ACK, seq=7, ack=41, payload=b"hello")
        pkt.meta["route"] = "vip"
        pkt.meta["hops"] = 3
        wire = a.detach(pkt)
        assert wire[0] == WIRE_VERSION
        clone = b.adopt(wire)
        assert clone.src == Endpoint("10.0.0.1", 1234)
        assert clone.dst == Endpoint("10.0.1.1", 80)
        assert clone.flags == SYN | ACK
        assert (clone.seq, clone.ack, clone.payload) == (7, 41, b"hello")
        assert clone.meta["route"] == "vip"
        assert clone.meta["hops"] == 3
        b.release(clone)

    def test_wire_is_plain_data(self):
        """Nothing object-shaped crosses the pipe: the wire tuple must
        survive a pickle round-trip without custom reducers."""
        import pickle

        pool = PacketPool()
        pkt = _mk(pool, payload=b"x", flags=SYN)
        pkt.meta["tags"] = ("a", "b")
        wire = pool.detach(pkt)
        assert pickle.loads(pickle.dumps(wire)) == wire

    def test_adopted_packet_is_a_fresh_object(self):
        a, b = PacketPool(), PacketPool()
        pkt = _mk(a, payload=b"zz")
        wire = a.detach(pkt)
        clone = b.adopt(wire)
        assert clone is not pkt
        assert clone.packet_id != pkt.packet_id or a is not b
        b.release(clone)

    def test_reclaim_returns_count_and_frees(self):
        pool = PacketPool()
        pkts = [_mk(pool) for _ in range(3)]
        for p in pkts:
            pool.detach(p)
        assert pool.detached_count() == 3
        assert pool.reclaim_detached() == 3
        assert pool.detached_count() == 0
        # freed objects are recyclable again
        again = _mk(pool)
        pool.release(again)

    def test_counters(self):
        a, b = PacketPool(), PacketPool()
        wire = a.detach(_mk(a))
        b.adopt(wire)
        assert a.detached == 1
        assert b.adopted == 1


class TestTransferMisuse:
    def test_double_detach_raises(self):
        pool = PacketPool()
        pkt = _mk(pool)
        pool.detach(pkt)
        with pytest.raises(ShardError, match="detached twice"):
            pool.detach(pkt)

    def test_detach_after_release_raises(self):
        pool = PacketPool()
        pkt = _mk(pool)
        pool.release(pkt)
        with pytest.raises(ShardError, match="released packet"):
            pool.detach(pkt)

    def test_release_after_detach_raises(self):
        pool = PacketPool()
        pkt = _mk(pool)
        pool.detach(pkt)
        with pytest.raises(ShardError, match="after detach"):
            pool.release(pkt)

    def test_mutate_after_detach_caught_at_reclaim(self):
        pool = PacketPool()
        pkt = _mk(pool, payload=b"original")
        pool.detach(pkt)
        pkt.payload = b"tampered"  # the sender no longer owns this object
        with pytest.raises(ShardError, match="mutated"):
            pool.reclaim_detached()

    def test_adopt_rejects_bad_version(self):
        pool = PacketPool()
        with pytest.raises(ShardError, match="wire format"):
            pool.adopt((WIRE_VERSION + 1, "10.0.0.1", 1, "10.0.0.2", 2,
                        0, 0, 0, b"", ()))

    def test_adopt_rejects_garbage(self):
        pool = PacketPool()
        for junk in (None, (), "packet", 42):
            with pytest.raises(ShardError, match="wire format"):
                pool.adopt(junk)

    def test_detach_rejects_unserializable_meta(self):
        pool = PacketPool()
        pkt = _mk(pool)
        pkt.meta["handler"] = lambda: None  # a live object must not cross
        with pytest.raises(ShardError, match="handler"):
            pool.detach(pkt)
