"""Backend HTTP server + browser client end-to-end over simulated TCP."""

import pytest

from repro.http.client import BrowserClient, HttpFetcher
from repro.http.message import HttpRequest
from repro.http.server import BackendHttpServer, ServiceTimeModel, StaticSite
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.tcp.endpoint import TcpStack


@pytest.fixture
def world():
    loop = EventLoop()
    net = Network(loop, SeededRng(3), default_latency=FixedLatency(0.001))
    server_host = net.attach(Host("srv", ["10.0.0.2"]))
    client_host = net.attach(Host("cli", ["10.0.0.1"]))
    site = StaticSite({
        "/index.html": b"<html>hi</html>",
        "/big.bin": 100_000,
        "/a.jpg": 5_000,
    })
    server = BackendHttpServer(server_host, loop, site,
                               service_model=ServiceTimeModel(base=0.002))
    stack = TcpStack(client_host, loop)
    return loop, server, stack


def fetch(loop, stack, path, **kwargs):
    results = []
    browser = BrowserClient(stack, loop, Endpoint("10.0.0.2", 80), **kwargs)
    browser.fetch(path, results.append)
    loop.run(until=loop.now() + 120)
    assert results, "fetch did not complete"
    return results[0]


class TestServer:
    def test_serves_literal_content(self, world):
        loop, server, stack = world
        result = fetch(loop, stack, "/index.html")
        assert result.ok
        assert result.response.body == b"<html>hi</html>"

    def test_serves_synthesized_content_of_exact_size(self, world):
        loop, server, stack = world
        result = fetch(loop, stack, "/big.bin")
        assert result.ok and len(result.response.body) == 100_000

    def test_404_for_unknown_path(self, world):
        loop, server, stack = world
        result = fetch(loop, stack, "/nope")
        assert not result.ok
        assert result.status == 404

    def test_response_carries_backend_header(self, world):
        loop, server, stack = world
        result = fetch(loop, stack, "/a.jpg")
        assert result.response.headers.get("X-Backend") == "srv"

    def test_service_time_delays_response(self, world):
        loop, server, stack = world
        server.service_model = ServiceTimeModel(base=0.5)
        result = fetch(loop, stack, "/a.jpg")
        assert result.latency > 0.5

    def test_request_counters(self, world):
        loop, server, stack = world
        fetch(loop, stack, "/a.jpg")
        fetch(loop, stack, "/index.html")
        assert server.requests_served == 2
        assert server.bytes_served > 5_000

    def test_http11_keep_alive_two_requests_one_connection(self, world):
        loop, server, stack = world
        got = []

        class KeepAlive(HttpFetcher.__mro__[1]):  # ConnectionHandler
            def __init__(self):
                from repro.http.parser import HttpParser

                self.parser = HttpParser("response")

            def on_connected(self, conn):
                conn.send(HttpRequest("GET", "/a.jpg", host="h").serialize())
                conn.send(HttpRequest("GET", "/index.html", host="h").serialize())

            def on_data(self, conn, data):
                for item in self.parser.feed(data):
                    got.append(item.message)
                if len(got) == 2:
                    conn.close()

        stack.connect(Endpoint("10.0.0.2", 80), KeepAlive())
        loop.run(until=30)
        assert len(got) == 2
        # order preserved: first response is for /a.jpg (5 KB), second HTML
        assert len(got[0].body) == 5_000
        assert got[1].body == b"<html>hi</html>"


class TestClient:
    def test_page_load_fetches_all_objects(self, world):
        loop, server, stack = world
        browser = BrowserClient(stack, loop, Endpoint("10.0.0.2", 80))
        pages = []
        browser.load_page("/index.html", ["/a.jpg", "/big.bin"], pages.append)
        loop.run(until=120)
        assert pages and not pages[0].broken
        assert len(pages[0].object_results) == 3

    def test_page_broken_flag_on_missing_object(self, world):
        loop, server, stack = world
        browser = BrowserClient(stack, loop, Endpoint("10.0.0.2", 80))
        pages = []
        browser.load_page("/index.html", ["/missing.gif"], pages.append)
        loop.run(until=120)
        assert pages[0].broken

    def test_timeout_when_server_dead(self, world):
        loop, server, stack = world
        server.fail()
        result = fetch(loop, stack, "/a.jpg", http_timeout=5.0)
        assert not result.ok
        assert result.error in ("timeout", "tcp-timeout")
        assert result.latency == pytest.approx(5.0, abs=0.5)

    def test_retry_uses_fresh_connection_and_succeeds(self, world):
        loop, server, stack = world
        server.fail()
        loop.call_later(3.0, server.recover)
        result = fetch(loop, stack, "/a.jpg", http_timeout=2.0, retries=3)
        assert result.ok
        assert result.retries_used >= 1
        assert result.first_attempt_failed

    def test_stall_timeout_resets_on_progress(self, world):
        loop, server, stack = world
        # slow trickle: big object, tiny stall timeout but steady data flow
        result = fetch(loop, stack, "/big.bin", http_timeout=600.0)
        assert result.ok
