"""Anti-entropy sweeper: token bucket pacing and re-replication."""

import pytest

from repro.kvstore.client import MemcachedCluster, ReplicatingKvClient
from repro.kvstore.memcached import MemcachedServer
from repro.kvstore.repair import FlowStateRepairer, TokenBucket
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng


class TestTokenBucket:
    def test_burst_bounds_initial_takes(self):
        loop = EventLoop()
        bucket = TokenBucket(loop, rate=10.0, burst=3)
        assert [bucket.try_take() for _ in range(4)] == [True, True, True,
                                                        False]

    def test_refills_with_simulated_time(self):
        loop = EventLoop()
        bucket = TokenBucket(loop, rate=10.0, burst=5)
        while bucket.try_take():
            pass
        loop.run(until=0.25)  # 2.5 tokens accrue
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        loop = EventLoop()
        bucket = TokenBucket(loop, rate=100.0, burst=4)
        loop.run(until=10.0)  # long idle: tokens must not pile past burst
        assert [bucket.try_take() for _ in range(5)].count(True) == 4

    def test_rejects_nonpositive_parameters(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            TokenBucket(loop, rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(loop, rate=1.0, burst=0)


@pytest.fixture
def repair_world():
    loop = EventLoop()
    net = Network(loop, SeededRng(7), default_latency=FixedLatency(0.0002))
    servers = []
    for i in range(4):
        host = net.attach(Host(f"mc{i}", [f"10.2.0.{i + 1}"]))
        servers.append(MemcachedServer(host, loop))
    cluster = MemcachedCluster(servers)
    client_host = net.attach(Host("yoda-0", ["10.1.0.1"]))
    kv = ReplicatingKvClient(client_host, loop, cluster, replicas=2,
                             op_timeout=0.05)
    client_host.set_handler(kv.handle_response)
    return loop, servers, cluster, kv


def write(loop, kv, key, value, version):
    done = []
    kv.set(key, value, done.append, version=version)
    loop.run(until=loop.now() + 0.5)
    assert done and done[0].ok


def holders(servers, key):
    return {s.name for s in servers if s.peek(key) is not None}


class TestFlowStateRepairer:
    def test_idle_when_epoch_unchanged(self, repair_world):
        loop, servers, cluster, kv = repair_world
        records = [("k", b"v", (1, "yoda-0"))]
        rep = FlowStateRepairer(loop, kv, lambda: records, interval=0.1)
        write(loop, kv, "k", b"v", (1, "yoda-0"))
        rep.start()
        loop.run(until=loop.now() + 1.0)
        assert rep.repairs_issued == 0
        assert rep.backlog == 0

    def test_rereplicates_after_replica_set_moves(self, repair_world):
        loop, servers, cluster, kv = repair_world
        write(loop, kv, "k", b"v", (1, "yoda-0"))
        before = holders(servers, "k")
        assert len(before) == 2
        rep = FlowStateRepairer(loop, kv, lambda: [("k", b"v", (1, "yoda-0"))],
                                interval=0.1)
        rep.start()
        loop.run(until=loop.now() + 0.3)  # learn current placement (epoch 0)
        victim = next(s for s in servers if s.name in before)
        victim.fail()
        cluster.mark_dead(victim.name)  # epoch bump; ring moves the key
        loop.run(until=loop.now() + 1.0)
        assert rep.repairs_issued >= 1
        live_holders = {s.name for s in servers
                        if not s.host.failed and s.peek("k") == b"v"}
        assert len(live_holders) == 2
        assert all(s.peek_version("k") == (1, "yoda-0") for s in servers
                   if s.name in live_holders)

    def test_token_bucket_paces_a_large_backlog(self, repair_world):
        loop, servers, cluster, kv = repair_world
        records = [(f"k{i}", b"v", (1, "yoda-0")) for i in range(30)]
        for key, value, version in records:
            write(loop, kv, key, value, version)
        rep = FlowStateRepairer(loop, kv, lambda: records,
                                interval=0.1, rate=20.0, burst=5)
        rep.start()
        victim = next(s for s in servers if not s.host.failed)
        victim.fail()
        cluster.mark_dead(victim.name)
        loop.run(until=loop.now() + 0.15)  # first sweep: burst-limited
        assert 0 < rep.repairs_issued <= 6
        assert rep.backlog > 0
        loop.run(until=loop.now() + 3.0)  # rate (20/s) drains the rest
        assert rep.backlog == 0

    def test_crashed_instance_abandons_its_queue(self, repair_world):
        loop, servers, cluster, kv = repair_world
        records = [(f"k{i}", b"v", (1, "yoda-0")) for i in range(10)]
        for key, value, version in records:
            write(loop, kv, key, value, version)
        rep = FlowStateRepairer(loop, kv, lambda: records,
                                interval=0.1, rate=5.0, burst=1)
        rep.start()
        victim = next(s for s in servers if not s.host.failed)
        victim.fail()
        cluster.mark_dead(victim.name)
        loop.run(until=loop.now() + 0.15)
        assert rep.backlog > 0
        kv.host.fail()  # the instance itself dies: its flows re-home
        loop.run(until=loop.now() + 0.5)
        assert rep.backlog == 0

    def test_unowned_keys_are_dropped_from_the_queue(self, repair_world):
        loop, servers, cluster, kv = repair_world
        records = [("gone", b"v", (1, "yoda-0")), ("kept", b"v", (1, "yoda-0"))]
        for key, value, version in records:
            write(loop, kv, key, value, version)
        owned = list(records)
        rep = FlowStateRepairer(loop, kv, lambda: list(owned),
                                interval=0.1, rate=1e-3, burst=1e-3)
        rep.start()
        victim = next(s for s in servers if not s.host.failed)
        victim.fail()
        cluster.mark_dead(victim.name)
        loop.run(until=loop.now() + 0.15)
        assert rep.backlog == 2  # bucket too slow to drain anything
        owned.pop(0)  # the "gone" flow closes
        victim2 = next(s for s in servers if not s.host.failed)
        victim2.fail()
        cluster.mark_dead(victim2.name)  # next epoch triggers a re-scan
        loop.run(until=loop.now() + 0.15)
        assert rep.backlog == 1
