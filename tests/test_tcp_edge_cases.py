"""TCP corner cases: reordering, duplicates, simultaneous close, recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.tcp.config import TcpConfig
from repro.tcp.endpoint import ConnectionHandler, TcpStack
from repro.tcp.state import TcpState


class Collector(ConnectionHandler):
    def __init__(self):
        self.data = bytearray()
        self.events = []

    def on_connected(self, conn):
        self.events.append("connected")

    def on_data(self, conn, data):
        self.data.extend(data)

    def on_remote_close(self, conn):
        self.events.append("remote_close")

    def on_closed(self, conn):
        self.events.append("closed")

    def on_error(self, conn, reason):
        self.events.append(f"error:{reason}")


def make_pair(loss=0.0, config=None, latency=0.001):
    loop = EventLoop()
    net = Network(loop, SeededRng(13), default_latency=FixedLatency(latency))
    if loss:
        net.set_loss_rate(loss)
    a = net.attach(Host("a", ["10.0.0.1"]))
    b = net.attach(Host("b", ["10.0.0.2"]))
    return loop, net, TcpStack(a, loop, config), TcpStack(b, loop, config)


class TestDuplicatesAndReassembly:
    def test_duplicate_data_segments_delivered_once(self):
        """Inject duplicates at the fabric by replaying client payloads."""
        loop, net, cs, ss = make_pair()
        server = Collector()
        ss.listen(80, lambda c: server)

        class Dup(ConnectionHandler):
            def on_connected(self, conn):
                conn.send(b"hello")
                # force a gratuitous retransmission of the same bytes
                loop.call_later(0.01, conn._retransmit_oldest)

        cs.connect(Endpoint("10.0.0.2", 80), Dup())
        loop.run(until=5)
        assert bytes(server.data) == b"hello"

    def test_out_of_order_segments_reassembled(self):
        """Deliver a crafted out-of-order segment directly; the receiver
        must hold it until the gap fills."""
        from repro.net.packet import ACK, PSH, Packet

        loop, net, cs, ss = make_pair()
        server = Collector()
        ss.listen(80, lambda c: server)
        sender = Collector()
        conn = cs.connect(Endpoint("10.0.0.2", 80), sender)
        loop.run(until=1)
        assert conn.established
        from repro.tcp.segment import seq_add

        base = conn._snd_nxt
        host_b = net.host("b")
        # segment 2 arrives first
        host_b.deliver(Packet(src=conn.local, dst=conn.remote, flags=ACK,
                              seq=seq_add(base, 5), ack=conn._rcv_nxt,
                              payload=b"WORLD"))
        loop.run_for(0.01)
        assert bytes(server.data) == b""  # gap: nothing delivered yet
        host_b.deliver(Packet(src=conn.local, dst=conn.remote, flags=ACK,
                              seq=base, ack=conn._rcv_nxt, payload=b"HELLO"))
        loop.run_for(0.01)
        assert bytes(server.data) == b"HELLOWORLD"

    def test_overlapping_segment_trimmed(self):
        from repro.net.packet import ACK, Packet
        from repro.tcp.segment import seq_add

        loop, net, cs, ss = make_pair()
        server = Collector()
        ss.listen(80, lambda c: server)
        conn = cs.connect(Endpoint("10.0.0.2", 80), Collector())
        loop.run(until=1)
        base = conn._snd_nxt
        host_b = net.host("b")
        host_b.deliver(Packet(src=conn.local, dst=conn.remote, flags=ACK,
                              seq=base, ack=conn._rcv_nxt, payload=b"ABCDE"))
        loop.run_for(0.01)
        # overlaps the first 3 bytes, brings 2 new ones
        host_b.deliver(Packet(src=conn.local, dst=conn.remote, flags=ACK,
                              seq=seq_add(base, 2), ack=conn._rcv_nxt,
                              payload=b"CDEFG"))
        loop.run_for(0.01)
        assert bytes(server.data) == b"ABCDEFG"


class TestClose:
    def test_simultaneous_close(self):
        loop, net, cs, ss = make_pair()
        server_handler = Collector()
        ss.listen(80, lambda c: server_handler)
        client_handler = Collector()
        conn = cs.connect(Endpoint("10.0.0.2", 80), client_handler)
        loop.run(until=1)
        server_conn = next(iter(ss.connections().values()))
        # both sides close in the same instant
        conn.close()
        server_conn.close()
        loop.run(until=30)
        assert not cs.connections()
        assert not ss.connections()

    def test_half_close_server_keeps_sending(self):
        """Client closes its direction; server can still deliver data."""
        loop, net, cs, ss = make_pair()
        server_side = {}

        class ServerApp(Collector):
            def on_remote_close(self, conn):
                super().on_remote_close(conn)
                conn.send(b"late data")
                conn.close()

        ss.listen(80, lambda c: ServerApp())
        client_handler = Collector()
        conn = cs.connect(Endpoint("10.0.0.2", 80), client_handler)
        loop.run(until=1)
        conn.close()  # FIN, but client can still receive
        loop.run(until=10)
        assert bytes(client_handler.data) == b"late data"

    def test_fin_retransmitted_when_lost(self):
        config = TcpConfig(data_rto_initial=0.1)
        loop, net, cs, ss = make_pair(config=config)
        server = Collector()
        ss.listen(80, lambda c: server)
        conn = cs.connect(Endpoint("10.0.0.2", 80), Collector())
        loop.run(until=1)
        net.set_loss_rate(0.9)
        conn.close()
        loop.run(until=3)
        net.set_loss_rate(0.0)
        loop.run(until=40)
        assert "remote_close" in server.events


class TestWindowAndRecovery:
    @pytest.mark.parametrize("latency", [0.0005, 0.02])
    def test_throughput_ramps_with_slow_start(self, latency):
        loop, net, cs, ss = make_pair(latency=latency)
        server = Collector()
        ss.listen(80, lambda c: server)
        blob = b"B" * 400_000

        class Send(ConnectionHandler):
            def on_connected(self, conn):
                conn.send(blob)
                conn.close()

        cs.connect(Endpoint("10.0.0.2", 80), Send())
        loop.run(until=60)
        assert bytes(server.data) == blob

    def test_newreno_recovers_burst_loss_quickly(self):
        """A whole-window loss burst recovers in ~one RTT per hole, far
        faster than one RTO per hole."""
        loop, net, cs, ss = make_pair(latency=0.01)

        class ClosingServer(Collector):
            def on_remote_close(self, conn):
                super().on_remote_close(conn)
                conn.close()

        server = ClosingServer()
        ss.listen(80, lambda c: server)
        blob = b"C" * 300_000
        done = {}

        class Send(ConnectionHandler):
            def on_connected(self, conn):
                conn.send(blob)
                conn.close()

            def on_closed(self, conn):
                done["t"] = loop.now()

        cs.connect(Endpoint("10.0.0.2", 80), Send())
        loop.call_later(0.08, lambda: net.set_loss_rate(0.5))
        loop.call_later(0.23, lambda: net.set_loss_rate(0.0))
        loop.run(until=120)
        assert bytes(server.data) == blob
        # with one-RTO-per-hole this would take tens of seconds
        assert done.get("t", 999) < 30


@settings(max_examples=20, deadline=None)
@given(sizes=st.lists(st.integers(1, 5000), min_size=1, max_size=12),
       loss_pct=st.integers(0, 15))
def test_stream_integrity_under_any_chunking_and_loss(sizes, loss_pct):
    """Whatever the app's write sizes and the network's loss rate, the
    byte stream arrives intact and in order."""
    loop, net, cs, ss = make_pair(loss=loss_pct / 100.0)
    server = Collector()
    ss.listen(80, lambda c: server)
    chunks = [bytes([i % 256]) * size for i, size in enumerate(sizes)]

    class Send(ConnectionHandler):
        def on_connected(self, conn):
            for chunk in chunks:
                conn.send(chunk)
            conn.close()

    cs.connect(Endpoint("10.0.0.2", 80), Send())
    loop.run(until=600)
    assert bytes(server.data) == b"".join(chunks)
