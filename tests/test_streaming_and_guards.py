"""Satellite guards around long-lived flows: slow-loris deadlines (backend
and instance), paced ``/stream/`` delivery with probe-driven recovery,
forced-drain mid-stream checkpointing, and TLS session-ticket resumption
backed by the flow store."""

import pytest

from repro.errors import SlowClientTimeout
from repro.experiments.harness import Testbed, TestbedConfig
from repro.http import tls
from repro.http.client import HttpsFetcher
from repro.http.message import HttpRequest
from repro.http.server import (
    BackendHttpServer,
    ServiceTimeModel,
    StaticSite,
    parse_stream_path,
)
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.tcp.endpoint import ConnectionHandler, TcpStack
from repro.workload.streaming import StreamingClient

CERT = tls.Certificate("secure.example", size=3_000)


class RawClient(ConnectionHandler):
    """Scripted byte-dribbler: sends (delay, bytes) pairs, records events."""

    def __init__(self, stack, loop, target, script):
        self.loop = loop
        self.script = script  # delays count from connection establishment
        self.received = bytearray()
        self.errors = []
        self.closed_by_peer = False
        self.conn = stack.connect(target, self)

    def on_connected(self, conn):
        for delay, chunk in self.script:
            self.loop.call_later(delay, self._send, chunk)

    def _send(self, chunk):
        if self.conn.state.can_send:
            self.conn.send(chunk)

    def on_data(self, conn, data):
        self.received.extend(data)

    def on_remote_close(self, conn):
        self.closed_by_peer = True

    def on_error(self, conn, reason):
        self.errors.append(reason)


@pytest.fixture
def world():
    loop = EventLoop()
    net = Network(loop, SeededRng(3), default_latency=FixedLatency(0.001))
    server_host = net.attach(Host("srv", ["10.0.0.2"]))
    client_host = net.attach(Host("cli", ["10.0.0.1"]))
    site = StaticSite({"/index.html": b"<html>hello</html>"})
    server = BackendHttpServer(
        server_host, loop, site,
        service_model=ServiceTimeModel(base=0.002),
        progress_deadline=2.0,
    )
    stack = TcpStack(client_host, loop)
    return loop, server, stack


REQUEST = b"GET /index.html HTTP/1.0\r\n\r\n"


class TestBackendSlowLorisGuard:
    def test_trickling_header_is_reset(self, world):
        loop, server, stack = world
        # one byte every 700 ms: never idle long, never a complete request
        script = [(0.7 * i, REQUEST[i:i + 1]) for i in range(6)]
        client = RawClient(stack, loop, Endpoint(server.ip, 80), script)
        loop.run(until=6.0)
        assert server.slow_client_timeouts == 1
        assert isinstance(server.slow_clients[0], SlowClientTimeout)
        assert server.slow_clients[0].deadline == 2.0
        assert "reset" in client.errors
        assert server.requests_served == 0

    def test_idle_keepalive_connection_survives(self, world):
        loop, server, stack = world
        from repro.net.addresses import Endpoint
        # connect, say nothing for 5 s (over the 2 s deadline), then ask
        client = RawClient(stack, loop, Endpoint(server.ip, 80),
                           [(5.0, REQUEST)])
        loop.run(until=8.0)
        assert server.slow_client_timeouts == 0
        assert not client.errors
        assert b"200 OK" in client.received
        assert b"hello" in client.received

    def test_slow_but_compliant_client_is_served(self, world):
        loop, server, stack = world
        from repro.net.addresses import Endpoint
        third = len(REQUEST) // 3
        script = [(0.0, REQUEST[:third]), (0.6, REQUEST[third:2 * third]),
                  (1.2, REQUEST[2 * third:])]
        client = RawClient(stack, loop, Endpoint(server.ip, 80), script)
        loop.run(until=4.0)
        assert server.slow_client_timeouts == 0
        assert b"200 OK" in client.received


class TestStreamPaths:
    def test_parse_valid(self):
        assert parse_stream_path("/stream/8/100/10") == (8, 100, 10)
        assert parse_stream_path("/stream/1/1/0") == (1, 1, 0)

    def test_parse_rejects_malformed(self):
        assert parse_stream_path("/obj/0.bin") is None
        assert parse_stream_path("/stream/8/100") is None
        assert parse_stream_path("/stream/8/100/10/x") is None
        assert parse_stream_path("/stream/a/100/10") is None
        assert parse_stream_path("/stream/0/100/10") is None
        assert parse_stream_path("/stream/8/-1/10") is None

    def test_paced_delivery_spans_time(self, world):
        loop, server, stack = world
        from repro.net.addresses import Endpoint
        done = []
        client = StreamingClient(
            stack, loop, Endpoint(server.ip, 80), "/stream/5/200/50",
            done.append, stall_timeout=1.0,
        )
        client.start()
        loop.run(until=10.0)
        assert done and done[0].complete
        result = done[0]
        assert result.bytes_expected == 1_000
        assert result.bytes_received == 1_000
        assert result.stalls == 0
        # 5 chunks, 50 ms apart: at least 4 inter-chunk gaps of pacing
        assert result.finished_at - result.established_at >= 4 * 0.050


def make_bed(**overrides):
    defaults = dict(
        seed=91, lb="yoda", num_lb_instances=3, num_store_servers=2,
        num_backends=2, corpus="flat", flat_object_count=2,
        flat_object_bytes=20_000, client_jitter=0.0,
    )
    defaults.update(overrides)
    return Testbed(TestbedConfig(**defaults))


class TestInstanceHeaderDeadline:
    def test_headerless_flow_is_reaped(self):
        bed = make_bed(header_deadline=1.0)
        client = RawClient(bed.client_stacks[0], bed.loop, bed.target(),
                           [(0.0, b"GET /obj")])  # header never completes
        bed.run(5.0)
        timeouts = sum(i.metrics.counter("slow_client_timeouts").value
                       for i in bed.yoda.instances)
        assert timeouts == 1
        reaper = [i for i in bed.yoda.instances if i.slow_clients][0]
        assert isinstance(reaper.slow_clients[0], SlowClientTimeout)
        assert "reset" in client.errors

    def test_normal_traffic_unaffected(self):
        bed = make_bed(header_deadline=1.0)
        procs = bed.closed_loop(2, max_pages=3)
        fleet = bed.streaming(1, chunks=20, chunk_bytes=500, interval_ms=100)
        bed.run(12.0)
        assert fleet.completed() == 1
        pages = [r for p in procs for r in p.results]
        assert pages and not any(r.broken for r in pages)
        assert sum(i.metrics.counter("slow_client_timeouts").value
                   for i in bed.yoda.instances) == 0


class TestStreamSurvivesInstanceFailover:
    def test_probe_recovers_stream_after_instance_crash(self):
        bed = make_bed()
        fleet = bed.streaming(2, chunks=30, chunk_bytes=500, interval_ms=100)
        bed.run(1.0)
        assert bed.serving_lb_instances(), "streams not established yet"
        bed.fail_lb_instances(1)  # kills the busiest (serving) instance
        bed.run(15.0)
        assert fleet.completed() == 2
        assert fleet.unfinished() == 0
        # at least one stream stalled and probed its way onto a survivor,
        # which adopted it from the flow store
        assert any(r.stalls > 0 for r in fleet.results)
        recovered = sum(i.metrics.counter("flows_recovered").value
                        for i in bed.yoda.instances)
        assert recovered >= 1


class TestForcedDrainCheckpoint:
    def test_midstream_flows_survive_deadline_forced_drain(self):
        bed = make_bed()
        fleet = bed.streaming(2, chunks=40, chunk_bytes=500, interval_ms=100)
        bed.run(1.0)
        victim = max(bed.yoda.instances, key=lambda i: len(i.flows))
        assert victim.flows, "no stream landed anywhere"
        bed.yoda.controller.drain_instance(victim.name, deadline=0.5)
        bed.run(15.0)
        assert fleet.completed() == 2
        assert fleet.unfinished() == 0
        # the drain hit its deadline and serialized the stream's progress
        assert bed.yoda.controller.metrics.counter("drains_forced").value == 1
        assert victim.metrics.counter("handoff_checkpoints").value >= 1


def https_fetch(bed, cache=None, path="/obj/0.bin", retries=0, deadline=60.0):
    results = []
    fetcher = HttpsFetcher(
        bed.client_stacks[0], bed.loop, bed.target(),
        HttpRequest("GET", path, host="secure.example"),
        results.append, sni="secure.example", session_cache=cache,
        retries=retries,
    )
    fetcher.start()
    bed.run(deadline)
    assert results, "https fetch never concluded"
    return results[0]


class TestTlsSessionResumption:
    def make_tls_bed(self, **overrides):
        return make_bed(tls_certificate=CERT, tls_session_tickets=True,
                        **overrides)

    def test_full_handshake_issues_and_caches_ticket(self):
        bed = self.make_tls_bed()
        cache = {}
        result = https_fetch(bed, cache)
        assert result.ok and not result.resumed
        assert len(result.response.body) == 20_000
        assert "secure.example" in cache

    def test_second_fetch_resumes_abbreviated(self):
        bed = self.make_tls_bed()
        cache = {}
        first = https_fetch(bed, cache)
        assert first.ok and not first.resumed
        second = https_fetch(bed, cache)
        assert second.ok and second.resumed
        resumed = sum(i.metrics.counter("tls_tickets_resumed").value
                      for i in bed.yoda.instances)
        assert resumed == 1

    def test_resumption_survives_instance_failover(self):
        bed = self.make_tls_bed()
        cache = {}
        assert https_fetch(bed, cache).ok
        # kill two of three instances: whichever survives almost surely
        # never spoke to this client, yet must honor the ticket because it
        # lives in the flow store, not in instance memory
        for instance in bed.yoda.instances[:2]:
            instance.fail()
        bed.run(2.0)  # controller health probes re-anchor the VIP
        result = https_fetch(bed, cache)
        assert result.ok and result.resumed

    def test_unknown_ticket_falls_back_to_full_handshake(self):
        bed = self.make_tls_bed()
        cache = {"secure.example": "counterfeit"}
        result = https_fetch(bed, cache, retries=1)
        assert result.ok and not result.resumed
        assert result.first_attempt_failed  # the RST burned one attempt
        # the failed resumption evicted the bad ticket; the full handshake
        # that followed cached a genuine one
        assert cache["secure.example"] != "counterfeit"

    def test_tickets_off_means_no_resumption(self):
        bed = make_bed(tls_certificate=CERT)  # tickets disabled
        cache = {}
        result = https_fetch(bed, cache)
        assert result.ok and not result.resumed
        assert cache == {}
