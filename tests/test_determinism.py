"""Same seed => byte-identical outcomes, across every layer.

DESIGN.md commits to this: the event loop breaks ties FIFO, all
randomness flows through SeededRng, and experiments take explicit seeds.
Without it, no failure timeline in EXPERIMENTS.md would be reviewable.
"""

import pytest

from repro.experiments import fig6, fig15
from repro.experiments.harness import Testbed, TestbedConfig
from repro.http.client import BrowserClient


def run_testbed_workload(seed):
    bed = Testbed(TestbedConfig(
        seed=seed, lb="yoda", num_lb_instances=3, num_store_servers=2,
        num_backends=3, corpus="flat", flat_object_count=3,
        flat_object_bytes=60_000, trace_packets=True,
    ))
    results = []
    browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target())
    for i in range(3):
        browser.fetch(f"/obj/{i}.bin", results.append)
    bed.loop.call_later(0.4, lambda: bed.fail_lb_instances(1))
    bed.run(60.0)
    return bed, results


class TestPacketLevelDeterminism:
    def test_identical_packet_traces_for_same_seed(self):
        bed1, res1 = run_testbed_workload(seed=101)
        bed2, res2 = run_testbed_workload(seed=101)
        assert len(bed1.trace) == len(bed2.trace)
        for a, b in zip(bed1.trace, bed2.trace):
            assert (a.time, a.src, a.dst, a.seq, a.ack, a.flags) == \
                (b.time, b.src, b.dst, b.seq, b.ack, b.flags)
        assert [(r.ok, round(r.latency, 9)) for r in res1] == \
            [(r.ok, round(r.latency, 9)) for r in res2]

    def test_different_seeds_diverge(self):
        bed1, _ = run_testbed_workload(seed=101)
        bed2, _ = run_testbed_workload(seed=102)
        trace1 = [(r.time, r.src) for r in bed1.trace]
        trace2 = [(r.time, r.src) for r in bed2.trace]
        assert trace1 != trace2


class TestExperimentDeterminism:
    def test_fig6_rows_identical(self):
        r1 = fig6.run(seed=9, rule_counts=(500, 2000), lookups_per_size=200)
        r2 = fig6.run(seed=9, rule_counts=(500, 2000), lookups_per_size=200)

        def sim_columns(rows):  # drop the wall-clock column
            return [{k: v for k, v in row.items()
                     if k != "python_us_per_lookup"} for row in rows]

        assert sim_columns(r1.rows) == sim_columns(r2.rows)

    def test_fig15_rows_identical(self):
        assert fig15.run(seed=9).rows == fig15.run(seed=9).rows

    def test_assignment_deterministic(self):
        from repro.core.assignment import (
            AssignmentProblem, InstanceSpec, VipSpec, solve_greedy,
        )

        vips = [VipSpec(f"v{i}", 10.0 + i, 100 + i, 2) for i in range(10)]
        insts = [InstanceSpec(f"y{i}", 100.0, 2000) for i in range(8)]
        a1 = solve_greedy(AssignmentProblem(vips=vips, instances=insts))
        a2 = solve_greedy(AssignmentProblem(vips=vips, instances=insts))
        assert a1.mapping == a2.mapping
