"""Timer and PeriodicTask behaviour."""

import pytest

from repro.sim.events import EventLoop
from repro.sim.process import PeriodicTask, Timer


class TestTimer:
    def test_fires_after_delay(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: fired.append(loop.now()))
        timer.start(2.0)
        loop.run()
        assert fired == [2.0]

    def test_restart_supersedes_previous(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: fired.append(loop.now()))
        timer.start(1.0)
        timer.start(3.0)  # re-arm
        loop.run()
        assert fired == [3.0]

    def test_cancel(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: fired.append(1))
        timer.start(1.0)
        timer.cancel()
        loop.run()
        assert fired == []

    def test_armed_flag(self):
        loop = EventLoop()
        timer = Timer(loop, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        loop.run()
        assert not timer.armed

    def test_rearm_from_callback(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: None)

        def cb():
            fired.append(loop.now())
            if len(fired) < 3:
                timer.start(1.0)

        timer._callback = cb
        timer.start(1.0)
        loop.run()
        assert fired == [1.0, 2.0, 3.0]


class TestPeriodicTask:
    def test_fires_every_interval(self):
        loop = EventLoop()
        ticks = []
        task = PeriodicTask(loop, 1.0, lambda: ticks.append(loop.now()))
        task.start()
        loop.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_fire_now(self):
        loop = EventLoop()
        ticks = []
        task = PeriodicTask(loop, 1.0, lambda: ticks.append(loop.now()))
        task.start(fire_now=True)
        loop.run(until=1.5)
        assert ticks == [0.0, 1.0]

    def test_stop(self):
        loop = EventLoop()
        ticks = []
        task = PeriodicTask(loop, 1.0, lambda: ticks.append(loop.now()))
        task.start()
        loop.call_at(2.5, task.stop)
        loop.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not task.running

    def test_stop_from_within_callback(self):
        loop = EventLoop()
        ticks = []
        task = PeriodicTask(loop, 1.0, lambda: (ticks.append(1), task.stop()))
        task.start()
        loop.run(until=5.0)
        assert ticks == [1]

    def test_double_start_is_idempotent(self):
        loop = EventLoop()
        ticks = []
        task = PeriodicTask(loop, 1.0, lambda: ticks.append(loop.now()))
        task.start()
        task.start()
        loop.run(until=2.5)
        assert ticks == [1.0, 2.0]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            PeriodicTask(EventLoop(), 0.0, lambda: None)
