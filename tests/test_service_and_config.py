"""YodaService wiring, TCP config validation, cost models, errors."""

import pytest

from repro.core.instance import YodaCostModel
from repro.core.service import YodaService, YodaServiceConfig
from repro.errors import (
    AddressError,
    AssignmentError,
    ControllerError,
    HttpError,
    HttpParseError,
    InfeasibleError,
    KvStoreError,
    NetworkError,
    PolicyError,
    ReproError,
    SimulationError,
    TcpError,
)
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.addresses import Endpoint
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.tcp.config import TcpConfig


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        SimulationError, NetworkError, AddressError, TcpError, HttpError,
        HttpParseError, KvStoreError, PolicyError, AssignmentError,
        InfeasibleError, ControllerError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_specific_subtyping(self):
        assert issubclass(AddressError, NetworkError)
        assert issubclass(HttpParseError, HttpError)
        assert issubclass(InfeasibleError, AssignmentError)


class TestTcpConfig:
    def test_defaults_match_paper_observations(self):
        config = TcpConfig()
        assert config.syn_rto == 3.0  # Ubuntu SYN timeout (Section 4.2)
        assert config.data_rto_initial == 0.3  # Figure 12(b) retransmits

    @pytest.mark.parametrize("kwargs", [
        {"mss": 0}, {"initial_cwnd_segments": 0},
        {"data_rto_initial": 0}, {"syn_rto": -1}, {"max_retries": 0},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TcpConfig(**kwargs)

    def test_initial_cwnd_bytes(self):
        assert TcpConfig(mss=1000, initial_cwnd_segments=10).initial_cwnd_bytes \
            == 10_000


class TestCostModel:
    def test_packet_cost_scales_with_size(self):
        model = YodaCostModel()
        small = Packet(src=Endpoint("1.1.1.1", 1), dst=Endpoint("2.2.2.2", 2))
        big = small.copy(payload=b"x" * 1400)
        assert model.packet_cost(big) > model.packet_cost(small)


class TestYodaService:
    @pytest.fixture
    def service(self):
        loop = EventLoop()
        rng = SeededRng(4)
        network = Network(loop, rng)
        return YodaService(loop, network, rng, YodaServiceConfig(
            num_instances=3, num_store_servers=2, num_muxes=2,
        ))

    def test_wiring_counts(self, service):
        assert len(service.instances) == 3
        assert len(service.store_servers) == 2
        assert len(service.l4lb.muxes) == 2
        assert len(service.controller.instances) == 3

    def test_instance_names_and_ips_unique(self, service):
        names = [i.name for i in service.instances]
        ips = [i.ip for i in service.instances]
        assert len(set(names)) == 3 and len(set(ips)) == 3

    def test_instances_share_cluster_view(self, service):
        views = {id(i.tcpstore.kv.cluster) for i in service.instances}
        assert len(views) == 1

    def test_new_spare_gets_fresh_identity(self, service):
        existing = [i.name for i in service.instances]
        spare = service.new_spare_instance()
        assert spare.name not in existing
        # the spare is a provisioned VM: visible in the fleet list (so
        # chaos targeting can hit it) but parked in the spare pool
        assert spare in service.instances
        assert spare in service.controller.spares

    def test_instance_by_name(self, service):
        inst = service.instances[0]
        assert service.instance_by_name(inst.name) is inst

    def test_settle_advances_clock(self, service):
        before = service.loop.now()
        service.settle(2.0)
        assert service.loop.now() == before + 2.0
