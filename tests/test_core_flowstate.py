"""Flow state: deterministic ISN, serialization, keys."""

import pytest
from hypothesis import given, strategies as st

from repro.core.flowstate import (
    FlowPhase, FlowState, client_key, server_key, yoda_isn,
)
from repro.errors import ReproError
from repro.net.addresses import Endpoint

CLIENT = Endpoint("172.16.0.9", 43210)
VIP = Endpoint("100.0.0.1", 80)
SERVER = Endpoint("10.3.0.5", 80)


class TestYodaIsn:
    def test_deterministic_across_computations(self):
        assert yoda_isn(CLIENT, VIP) == yoda_isn(CLIENT, VIP)

    def test_depends_on_client_and_vip(self):
        other_client = Endpoint("172.16.0.9", 43211)
        other_vip = Endpoint("100.0.0.2", 80)
        assert yoda_isn(CLIENT, VIP) != yoda_isn(other_client, VIP)
        assert yoda_isn(CLIENT, VIP) != yoda_isn(CLIENT, other_vip)

    def test_is_32_bit(self):
        assert 0 <= yoda_isn(CLIENT, VIP) < 2**32


class TestKeys:
    def test_client_key_unique_per_flow(self):
        k1 = client_key(CLIENT, VIP)
        k2 = client_key(Endpoint("172.16.0.9", 43211), VIP)
        assert k1 != k2

    def test_server_key_includes_snat_port(self):
        assert server_key("100.0.0.1", 40000, SERVER) != \
            server_key("100.0.0.1", 40001, SERVER)


class TestSerialization:
    def test_roundtrip_minimal(self):
        state = FlowState(client=CLIENT, vip=VIP, client_isn=12345)
        restored = FlowState.from_bytes(state.to_bytes())
        assert restored.client == CLIENT
        assert restored.client_isn == 12345
        assert restored.server is None
        assert not restored.established

    def test_roundtrip_established(self):
        state = FlowState(
            client=CLIENT, vip=VIP, client_isn=1, phase=FlowPhase.TUNNEL.value,
            server=SERVER, server_isn=999, snat_port=40007,
            request_offset=100, response_offset=200, created_at=1.5,
        )
        restored = FlowState.from_bytes(state.to_bytes())
        assert restored.established
        assert restored.server == SERVER
        assert restored.server_isn == 999
        assert restored.snat_port == 40007
        assert restored.request_offset == 100
        assert restored.response_offset == 200

    def test_yoda_isn_not_stored(self):
        # the ISN is recomputed, never persisted -- the paper's trick
        state = FlowState(client=CLIENT, vip=VIP, client_isn=1)
        assert b"yoda_isn" not in state.to_bytes()
        assert FlowState.from_bytes(state.to_bytes()).yoda_isn == state.yoda_isn

    def test_corrupt_bytes_raise(self):
        with pytest.raises(ReproError):
            FlowState.from_bytes(b"not json at all")
        with pytest.raises(ReproError):
            FlowState.from_bytes(b"{}")

    def test_server_storage_key_requires_establishment(self):
        state = FlowState(client=CLIENT, vip=VIP, client_isn=1)
        assert state.server_storage_key() is None
        state.server = SERVER
        state.snat_port = 40000
        assert state.server_storage_key() is not None

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
           st.integers(1024, 65000))
    def test_roundtrip_any_numbers(self, cisn, sisn, snat):
        state = FlowState(client=CLIENT, vip=VIP, client_isn=cisn,
                          server=SERVER, server_isn=sisn, snat_port=snat)
        restored = FlowState.from_bytes(state.to_bytes())
        assert restored.client_isn == cisn
        assert restored.server_isn == sisn
        assert restored.snat_port == snat
