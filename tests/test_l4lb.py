"""L4 LB: SNAT ranges, mux hashing/affinity, mapping propagation."""

import pytest

from repro.errors import NetworkError
from repro.l4lb.mux import L4Mux
from repro.l4lb.service import L4LoadBalancer
from repro.l4lb.snat import SnatAllocator
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.net.packet import ACK, SYN, Packet
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng

VIP = "100.0.0.1"


class TestSnatAllocator:
    def test_ranges_disjoint(self):
        alloc = SnatAllocator()
        r1 = alloc.ensure_range(VIP, "10.1.0.1")
        r2 = alloc.ensure_range(VIP, "10.1.0.2")
        assert r1[1] <= r2[0] or r2[1] <= r1[0]

    def test_range_sticky(self):
        alloc = SnatAllocator()
        assert alloc.ensure_range(VIP, "a") == alloc.ensure_range(VIP, "a")

    def test_owner_lookup(self):
        alloc = SnatAllocator()
        lo, hi = alloc.ensure_range(VIP, "inst")
        assert alloc.owner_of(VIP, lo) == "inst"
        assert alloc.owner_of(VIP, hi - 1) == "inst"
        assert alloc.owner_of(VIP, hi) is None

    def test_per_vip_namespaces(self):
        alloc = SnatAllocator()
        r1 = alloc.ensure_range("100.0.0.1", "a")
        r2 = alloc.ensure_range("100.0.0.2", "b")
        assert r1 == r2  # same block, different VIP namespace
        assert alloc.owner_of("100.0.0.1", r1[0]) == "a"
        assert alloc.owner_of("100.0.0.2", r1[0]) == "b"

    def test_release_and_reuse(self):
        alloc = SnatAllocator()
        r1 = alloc.ensure_range(VIP, "a")
        alloc.release(VIP, "a")
        assert alloc.owner_of(VIP, r1[0]) is None
        assert alloc.ensure_range(VIP, "b") == r1

    def test_exhaustion(self):
        alloc = SnatAllocator(base=64000, range_size=1000)
        alloc.ensure_range(VIP, "a")
        with pytest.raises(NetworkError):
            alloc.ensure_range(VIP, "b")

    def test_allocation_version_gates_propagation_race(self):
        # a range born in mapping push 7 is invisible to muxes whose
        # entry predates 7 -- allocated_after is how the mux tells "the
        # owner's push is still propagating" from "the owner is gone"
        alloc = SnatAllocator()
        alloc.ensure_range(VIP, "a", version=7)
        assert alloc.allocated_after(VIP, "a", 6)
        assert not alloc.allocated_after(VIP, "a", 7)
        # re-ensuring an existing range never moves its birth version
        alloc.ensure_range(VIP, "a", version=9)
        assert not alloc.allocated_after(VIP, "a", 8)


@pytest.fixture
def world():
    loop = EventLoop()
    net = Network(loop, SeededRng(11), default_latency=FixedLatency(0.0002))
    lb = L4LoadBalancer(loop, net, SeededRng(11), num_muxes=3,
                        mapping_propagation=0.1)
    instances = []
    for i in range(3):
        host = net.attach(Host(f"lb-{i}", [f"10.1.0.{i + 1}"]))
        host.got = []
        host.set_handler(lambda p, h=host: h.got.append(p))
        instances.append(host)
    client = net.attach(Host("cli", ["172.16.0.1"]))
    lb.register_vip(VIP)
    return loop, net, lb, instances, client


def syn(client_port, dst_port=80):
    return Packet(src=Endpoint("172.16.0.1", client_port),
                  dst=Endpoint(VIP, dst_port), flags=SYN, seq=1)


class TestL4LoadBalancer:
    def test_vip_traffic_reaches_some_instance(self, world):
        loop, net, lb, instances, client = world
        lb.update_mapping(VIP, [i.ip for i in instances], immediate=True)
        client.send(syn(40000))
        loop.run(until=1.0)
        assert sum(len(i.got) for i in instances) == 1

    def test_flow_affinity_same_instance(self, world):
        loop, net, lb, instances, client = world
        lb.update_mapping(VIP, [i.ip for i in instances], immediate=True)
        for _ in range(5):
            client.send(Packet(src=Endpoint("172.16.0.1", 40000),
                               dst=Endpoint(VIP, 80), flags=ACK, seq=2))
        loop.run(until=1.0)
        receivers = [i for i in instances if i.got]
        assert len(receivers) == 1
        assert len(receivers[0].got) == 5

    def test_flows_spread_across_instances(self, world):
        loop, net, lb, instances, client = world
        lb.update_mapping(VIP, [i.ip for i in instances], immediate=True)
        for port in range(40000, 40120):
            client.send(syn(port))
        loop.run(until=1.0)
        receivers = [i for i in instances if len(i.got) > 10]
        assert len(receivers) == 3  # all instances get a meaningful share

    def test_snat_port_routes_to_owner(self, world):
        loop, net, lb, instances, client = world
        lb.update_mapping(VIP, [i.ip for i in instances], immediate=True)
        owner = instances[1]
        lo, hi = lb.snat_range(VIP, owner.ip)
        server = net.attach(Host("srv", ["10.3.0.1"]))
        server.send(Packet(src=Endpoint("10.3.0.1", 80),
                           dst=Endpoint(VIP, lo + 5), flags=SYN | ACK, seq=9))
        loop.run(until=1.0)
        assert len(owner.got) == 1
        assert not instances[0].got and not instances[2].got

    def test_snat_falls_back_when_owner_removed(self, world):
        loop, net, lb, instances, client = world
        lb.update_mapping(VIP, [i.ip for i in instances], immediate=True)
        owner = instances[1]
        lo, _ = lb.snat_range(VIP, owner.ip)
        lb.update_mapping(VIP, [instances[0].ip, instances[2].ip],
                          immediate=True)
        server = net.attach(Host("srv", ["10.3.0.1"]))
        server.send(Packet(src=Endpoint("10.3.0.1", 80),
                           dst=Endpoint(VIP, lo + 5), flags=ACK, seq=9))
        loop.run(until=1.0)
        assert not owner.got
        assert len(instances[0].got) + len(instances[2].got) == 1

    def test_mapping_update_propagates_gradually(self, world):
        loop, net, lb, instances, client = world
        lb.update_mapping(VIP, [instances[0].ip])
        versions_now = lb.mux_versions(VIP)
        loop.run(until=0.2)
        assert lb.mux_versions(VIP) == [1, 1, 1]

    def test_flush_removed_redirects_established_flow(self, world):
        loop, net, lb, instances, client = world
        lb.update_mapping(VIP, [i.ip for i in instances], immediate=True)
        client.send(syn(40000))
        loop.run(until=0.1)
        pinned = next(i for i in instances if i.got)
        others = [i for i in instances if i is not pinned]
        # YODA-style removal: flush entries -> flow reroutes
        lb.update_mapping(VIP, [i.ip for i in others], immediate=True)
        client.send(Packet(src=Endpoint("172.16.0.1", 40000),
                           dst=Endpoint(VIP, 80), flags=ACK, seq=2))
        loop.run(until=0.2)
        assert sum(len(i.got) for i in others) == 1

    def test_no_flush_keeps_established_flow_pinned(self, world):
        loop, net, lb, instances, client = world
        lb.update_mapping(VIP, [i.ip for i in instances], immediate=True)
        client.send(syn(40000))
        loop.run(until=0.1)
        pinned = next(i for i in instances if i.got)
        before = len(pinned.got)
        others = [i for i in instances if i is not pinned]
        # HAProxy-style removal: entries stay -> packets keep dying at pinned
        lb.update_mapping(VIP, [i.ip for i in others], flush_removed=False,
                          immediate=True)
        client.send(Packet(src=Endpoint("172.16.0.1", 40000),
                           dst=Endpoint(VIP, 80), flags=ACK, seq=2))
        loop.run(until=0.2)
        assert len(pinned.got) == before + 1

    def test_unregistered_vip_rejected(self, world):
        loop, net, lb, instances, client = world
        with pytest.raises(NetworkError):
            lb.update_mapping("100.0.0.99", [instances[0].ip])

    def test_unregister_vip_drops_traffic(self, world):
        loop, net, lb, instances, client = world
        lb.update_mapping(VIP, [i.ip for i in instances], immediate=True)
        lb.unregister_vip(VIP)
        client.send(syn(40001))
        loop.run(until=0.5)
        assert sum(len(i.got) for i in instances) == 0

    def test_flow_table_expiry(self, world):
        loop, net, lb, instances, client = world
        lb.update_mapping(VIP, [i.ip for i in instances], immediate=True)
        client.send(syn(40000))
        loop.run(until=0.1)
        total_entries = sum(len(m.flow_table) for m in lb.muxes)
        assert total_entries >= 1
        loop.run(until=120.0)  # past FLOW_IDLE_TIMEOUT + gc period
        assert sum(len(m.flow_table) for m in lb.muxes) == 0
