"""Property tests for the streaming quantile sketch.

The sketch's whole contract is one guarantee: every quantile estimate is
within relative error ``alpha`` of the exact sample quantile.  These tests
assert that bound on seeded uniform, lognormal, and adversarially sorted
streams, on hypothesis-generated streams, and across merges -- plus the
``Histogram`` spill semantics built on top.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.sketch import QuantileSketch
from repro.sim.metrics import Histogram

QUANTILES = (0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)


def exact_quantile(sorted_values, q):
    """Nearest-rank-with-interpolation-free reference: the element at
    rank ``q * (n - 1)`` rounded down -- any element within one rank of
    the true quantile satisfies the sketch's guarantee, so the assertion
    checks against the rank-neighbourhood, not one point."""
    rank = q * (len(sorted_values) - 1)
    return sorted_values[int(rank)]


def assert_within_alpha(sketch, values, note=""):
    values = sorted(values)
    n = len(values)
    for q in QUANTILES:
        est = sketch.quantile(q)
        # the DDSketch guarantee is rank-respecting relative accuracy:
        # the estimate is within alpha (relative) of SOME sample whose
        # rank is within 1 of the target rank
        rank = q * (n - 1)
        lo = max(0, int(math.floor(rank)) - 1)
        hi = min(n - 1, int(math.ceil(rank)) + 1)
        candidates = values[lo:hi + 1]
        ok = any(
            abs(est - v) <= sketch.alpha * abs(v) + 1e-12
            for v in candidates
        )
        assert ok, (
            f"{note} q={q}: estimate {est} not within alpha="
            f"{sketch.alpha} of any of ranks [{lo},{hi}] = {candidates}"
        )


class TestSketchStreams:
    def test_uniform_stream(self):
        rng = random.Random(2016)
        values = [rng.uniform(0.001, 10.0) for _ in range(20_000)]
        sketch = QuantileSketch()
        sketch.extend(values)
        assert_within_alpha(sketch, values, "uniform")

    def test_lognormal_stream(self):
        rng = random.Random(2016)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(20_000)]
        sketch = QuantileSketch()
        sketch.extend(values)
        assert_within_alpha(sketch, values, "lognormal")

    def test_adversarial_sorted_stream(self):
        # monotone geometric ramp, fed in sorted order: the worst case for
        # naive reservoir/streaming schemes
        values = [1.0005 ** i * 1e-6 for i in range(20_000)]
        sketch = QuantileSketch()
        sketch.extend(values)
        assert_within_alpha(sketch, values, "sorted-ramp")
        sketch_rev = QuantileSketch()
        sketch_rev.extend(reversed(values))
        assert_within_alpha(sketch_rev, values, "reverse-sorted-ramp")

    def test_negative_and_zero_values(self):
        rng = random.Random(7)
        values = [rng.uniform(-5.0, 5.0) for _ in range(5_000)] + [0.0] * 100
        sketch = QuantileSketch()
        sketch.extend(values)
        assert_within_alpha(sketch, values, "mixed-sign")

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.floats(min_value=1e-9, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=400,
    ))
    def test_hypothesis_positive_streams(self, values):
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.count == len(values)
        assert_within_alpha(sketch, values, "hypothesis")

    def test_exact_invariants(self):
        rng = random.Random(3)
        values = [rng.expovariate(1.0) for _ in range(1_000)]
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.min() == min(values)
        assert sketch.max() == max(values)
        assert sketch.count == len(values)
        assert sketch.mean() == pytest.approx(sum(values) / len(values))
        assert sketch.quantile(0.0) == min(values)
        assert sketch.quantile(1.0) == max(values)

    def test_merge_equals_combined_stream(self):
        rng = random.Random(11)
        a_vals = [rng.lognormvariate(0, 1) for _ in range(4_000)]
        b_vals = [rng.uniform(0.01, 100.0) for _ in range(4_000)]
        a, b = QuantileSketch(), QuantileSketch()
        a.extend(a_vals)
        b.extend(b_vals)
        a.merge(b)
        combined = QuantileSketch()
        combined.extend(a_vals + b_vals)
        assert a.count == combined.count
        for q in QUANTILES:
            assert a.quantile(q) == combined.quantile(q)
        assert_within_alpha(a, a_vals + b_vals, "merged")

    def test_merge_requires_same_alpha(self):
        a = QuantileSketch(alpha=0.005)
        b = QuantileSketch(alpha=0.01)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_sketch_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch().quantile(0.5)


class TestHistogramSpill:
    def test_exact_below_cap(self):
        hist = Histogram("h", max_samples=1000)
        rng = random.Random(5)
        values = [rng.random() for _ in range(1000)]
        hist.extend(values)
        assert not hist.spilled
        assert hist.samples() == sorted(values)

    def test_spill_switches_to_sketch(self):
        hist = Histogram("h", max_samples=1000)
        rng = random.Random(5)
        values = [rng.lognormvariate(0, 1) for _ in range(5_000)]
        hist.extend(values)
        assert hist.spilled
        # aggregates stay exact across the spill
        assert hist.count == 5_000
        assert hist.min() == min(values)
        assert hist.max() == max(values)
        assert hist.mean() == pytest.approx(sum(values) / len(values))
        # quantiles fall back to the sketch, within its guarantee
        values.sort()
        for q in (0.1, 0.5, 0.9, 0.99):
            est = hist.quantile(q)
            ref = exact_quantile(values, q)
            assert abs(est - ref) <= 3 * hist.sketch.alpha * abs(ref)

    def test_spilled_exact_apis_raise(self):
        hist = Histogram("h", max_samples=10)
        hist.extend(range(1, 50))
        assert hist.spilled
        for call in (hist.samples, hist.cdf,
                     lambda: hist.fraction_above(3.0)):
            with pytest.raises(RuntimeError, match="exact=True"):
                call()

    def test_exact_mode_never_spills(self):
        hist = Histogram("h", exact=True, max_samples=10)
        values = list(range(1, 200))
        hist.extend(values)
        assert not hist.spilled
        assert hist.samples() == [float(v) for v in values] or \
            hist.samples() == values
        assert hist.fraction_above(100) == pytest.approx(99 / 199)
