"""Incremental HTTP parser, including property-based chunking."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HttpParseError
from repro.http.message import HttpRequest, HttpResponse
from repro.http.parser import HttpParser

REQ = HttpRequest("GET", "/a.html", host="h", headers={"X-K": "v"}).serialize()
RESP = HttpResponse(200, body=b"hello world").serialize()


class TestRequestParsing:
    def test_single_feed(self):
        out = HttpParser("request").feed(REQ)
        assert len(out) == 1
        msg = out[0].message
        assert msg.method == "GET" and msg.path == "/a.html"
        assert msg.headers.get("X-K") == "v"
        assert out[0].wire_bytes == len(REQ)

    def test_byte_by_byte(self):
        parser = HttpParser("request")
        out = []
        for i in range(len(REQ)):
            out.extend(parser.feed(REQ[i:i + 1]))
        assert len(out) == 1
        assert out[0].message.path == "/a.html"

    def test_pipelined_requests_in_one_feed(self):
        out = HttpParser("request").feed(REQ + REQ + REQ)
        assert len(out) == 3

    def test_request_with_body(self):
        req = HttpRequest("POST", "/submit", body=b"x" * 100).serialize()
        out = HttpParser("request").feed(req)
        assert out[0].message.body == b"x" * 100

    def test_body_split_across_feeds(self):
        req = HttpRequest("POST", "/s", body=b"abcdef").serialize()
        parser = HttpParser("request")
        assert parser.feed(req[:-3]) == []
        out = parser.feed(req[-3:])
        assert out[0].message.body == b"abcdef"

    def test_header_complete_flag(self):
        parser = HttpParser("request")
        head, _, rest = REQ.partition(b"\r\n\r\n")
        parser.feed(head)
        assert not parser.header_complete()
        parser.feed(b"\r\n\r\n")
        # fully parsed counts as past header-complete for an empty-body GET
        assert parser.buffered == 0

    def test_malformed_header_line_raises(self):
        parser = HttpParser("request")
        with pytest.raises(HttpParseError):
            parser.feed(b"GET / HTTP/1.0\r\nbad header line\r\n\r\n")

    def test_bad_content_length_raises(self):
        parser = HttpParser("request")
        with pytest.raises(HttpParseError):
            parser.feed(b"GET / HTTP/1.0\r\nContent-Length: banana\r\n\r\n")


class TestResponseParsing:
    def test_simple_response(self):
        out = HttpParser("response").feed(RESP)
        assert out[0].message.status == 200
        assert out[0].message.body == b"hello world"

    def test_close_delimited_response(self):
        parser = HttpParser("response")
        raw = b"HTTP/1.0 200 OK\r\n\r\npartial body"
        assert parser.feed(raw) == []
        final = parser.finish()
        assert final is not None
        assert final.message.body == b"partial body"

    def test_finish_without_pending_returns_none(self):
        assert HttpParser("response").finish() is None

    def test_finish_mid_header_raises(self):
        parser = HttpParser("response")
        parser.feed(b"HTTP/1.0 200")
        with pytest.raises(HttpParseError):
            parser.finish()

    def test_keep_alive_sequence(self):
        parser = HttpParser("response")
        out = parser.feed(RESP + HttpResponse(404, body=b"x").serialize())
        assert [m.message.status for m in out] == [200, 404]


class TestInvalidKind:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            HttpParser("banana")


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(1, 40), min_size=0, max_size=30),
       st.binary(min_size=0, max_size=200))
def test_arbitrary_chunking_never_changes_result(cut_sizes, body):
    """However the wire bytes are fragmented, the same message comes out."""
    wire = HttpRequest("POST", "/p", body=body).serialize() * 2
    parser = HttpParser("request")
    messages = []
    pos = 0
    for size in cut_sizes:
        messages.extend(parser.feed(wire[pos:pos + size]))
        pos += size
    messages.extend(parser.feed(wire[pos:]))
    assert len(messages) == 2
    for parsed in messages:
        assert parsed.message.body == body
        assert parsed.message.path == "/p"
