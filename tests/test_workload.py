"""Workloads: corpora, website popularity, clients, the 24 h trace."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.random import SeededRng
from repro.workload.objects import (
    MAX_OBJECT_BYTES, MIN_OBJECT_BYTES, build_flat_corpus, build_university_site,
)
from repro.workload.trace import TraceConfig, generate_trace, uniform_instances
from repro.workload.website import Website


class TestObjectCorpus:
    def test_university_site_size_distribution(self):
        corpus = build_university_site(SeededRng(1), num_pages=300)
        sizes = sorted(
            corpus.site.size_of(p) for p in corpus.site.paths()
        )
        assert all(MIN_OBJECT_BYTES <= s <= MAX_OBJECT_BYTES for s in sizes)
        median = sizes[len(sizes) // 2]
        # paper: median 46 KB; allow generator tolerance
        assert 15_000 < median < 90_000

    def test_pages_have_objects(self):
        corpus = build_university_site(SeededRng(1), num_pages=50)
        assert len(corpus.pages) == 50
        for page, objects in corpus.pages.items():
            assert corpus.site.size_of(page) is not None
            assert 3 <= len(objects) <= 12

    def test_page_weight_sums_objects(self):
        corpus = build_university_site(SeededRng(1), num_pages=5)
        page = corpus.page_paths()[0]
        expected = corpus.site.size_of(page) + sum(
            corpus.site.size_of(o) for o in corpus.pages[page]
        )
        assert corpus.page_weight(page) == expected

    def test_deterministic_for_seed(self):
        c1 = build_university_site(SeededRng(9), num_pages=20)
        c2 = build_university_site(SeededRng(9), num_pages=20)
        assert c1.page_paths() == c2.page_paths()
        assert all(c1.site.size_of(p) == c2.site.size_of(p)
                   for p in c1.site.paths())

    def test_flat_corpus(self):
        corpus = build_flat_corpus(SeededRng(1), 10, size=1234)
        assert corpus.object_count == 10
        assert all(corpus.site.size_of(p) == 1234 for p in corpus.site.paths())


class TestWebsite:
    def test_popular_pages_requested_more(self):
        corpus = build_university_site(SeededRng(2), num_pages=50)
        site = Website(corpus, SeededRng(2))
        counts = {}
        for _ in range(3000):
            page = site.random_page()
            counts[page] = counts.get(page, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] > ordered[-1] * 3  # zipf skew visible

    def test_random_object_belongs_to_corpus(self):
        corpus = build_university_site(SeededRng(2), num_pages=10)
        site = Website(corpus, SeededRng(2))
        for _ in range(50):
            assert corpus.site.size_of(site.random_object()) is not None


class TestTrace:
    def test_marginals_match_paper(self):
        trace = generate_trace(SeededRng(2016))
        assert len(trace.vips) >= 100
        assert trace.total_rules() >= 50_000
        ratios = list(trace.max_to_avg_all().values())
        mean_ratio = sum(ratios) / len(ratios)
        assert 2.5 < mean_ratio < 6.0  # paper: 3.7
        assert min(ratios) < 1.3  # paper: 1.07
        assert max(ratios) > 15  # paper: 50.3

    def test_deterministic(self):
        t1 = generate_trace(SeededRng(7))
        t2 = generate_trace(SeededRng(7))
        assert t1.traffic == t2.traffic
        assert t1.rules == t2.rules

    def test_interval_specs_feasible_shares(self):
        trace = generate_trace(SeededRng(7))
        capacity = 300.0
        for interval in (0, 71, 143):
            for spec in trace.interval_vip_specs(interval, capacity,
                                                 max_replicas=12):
                assert spec.per_instance_share <= capacity + 1e-9

    def test_interval_specs_respect_replica_formula(self):
        trace = generate_trace(SeededRng(7))
        capacity = 300.0
        specs = trace.interval_vip_specs(0, capacity)
        for spec in specs:
            t_v = trace.traffic[spec.name][0]
            assert spec.replicas >= min(
                max(1, math.ceil(4 * t_v / capacity)), 10**9
            ) or spec.replicas >= 1

    def test_vips_by_volume_sorted(self):
        trace = generate_trace(SeededRng(7))
        ordered = trace.vips_by_volume()
        volumes = [sum(trace.traffic[v]) for v in ordered]
        assert volumes == sorted(volumes, reverse=True)

    def test_rules_capped_below_instance_capacity(self):
        trace = generate_trace(SeededRng(7))
        assert max(trace.rules.values()) <= 1800

    def test_uniform_instances(self):
        pool = uniform_instances(5, 300.0, 2000)
        assert len(pool) == 5
        assert all(i.traffic_capacity == 300.0 for i in pool)

    def test_custom_config(self):
        cfg = TraceConfig(num_vips=20, intervals=24, total_rules_target=5000)
        trace = generate_trace(SeededRng(1), cfg)
        assert len(trace.vips) == 20
        assert trace.intervals == 24
