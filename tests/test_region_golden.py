"""Golden traces for the multi-region scenarios (and the replication
ablation).

Same machinery as ``test_golden_traces`` -- SHA-256 over the canonical
packet schedule at seed 2016, checkpoint digests for localization -- but a
separate corpus in ``tests/golden_region/``: the single-site suite asserts
its directory matches its own variants exactly, so the two-region pins
live beside it, not inside it.

Two extra things are pinned here that the single-site suite does not do:

- the **ablation** (``region-kill-noreplication``) is a first-class corpus
  entry -- breaking every established stream must stay deterministic, not
  just breaking *some* -- and
- each golden file records the expected ``outcome.ok`` verdict, so a
  regression that keeps the schedule but flips the result (or vice versa)
  is caught either way.

Regenerate (intentional schedule changes only)::

    GOLDEN_UPDATE=1 PYTHONPATH=src python -m pytest tests/test_region_golden.py
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

import pytest

from repro.chaos.library import get_scenario
from repro.chaos.scenario import ScenarioEngine

from tests.test_golden_traces import (
    GOLDEN_SCHEMA,
    GOLDEN_SEED,
    GoldenRecorder,
    first_divergence_report,
)

REGION_GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden_region")

# corpus entry -> (library scenario, replication flag).  The scenarios run
# at their library defaults: these are exactly the runs the chaos CLI and
# test_region_failover exercise.
REGION_VARIANTS: Dict[str, Dict] = {
    "region-kill": {"scenario": "region-kill", "replication": True},
    "region-kill-noreplication": {"scenario": "region-kill",
                                  "replication": False},
    "wan-partition": {"scenario": "wan-partition", "replication": True},
    "region-gray-failure": {"scenario": "region-gray-failure",
                            "replication": True},
}


def run_region_golden(name: str):
    spec = REGION_VARIANTS[name]
    recorder = GoldenRecorder()
    engine = ScenarioEngine(get_scenario(spec["scenario"]), lb="yoda",
                            seed=GOLDEN_SEED, taps=[recorder],
                            replication=spec["replication"])
    outcome = engine.run()
    return recorder, outcome


def golden_path(name: str) -> str:
    return os.path.join(REGION_GOLDEN_DIR, f"{name}.json")


def load_golden(name: str) -> Optional[dict]:
    path = golden_path(name)
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def write_golden(name: str, recorder: GoldenRecorder, outcome) -> None:
    spec = REGION_VARIANTS[name]
    doc = {
        "schema": GOLDEN_SCHEMA,
        "scenario": spec["scenario"],
        "replication": spec["replication"],
        "seed": GOLDEN_SEED,
        "digest": recorder.digest(),
        "engine_digest": outcome.trace_digest,
        "record_count": recorder.count,
        "checkpoint_interval": 100,
        "checkpoints": recorder.checkpoints,
        "head_lines": recorder.lines[:100],
        "boundary_every": 2000,
        "boundary_lines": recorder.boundary_lines(),
        "outcome_ok": outcome.ok,
        "streams_completed": outcome.streams_completed,
        "failed_over": outcome.failed_over,
    }
    os.makedirs(REGION_GOLDEN_DIR, exist_ok=True)
    with open(golden_path(name), "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


class TestRegionGoldenCorpusShape:
    def test_ablation_is_pinned(self):
        assert "region-kill-noreplication" in REGION_VARIANTS

    def test_every_variant_has_a_golden_file(self):
        missing = [n for n in REGION_VARIANTS if load_golden(n) is None]
        assert not missing, (
            f"golden files missing for {missing}; generate with "
            f"GOLDEN_UPDATE=1 PYTHONPATH=src python -m pytest "
            f"tests/test_region_golden.py"
        )

    def test_no_stale_golden_files(self):
        on_disk = {f[:-5] for f in os.listdir(REGION_GOLDEN_DIR)
                   if f.endswith(".json")}
        assert on_disk == set(REGION_VARIANTS), (
            "tests/golden_region/ out of sync with REGION_VARIANTS"
        )

    def test_ablation_digest_differs_from_replicated_run(self):
        """The two region-kill pins must be genuinely different runs."""
        with_repl = load_golden("region-kill")
        without = load_golden("region-kill-noreplication")
        assert with_repl and without
        assert with_repl["digest"] != without["digest"]
        assert with_repl["outcome_ok"] is True
        assert without["outcome_ok"] is False


@pytest.mark.parametrize("name", sorted(REGION_VARIANTS))
def test_region_golden_trace(name):
    golden = load_golden(name)
    update = os.environ.get("GOLDEN_UPDATE") == "1"
    if golden is None and not update:
        pytest.fail(
            f"no golden file for region scenario {name!r}; generate with "
            f"GOLDEN_UPDATE=1 PYTHONPATH=src python -m pytest "
            f"tests/test_region_golden.py"
        )
    recorder, outcome = run_region_golden(name)
    if update:
        write_golden(name, recorder, outcome)
        return
    assert golden["schema"] == GOLDEN_SCHEMA
    if (recorder.digest() != golden["digest"]
            or recorder.count != golden["record_count"]):
        pytest.fail(first_divergence_report(name, golden, recorder),
                    pytrace=False)
    assert outcome.trace_digest == golden["engine_digest"]
    # schedule-identical must also mean result-identical
    assert outcome.ok == golden["outcome_ok"]
    assert outcome.streams_completed == golden["streams_completed"]
    assert outcome.failed_over == golden["failed_over"]
