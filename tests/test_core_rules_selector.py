"""Rule matching, actions, priorities, selection policies."""

import pytest

from repro.core.policy import (
    VipPolicy, least_loaded, primary_backup, sticky_sessions, weighted_split,
)
from repro.core.rules import LEAST_LOADED, Action, Match, Rule
from repro.core.selector import RuleTable, ScanCostModel
from repro.errors import PolicyError
from repro.http.message import HttpRequest
from repro.net.addresses import Endpoint
from repro.sim.random import SeededRng


def req(path="/x.jpg", host="mysite.com", cookie=None, headers=None, method="GET"):
    hdrs = dict(headers or {})
    if cookie:
        hdrs["Cookie"] = cookie
    return HttpRequest(method, path, host=host, headers=hdrs)


class TestMatch:
    def test_url_glob(self):
        m = Match(url="*.jpg")
        assert m.matches(req("/a/b.jpg"))
        assert not m.matches(req("/a/b.css"))

    def test_path_glob(self):
        m = Match(path="/news/*")
        assert m.matches(req("/news/today.html"))
        assert not m.matches(req("/sports/x.html"))

    def test_host_in_url(self):
        m = Match(url="mysite.com/news*")
        assert m.matches(req("/news/a", host="mysite.com"))
        assert not m.matches(req("/news/a", host="other.com"))

    def test_cookie_presence(self):
        m = Match(cookie="session")
        assert m.matches(req(cookie="session=abc"))
        assert not m.matches(req(cookie="other=1"))
        assert not m.matches(req())

    def test_cookie_value_glob(self):
        m = Match(cookie="lang=en*")
        assert m.matches(req(cookie="lang=en-GB"))
        assert not m.matches(req(cookie="lang=fr"))

    def test_header_match(self):
        m = Match(header="Accept-Language=en*")
        assert m.matches(req(headers={"Accept-Language": "en-GB"}))
        assert not m.matches(req(headers={"Accept-Language": "de"}))

    def test_method(self):
        m = Match(method="POST")
        assert m.matches(req(method="POST"))
        assert not m.matches(req(method="GET"))

    def test_conjunction(self):
        m = Match(url="*.jpg", method="GET", cookie="a")
        assert m.matches(req("/x.jpg", cookie="a=1"))
        assert not m.matches(req("/x.jpg"))

    def test_wildcard_matches_everything(self):
        assert Match().matches(req())


class TestAction:
    def test_requires_exactly_one_kind(self):
        with pytest.raises(PolicyError):
            Action()
        with pytest.raises(PolicyError):
            Action(split={"a": 1.0}, table="c", table_members=("a",))

    def test_rejects_mixed_negative_weights(self):
        with pytest.raises(PolicyError):
            Action(split={"a": -1.0, "b": 2.0})

    def test_all_negative_is_least_loaded(self):
        act = Action(split={"a": LEAST_LOADED, "b": LEAST_LOADED})
        assert act.least_loaded

    def test_rejects_all_zero(self):
        with pytest.raises(PolicyError):
            Action(split={"a": 0.0})

    def test_table_needs_members(self):
        with pytest.raises(PolicyError):
            Action(table="cookie")


class FakeView:
    def __init__(self, healthy=(), loads=None):
        self._healthy = set(healthy)
        self._loads = loads or {}

    def is_healthy(self, b):
        return b in self._healthy

    def load(self, b):
        return self._loads.get(b, 0.0)


class TestSelection:
    def setup_method(self):
        self.rng = SeededRng(77).fork("test")

    def test_weighted_split_distribution(self):
        table = RuleTable([weighted_split("w", "*", {"a": 3.0, "b": 1.0})])
        counts = {"a": 0, "b": 0}
        for _ in range(2000):
            res = table.select(req(), self.rng)
            counts[res.backend] += 1
        assert 0.65 < counts["a"] / 2000 < 0.85

    def test_priority_order_wins(self):
        rules = [
            Rule("low", 1, Match(url="*.css"), Action(split={"b": 1.0})),
            Rule("high", 5, Match(url="*.css"), Action(split={"a": 1.0})),
        ]
        table = RuleTable(rules)
        assert table.select(req("/s.css"), self.rng).backend == "a"

    def test_primary_backup_failover(self):
        rules = primary_backup("pb", "*", {"prim": 1.0}, {"back": 1.0})
        table = RuleTable(rules)
        up = FakeView(healthy={"prim", "back"})
        assert table.select(req(), self.rng, up).backend == "prim"
        down = FakeView(healthy={"back"})
        assert table.select(req(), self.rng, down).backend == "back"

    def test_no_rule_matches_returns_none(self):
        table = RuleTable([weighted_split("w", "*.jpg", {"a": 1.0})])
        assert table.select(req("/x.css"), self.rng) is None

    def test_all_backends_down_fails_open(self):
        # panic routing: when the health view disqualifies every candidate,
        # the scan retries ignoring health rather than resetting the client
        table = RuleTable([weighted_split("w", "*", {"a": 1.0})])
        result = table.select(req(), self.rng, FakeView(healthy=set()))
        assert result is not None and result.backend == "a"
        assert table.panic_selections == 1

    def test_fail_open_keeps_real_loads(self):
        table = RuleTable([least_loaded("ll", "*", ["a", "b"])])
        view = FakeView(healthy=set(), loads={"a": 9.0, "b": 2.0})
        assert table.select(req(), self.rng, view).backend == "b"

    def test_fail_open_not_taken_while_any_backend_lives(self):
        table = RuleTable([weighted_split("w", "*", {"a": 1.0, "b": 1.0})])
        view = FakeView(healthy={"b"})
        for _ in range(20):
            assert table.select(req(), self.rng, view).backend == "b"
        assert table.panic_selections == 0

    def test_least_loaded_picks_min(self):
        table = RuleTable([least_loaded("ll", "*", ["a", "b", "c"])])
        view = FakeView(healthy={"a", "b", "c"},
                        loads={"a": 5.0, "b": 1.0, "c": 3.0})
        assert table.select(req(), self.rng, view).backend == "b"

    def test_sticky_sessions_stable(self):
        table = RuleTable([sticky_sessions("s", "sid", ["a", "b", "c"])])
        view = FakeView(healthy={"a", "b", "c"})
        first = table.select(req(cookie="sid=user42"), self.rng, view).backend
        for _ in range(10):
            again = table.select(req(cookie="sid=user42"), self.rng, view).backend
            assert again == first

    def test_sticky_sessions_survive_unrelated_failure(self):
        table = RuleTable([sticky_sessions("s", "sid", ["a", "b", "c"])])
        all_up = FakeView(healthy={"a", "b", "c"})
        chosen = table.select(req(cookie="sid=u1"), self.rng, all_up).backend
        others = {"a", "b", "c"} - {chosen}
        degraded = FakeView(healthy={chosen} | (others - {next(iter(others))}))
        assert table.select(req(cookie="sid=u1"), self.rng, degraded).backend == chosen

    def test_sticky_remaps_only_on_own_backend_failure(self):
        table = RuleTable([sticky_sessions("s", "sid", ["a", "b", "c"])])
        all_up = FakeView(healthy={"a", "b", "c"})
        chosen = table.select(req(cookie="sid=u1"), self.rng, all_up).backend
        without = FakeView(healthy={"a", "b", "c"} - {chosen})
        new = table.select(req(cookie="sid=u1"), self.rng, without).backend
        assert new != chosen

    def test_rules_scanned_counts_until_match(self):
        rules = [
            Rule(f"r{i}", 10 - i, Match(path=f"/p{i}/*"),
                 Action(split={"a": 1.0}))
            for i in range(5)
        ]
        table = RuleTable(rules)
        res = table.select(req("/p3/x"), self.rng)
        assert res.rules_scanned == 4

    def test_scan_latency_model_linear(self):
        model = ScanCostModel(base=0.001, per_rule=1e-6)
        assert model.latency(1000) == pytest.approx(0.002)

    def test_fig6_calibration_ratio(self):
        model = ScanCostModel()  # defaults
        assert model.latency(10_000) / model.latency(1_000) == pytest.approx(3.0, rel=0.01)
        assert model.latency(2_000) == pytest.approx(5e-3, rel=0.01)


class TestVipPolicy:
    def _backends(self):
        return {"a": Endpoint("10.3.0.1", 80), "b": Endpoint("10.3.0.2", 80)}

    def test_validates_backend_references(self):
        with pytest.raises(PolicyError):
            VipPolicy(vip="100.0.0.1", backends=self._backends(),
                      rules=[weighted_split("w", "*", {"ghost": 1.0})])

    def test_updated_bumps_version(self):
        policy = VipPolicy(vip="100.0.0.1", backends=self._backends(),
                           rules=[weighted_split("w", "*", {"a": 1.0})])
        updated = policy.updated(rules=[weighted_split("w", "*", {"b": 1.0})])
        assert updated.version == policy.version + 1
        assert policy.version == 1  # original untouched

    def test_endpoint_of_unknown_backend(self):
        policy = VipPolicy(vip="100.0.0.1", backends=self._backends(),
                           rules=[weighted_split("w", "*", {"a": 1.0})])
        with pytest.raises(PolicyError):
            policy.endpoint_of("ghost")

    def test_rule_count(self):
        policy = VipPolicy(
            vip="100.0.0.1", backends=self._backends(),
            rules=primary_backup("pb", "*", {"a": 1.0}, {"b": 1.0}),
        )
        assert policy.rule_count == 2
