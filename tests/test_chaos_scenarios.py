"""Scenario engine: built-in suite shape, determinism, the contrast."""

import pytest

from repro.chaos.faults import crash
from repro.chaos.library import BUILTIN_SCENARIOS, get_scenario, scenario_names
from repro.chaos.scenario import Scenario, ScenarioEngine, run_contrast, run_scenario


def tiny_scenario(**overrides):
    defaults = dict(
        name="tiny-crash",
        description="one serving instance dies mid-load",
        faults=[crash(0.5, "lb:serving")],
        duration=2.0,
        drain=4.0,
        clients=2,
        object_bytes=150_000,
        object_count=2,
        num_lb_instances=2,
        num_store_servers=2,
        num_backends=2,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestLibrary:
    def test_at_least_six_builtins(self):
        assert len(BUILTIN_SCENARIOS) >= 6

    def test_every_builtin_includes_a_crash(self):
        # something must die in every scenario; a region kill crashes
        # every host in the site at once
        for scenario in BUILTIN_SCENARIOS.values():
            assert any(f.kind in ("crash", "flap", "region_kill")
                       for f in scenario.faults)

    def test_get_scenario_unknown_raises(self):
        with pytest.raises(KeyError, match="store-partition"):
            get_scenario("no-such-thing")

    def test_timeline_is_time_sorted(self):
        scenario = get_scenario("double-crash")
        times = [float(line.split("s", 1)[0][2:]) for line in scenario.timeline()]
        assert times == sorted(times)

    def test_names_are_sorted(self):
        assert scenario_names() == sorted(BUILTIN_SCENARIOS)


class TestEngine:
    def test_yoda_survives_serving_crash(self):
        outcome = run_scenario(tiny_scenario(), lb="yoda", seed=7)
        assert outcome.ok
        assert outcome.pages_loaded > 0 and outcome.broken_pages == 0
        assert all(v.ok for v in outcome.verdicts)
        assert any(a.startswith("crash:") for a in outcome.applied)

    def test_same_seed_same_run(self):
        first = run_scenario(tiny_scenario(), lb="yoda", seed=7)
        second = run_scenario(tiny_scenario(), lb="yoda", seed=7)
        assert first.trace_digest == second.trace_digest
        assert [str(v) for v in first.verdicts] == [str(v) for v in second.verdicts]
        assert first.pages_loaded == second.pages_loaded

    def test_different_seed_different_schedule(self):
        first = run_scenario(tiny_scenario(), lb="yoda", seed=7)
        second = run_scenario(tiny_scenario(), lb="yoda", seed=8)
        assert first.trace_digest != second.trace_digest

    def test_timed_crash_reverts(self):
        scenario = tiny_scenario(faults=[crash(0.2, "store:0", duration=1.0)])
        engine = ScenarioEngine(scenario, lb="yoda", seed=7)
        outcome = engine.run()
        assert not engine.bed.yoda.store_servers[0].host.failed
        assert outcome.invariants_ok

    def test_permanent_crash_stays_down_through_drain(self):
        engine = ScenarioEngine(tiny_scenario(), lb="yoda", seed=7)
        engine.run()
        crashed = [a for a in engine.applied if a.spec.kind == "crash"]
        assert crashed and engine.bed.network.host(
            crashed[0].target_name).failed

    def test_render_mentions_verdicts(self):
        outcome = run_scenario(tiny_scenario(), lb="yoda", seed=7)
        text = outcome.render()
        assert "PASS" in text and "storage-before-ack" in text


class TestContrast:
    def test_store_death_contrast_holds(self):
        outcomes = run_contrast(get_scenario("store-death-midhandshake"), seed=2016)
        assert outcomes["yoda"].ok
        assert not outcomes["haproxy"].ok  # flows pinned to the dead VM break
        # invariants that exist for both tiers stay clean even in the
        # broken run -- HAProxy loses flows, it does not corrupt them
        haproxy = {v.invariant: v for v in outcomes["haproxy"].verdicts}
        assert haproxy["acked-byte-loss"].checked > 0


class TestRepairAblation:
    """The self-healing store is falsifiable: same schedule, repair off,
    and the durability verdict must report the flow-state loss."""

    def test_new_store_scenarios_are_registered(self):
        for name in ("rolling-store-restart", "crash-heal-crash"):
            scenario = get_scenario(name)
            assert any(f.target.startswith("store") for f in scenario.faults)
            assert any(f.target.startswith("lb") for f in scenario.faults)

    def test_rolling_restart_passes_with_repair_and_fails_without(self):
        scenario = get_scenario("rolling-store-restart")
        on = run_scenario(scenario, lb="yoda", seed=2016, repair=True)
        off = run_scenario(scenario, lb="yoda", seed=2016, repair=False)
        rf_on = next(v for v in on.verdicts
                     if v.invariant == "replication-factor")
        rf_off = next(v for v in off.verdicts
                      if v.invariant == "replication-factor")
        assert on.ok and rf_on.ok
        assert not off.ok and not rf_off.ok
        assert "(repair OFF)" in off.render()

    def test_ablation_is_deterministic(self):
        scenario = get_scenario("crash-heal-crash")
        first = run_scenario(scenario, lb="yoda", seed=2016, repair=False)
        second = run_scenario(scenario, lb="yoda", seed=2016, repair=False)
        assert first.trace_digest == second.trace_digest
        assert first.violation_count == second.violation_count > 0
