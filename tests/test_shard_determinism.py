"""Sharded-path determinism inside one interpreter.

The golden suite already pins digests across *commits*; these tests pin
them across *invocations in one process* -- the regression they catch is
leaked module-level state (a pool counter, an RNG, a cached table) that
makes the second run of the same scenario differ from the first.  That
failure mode is invisible to the golden files (each pytest process runs
each scenario once) but fatal to the sharded engine, which runs many
worlds in one interpreter.
"""

from __future__ import annotations

import dataclasses

from repro.chaos.library import get_scenario
from repro.chaos.scenario import ScenarioEngine
from repro.experiments.harness import TestbedConfig
from repro.shard import (
    ScaleWorldConfig,
    ShardedRunner,
    make_scale_plan,
    run_scenario_sharded,
    run_testbed_sharded,
    scale_world_builder,
)
from repro.sim.tracing import DigestTrace
from repro.workload.trace import DiurnalConfig

from tests.test_golden_traces import GOLDEN_SEED, SCENARIO_VARIANTS


def _run_chaos_once(name: str, step_window=None):
    scenario = dataclasses.replace(get_scenario(name),
                                   **SCENARIO_VARIANTS[name])
    recorder = DigestTrace(name)
    outcome = ScenarioEngine(scenario, lb="yoda", seed=GOLDEN_SEED,
                             taps=[recorder], step_window=step_window).run()
    return recorder.digest(), recorder.count, outcome.trace_digest


class TestSameInterpreterDeterminism:
    def test_chaos_scenario_twice_same_digest(self):
        first = _run_chaos_once("instance-flap")
        second = _run_chaos_once("instance-flap")
        assert first == second

    def test_windowed_stepping_does_not_change_the_schedule(self):
        """Advancing the loop in shard-sized windows must fire the exact
        same events in the exact same order as one continuous run."""
        continuous = _run_chaos_once("instance-flap")
        windowed = _run_chaos_once("instance-flap", step_window=0.25)
        assert windowed == continuous

    def test_sharded_scenario_runner_twice_same_digest(self):
        first = run_scenario_sharded(
            "probe-loss", overrides=SCENARIO_VARIANTS["probe-loss"],
            seed=GOLDEN_SEED)
        second = run_scenario_sharded(
            "probe-loss", overrides=SCENARIO_VARIANTS["probe-loss"],
            seed=GOLDEN_SEED)
        assert first == second

    def test_multi_shard_world_twice_same_digest(self):
        cfg = ScaleWorldConfig(
            num_cells=2, num_shards=2,
            diurnal=DiurnalConfig(sim_seconds=3.0, sim_fraction=5e-4))
        plan = make_scale_plan(cfg)

        def once():
            runner = ShardedRunner(plan, scale_world_builder(cfg),
                                   mode="inline")
            result = runner.run(3.0)
            return result.digest, result.total_tx_packets, \
                result.cross_shard_packets

        assert once() == once()

    def test_testbed_num_shards_facade(self):
        """The ``TestbedConfig.num_shards`` opt-in path is deterministic
        and actually runs through the shard machinery."""
        cfg = TestbedConfig(
            seed=7, num_shards=2, num_lb_instances=2, num_store_servers=2,
            num_backends=2, corpus="flat", flat_object_count=4,
            flat_object_bytes=2_000)
        diurnal = DiurnalConfig(seed=7, sim_seconds=3.0, sim_fraction=5e-4)

        def once():
            result = run_testbed_sharded(cfg, 3.0, diurnal=diurnal,
                                         mode="inline")
            return result.digest, result.total_tx_packets

        first = once()
        assert first == once()
        assert first[1] > 0
