"""VIP assignment: problem model, solvers, constraints, updates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.assignment import (
    Assignment,
    AssignmentProblem,
    IlpSolver,
    InstanceSpec,
    VipSpec,
    plan_update,
    solve_all_to_all,
    solve_greedy,
    validate_assignment,
)
from repro.core.assignment.all_to_all import min_instances_for_traffic
from repro.core.assignment.greedy import compact_assignment
from repro.errors import AssignmentError, InfeasibleError


def insts(n, traffic=100.0, rules=5000):
    return [InstanceSpec(f"y{i}", traffic, rules) for i in range(n)]


class TestVipSpec:
    def test_failures_tolerated(self):
        vip = VipSpec("v", traffic=100, rules=10, replicas=4, oversub=0.25)
        assert vip.failures_tolerated == 1

    def test_failures_capped_below_replicas(self):
        vip = VipSpec("v", traffic=100, rules=10, replicas=1, oversub=0.9)
        assert vip.failures_tolerated == 0

    def test_per_instance_share(self):
        vip = VipSpec("v", traffic=120, rules=10, replicas=4, oversub=0.25)
        assert vip.per_instance_share == pytest.approx(40.0)  # 120/(4-1)

    def test_invalid_specs(self):
        with pytest.raises(AssignmentError):
            VipSpec("v", traffic=-1, rules=0, replicas=1)
        with pytest.raises(AssignmentError):
            VipSpec("v", traffic=1, rules=0, replicas=0)
        with pytest.raises(AssignmentError):
            VipSpec("v", traffic=1, rules=0, replicas=1, oversub=1.0)


class TestProblem:
    def test_duplicate_names_rejected(self):
        with pytest.raises(AssignmentError):
            AssignmentProblem(
                vips=[VipSpec("v", 1, 1, 1), VipSpec("v", 2, 2, 1)],
                instances=insts(2),
            )

    def test_replicas_beyond_pool_rejected(self):
        with pytest.raises(AssignmentError):
            AssignmentProblem(vips=[VipSpec("v", 1, 1, 5)], instances=insts(2))

    def test_old_share_zero_without_history(self):
        prob = AssignmentProblem(vips=[VipSpec("v", 10, 1, 2)],
                                 instances=insts(3))
        assert prob.old_share("v", "y0") == 0.0

    def test_old_share_uses_old_replica_count(self):
        prob = AssignmentProblem(
            vips=[VipSpec("v", 90, 1, 2, oversub=0.0)],
            instances=insts(4),
            old_assignment={"v": ["y0", "y1", "y2"]},
        )
        assert prob.old_share("v", "y0") == pytest.approx(30.0)
        assert prob.old_share("v", "y3") == 0.0


class TestAllToAll:
    def test_every_vip_on_every_instance(self):
        prob = AssignmentProblem(
            vips=[VipSpec("a", 10, 5, 2), VipSpec("b", 20, 7, 2)],
            instances=insts(3),
        )
        assignment = solve_all_to_all(prob)
        for vip in prob.vips:
            assert assignment.mapping[vip.name] == ["y0", "y1", "y2"]

    def test_min_instances_for_traffic(self):
        prob = AssignmentProblem(
            vips=[VipSpec("a", 250, 5, 2)], instances=insts(5, traffic=100),
        )
        assert min_instances_for_traffic(prob) == 3


class TestGreedy:
    def test_respects_replica_count(self):
        prob = AssignmentProblem(
            vips=[VipSpec("a", 30, 5, 3), VipSpec("b", 10, 5, 2)],
            instances=insts(5),
        )
        assignment = solve_greedy(prob)
        assert len(assignment.mapping["a"]) == 3
        assert len(assignment.mapping["b"]) == 2
        assert validate_assignment(prob, assignment).ok

    def test_respects_rule_capacity(self):
        prob = AssignmentProblem(
            vips=[VipSpec("a", 1, 4000, 1), VipSpec("b", 1, 4000, 1)],
            instances=insts(2, rules=5000),
        )
        assignment = solve_greedy(prob)
        rules = assignment.rules_per_instance(prob)
        assert all(v <= 5000 for v in rules.values())
        assert assignment.num_instances_used() == 2

    def test_infeasible_raises(self):
        prob = AssignmentProblem(
            vips=[VipSpec("a", 500, 5, 2)], instances=insts(2, traffic=100),
        )
        with pytest.raises(InfeasibleError):
            solve_greedy(prob)

    def test_packs_instead_of_spreading(self):
        prob = AssignmentProblem(
            vips=[VipSpec(f"v{i}", 10, 10, 1) for i in range(5)],
            instances=insts(10, traffic=100),
        )
        assignment = solve_greedy(prob)
        assert assignment.num_instances_used() == 1

    def test_limit_mode_prefers_old_instances(self):
        vips = [VipSpec(f"v{i}", 20, 10, 2) for i in range(4)]
        base = solve_greedy(AssignmentProblem(vips=vips, instances=insts(8)))
        conns = {(v, i): 10.0 for v, lst in base.mapping.items() for i in lst}
        prob = AssignmentProblem(
            vips=vips, instances=insts(8), old_assignment=base.mapping,
            old_connections=conns, migration_limit=0.10,
        )
        again = solve_greedy(prob, enforce_update_constraints=True)
        assert again.migrated_fraction(prob) <= 0.10

    def test_migration_budget_enforced(self):
        vips = [VipSpec(f"v{i}", 20, 10, 2) for i in range(4)]
        base = solve_greedy(AssignmentProblem(vips=vips, instances=insts(8)))
        conns = {(v, i): 10.0 for v, lst in base.mapping.items() for i in lst}
        # force migration by removing all old instances from the pool
        new_pool = [InstanceSpec(f"z{i}", 100.0, 5000) for i in range(8)]
        prob = AssignmentProblem(
            vips=vips, instances=new_pool, old_assignment=base.mapping,
            old_connections=conns, migration_limit=0.10,
        )
        with pytest.raises(InfeasibleError):
            solve_greedy(prob, enforce_update_constraints=True)


class TestIlp:
    def test_beats_or_matches_greedy(self):
        import random

        random.seed(3)
        vips = [VipSpec(f"v{i}", random.uniform(5, 80), random.randint(10, 900),
                        random.randint(1, 3)) for i in range(25)]
        prob = AssignmentProblem(vips=vips, instances=insts(30))
        greedy = solve_greedy(prob)
        solver = IlpSolver(enforce_update_constraints=False)
        ilp = solver.solve(prob)
        assert validate_assignment(prob, ilp).ok
        assert ilp.num_instances_used() <= greedy.num_instances_used()
        assert solver.lp_lower_bound is not None
        assert ilp.num_instances_used() >= solver.lp_lower_bound - 1e-6

    def test_result_always_validates(self):
        prob = AssignmentProblem(
            vips=[VipSpec("a", 50, 100, 2), VipSpec("b", 30, 4900, 1)],
            instances=insts(4),
        )
        assignment = IlpSolver(enforce_update_constraints=False).solve(prob)
        assert validate_assignment(prob, assignment).ok


class TestCompaction:
    def test_compaction_never_increases_instances(self):
        prob = AssignmentProblem(
            vips=[VipSpec(f"v{i}", 10, 10, 1) for i in range(6)],
            instances=insts(10),
        )
        spread = Assignment(mapping={f"v{i}": [f"y{i}"] for i in range(6)})
        compacted = compact_assignment(prob, spread,
                                       enforce_update_constraints=False)
        assert compacted.num_instances_used() <= 6
        assert validate_assignment(prob, compacted).ok


class TestPlanUpdate:
    def _chain(self, limit):
        vips1 = [VipSpec(f"v{i}", 20, 50, 2) for i in range(6)]
        first = plan_update(AssignmentProblem(vips=vips1, instances=insts(10)),
                            limit=limit, use_lp=False)
        vips2 = [VipSpec(f"v{i}", 26, 50, 2) for i in range(6)]
        conns = {(v, i): 10.0 for v, lst in first.assignment.mapping.items()
                 for i in lst}
        prob2 = AssignmentProblem(
            vips=vips2, instances=insts(10),
            old_assignment=first.assignment.mapping,
            old_connections=conns,
            migration_limit=0.10 if limit else None,
        )
        return plan_update(prob2, limit=limit, use_lp=False)

    def test_limit_mode_bounds_migration(self):
        outcome = self._chain(limit=True)
        assert outcome.migrated_fraction <= (outcome.effective_migration_limit
                                             or 0.10) + 1e-9

    def test_nolimit_mode_reports_metrics(self):
        outcome = self._chain(limit=False)
        assert outcome.instances_used > 0
        assert outcome.median_rules_per_instance > 0

    def test_relaxation_on_infeasible_delta(self):
        vips = [VipSpec(f"v{i}", 20, 50, 2) for i in range(4)]
        base = solve_greedy(AssignmentProblem(vips=vips, instances=insts(8)))
        conns = {(v, i): 10.0 for v, lst in base.mapping.items() for i in lst}
        new_pool = [InstanceSpec(f"z{i}", 100.0, 5000) for i in range(8)]
        prob = AssignmentProblem(
            vips=vips, instances=new_pool, old_assignment=base.mapping,
            old_connections=conns, migration_limit=0.10,
        )
        outcome = plan_update(prob, limit=True, use_lp=False)
        assert outcome.relaxations >= 1  # delta was raised in 10% steps
        assert outcome.effective_migration_limit > 0.10


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.floats(1.0, 50.0), st.integers(1, 800), st.integers(1, 3)),
    min_size=1, max_size=15,
))
def test_greedy_solutions_always_satisfy_constraints(specs):
    vips = [VipSpec(f"v{i}", t, r, n) for i, (t, r, n) in enumerate(specs)]
    prob = AssignmentProblem(vips=vips, instances=insts(20))
    try:
        assignment = solve_greedy(prob)
    except InfeasibleError:
        return  # acceptable outcome; never an invalid assignment
    report = validate_assignment(prob, assignment)
    assert report.ok, report.violations
