"""Multi-region chaos scenarios end to end: region kill with standby
promotion, the no-replication ablation, WAN partition without split
brain, and partial-site gray failure."""

import pytest

from repro.chaos import get_scenario, run_scenario
from repro.experiments import fig_failover

SEED = 2016


def verdict(outcome, invariant):
    match = [v for v in outcome.verdicts if v.invariant == invariant]
    assert match, f"{invariant} not among {[v.invariant for v in outcome.verdicts]}"
    return match[0]


@pytest.fixture(scope="module")
def region_kill_outcome():
    return run_scenario(get_scenario("region-kill"), lb="yoda", seed=SEED)


@pytest.fixture(scope="module")
def ablation_outcome():
    return run_scenario(get_scenario("region-kill"), lb="yoda", seed=SEED,
                        replication=False)


class TestRegionKill:
    def test_all_established_streams_survive(self, region_kill_outcome):
        outcome = region_kill_outcome
        assert outcome.ok, outcome.render()
        assert outcome.streams_completed == 6
        assert outcome.streams_broken == 0

    def test_controller_promoted_the_standby(self, region_kill_outcome):
        assert region_kill_outcome.failed_over
        assert region_kill_outcome.records_lost == 0

    def test_survival_invariant_actually_checked(self, region_kill_outcome):
        v = verdict(region_kill_outcome,
                    "established-flows-survive-region-failover")
        assert v.ok
        assert v.checked == 6  # every stream was established pre-kill

    def test_promotion_was_legitimate(self, region_kill_outcome):
        assert verdict(region_kill_outcome, "no-split-brain-promotion").ok


class TestRegionKillAblation:
    """``--no-replication``: the standby promotes against an empty store,
    so every established stream must break -- deterministically."""

    def test_every_established_stream_breaks(self, ablation_outcome):
        outcome = ablation_outcome
        assert not outcome.replication
        assert not outcome.ok
        assert outcome.streams_completed == 0
        assert outcome.streams_broken == 6

    def test_survival_invariant_is_violated(self, ablation_outcome):
        v = verdict(ablation_outcome,
                    "established-flows-survive-region-failover")
        assert not v.ok
        assert v.violation_count == 6

    def test_promotion_still_happens(self, ablation_outcome):
        # failure detection and promotion are replication-independent;
        # only the *resume* step has nothing to work with
        assert ablation_outcome.failed_over

    def test_ablation_is_deterministic(self, ablation_outcome):
        again = run_scenario(get_scenario("region-kill"), lb="yoda",
                             seed=SEED, replication=False)
        assert again.trace_digest == ablation_outcome.trace_digest


class TestWanPartition:
    def test_partition_does_not_trigger_failover(self):
        outcome = run_scenario(get_scenario("wan-partition"), lb="yoda",
                               seed=SEED)
        assert outcome.ok, outcome.render()
        assert not outcome.failed_over  # promotion here would be split brain
        assert verdict(outcome, "no-split-brain-promotion").ok
        assert outcome.streams_completed == 4
        assert outcome.pages_loaded > 0


class TestRegionGrayFailure:
    def test_partial_site_failure_is_handled_in_region(self):
        outcome = run_scenario(get_scenario("region-gray-failure"),
                               lb="yoda", seed=SEED)
        assert outcome.ok, outcome.render()
        assert not outcome.failed_over
        assert outcome.streams_completed == 4


class TestFailoverExperiment:
    def test_quick_run_contrasts_replication_on_off(self):
        result = fig_failover.run_quick(seed=SEED)
        with_repl = result.rows[0]
        without = result.rows[-1]
        assert with_repl["failed_over"] and without["failed_over"]
        assert with_repl["streams"] == "3/3"
        assert without["streams"] == "0/3"
        assert without["bytes_lost"] > 0
        assert with_repl["bytes_lost"] == 0
