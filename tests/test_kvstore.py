"""Memcached substrate: hashing, server, replicating client."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KvStoreError
from repro.kvstore.client import MemcachedCluster, ReplicatingKvClient
from repro.kvstore.hashring import HashRing
from repro.kvstore.memcached import MemcachedServer
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng


class TestHashRing:
    def test_lookup_consistent(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.lookup("key1") == ring.lookup("key1")

    def test_all_nodes_reachable(self):
        ring = HashRing(["a", "b", "c"])
        owners = {ring.lookup(f"key-{i}") for i in range(500)}
        assert owners == {"a", "b", "c"}

    def test_lookup_n_distinct(self):
        ring = HashRing(["a", "b", "c", "d"])
        replicas = ring.lookup_n("some-key", 3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3

    def test_lookup_n_caps_at_ring_size(self):
        ring = HashRing(["a", "b"])
        assert len(ring.lookup_n("k", 5)) == 2

    def test_remove_only_remaps_removed_nodes_keys(self):
        ring = HashRing(["a", "b", "c", "d"])
        before = {f"k{i}": ring.lookup(f"k{i}") for i in range(300)}
        ring.remove("c")
        for key, owner in before.items():
            if owner != "c":
                assert ring.lookup(key) == owner

    def test_add_is_idempotent(self):
        ring = HashRing(["a"])
        ring.add("a")
        assert len(ring) == 1

    def test_empty_ring_raises(self):
        with pytest.raises(KeyError):
            HashRing([]).lookup("k")

    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_any_key_finds_an_owner(self, key):
        ring = HashRing(["a", "b", "c"])
        assert ring.lookup(key) in ("a", "b", "c")


@pytest.fixture
def cluster_world():
    loop = EventLoop()
    net = Network(loop, SeededRng(5), default_latency=FixedLatency(0.0002))
    servers = []
    for i in range(4):
        host = net.attach(Host(f"mc{i}", [f"10.2.0.{i + 1}"]))
        servers.append(MemcachedServer(host, loop))
    cluster = MemcachedCluster(servers)
    client_host = net.attach(Host("cli", ["10.1.0.1"]))
    kv = ReplicatingKvClient(client_host, loop, cluster, replicas=2,
                             op_timeout=0.05)
    client_host.set_handler(kv.handle_response)
    return loop, servers, cluster, kv


def run_op(loop, fn, *args):
    results = []
    fn(*args, results.append)
    loop.run(until=loop.now() + 1.0)
    assert results
    return results[0]


class TestMemcachedServer:
    def test_lru_eviction(self):
        loop = EventLoop()
        net = Network(loop, SeededRng(1))
        host = net.attach(Host("mc", ["10.2.0.1"]))
        server = MemcachedServer(host, loop, max_items=2)
        server._set("a", b"1")
        server._set("b", b"2")
        server._get("a")  # refresh a
        server._set("c", b"3")  # evicts b
        assert server.peek("a") and server.peek("c")
        assert server.peek("b") is None
        assert server.evictions == 1

    def test_recover_comes_back_empty(self):
        loop = EventLoop()
        net = Network(loop, SeededRng(1))
        host = net.attach(Host("mc", ["10.2.0.1"]))
        server = MemcachedServer(host, loop)
        server._set("a", b"1")
        server.fail()
        server.recover()
        assert server.peek("a") is None


class TestReplication:
    def test_set_writes_k_replicas(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        result = run_op(loop, kv.set, "key", b"value")
        assert result.ok
        holders = [s for s in servers if s.peek("key") == b"value"]
        assert len(holders) == 2

    def test_replicas_match_ring_choice(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, kv.set, "key", b"v")
        expected = set(cluster.replicas_for("key", 2))
        actual = {s.name for s in servers if s.peek("key")}
        assert actual == expected

    def test_get_roundtrip(self, cluster_world):
        loop, _, _, kv = cluster_world
        run_op(loop, kv.set, "k", b"data")
        result = run_op(loop, kv.get, "k")
        assert result.ok and result.value == b"data"

    def test_get_missing_key(self, cluster_world):
        loop, _, _, kv = cluster_world
        result = run_op(loop, kv.get, "ghost")
        assert not result.ok and result.value is None

    def test_delete_removes_all_replicas(self, cluster_world):
        loop, servers, _, kv = cluster_world
        run_op(loop, kv.set, "k", b"v")
        run_op(loop, kv.delete, "k")
        assert all(s.peek("k") is None for s in servers)

    def test_survives_one_replica_failure(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, kv.set, "k", b"v")
        holders = [s for s in servers if s.peek("k")]
        holders[0].fail()
        result = run_op(loop, kv.get, "k")
        assert result.ok and result.value == b"v"

    def test_lost_when_all_replicas_fail(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, kv.set, "k", b"v")
        for server in servers:
            if server.peek("k"):
                server.fail()
        result = run_op(loop, kv.get, "k")
        assert not result.ok

    def test_ring_update_reroutes_new_writes(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        dead = servers[0]
        dead.fail()
        cluster.mark_dead(dead.name)
        result = run_op(loop, kv.set, "any-key", b"v")
        assert result.ok
        # no timeout was needed: all targeted replicas were live
        assert result.replicas_answered == result.replicas_targeted

    def test_set_latency_reflects_max_of_replicas(self, cluster_world):
        loop, _, _, kv = cluster_world
        result = run_op(loop, kv.set, "k", b"v")
        # 2 network RTTs in parallel: latency ~ one RTT, never near timeout
        assert result.latency < 0.01

    def test_invalid_replicas(self, cluster_world):
        loop, servers, cluster, _ = cluster_world
        host = Host("x", ["10.9.0.1"])
        with pytest.raises(KvStoreError):
            ReplicatingKvClient(host, loop, cluster, replicas=0)

    def test_metrics_counters(self, cluster_world):
        loop, _, _, kv = cluster_world
        run_op(loop, kv.set, "k", b"v")
        run_op(loop, kv.get, "k")
        assert kv.metrics.counter("set_issued").value == 1
        assert kv.metrics.counter("get_ok").value == 1


class TestRetryHardening:
    def test_timeout_with_partial_answers_still_ok(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, kv.set, "k", b"v")
        holders = [s for s in servers if s.peek("k")]
        holders[0].fail()
        # set to the same replica pair: one answers, one is silent
        result = run_op(loop, kv.set, "k", b"v2")
        assert result.ok and result.replicas_answered == 1
        assert kv.metrics.counter("timeouts").value == 1

    def test_all_silent_replicas_trigger_retry(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        kv.dead_after_timeouts = 1  # one strike: timeout -> mark dead
        targets = cluster.replicas_for("k", 2)
        for server in servers:
            if server.name in targets:
                server.fail()
        # attempt 1 times out with zero answers; both silent targets are
        # marked dead, so the retry re-picks live replicas and succeeds
        result = run_op(loop, kv.set, "k", b"v")
        assert kv.metrics.counter("retries").value >= 1
        assert result.ok

    def test_backoff_grows_per_attempt(self, cluster_world):
        _, _, _, kv = cluster_world
        assert kv._timeout_for(2) == 2 * kv._timeout_for(1)

    def test_jitter_stretches_timeout(self, cluster_world):
        loop, servers, cluster, _ = cluster_world
        host = Host("cli2", ["10.1.0.2"])
        kv = ReplicatingKvClient(host, loop, cluster, op_timeout=0.05,
                                 rng=SeededRng(9))
        base = kv.op_timeout
        sampled = {kv._timeout_for(1) for _ in range(20)}
        assert all(base <= t <= base * 1.25 for t in sampled)
        assert len(sampled) > 1

    def test_consecutive_timeouts_mark_server_dead(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        dead = servers[0]
        dead.fail()
        marked = 0
        for i in range(40):
            key = f"key-{i}"
            if dead.name not in cluster.replicas_for(key, 2):
                continue
            run_op(loop, kv.set, key, b"v")
            if dead.name not in cluster.ring:
                marked = 1
                break
        assert marked == 1
        assert kv.metrics.counter("servers_marked_dead").value == 1

    def test_response_resets_timeout_streak(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        kv._consecutive_timeouts[servers[0].name] = 2
        key = next(f"k{i}" for i in range(100)
                   if servers[0].name in cluster.replicas_for(f"k{i}", 2))
        run_op(loop, kv.set, key, b"v")
        assert kv._consecutive_timeouts[servers[0].name] == 0


class TestHashRingRebalance:
    """Consistent hashing's contract under membership churn: adding or
    removing one node only moves (roughly) that node's share of keys, and
    a key's replica *set* never changes by more than one member."""

    KEYS = [f"flow-{i}" for i in range(400)]

    @given(st.integers(min_value=3, max_value=8), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_add_one_node_moves_at_most_its_share(self, n, salt):
        nodes = [f"node-{salt}-{i}" for i in range(n)]
        ring = HashRing(nodes)
        before = {k: ring.lookup(k) for k in self.KEYS}
        ring.add(f"node-{salt}-new")
        moved = sum(1 for k in self.KEYS if ring.lookup(k) != before[k])
        # fair share is 1/(n+1); allow vnode-variance slack
        assert moved / len(self.KEYS) <= 1.0 / (n + 1) + 0.15
        # every moved key moved *to* the new node, never between old ones
        for k in self.KEYS:
            if ring.lookup(k) != before[k]:
                assert ring.lookup(k) == f"node-{salt}-new"

    @given(st.integers(min_value=3, max_value=8), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_remove_one_node_moves_only_its_keys(self, n, salt):
        nodes = [f"node-{salt}-{i}" for i in range(n)]
        ring = HashRing(nodes)
        before = {k: ring.lookup(k) for k in self.KEYS}
        victim = nodes[salt % n]
        ring.remove(victim)
        share = sum(1 for o in before.values() if o == victim) / len(self.KEYS)
        assert share <= 1.0 / n + 0.15
        for k, owner in before.items():
            if owner != victim:
                assert ring.lookup(k) == owner

    @given(st.integers(min_value=3, max_value=8), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_lookup_n_changes_by_at_most_one_on_add(self, n, salt):
        nodes = [f"node-{salt}-{i}" for i in range(n)]
        ring = HashRing(nodes)
        before = {k: set(ring.lookup_n(k, 2)) for k in self.KEYS}
        ring.add(f"node-{salt}-new")
        for k in self.KEYS:
            after = set(ring.lookup_n(k, 2))
            assert len(before[k] - after) <= 1

    @given(st.integers(min_value=3, max_value=8), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_lookup_n_changes_by_at_most_one_on_remove(self, n, salt):
        nodes = [f"node-{salt}-{i}" for i in range(n)]
        ring = HashRing(nodes)
        before = {k: set(ring.lookup_n(k, 2)) for k in self.KEYS}
        victim = nodes[salt % n]
        ring.remove(victim)
        for k in self.KEYS:
            after = set(ring.lookup_n(k, 2))
            # the surviving replica stays in the set
            assert len(before[k] - after) <= 1
            assert before[k] - after <= {victim}


class TestVersioning:
    def test_version_newer_total_order(self):
        from repro.kvstore.memcached import version_newer
        assert version_newer((2, "a"), (1, "z"))
        assert version_newer((1, "b"), (1, "a"))  # writer id breaks ties
        assert version_newer((1, "a"), None)  # any stamp beats legacy
        assert not version_newer(None, (1, "a"))
        assert not version_newer(None, None)
        assert not version_newer((1, "a"), (1, "a"))

    def test_server_refuses_stale_set(self):
        loop = EventLoop()
        net = Network(loop, SeededRng(1))
        host = net.attach(Host("mc", ["10.2.0.1"]))
        server = MemcachedServer(host, loop)
        server._set("k", b"new", version=(3, "w1"))
        server._set("k", b"old", version=(2, "w0"))
        assert server.peek("k") == b"new"
        assert server.peek_version("k") == (3, "w1")
        assert server.stale_sets_refused == 1

    def test_unversioned_set_still_overwrites_unversioned(self):
        loop = EventLoop()
        net = Network(loop, SeededRng(1))
        host = net.attach(Host("mc", ["10.2.0.1"]))
        server = MemcachedServer(host, loop)
        server._set("k", b"one")
        server._set("k", b"two")
        assert server.peek("k") == b"two"

    def test_compare_and_delete_refuses_other_writers_record(self):
        # a recycled flow key: the dead incarnation's late teardown must
        # not destroy the live incarnation's record
        loop = EventLoop()
        net = Network(loop, SeededRng(1))
        host = net.attach(Host("mc", ["10.2.0.1"]))
        server = MemcachedServer(host, loop)
        server._set("k", b"live", version=(2, "w1"))
        assert not server._delete("k", version=(2, "w0"))
        assert not server._delete("k", version=(3, "w0"))  # newer stamp, still not ours
        assert server.peek("k") == b"live"
        assert server.stale_deletes_refused == 2

    def test_compare_and_delete_removes_exact_match(self):
        loop = EventLoop()
        net = Network(loop, SeededRng(1))
        host = net.attach(Host("mc", ["10.2.0.1"]))
        server = MemcachedServer(host, loop)
        server._set("k", b"v", version=(2, "w1"))
        assert server._delete("k", version=(2, "w1"))
        assert server.peek("k") is None
        assert not server._delete("k", version=(2, "w1"))  # already gone

    def test_unversioned_delete_is_unconditional(self):
        loop = EventLoop()
        net = Network(loop, SeededRng(1))
        host = net.attach(Host("mc", ["10.2.0.1"]))
        server = MemcachedServer(host, loop)
        server._set("k", b"v", version=(9, "w"))
        assert server._delete("k")
        server._set("k2", b"v")  # legacy unversioned record
        assert server._delete("k2", version=(1, "w"))  # versioned clears legacy

    def test_refused_set_reports_superseding_version(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, lambda cb: kv.set("k", b"ghost", cb, version=(5, "w0")))
        result = run_op(loop, lambda cb: kv.set("k", b"mine", cb,
                                                version=(1, "w1")))
        assert result.superseded_by == (5, "w0")

    def test_versioned_delete_travels_through_client(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, lambda cb: kv.set("k", b"v", cb, version=(3, "w")))
        holders = [s for s in servers if s.peek("k")]
        run_op(loop, lambda cb: kv.delete("k", cb, version=(2, "other")))
        assert all(s.peek("k") == b"v" for s in holders)  # refused everywhere
        run_op(loop, lambda cb: kv.delete("k", cb, version=(3, "w")))
        assert all(s.peek("k") is None for s in holders)

    def test_set_version_travels_to_replicas_and_back(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, lambda cb: kv.set("k", b"v", cb, version=(7, "w")))
        for s in servers:
            if s.peek("k"):
                assert s.peek_version("k") == (7, "w")
        result = run_op(loop, kv.get, "k")
        assert result.ok and result.version == (7, "w")


class TestNewestWinsAndReadRepair:
    def test_get_returns_newest_of_diverged_replicas(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, lambda cb: kv.set("k", b"old", cb, version=(1, "w")))
        # one replica silently diverges ahead (e.g. our view missed a write)
        holders = [s for s in servers if s.peek("k")]
        holders[0]._set("k", b"newest", version=(5, "w"))
        result = run_op(loop, kv.get, "k")
        assert result.ok and result.value == b"newest"
        assert result.version == (5, "w")

    def test_read_repair_refills_restarted_replica(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, lambda cb: kv.set("k", b"v", cb, version=(1, "w")))
        victim = next(s for s in servers if s.peek("k"))
        victim.fail()
        victim.recover()  # Memcached keeps nothing: back, but empty
        assert victim.peek("k") is None
        result = run_op(loop, kv.get, "k")
        assert result.ok and result.value == b"v"
        loop.run(until=loop.now() + 0.5)  # fire-and-forget repair write lands
        assert victim.peek("k") == b"v"
        assert victim.peek_version("k") == (1, "w")
        assert kv.metrics.counter("read_repairs").value >= 1

    def test_read_repair_can_be_disabled(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        kv.read_repair = False
        run_op(loop, lambda cb: kv.set("k", b"v", cb, version=(1, "w")))
        victim = next(s for s in servers if s.peek("k"))
        victim.fail()
        victim.recover()
        result = run_op(loop, kv.get, "k")
        assert result.ok
        loop.run(until=loop.now() + 0.5)
        assert victim.peek("k") is None


class TestHintedHandoff:
    def test_silent_replica_gets_hint_then_flush_on_return(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        targets = cluster.replicas_for("k", 2)
        victim = next(s for s in servers if s.name == targets[0])
        victim.fail()
        result = run_op(loop, lambda cb: kv.set("k", b"v", cb, version=(1, "w")))
        assert result.ok  # partial answers are enough
        assert kv.hint_count(victim.name) == 1
        cluster.mark_dead(victim.name)  # detection catches up with reality
        victim.recover()  # empty
        cluster.mark_live(victim.name)  # membership re-admits it -> flush
        loop.run(until=loop.now() + 0.5)
        assert victim.peek("k") == b"v"
        assert kv.hint_count(victim.name) == 0
        assert kv.metrics.counter("hints_flushed").value == 1

    def test_delete_supersedes_queued_hint(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        targets = cluster.replicas_for("k", 2)
        victim = next(s for s in servers if s.name == targets[0])
        victim.fail()
        run_op(loop, lambda cb: kv.set("k", b"v", cb, version=(1, "w")))
        assert kv.hint_count() == 1
        run_op(loop, kv.delete, "k")
        assert kv.hint_count() == 0
        victim.recover()
        cluster.mark_live(victim.name)
        loop.run(until=loop.now() + 0.5)
        assert victim.peek("k") is None

    def test_hint_queue_is_bounded(self, cluster_world):
        from repro.kvstore.client import MAX_HINTS_PER_SERVER
        loop, servers, cluster, kv = cluster_world
        for i in range(MAX_HINTS_PER_SERVER + 5):
            kv._add_hint("mc0", f"k{i}", (1, "w"), b"v")
        assert kv.hint_count("mc0") == MAX_HINTS_PER_SERVER
        assert kv.metrics.counter("hints_dropped").value == 5


class TestFailOpenAndPruning:
    def test_no_live_servers_fails_via_callback_not_exception(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        for s in servers:
            cluster.mark_dead(s.name)
        results = []
        kv.set("k", b"v", results.append)  # must not raise
        assert not results  # delivered asynchronously, not inline
        loop.run(until=loop.now() + 0.1)
        assert len(results) == 1 and not results[0].ok
        assert kv.metrics.counter("no_live_servers").value == 1

    def test_stale_straggler_cannot_complete_retried_op(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        done = []
        kv.set("k", b"v", done.append)
        req_id, pending = next(iter(kv._pending.items()))
        old_target = pending.targets[0]
        # as if the op timed out and the retry re-picked its replica set
        pending.attempts = 2
        pending.targets = [s.name for s in servers
                           if s.name != old_target][:2]
        pending.attempt_answered = set()
        kv._on_response({"server": old_target, "req_id": req_id,
                         "ok": True, "op": "set", "attempt": 1})
        # the stale ack contributes data but must not complete the op
        assert not pending.finished and not done
        for name in pending.targets:
            kv._on_response({"server": name, "req_id": req_id,
                             "ok": True, "op": "set", "attempt": 2})
        assert pending.finished and done and done[0].ok

    def test_remove_prunes_timeouts_hints_and_pending(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        victim = servers[0]
        kv._consecutive_timeouts[victim.name] = 2
        kv._add_hint(victim.name, "k", (1, "w"), b"v")
        cluster.remove(victim.name)
        assert victim.name not in kv._consecutive_timeouts
        assert kv.hint_count(victim.name) == 0
        assert victim.name not in cluster.servers
        assert victim.name not in cluster.ring

    def test_remove_releases_pending_op_waiting_on_server(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        key = "k"
        targets = cluster.replicas_for(key, 2)
        victim = next(s for s in servers if s.name == targets[0])
        other = next(s for s in servers if s.name == targets[1])
        victim.fail()
        done = []
        kv.set(key, b"v", done.append)
        loop.run(until=loop.now() + 0.01)  # the live replica answers
        assert not done  # still waiting on the dead one
        cluster.remove(victim.name)
        assert done and done[0].ok
        assert other.peek(key) == b"v"


class TestMembershipEpochs:
    def test_every_change_bumps_epoch_and_notifies(self, cluster_world):
        _, servers, cluster, _ = cluster_world
        events = []
        cluster.add_listener(lambda ev, name: events.append((ev, name)))
        e0 = cluster.epoch
        cluster.mark_dead(servers[0].name)
        cluster.mark_live(servers[0].name)
        cluster.remove(servers[1].name)
        assert cluster.epoch == e0 + 3
        assert events == [("dead", servers[0].name),
                          ("live", servers[0].name),
                          ("removed", servers[1].name)]

    def test_redundant_changes_do_not_bump(self, cluster_world):
        _, servers, cluster, _ = cluster_world
        e0 = cluster.epoch
        cluster.mark_live(servers[0].name)  # already live
        cluster.mark_dead("nonexistent")
        assert cluster.epoch == e0


class TestQuarantine:
    def test_mark_live_refused_during_quarantine(self, cluster_world):
        _, servers, cluster, _ = cluster_world
        cluster.mark_dead(servers[0].name, until=5.0)
        assert not cluster.mark_live(servers[0].name, now=1.0)
        assert servers[0].name not in cluster.ring

    def test_mark_live_allowed_after_quarantine(self, cluster_world):
        _, servers, cluster, _ = cluster_world
        cluster.mark_dead(servers[0].name, until=5.0)
        assert cluster.mark_live(servers[0].name, now=5.0)
        assert servers[0].name in cluster.ring

    def test_mark_dead_keeps_longest_quarantine(self, cluster_world):
        _, servers, cluster, _ = cluster_world
        cluster.mark_dead(servers[0].name, until=5.0)
        cluster.mark_dead(servers[0].name, until=3.0)
        assert not cluster.mark_live(servers[0].name, now=4.0)

    def test_mark_live_without_clock_is_unconditional(self, cluster_world):
        _, servers, cluster, _ = cluster_world
        cluster.mark_dead(servers[0].name, until=5.0)
        assert cluster.mark_live(servers[0].name)  # legacy caller, no clock
