"""Memcached substrate: hashing, server, replicating client."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KvStoreError
from repro.kvstore.client import MemcachedCluster, ReplicatingKvClient
from repro.kvstore.hashring import HashRing
from repro.kvstore.memcached import MemcachedServer
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng


class TestHashRing:
    def test_lookup_consistent(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.lookup("key1") == ring.lookup("key1")

    def test_all_nodes_reachable(self):
        ring = HashRing(["a", "b", "c"])
        owners = {ring.lookup(f"key-{i}") for i in range(500)}
        assert owners == {"a", "b", "c"}

    def test_lookup_n_distinct(self):
        ring = HashRing(["a", "b", "c", "d"])
        replicas = ring.lookup_n("some-key", 3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3

    def test_lookup_n_caps_at_ring_size(self):
        ring = HashRing(["a", "b"])
        assert len(ring.lookup_n("k", 5)) == 2

    def test_remove_only_remaps_removed_nodes_keys(self):
        ring = HashRing(["a", "b", "c", "d"])
        before = {f"k{i}": ring.lookup(f"k{i}") for i in range(300)}
        ring.remove("c")
        for key, owner in before.items():
            if owner != "c":
                assert ring.lookup(key) == owner

    def test_add_is_idempotent(self):
        ring = HashRing(["a"])
        ring.add("a")
        assert len(ring) == 1

    def test_empty_ring_raises(self):
        with pytest.raises(KeyError):
            HashRing([]).lookup("k")

    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_any_key_finds_an_owner(self, key):
        ring = HashRing(["a", "b", "c"])
        assert ring.lookup(key) in ("a", "b", "c")


@pytest.fixture
def cluster_world():
    loop = EventLoop()
    net = Network(loop, SeededRng(5), default_latency=FixedLatency(0.0002))
    servers = []
    for i in range(4):
        host = net.attach(Host(f"mc{i}", [f"10.2.0.{i + 1}"]))
        servers.append(MemcachedServer(host, loop))
    cluster = MemcachedCluster(servers)
    client_host = net.attach(Host("cli", ["10.1.0.1"]))
    kv = ReplicatingKvClient(client_host, loop, cluster, replicas=2,
                             op_timeout=0.05)
    client_host.set_handler(kv.handle_response)
    return loop, servers, cluster, kv


def run_op(loop, fn, *args):
    results = []
    fn(*args, results.append)
    loop.run(until=loop.now() + 1.0)
    assert results
    return results[0]


class TestMemcachedServer:
    def test_lru_eviction(self):
        loop = EventLoop()
        net = Network(loop, SeededRng(1))
        host = net.attach(Host("mc", ["10.2.0.1"]))
        server = MemcachedServer(host, loop, max_items=2)
        server._set("a", b"1")
        server._set("b", b"2")
        server._get("a")  # refresh a
        server._set("c", b"3")  # evicts b
        assert server.peek("a") and server.peek("c")
        assert server.peek("b") is None
        assert server.evictions == 1

    def test_recover_comes_back_empty(self):
        loop = EventLoop()
        net = Network(loop, SeededRng(1))
        host = net.attach(Host("mc", ["10.2.0.1"]))
        server = MemcachedServer(host, loop)
        server._set("a", b"1")
        server.fail()
        server.recover()
        assert server.peek("a") is None


class TestReplication:
    def test_set_writes_k_replicas(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        result = run_op(loop, kv.set, "key", b"value")
        assert result.ok
        holders = [s for s in servers if s.peek("key") == b"value"]
        assert len(holders) == 2

    def test_replicas_match_ring_choice(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, kv.set, "key", b"v")
        expected = set(cluster.replicas_for("key", 2))
        actual = {s.name for s in servers if s.peek("key")}
        assert actual == expected

    def test_get_roundtrip(self, cluster_world):
        loop, _, _, kv = cluster_world
        run_op(loop, kv.set, "k", b"data")
        result = run_op(loop, kv.get, "k")
        assert result.ok and result.value == b"data"

    def test_get_missing_key(self, cluster_world):
        loop, _, _, kv = cluster_world
        result = run_op(loop, kv.get, "ghost")
        assert not result.ok and result.value is None

    def test_delete_removes_all_replicas(self, cluster_world):
        loop, servers, _, kv = cluster_world
        run_op(loop, kv.set, "k", b"v")
        run_op(loop, kv.delete, "k")
        assert all(s.peek("k") is None for s in servers)

    def test_survives_one_replica_failure(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, kv.set, "k", b"v")
        holders = [s for s in servers if s.peek("k")]
        holders[0].fail()
        result = run_op(loop, kv.get, "k")
        assert result.ok and result.value == b"v"

    def test_lost_when_all_replicas_fail(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, kv.set, "k", b"v")
        for server in servers:
            if server.peek("k"):
                server.fail()
        result = run_op(loop, kv.get, "k")
        assert not result.ok

    def test_ring_update_reroutes_new_writes(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        dead = servers[0]
        dead.fail()
        cluster.mark_dead(dead.name)
        result = run_op(loop, kv.set, "any-key", b"v")
        assert result.ok
        # no timeout was needed: all targeted replicas were live
        assert result.replicas_answered == result.replicas_targeted

    def test_set_latency_reflects_max_of_replicas(self, cluster_world):
        loop, _, _, kv = cluster_world
        result = run_op(loop, kv.set, "k", b"v")
        # 2 network RTTs in parallel: latency ~ one RTT, never near timeout
        assert result.latency < 0.01

    def test_invalid_replicas(self, cluster_world):
        loop, servers, cluster, _ = cluster_world
        host = Host("x", ["10.9.0.1"])
        with pytest.raises(KvStoreError):
            ReplicatingKvClient(host, loop, cluster, replicas=0)

    def test_metrics_counters(self, cluster_world):
        loop, _, _, kv = cluster_world
        run_op(loop, kv.set, "k", b"v")
        run_op(loop, kv.get, "k")
        assert kv.metrics.counter("set_issued").value == 1
        assert kv.metrics.counter("get_ok").value == 1


class TestRetryHardening:
    def test_timeout_with_partial_answers_still_ok(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        run_op(loop, kv.set, "k", b"v")
        holders = [s for s in servers if s.peek("k")]
        holders[0].fail()
        # set to the same replica pair: one answers, one is silent
        result = run_op(loop, kv.set, "k", b"v2")
        assert result.ok and result.replicas_answered == 1
        assert kv.metrics.counter("timeouts").value == 1

    def test_all_silent_replicas_trigger_retry(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        kv.dead_after_timeouts = 1  # one strike: timeout -> mark dead
        targets = cluster.replicas_for("k", 2)
        for server in servers:
            if server.name in targets:
                server.fail()
        # attempt 1 times out with zero answers; both silent targets are
        # marked dead, so the retry re-picks live replicas and succeeds
        result = run_op(loop, kv.set, "k", b"v")
        assert kv.metrics.counter("retries").value >= 1
        assert result.ok

    def test_backoff_grows_per_attempt(self, cluster_world):
        _, _, _, kv = cluster_world
        assert kv._timeout_for(2) == 2 * kv._timeout_for(1)

    def test_jitter_stretches_timeout(self, cluster_world):
        loop, servers, cluster, _ = cluster_world
        host = Host("cli2", ["10.1.0.2"])
        kv = ReplicatingKvClient(host, loop, cluster, op_timeout=0.05,
                                 rng=SeededRng(9))
        base = kv.op_timeout
        sampled = {kv._timeout_for(1) for _ in range(20)}
        assert all(base <= t <= base * 1.25 for t in sampled)
        assert len(sampled) > 1

    def test_consecutive_timeouts_mark_server_dead(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        dead = servers[0]
        dead.fail()
        marked = 0
        for i in range(40):
            key = f"key-{i}"
            if dead.name not in cluster.replicas_for(key, 2):
                continue
            run_op(loop, kv.set, key, b"v")
            if dead.name not in cluster.ring:
                marked = 1
                break
        assert marked == 1
        assert kv.metrics.counter("servers_marked_dead").value == 1

    def test_response_resets_timeout_streak(self, cluster_world):
        loop, servers, cluster, kv = cluster_world
        kv._consecutive_timeouts[servers[0].name] = 2
        key = next(f"k{i}" for i in range(100)
                   if servers[0].name in cluster.replicas_for(f"k{i}", 2))
        run_op(loop, kv.set, key, b"v")
        assert kv._consecutive_timeouts[servers[0].name] == 0


class TestQuarantine:
    def test_mark_live_refused_during_quarantine(self, cluster_world):
        _, servers, cluster, _ = cluster_world
        cluster.mark_dead(servers[0].name, until=5.0)
        assert not cluster.mark_live(servers[0].name, now=1.0)
        assert servers[0].name not in cluster.ring

    def test_mark_live_allowed_after_quarantine(self, cluster_world):
        _, servers, cluster, _ = cluster_world
        cluster.mark_dead(servers[0].name, until=5.0)
        assert cluster.mark_live(servers[0].name, now=5.0)
        assert servers[0].name in cluster.ring

    def test_mark_dead_keeps_longest_quarantine(self, cluster_world):
        _, servers, cluster, _ = cluster_world
        cluster.mark_dead(servers[0].name, until=5.0)
        cluster.mark_dead(servers[0].name, until=3.0)
        assert not cluster.mark_live(servers[0].name, now=4.0)

    def test_mark_live_without_clock_is_unconditional(self, cluster_world):
        _, servers, cluster, _ = cluster_world
        cluster.mark_dead(servers[0].name, until=5.0)
        assert cluster.mark_live(servers[0].name)  # legacy caller, no clock
