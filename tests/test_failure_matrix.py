"""Systematic failure injection: the storage-before-ACK invariant.

The paper's guiding principle (Section 4.2): every packet a YODA instance
ACKs is persisted first, so an instance crash at *any* protocol step can
never lose acknowledged state.  These tests sweep failure times across
the whole flow lifetime (connection phase, tunneling, teardown) and
combine instance failures with store failures and control-plane events --
the flow must survive every time, and the chaos invariant monitor audits
every packet of every run while it does.
"""

import pytest

from repro.chaos.invariants import InvariantMonitor
from repro.experiments.harness import Testbed, TestbedConfig
from repro.http.client import BrowserClient


def make_bed(object_bytes=1_200_000, **overrides):
    defaults = dict(
        seed=77, lb="yoda", num_lb_instances=4, num_store_servers=3,
        num_backends=3, corpus="flat", flat_object_count=2,
        flat_object_bytes=object_bytes, client_jitter=0.0,
    )
    defaults.update(overrides)
    return Testbed(TestbedConfig(**defaults))


def start_fetch(bed, path="/obj/0.bin", timeout=30.0):
    results = []
    browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target(),
                            http_timeout=timeout)
    browser.fetch(path, results.append)
    return results


def fail_serving(bed):
    for inst in bed.yoda.instances:
        if inst.flows:
            inst.fail()
            return inst
    return None


def attach_monitor(bed):
    monitor = InvariantMonitor(bed)
    bed.network.add_trace(monitor)
    return monitor


def assert_invariants(bed, monitor):
    crashed = [i.name for i in bed.yoda.instances if i.host.failed]
    verdicts = monitor.finalize(strict_before=bed.loop.now(),
                                exclude_instances=crashed)
    bad = [str(v.violations[0]) for v in verdicts if not v.ok]
    assert not bad, f"invariant violations: {bad}"


# the client SYN leaves at t=1.0 (after settle); one-way latency 30 ms.
# This grid brackets every protocol step: before the SYN arrives, during
# storage-a, around the SYN-ACK, during header collection, during the
# server handshake + storage-b, early/mid/late tunneling.
FAIL_TIMES = [1.015, 1.031, 1.032, 1.06, 1.091, 1.093, 1.095, 1.12, 1.3,
              1.6, 2.0, 2.5]


@pytest.mark.parametrize("fail_at", FAIL_TIMES)
@pytest.mark.parametrize("kill_store", [False, True],
                         ids=["instance-only", "instance+store"])
def test_flow_survives_failure_at_any_step(fail_at, kill_store):
    bed = make_bed()
    monitor = attach_monitor(bed)
    results = start_fetch(bed)

    def strike():
        if kill_store:
            bed.yoda.store_servers[0].fail()
        fail_serving(bed)

    bed.loop.call_at(fail_at, strike)
    bed.run(120.0)
    assert results, f"no result for fail_at={fail_at}"
    assert results[0].ok, (
        f"flow broke for fail_at={fail_at}: {results[0].error}"
    )
    assert len(results[0].response.body) == 1_200_000
    assert results[0].retries_used == 0
    assert_invariants(bed, monitor)


def test_flow_survives_two_sequential_failures():
    """The recovered flow is itself recoverable (state re-persisted)."""
    bed = make_bed(num_lb_instances=6)
    results = start_fetch(bed)

    bed.loop.call_at(1.4, lambda: fail_serving(bed))
    bed.loop.call_at(4.5, lambda: fail_serving(bed))
    bed.run(180.0)
    assert results and results[0].ok


def test_flow_survives_store_replica_failure_mid_flow():
    """Killing one TCPStore replica mid-flow must not matter: reads fall
    to the surviving replica."""
    bed = make_bed()
    results = start_fetch(bed)

    def kill_one_store_then_instance():
        bed.yoda.store_servers[0].fail()
        bed.loop.call_later(1.0, lambda: fail_serving(bed))

    bed.loop.call_at(1.2, kill_one_store_then_instance)
    bed.run(120.0)
    assert results and results[0].ok


def test_new_flows_work_after_store_server_dies():
    bed = make_bed(object_bytes=30_000)
    bed.yoda.store_servers[0].fail()
    bed.run(1.5)  # monitor drops it from the ring
    results = start_fetch(bed)
    bed.run(20.0)
    assert results and results[0].ok


def test_failure_during_policy_update():
    """Instance failure and a policy change in the same window."""
    from repro.core.policy import weighted_split

    bed = make_bed()
    results = start_fetch(bed)

    def chaos():
        controller = bed.yoda.controller
        new = controller.policies[bed.vip].updated(
            rules=[weighted_split("only-1", "*", {"srv-1": 1.0})]
        )
        controller.update_policy(new)
        fail_serving(bed)

    bed.loop.call_at(1.4, chaos)
    bed.run(120.0)
    assert results and results[0].ok


def test_failure_during_graceful_removal_of_another_instance():
    bed = make_bed(num_lb_instances=6)
    results = start_fetch(bed)

    def chaos():
        serving = None
        for inst in bed.yoda.instances:
            if inst.flows:
                serving = inst
                break
        idle = next(i for i in bed.yoda.instances
                    if i is not serving and not i.host.failed)
        bed.yoda.controller.remove_instance(idle.name)
        if serving is not None:
            serving.fail()

    bed.loop.call_at(1.4, chaos)
    bed.run(120.0)
    assert results and results[0].ok


def test_recovered_instance_can_rejoin_and_serve():
    bed = make_bed(object_bytes=40_000)
    victim = fail_after_first = None
    results = start_fetch(bed)
    bed.run(10.0)
    assert results[0].ok
    victim = bed.yoda.instances[0]
    victim.fail()
    bed.run(2.0)
    victim.recover()
    bed.run(2.0)
    # the controller put it back into the mapping; new flows succeed
    more = start_fetch(bed, path="/obj/1.bin")
    bed.run(20.0)
    assert more and more[0].ok


def test_total_lb_outage_then_recovery():
    """Every instance dies; flows stall; instances return; client SYN
    retransmission (3 s) establishes service again with no app error for
    new requests."""
    bed = make_bed(object_bytes=30_000)
    for inst in bed.yoda.instances:
        inst.fail()
    results = start_fetch(bed)
    bed.loop.call_later(2.0, lambda: [i.recover() for i in bed.yoda.instances])
    bed.run(60.0)
    assert results and results[0].ok


def test_backend_crash_midflow_breaks_cleanly():
    """YODA does not (yet) replay requests to a new backend (paper
    footnote 3): a backend crash surfaces as a client-visible failure,
    never as a hang beyond the HTTP timeout."""
    bed = make_bed(object_bytes=3_000_000, num_backends=1)
    results = start_fetch(bed, timeout=15.0)
    bed.loop.call_at(1.08, bed.backends["srv-0"].fail)
    bed.run(90.0)
    assert results
    assert not results[0].ok
    assert results[0].latency <= 16.0
