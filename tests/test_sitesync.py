"""Cross-site flow-store replication: pacing, promotion, supersession."""

import pytest

from repro.kvstore.client import MemcachedCluster, ReplicatingKvClient
from repro.kvstore.memcached import MemcachedServer
from repro.kvstore.sitesync import SiteReplicator
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng

WAN = 0.020  # one-way relay -> standby-site latency


@pytest.fixture
def sites():
    """A relay in the primary site and a two-server standby cluster."""
    loop = EventLoop()
    net = Network(loop, SeededRng(7), default_latency=FixedLatency(WAN))
    servers = []
    for i in range(2):
        host = net.attach(Host(f"mc-s{i}", [f"10.6.0.{i + 1}"], site="dc2"))
        servers.append(MemcachedServer(host, loop))
    cluster = MemcachedCluster(servers)
    relay = net.attach(Host("sitesync-relay", ["10.7.0.1"], site="dc"))
    kv = ReplicatingKvClient(relay, loop, cluster, replicas=2,
                             op_timeout=0.25, read_repair=False,
                             hinted_handoff=False)
    relay.set_handler(kv.handle_response)
    rep = SiteReplicator(loop, kv, interval=0.05, rate=400.0, burst=80)
    rep.start()
    return loop, servers, rep


def holders(servers, key):
    return {s.name for s in servers if s.peek(key) is not None}


class TestShipping:
    def test_acked_write_reaches_standby_at_primary_version(self, sites):
        loop, servers, rep = sites
        rep.note("yoda:c:1.1.1.1:5:vip:80", b"state-1", (3, "yoda-0"))
        loop.run(until=1.0)
        assert rep.records_shipped == 1
        assert rep.backlog == 0
        for s in servers:
            assert s.peek("yoda:c:1.1.1.1:5:vip:80") == b"state-1"
            assert s.peek_version("yoda:c:1.1.1.1:5:vip:80") == (3, "yoda-0")

    def test_coalesces_rewrites_of_the_same_key(self, sites):
        loop, servers, rep = sites
        for i in range(5):
            rep.note("k", f"v{i}".encode(), (i + 1, "yoda-0"))
        loop.run(until=1.0)
        # five primary writes, one WAN ship -- the newest
        assert rep.records_shipped == 1
        assert servers[0].peek("k") == b"v4"

    def test_lag_reports_oldest_unshipped_age(self, sites):
        loop, servers, rep = sites
        rep.stop()  # no shipping: lag accrues
        rep.note("k", b"v", (1, "yoda-0"))
        loop.run(until=0.5)
        assert rep.lag() == pytest.approx(0.5)
        rep.note("k", b"v2", (2, "yoda-0"))  # coalesce keeps FIRST enqueue
        assert rep.lag() == pytest.approx(0.5)
        rep.start()
        loop.run(until=1.5)
        assert rep.lag() == 0.0
        assert rep.max_lag >= 0.5

    def test_pacing_bounds_ships_per_wakeup(self, sites):
        loop, servers, rep = sites
        for i in range(30):
            rep.note(f"k{i}", b"v", (1, "yoda-0"))
        # burst 80 covers all 30, so cap it tighter for the test
        rep.bucket.burst = 10
        rep.bucket.tokens = 10
        loop.run(until=loop.now() + 0.051)
        assert rep.records_shipped == 10
        loop.run(until=loop.now() + 1.0)
        assert rep.records_shipped == 30


class TestPromotion:
    def test_promote_counts_and_abandons_backlog(self, sites):
        loop, servers, rep = sites
        rep.stop()
        for i in range(7):
            rep.note(f"k{i}", b"v", (1, "yoda-0"))
        lost = rep.promote()
        assert lost == 7
        assert rep.backlog == 0
        # idempotent: a second promotion reports the same loss
        assert rep.promote() == 7

    def test_notes_after_promotion_are_ignored(self, sites):
        loop, servers, rep = sites
        rep.promote()
        rep.note("k", b"v", (1, "yoda-0"))
        rep.note_delete("k2", (1, "yoda-0"))
        loop.run(until=1.0)
        assert rep.backlog == 0
        assert rep.records_shipped == 0
        assert holders(servers, "k") == set()

    def test_dead_relay_ships_nothing(self, sites):
        loop, servers, rep = sites
        rep.note("k", b"v", (1, "yoda-0"))
        rep.kv.host.fail()
        loop.run(until=1.0)
        assert holders(servers, "k") == set()
        assert rep.backlog == 1  # the backlog IS the data loss at kill


class TestSupersession:
    """Recycled flow keys and post-failover writers must out-version the
    stale cross-site copies through ordinary newest-wins -- PR 2's
    machinery, no special cases."""

    def test_standby_writer_supersedes_replicated_record(self, sites):
        loop, servers, rep = sites
        rep.note("k", b"from-primary", (4, "yoda-0"))
        loop.run(until=1.0)
        # after promotion a standby instance re-stamps the same key higher
        servers[0].host  # (standby cluster is now authoritative)
        done = []
        rep.kv.set("k", b"from-standby", done.append, version=(5, "yoda-s-0"))
        loop.run(until=2.0)
        assert done and done[0].ok
        assert servers[0].peek("k") == b"from-standby"

    def test_late_stale_ship_loses_newest_wins(self, sites):
        loop, servers, rep = sites
        done = []
        rep.kv.set("k", b"new", done.append, version=(9, "yoda-s-0"))
        loop.run(until=1.0)
        # a laggy cross-site ship of the older incarnation arrives after
        rep.note("k", b"old", (2, "yoda-0"))
        loop.run(until=2.0)
        assert servers[0].peek("k") == b"new"
        assert servers[0].peek_version("k") == (9, "yoda-s-0")

    def test_delete_ships_as_compare_and_delete(self, sites):
        loop, servers, rep = sites
        rep.note("k", b"v", (3, "yoda-0"))
        loop.run(until=1.0)
        assert holders(servers, "k") != set()
        rep.note_delete("k", (3, "yoda-0"))
        loop.run(until=2.0)
        assert rep.deletes_shipped == 1
        assert holders(servers, "k") == set()

    def test_delete_refused_when_standby_holds_newer(self, sites):
        loop, servers, rep = sites
        done = []
        rep.kv.set("k", b"recycled", done.append, version=(8, "yoda-s-1"))
        loop.run(until=1.0)
        # the primary's teardown of the OLD incarnation must not delete
        # the standby's newer record for the recycled key
        rep.note_delete("k", (2, "yoda-0"))
        loop.run(until=2.0)
        assert servers[0].peek("k") == b"recycled"
