"""Controller: monitor detection, VIP lifecycle, scaling decisions."""

import pytest

from repro.core.controller import AutoscaleConfig, ControllerHealthView
from repro.core.policy import weighted_split
from repro.errors import ControllerError
from repro.experiments.harness import Testbed, TestbedConfig


def make_bed(**overrides):
    defaults = dict(seed=5, lb="yoda", num_lb_instances=3,
                    num_store_servers=2, num_backends=3, corpus="flat",
                    flat_object_count=2)
    defaults.update(overrides)
    return Testbed(TestbedConfig(**defaults))


class TestMonitor:
    def test_instance_failure_detected_within_monitor_interval(self):
        bed = make_bed()
        controller = bed.yoda.controller
        victim = bed.yoda.instances[0]
        victim.fail()
        bed.run(0.7)
        assert victim.name not in controller.live_instance_names()
        assert controller.metrics.counter("instance_failures_detected").value == 1

    def test_failed_instance_removed_from_l4_mapping(self):
        bed = make_bed()
        victim = bed.yoda.instances[0]
        victim.fail()
        bed.run(1.0)
        assert victim.ip not in bed.l4lb.mapping(bed.vip)

    def test_recovered_instance_rejoins_mapping(self):
        bed = make_bed()
        victim = bed.yoda.instances[0]
        victim.fail()
        bed.run(1.0)
        victim.recover()
        bed.run(1.0)
        assert victim.ip in bed.l4lb.mapping(bed.vip)

    def test_backend_failure_reflected_in_health_view(self):
        bed = make_bed()
        bed.backends["srv-1"].fail()
        bed.run(1.0)
        assert not bed.yoda.controller.health_view.is_healthy("srv-1")
        assert bed.yoda.controller.health_view.is_healthy("srv-0")

    def test_dead_memcached_removed_from_ring(self):
        bed = make_bed()
        dead = bed.yoda.store_servers[0]
        dead.fail()
        bed.run(1.0)
        assert dead.name not in bed.yoda.kv_cluster.ring

    def test_memcached_rejoin_on_recovery(self):
        bed = make_bed()
        dead = bed.yoda.store_servers[0]
        dead.fail()
        bed.run(1.0)
        dead.recover()
        bed.run(1.0)
        assert dead.name in bed.yoda.kv_cluster.ring

    def test_health_view_reports_backend_load(self):
        bed = make_bed()
        bed.backends["srv-0"].active_requests = 7
        bed.run(1.0)
        assert bed.yoda.controller.health_view.load("srv-0") == 7.0


class TestHealthViewHysteresis:
    def test_single_failed_probe_does_not_flap(self):
        view = ControllerHealthView(down_after=2, up_after=2)
        view.observe("b", False)
        assert view.is_healthy("b")

    def test_down_after_consecutive_failures(self):
        view = ControllerHealthView(down_after=2, up_after=2)
        view.observe("b", False)
        view.observe("b", False)
        assert not view.is_healthy("b")

    def test_interleaved_success_resets_fail_streak(self):
        view = ControllerHealthView(down_after=2, up_after=2)
        view.observe("b", False)
        view.observe("b", True)
        view.observe("b", False)
        assert view.is_healthy("b")

    def test_up_needs_consecutive_successes(self):
        view = ControllerHealthView(down_after=1, up_after=2)
        view.observe("b", False)
        assert not view.is_healthy("b")
        view.observe("b", True)
        assert not view.is_healthy("b")  # one success is not enough
        view.observe("b", True)
        assert view.is_healthy("b")

    def test_update_bypasses_hysteresis(self):
        view = ControllerHealthView(down_after=3, up_after=3)
        view.update("b", False, 0.0)
        assert not view.is_healthy("b")

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            ControllerHealthView(down_after=0)

    def test_lost_probes_do_not_flap_healthy_instances(self):
        # regression for the probe-loss chaos scenario: sporadic dropped
        # probes (below the down_after streak) must not unmap anything
        bed = make_bed()
        controller = bed.yoda.controller
        rng = controller._probe_rng
        interval = controller.monitor_interval / 2  # probe cadence

        real_random = rng.random

        def alternate_rounds():
            # whole probe rounds vanish on alternate ticks: a 50% loss
            # pattern in which no target ever sees down_after=2
            # consecutive losses
            lost = round(bed.loop.now() / interval) % 2 == 0
            return 0.0 if lost else 1.0

        rng.random = alternate_rounds
        controller.probe_loss_rate = 0.5
        try:
            bed.run(3.0)
        finally:
            rng.random = real_random
        assert controller.metrics.counter("probes_lost").value > 0
        assert set(controller.live_instance_names()) == {
            inst.name for inst in bed.yoda.instances
        }
        assert controller.metrics.counter(
            "instance_failures_detected").value == 0

    def test_real_failure_still_detected_under_probe_loss(self):
        bed = make_bed()
        controller = bed.yoda.controller
        controller.probe_loss_rate = 0.3
        victim = bed.yoda.instances[0]
        victim.fail()
        bed.run(3.0)
        assert victim.name not in controller.live_instance_names()


class TestVipLifecycle:
    def test_duplicate_vip_rejected(self):
        bed = make_bed()
        with pytest.raises(ControllerError):
            bed.yoda.controller.add_vip(bed.policy)

    def test_remove_vip_clears_everything(self):
        bed = make_bed()
        bed.yoda.controller.remove_vip(bed.vip)
        bed.run(0.5)
        assert bed.vip not in bed.yoda.controller.policies
        for inst in bed.yoda.instances:
            assert bed.vip not in inst.policies

    def test_remove_unknown_vip_rejected(self):
        bed = make_bed()
        with pytest.raises(ControllerError):
            bed.yoda.controller.remove_vip("100.9.9.9")

    def test_update_policy_bumps_version_on_instances(self):
        bed = make_bed()
        controller = bed.yoda.controller
        old_version = controller.policies[bed.vip].version
        new = controller.policies[bed.vip].updated(
            rules=[weighted_split("w", "*", {"srv-0": 1.0})]
        )
        controller.update_policy(new)
        for inst in bed.yoda.instances:
            assert inst.policies[bed.vip].version == old_version + 1

    def test_update_unknown_policy_rejected(self):
        from repro.core.policy import VipPolicy
        from repro.net.addresses import Endpoint

        bed = make_bed()
        ghost = VipPolicy(vip="100.9.9.9",
                          backends={"x": Endpoint("10.3.0.1", 80)},
                          rules=[weighted_split("w", "*", {"x": 1.0})])
        with pytest.raises(ControllerError):
            bed.yoda.controller.update_policy(ghost)

    def test_set_assignment_restricts_mapping(self):
        bed = make_bed()
        keep = [bed.yoda.instances[0].name]
        bed.yoda.controller.set_assignment(bed.vip, keep)
        bed.run(0.5)
        assert bed.l4lb.mapping(bed.vip) == [bed.yoda.instances[0].ip]


class TestInstanceLifecycle:
    def test_add_instance_joins_all_vips(self):
        bed = make_bed()
        spare = bed.yoda.new_spare_instance()
        bed.yoda.controller.add_instance(spare)
        bed.run(0.5)
        assert spare.ip in bed.l4lb.mapping(bed.vip)
        assert bed.vip in spare.policies

    def test_remove_instance_leaves_mapping(self):
        bed = make_bed()
        name = bed.yoda.instances[0].name
        bed.yoda.controller.remove_instance(name)
        bed.run(0.5)
        assert bed.yoda.instances[0].ip not in bed.l4lb.mapping(bed.vip)

    def test_remove_unknown_instance_rejected(self):
        bed = make_bed()
        with pytest.raises(ControllerError):
            bed.yoda.controller.remove_instance("ghost")

    def test_duplicate_instance_rejected(self):
        bed = make_bed()
        with pytest.raises(ControllerError):
            bed.yoda.controller.add_instance(bed.yoda.instances[0])


class TestAutoscaling:
    def test_scales_up_when_hot(self):
        bed = make_bed()
        controller = bed.yoda.controller
        spare = bed.yoda.new_spare_instance()
        controller.enable_autoscaling(AutoscaleConfig(
            high_watermark=0.5, target=0.4, check_interval=1.0,
        ))
        # keep every live instance artificially hot
        def burn():
            for name in controller.live_instance_names():
                controller.instances[name].cpu.execute(0.08)
            bed.loop.call_later(0.1, burn)

        burn()
        bed.run(3.0)
        assert controller.metrics.counter("scaled_up").value >= 1
        assert spare.ip in bed.l4lb.mapping(bed.vip)

    def test_no_scale_up_when_idle(self):
        bed = make_bed()
        controller = bed.yoda.controller
        bed.yoda.new_spare_instance()
        controller.enable_autoscaling(AutoscaleConfig(check_interval=1.0))
        bed.run(5.0)
        assert controller.metrics.counter("scaled_up").value == 0
