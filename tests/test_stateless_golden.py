"""Zero-perturbation gate for the compact stateless dispatch machinery.

An armed-but-disabled :class:`StatelessConfig` (``enabled=False``) makes
the control plane build compact tables on every mapping push and ride
the snapshots into every mux -- but dispatch must be untouched.  All of
that is pure stable-hash computation: no events scheduled, no simulation
randomness drawn.  This suite replays pinned golden-trace scenarios with
the machinery armed and demands bit-identical digests against the same
golden files the plain suites pin -- both the single-site corpus
(``tests/golden/``) and a multi-region entry (``tests/golden_region/``).

Like its qos and obs twins, this suite never skips: a missing golden
file is a hard failure.
"""

import dataclasses

import pytest

from repro.chaos.library import get_scenario
from repro.chaos.scenario import ScenarioEngine
from repro.l4lb.compact import DispatchMode, StatelessConfig
from tests.test_golden_traces import (
    GOLDEN_SEED,
    SCENARIO_VARIANTS,
    GoldenRecorder,
    first_divergence_report,
    load_golden,
)
from tests.test_region_golden import (
    REGION_VARIANTS,
    load_golden as load_region_golden,
)

# the cheap half of the single-site corpus -- covers mapping pushes,
# instance failure/flap (compact rebuilds on membership change), and the
# store-partition recovery machinery
STATELESS_GOLDEN_SCENARIOS = [
    "store-partition",
    "instance-flap",
    "probe-loss",
]

# one multi-region pin: a region kill re-pushes every mapping on the
# standby (its own compact builders), the worst case for a stray draw
STATELESS_REGION_SCENARIO = "region-kill"


def assert_armed_machinery_ran(engine, lb=None) -> None:
    """The config must have genuinely constructed and exercised the
    compact machinery, not been dropped on the floor.  ``lb`` defaults to
    the primary L4 LB; region tests pass the acting one (a failover swaps
    the controller onto the standby's LB, and the primary's snapshot is
    correctly dropped when its mapping empties)."""
    if lb is None:
        lb = engine.bed.yoda.l4lb
    assert lb.stateless is not None
    assert lb.mode is DispatchMode.STATEFUL  # armed, not enabled
    vips = lb.vips()
    assert vips
    for vip in vips:
        assert lb.compact_table(vip) is not None, (
            f"no compact snapshot was built for {vip}"
        )
        assert lb.compact_version(vip) >= 1
    # snapshots rode the pushes into every mux
    for mux in lb.muxes:
        for vip in vips:
            entry = mux.vips.get(vip)
            assert entry is not None and entry.compact is not None


@pytest.mark.parametrize("name", STATELESS_GOLDEN_SCENARIOS)
def test_armed_stateless_is_bit_identical(name):
    golden = load_golden(name)
    assert golden is not None, (
        f"no golden file for scenario {name!r}; generate with "
        f"GOLDEN_UPDATE=1 PYTHONPATH=src python -m pytest "
        f"tests/test_golden_traces.py first"
    )
    scenario = dataclasses.replace(
        get_scenario(name),
        stateless_config=StatelessConfig(),  # armed but disabled
        **SCENARIO_VARIANTS[name],
    )
    recorder = GoldenRecorder()
    engine = ScenarioEngine(scenario, lb="yoda", seed=GOLDEN_SEED,
                            taps=[recorder])
    outcome = engine.run()
    assert_armed_machinery_ran(engine)
    if (recorder.digest() != golden["digest"]
            or recorder.count != golden["record_count"]):
        pytest.fail(
            "armed stateless machinery perturbed the packet schedule\n"
            + first_divergence_report(name, golden, recorder),
            pytrace=False,
        )
    assert outcome.trace_digest == golden["engine_digest"]
    assert outcome.stateless is False  # armed is not enabled


def test_armed_stateless_is_bit_identical_region():
    name = STATELESS_REGION_SCENARIO
    golden = load_region_golden(name)
    assert golden is not None, (
        f"no golden file for region scenario {name!r}; generate with "
        f"GOLDEN_UPDATE=1 PYTHONPATH=src python -m pytest "
        f"tests/test_region_golden.py first"
    )
    spec = REGION_VARIANTS[name]
    scenario = dataclasses.replace(
        get_scenario(spec["scenario"]),
        stateless_config=StatelessConfig(),
    )
    recorder = GoldenRecorder()
    engine = ScenarioEngine(scenario, lb="yoda", seed=GOLDEN_SEED,
                            taps=[recorder], replication=spec["replication"])
    outcome = engine.run()
    # region-kill fails the primary over: the standby's L4 LB is the one
    # whose compact machinery must have run (and the controller's version
    # journal must have followed it)
    assert_armed_machinery_ran(engine, lb=engine.bed.yoda.controller.l4lb)
    assert engine.bed.yoda.controller.compact_versions
    if (recorder.digest() != golden["digest"]
            or recorder.count != golden["record_count"]):
        pytest.fail(
            "armed stateless machinery perturbed the region schedule\n"
            + first_divergence_report(name, golden, recorder),
            pytrace=False,
        )
    assert outcome.trace_digest == golden["engine_digest"]
    assert outcome.ok == golden["outcome_ok"]
    assert outcome.failed_over == golden["failed_over"]
