"""Zero-perturbation gate for the overload-control plane.

A constructed-but-idle qos plane (default :class:`QosConfig`: admission
disabled, breakers and limiter armed but never driven to act) must be
invisible to the packet schedule: every hot-path hook is a pure
computation over ``loop.now()`` -- no events scheduled, no randomness
drawn.  This suite replays pinned golden-trace scenarios with qos
enabled and demands bit-identical digests against the same golden files
``tests/test_golden_traces.py`` pins for the qos-less runs.

Like the obs-enabled twin in the main golden suite, these tests never
skip: a missing golden file is a hard failure.
"""

import dataclasses

import pytest

from repro.chaos.library import get_scenario
from repro.chaos.scenario import ScenarioEngine
from repro.qos.config import QosConfig
from tests.test_golden_traces import (
    GOLDEN_SEED,
    SCENARIO_VARIANTS,
    GoldenRecorder,
    first_divergence_report,
    load_golden,
)

# the cheap half of the pinned corpus -- enough to cover SYN admission,
# selection via BreakerView, kv latency_listener, and instance failure
QOS_GOLDEN_SCENARIOS = [
    "store-partition",
    "instance-flap",
    "probe-loss",
]


@pytest.mark.parametrize("name", QOS_GOLDEN_SCENARIOS)
def test_idle_qos_is_bit_identical(name):
    golden = load_golden(name)
    assert golden is not None, (
        f"no golden file for scenario {name!r}; generate with "
        f"GOLDEN_UPDATE=1 PYTHONPATH=src python -m pytest "
        f"tests/test_golden_traces.py first"
    )
    scenario = dataclasses.replace(
        get_scenario(name),
        qos_config=QosConfig(),  # armed but neutral
        **SCENARIO_VARIANTS[name],
    )
    recorder = GoldenRecorder()
    engine = ScenarioEngine(scenario, lb="yoda", seed=GOLDEN_SEED,
                            taps=[recorder])
    outcome = engine.run()
    # the plane really was constructed on every instance
    assert all(inst.qos is not None for inst in engine.bed.yoda.instances)
    if (recorder.digest() != golden["digest"]
            or recorder.count != golden["record_count"]):
        pytest.fail(
            "idle qos perturbed the packet schedule\n"
            + first_divergence_report(name, golden, recorder),
            pytrace=False,
        )
    assert outcome.trace_digest == golden["engine_digest"]
