"""Unit coverage for the TLS record helpers not exercised elsewhere."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HttpError
from repro.http import tls


class TestRecords:
    def test_client_hello_roundtrip(self):
        records = tls.TlsCodec().feed(tls.client_hello("my.site"))
        assert records == [(tls.CLIENT_HELLO, b"my.site")]

    def test_key_exchange_deterministic(self):
        assert tls.key_exchange("a") == tls.key_exchange("a")
        assert tls.key_exchange("a") != tls.key_exchange("b")

    def test_retry_ping_empty_payload(self):
        records = tls.TlsCodec().feed(tls.retry_ping())
        assert records == [(tls.RETRY_PING, b"")]

    def test_app_data_payload_preserved(self):
        payload = bytes(range(256))
        records = tls.TlsCodec().feed(tls.app_data(payload))
        assert records == [(tls.APP_DATA, payload)]

    def test_codec_buffers_partial_header(self):
        codec = tls.TlsCodec()
        wire = tls.app_data(b"xyz")
        assert codec.feed(wire[:3]) == []
        assert codec.buffered == 3
        assert codec.feed(wire[3:]) == [(tls.APP_DATA, b"xyz")]
        assert codec.buffered == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=100), min_size=1,
                    max_size=5),
           st.integers(1, 17))
    def test_any_chunking_preserves_record_stream(self, payloads, step):
        wire = b"".join(tls.app_data(p) for p in payloads)
        codec = tls.TlsCodec()
        records = []
        for i in range(0, len(wire), step):
            records.extend(codec.feed(wire[i:i + step]))
        assert [p for _, p in records] == payloads


class TestCertificate:
    def test_pem_framing(self):
        cert = tls.Certificate("example.org", size=2_000)
        assert cert.pem.startswith(b"-----BEGIN CERT example.org-----")
        assert cert.pem.endswith(b"-----END CERT-----")

    def test_distinct_names_distinct_bytes(self):
        a = tls.Certificate("a.example", size=1_000)
        b = tls.Certificate("b.example", size=1_000)
        assert a.pem != b.pem

    def test_tiny_size_clamped(self):
        cert = tls.Certificate("x", size=10)
        assert len(cert.pem) >= 10
