"""Controller high availability: lease election, fencing, journaled takeover.

The tentpole contract under test:

- N controller replicas compete for a fenced lease; exactly one acts.
- Every control decision carries the lease epoch; receivers reject
  stale-leader pushes (``StaleLeaderEpoch``).
- A new leader replays the journal and *finishes* the old leader's work
  (the drain handoff test is the canonical case).
- While leaderless the data plane is statically stable, and a dead
  singleton controller (``num_controllers=1``) leaves a measurable,
  unbounded outage window -- the ablation that prices the feature.
"""

import pytest

from repro.core.leader import FenceGate, LeaderToken
from repro.errors import ControllerError, StaleLeaderEpoch
from repro.experiments.harness import Testbed, TestbedConfig
from repro.qos.drain import DrainState


def make_bed(num_controllers=3, **overrides):
    defaults = dict(
        seed=77, lb="yoda", num_lb_instances=3, num_store_servers=3,
        num_backends=2, corpus="flat", flat_object_count=2,
        flat_object_bytes=40_000, client_jitter=0.0,
        num_controllers=num_controllers,
    )
    defaults.update(overrides)
    return Testbed(TestbedConfig(**defaults))


def acting(bed):
    return [r for r in bed.yoda.replica_set.replicas if r.acting()]


class TestFenceGate:
    def test_newer_epoch_accepted_then_stale_rejected(self):
        gate = FenceGate("mux-0")
        gate.admit(LeaderToken(1, "ctl-0"), "mapping", now=1.0)
        gate.admit(LeaderToken(2, "ctl-1"), "mapping", now=2.0)
        with pytest.raises(StaleLeaderEpoch):
            gate.admit(LeaderToken(1, "ctl-0"), "mapping", now=3.0)
        assert gate.epoch == 2 and gate.holder == "ctl-1"
        assert gate.rejected == 1

    def test_one_epoch_one_holder(self):
        gate = FenceGate("inst-0")
        gate.admit(LeaderToken(3, "ctl-2"), "policy", now=0.5)
        gate.admit(LeaderToken(3, "ctl-2"), "policy", now=0.6)  # same holder ok
        with pytest.raises(StaleLeaderEpoch):
            gate.admit(LeaderToken(3, "ghost"), "policy", now=0.7)

    def test_none_token_is_the_unreplicated_mode(self):
        gate = FenceGate("mux-1")
        gate.admit(None, "mapping", now=0.0)  # silently accepted
        assert gate.epoch == -1 and not gate.log


class TestElection:
    def test_exactly_one_leader_at_epoch_one(self):
        bed = make_bed()
        bed.run(1.0)
        leaders = acting(bed)
        assert len(leaders) == 1
        assert leaders[0].elector.epoch == 1
        followers = [r for r in bed.yoda.replica_set.replicas
                     if r not in leaders]
        assert all(r.elector.state == "follower" for r in followers)

    def test_ha_off_builds_the_historical_singleton(self):
        bed = make_bed(num_controllers=0)
        assert bed.yoda.replica_set is None
        assert bed.yoda.controller_replicas == []
        assert bed.yoda.controller is bed.yoda._controller

    def test_leader_kill_elects_successor_at_higher_epoch(self):
        bed = make_bed()
        bed.run(1.0)
        old = acting(bed)[0]
        t_kill = bed.loop.now()
        old.fail()
        bed.run(4.0)
        leaders = acting(bed)
        assert len(leaders) == 1
        assert leaders[0] is not old
        assert leaders[0].elector.epoch == 2
        windows = bed.yoda.replica_set.leaderless_windows(bed.loop.now())
        # the boot window plus the kill-to-takeover window, both closed
        assert len(windows) == 2
        start, stop = windows[-1]
        assert start == pytest.approx(t_kill) and stop < bed.loop.now()

    def test_recovered_old_leader_stays_follower(self):
        bed = make_bed()
        bed.run(1.0)
        old = acting(bed)[0]
        old.fail()
        bed.run(4.0)
        old.recover()
        bed.run(2.0)
        leaders = acting(bed)
        assert len(leaders) == 1 and leaders[0] is not old
        assert old.elector.state == "follower"

    def test_lease_store_outage_leader_keeps_acting_on_silence(self):
        from repro.chaos.faults import apply_fault, lease_store_outage
        bed = make_bed()
        bed.run(1.0)
        leader = acting(bed)[0]
        applied = apply_fault(bed, lease_store_outage(0.0))
        bed.run(0.9)  # shorter than the 1.5 s lease ttl
        assert leader.acting()
        assert leader.elector.metrics.counter(
            "lease_store_unavailable").value > 0
        applied.revert()
        # quarantines on the timed-out lease servers must lapse before
        # renewals (or a fresh claim) succeed again; either way the
        # control plane converges back to exactly one acting leader
        bed.run(5.0)
        assert len(acting(bed)) == 1


class TestFencing:
    def test_stale_token_rejected_by_l4lb(self):
        bed = make_bed()
        bed.run(1.0)
        ips = bed.l4lb.mapping(bed.vip)
        with pytest.raises(StaleLeaderEpoch):
            bed.l4lb.update_mapping(bed.vip, ips,
                                    token=LeaderToken(0, "ghost"))

    def test_stale_token_rejected_by_instance(self):
        bed = make_bed()
        bed.run(1.0)
        instance = bed.yoda.instances[0]
        with pytest.raises(StaleLeaderEpoch):
            instance.start_drain(token=LeaderToken(0, "ghost"))


class TestJournaledTakeover:
    def test_drain_started_by_leader_a_completes_under_leader_b(self):
        bed = make_bed()
        fleet = bed.streaming(4, chunks=40, chunk_bytes=1_000,
                              interval_ms=100, start_at=0.2)
        bed.run(1.2)
        rs = bed.yoda.replica_set
        leader_a = rs.acting_replica()
        busy = next(i for i in bed.yoda.instances if i.flows)
        status = leader_a.controller.drain_instance(busy.name, deadline=6.0)
        deadline_at = status.deadline_at
        leader_a.fail()
        bed.run(8.0)
        leader_b = rs.acting_replica()
        assert leader_b is not None and leader_b is not leader_a
        assert leader_b.elector.epoch == 2
        resumed = leader_b.controller._drainer.drains[busy.name]
        # the new leader finished the old leader's drain on the old
        # leader's absolute clock
        assert resumed.done and resumed.state is DrainState.DRAINED
        assert resumed.deadline_at == pytest.approx(deadline_at)
        assert busy.ip not in bed.l4lb.mapping(bed.vip)
        assert leader_b.controller.metrics.counter(
            "drains_completed").value >= 1
        assert fleet.completed() == 4 and fleet.broken() == 0

    def test_takeover_counters_adopted_from_journal(self):
        bed = make_bed()
        bed.run(1.2)
        rs = bed.yoda.replica_set
        leader_a = rs.acting_replica()
        leader_a.controller.drain_instance(bed.yoda.instances[0].name,
                                           deadline=1.0)
        bed.run(2.0)  # drain resolves under leader A
        started = leader_a.controller.metrics.counter("drains_started").value
        leader_a.fail()
        bed.run(4.0)
        leader_b = rs.acting_replica()
        assert leader_b.controller.metrics.counter(
            "drains_started").value >= started


class TestMonitorContainment:
    def test_monitor_keeps_ticking_through_exceptions(self):
        bed = make_bed(num_controllers=0)
        ctl = bed.yoda.controller
        bed.run(1.0)

        def boom():
            raise RuntimeError("probe wiring torn mid-tick")

        original, ctl._monitor_pass = ctl._monitor_pass, boom
        bed.run(2.0)  # several ticks, none may escape
        errors = ctl.metrics.counter("monitor_tick_errors").value
        assert errors >= 2
        ctl._monitor_pass = original
        bed.run(1.0)
        assert ctl.metrics.counter("monitor_tick_errors").value == errors


class TestForgetInstance:
    def test_drain_to_spare_then_readd_is_not_a_duplicate(self):
        bed = make_bed(num_controllers=0)
        bed.run(1.0)
        ctl = bed.yoda.controller
        name = bed.yoda.instances[0].name
        ctl.drain_instance(name, deadline=2.0, to_spare=True)
        bed.run(4.0)
        assert name not in ctl.instances
        spare = next(s for s in ctl.spares if s.name == name)
        ctl.spares.remove(spare)
        ctl.add_instance(spare)  # pre-fix: ControllerError("duplicate ...")
        assert name in ctl.instances

    def test_remove_instance_forgets_health_state(self):
        bed = make_bed(num_controllers=0)
        bed.run(1.0)
        ctl = bed.yoda.controller
        name = bed.yoda.instances[0].name
        ctl.remove_instance(name)
        assert name not in ctl.instances
        assert name not in ctl.active
        with pytest.raises(ControllerError, match="unknown instance"):
            ctl.remove_instance(name)


class TestScenarioAndAblation:
    def test_leader_kill_mid_drain_scenario_passes_both_invariants(self):
        from repro.chaos.library import get_scenario
        from repro.chaos.scenario import run_scenario
        outcome = run_scenario(get_scenario("ctrl-leader-kill-mid-drain"),
                               lb="yoda")
        assert outcome.ok
        by_name = {v.invariant: v for v in outcome.verdicts}
        leader = by_name["at-most-one-acting-leader"]
        stability = by_name["control-plane-static-stability"]
        assert leader.ok and leader.checked > 0
        assert stability.ok and stability.checked > 0

    def test_single_controller_ablation_has_unbounded_outage(self):
        from repro.experiments import fig_ctrl
        result = fig_ctrl.run_quick(seed=2016)
        ha, single = result.rows
        assert ha["config"] == "ha-3" and single["config"] == "single"
        assert single["outage_s"] > ha["outage_s"] > 0
        assert single["remap_s"] == "-"  # the dead instance is never removed
        assert isinstance(ha["remap_s"], float)
        assert ha["streams"] == "4/4"
        done, total = single["streams"].split("/")
        assert int(done) < int(total)
