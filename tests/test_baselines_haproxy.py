"""HAProxy baseline: proxying works; failure semantics match Section 2.3."""

import pytest

from repro.experiments.harness import Testbed, TestbedConfig
from repro.http.client import BrowserClient


def make_bed(**overrides):
    defaults = dict(seed=21, lb="haproxy", num_lb_instances=3,
                    num_store_servers=2, num_backends=3, corpus="flat",
                    flat_object_count=2, flat_object_bytes=40_000)
    defaults.update(overrides)
    return Testbed(TestbedConfig(**defaults))


def fetch(bed, path="/obj/0.bin", timeout=30.0, retries=0, deadline=120.0):
    results = []
    browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target(),
                            http_timeout=timeout, retries=retries)
    browser.fetch(path, results.append)
    bed.run(deadline)
    assert results
    return results[0]


def busy_proxy(bed):
    for proxy in bed.haproxy_instances:
        if proxy.stack.connections() and not proxy.host.failed:
            return proxy
    return None


class TestProxying:
    def test_basic_fetch_through_vip(self):
        bed = make_bed()
        result = fetch(bed)
        assert result.ok and len(result.response.body) == 40_000

    def test_backend_sees_proxy_ip_not_vip(self):
        bed = make_bed(trace_packets=True)
        fetch(bed)
        backend_rx = bed.trace.filter(point="srv-0", direction="rx")
        backend_rx += bed.trace.filter(point="srv-1", direction="rx")
        backend_rx += bed.trace.filter(point="srv-2", direction="rx")
        assert backend_rx
        for rec in backend_rx:
            assert rec.src.startswith("10.4."), rec  # proxy's own address

    def test_client_sees_vip(self):
        bed = make_bed(trace_packets=True)
        fetch(bed)
        for rec in bed.trace.filter(point="client-0", direction="rx"):
            assert rec.src.startswith("100.0.0.1:80")

    def test_rule_scan_recorded(self):
        bed = make_bed()
        fetch(bed)
        total = sum(p.requests_handled for p in bed.haproxy_instances)
        assert total == 1


class TestFailureSemantics:
    def test_midflow_failure_breaks_connection(self):
        bed = make_bed(flat_object_bytes=3_000_000)
        results = []
        browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target(),
                                http_timeout=10.0, retries=0)
        browser.fetch("/obj/0.bin", results.append)
        bed.loop.call_later(0.3, lambda: (
            busy_proxy(bed).fail() if busy_proxy(bed) else None))
        bed.run(60.0)
        assert results and not results[0].ok
        assert results[0].error == "timeout"

    def test_retry_succeeds_after_timeout(self):
        bed = make_bed(flat_object_bytes=3_000_000)
        results = []
        browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target(),
                                http_timeout=8.0, retries=1)
        browser.fetch("/obj/0.bin", results.append)
        bed.loop.call_later(0.3, lambda: (
            busy_proxy(bed).fail() if busy_proxy(bed) else None))
        bed.run(120.0)
        assert results and results[0].ok
        assert results[0].retries_used == 1
        assert results[0].latency > 8.0  # paid the full HTTP timeout

    def test_new_flows_avoid_dead_instance(self):
        bed = make_bed()
        dead = bed.haproxy_instances[0]
        dead.fail()
        bed.run(1.0)  # health check removes it for new flows
        for _ in range(6):
            assert fetch(bed, deadline=10.0).ok

    def test_unaffected_flows_keep_working_during_failure(self):
        bed = make_bed()
        dead = bed.haproxy_instances[0]
        dead.fail()
        bed.run(1.0)
        result = fetch(bed, deadline=10.0)
        assert result.ok

    def test_backend_failure_resets_client(self):
        bed = make_bed(flat_object_bytes=3_000_000, num_backends=1)
        results = []
        browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target(),
                                http_timeout=20.0, retries=0)
        browser.fetch("/obj/0.bin", results.append)
        # fail while the response is still streaming out of the backend
        # (the proxy-to-backend path is fast, so this must happen early)
        bed.loop.call_later(0.075, bed.backends["srv-0"].fail)
        bed.run(90.0)
        assert results and not results[0].ok
