"""The overload-control plane: admission units, AIMD limiter, SNAT
exhaustion, SYN-stage shedding, and drain-based scale-in."""

import pytest

from repro.errors import SnatExhausted
from repro.experiments.harness import Testbed, TestbedConfig
from repro.l4lb.snat import SnatAllocator
from repro.qos.admission import AdmissionController, TokenBucket
from repro.qos.concurrency import AdaptiveConcurrencyLimiter
from repro.qos.config import HardeningConfig, QosConfig
from repro.qos.plane import InstanceQos
from repro.sim.metrics import MetricRegistry


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=10.0, capacity=5.0, now=0.0)
        assert bucket.level(0.0) == 1.0
        for _ in range(5):
            assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_lazy_refill_caps_at_capacity(self):
        bucket = TokenBucket(rate=10.0, capacity=5.0, now=0.0)
        for _ in range(5):
            bucket.try_take(0.0)
        assert bucket.try_take(0.2)  # 2 tokens refilled
        assert bucket.level(100.0) == 1.0  # capped

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=5.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)


class TestAdmission:
    def test_disabled_rate_admits_everything(self):
        ctl = AdmissionController(QosConfig())  # admission_rate=None
        for i in range(1000):
            assert ctl.admit("1.2.3.4", "172.16.0.1", float(i)).admitted
        assert ctl.admitted == 1000 and ctl.shed_total() == 0

    def test_rate_shed_when_bucket_empty(self):
        ctl = AdmissionController(QosConfig(admission_rate=10.0,
                                            admission_burst=3.0))
        decisions = [ctl.admit("v", "172.16.0.1", 0.0) for _ in range(5)]
        assert [d.admitted for d in decisions] == [True] * 3 + [False] * 2
        assert decisions[-1].reason == "rate"
        assert ctl.shed_by_reason == {"rate": 2}

    def test_tier_classification_first_match_wins(self):
        ctl = AdmissionController(QosConfig(
            client_tiers=(("172.16.9.", 2), ("172.16.", 1))))
        assert ctl.classify("172.16.9.5") == 2
        assert ctl.classify("172.16.0.5") == 1
        assert ctl.classify("10.0.0.1") == 0

    def test_low_tier_shed_at_floor_high_tier_admitted(self):
        cfg = QosConfig(admission_rate=10.0, admission_burst=10.0,
                        tier_floors=(0.0, 0.0, 0.6),
                        client_tiers=(("172.16.9.", 2),))
        ctl = AdmissionController(cfg)
        # drain the bucket to 50% with tier-0 traffic
        for _ in range(5):
            assert ctl.admit("v", "172.16.0.1", 0.0).admitted
        refused = ctl.admit("v", "172.16.9.1", 0.0)
        assert not refused.admitted
        assert refused.reason == "tier" and refused.tier == 2
        # tier 0 still gets the reserved tokens
        assert ctl.admit("v", "172.16.0.1", 0.0).admitted

    def test_buckets_are_per_vip(self):
        ctl = AdmissionController(QosConfig(admission_rate=10.0,
                                            admission_burst=1.0))
        assert ctl.admit("vip-a", "c", 0.0).admitted
        assert not ctl.admit("vip-a", "c", 0.0).admitted
        assert ctl.admit("vip-b", "c", 0.0).admitted


class TestLimiter:
    def test_acquire_release_bounds_inflight(self):
        lim = AdaptiveConcurrencyLimiter(QosConfig(limiter_initial=2))
        assert lim.try_acquire() and lim.try_acquire()
        assert not lim.try_acquire()
        lim.release()
        assert lim.try_acquire()

    def test_no_target_means_static_limit(self):
        lim = AdaptiveConcurrencyLimiter(QosConfig(limiter_initial=4))
        lim.observe(99.0, ok=False, now=1.0)
        assert lim.limit == 4.0 and lim.decreases == 0

    def test_multiplicative_decrease_respects_cooldown(self):
        lim = AdaptiveConcurrencyLimiter(QosConfig(
            limiter_initial=100, limiter_latency_target=0.05,
            limiter_backoff=0.5, limiter_cooldown=1.0))
        lim.observe(0.2, ok=True, now=0.0)
        assert lim.limit == 50.0
        lim.observe(0.2, ok=True, now=0.5)  # inside cooldown
        assert lim.limit == 50.0 and lim.decreases == 1
        lim.observe(0.01, ok=False, now=1.5)  # failure also decreases
        assert lim.limit == 25.0 and lim.decreases == 2

    def test_decrease_clamps_at_floor(self):
        lim = AdaptiveConcurrencyLimiter(QosConfig(
            limiter_initial=10, limiter_min=8,
            limiter_latency_target=0.05, limiter_backoff=0.1,
            limiter_cooldown=0.0))
        lim.observe(1.0, ok=True, now=0.0)
        assert lim.limit == 8.0

    def test_additive_increase_after_healthy_window(self):
        lim = AdaptiveConcurrencyLimiter(QosConfig(
            limiter_initial=3, limiter_latency_target=0.05,
            limiter_increase=1.0))
        for i in range(3):
            lim.observe(0.01, ok=True, now=float(i))
        assert lim.limit == 4.0 and lim.increases == 1


class TestInstanceQos:
    def make(self, **kw):
        return InstanceQos(QosConfig(**kw), clock=lambda: 0.0,
                           metrics=MetricRegistry("test"), name="yoda-t")

    def test_concurrency_refusal_and_release(self):
        qos = self.make(limiter_initial=1)
        assert qos.admit_syn("v", "172.16.0.1").admitted
        refused = qos.admit_syn("v", "172.16.0.1")
        assert not refused.admitted and refused.reason == "concurrency"
        qos.release_slot()
        assert qos.admit_syn("v", "172.16.0.1").admitted

    def test_view_is_cached_per_inner(self):
        qos = self.make()
        inner = object.__new__(object)
        assert qos.view(inner) is qos.view(inner)

    def test_breakers_off_returns_inner_view(self):
        qos = self.make(breaker_enabled=False)
        inner = object()
        assert qos.view(inner) is inner


class TestHardeningConfig:
    def test_defaults_equal_historical_constants(self):
        h = HardeningConfig()
        assert (h.monitor_interval, h.down_after, h.up_after) == (0.6, 2, 2)
        assert (h.kv_op_timeout, h.kv_max_retries) == (0.1, 2)
        assert (h.kv_dead_after_timeouts, h.kv_quarantine) == (3, 1.0)

    def test_bundle_overrides_scattered_knobs(self):
        from repro.core.service import YodaServiceConfig
        cfg = YodaServiceConfig(hardening=HardeningConfig(
            monitor_interval=0.3, kv_op_timeout=0.05))
        assert cfg.monitor_interval == 0.3
        assert cfg.kv_op_timeout == 0.05
        assert cfg.down_after == 2  # untouched default rides along


class TestSnatExhaustion:
    def test_exhaustion_is_typed_and_counted(self):
        alloc = SnatAllocator(base=60000, range_size=3000)
        alloc.ensure_range("vip", "10.1.0.1")  # [60000, 63000)
        with pytest.raises(SnatExhausted) as exc:
            alloc.ensure_range("vip", "10.1.0.2")  # would cross 65000
        assert exc.value.vip == "vip"
        assert exc.value.instance_ip == "10.1.0.2"
        assert "SNAT port space exhausted" in str(exc.value)
        assert alloc.exhaustions == 1
        # other VIPs have their own port space
        assert alloc.ensure_range("vip2", "10.1.0.2") == (60000, 63000)

    def test_default_range_fills_after_21_instances(self):
        alloc = SnatAllocator()
        for i in range(21):  # (65000 - 1024) // 3000
            alloc.ensure_range("vip", f"10.1.0.{i + 1}")
        with pytest.raises(SnatExhausted):
            alloc.ensure_range("vip", "10.1.0.99")


def small_bed(**overrides):
    defaults = dict(
        seed=11, lb="yoda", num_lb_instances=3, num_store_servers=2,
        num_backends=2, corpus="flat", flat_object_bytes=40_000,
        flat_object_count=4,
    )
    defaults.update(overrides)
    return Testbed(TestbedConfig(**defaults))


class TestShedding:
    def test_overload_is_shed_at_syn_time_with_fast_rsts(self):
        bed = small_bed(qos=QosConfig(admission_rate=4.0,
                                      admission_burst=4.0))
        gen = bed.open_loop(rate=80.0, http_timeout=5.0)
        bed.run(2.0)
        gen.stop()
        bed.run(1.0)
        sheds = sum(
            inst.metrics.counters["syns_shed"].value
            for inst in bed.yoda.instances
            if "syns_shed" in inst.metrics.counters
        )
        assert sheds > 0
        assert gen.failure_count() > 0  # refusals are client-visible...
        assert gen.ok_count() > 0  # ...but admitted requests complete
        # a shed is a stateless RST: the client learns immediately, it
        # does not burn the 5 s timeout
        slowest = max(r.latency for r in gen.results if not r.ok)
        assert slowest < 1.0

    def test_idle_qos_never_sheds(self):
        bed = small_bed(qos=QosConfig())
        gen = bed.open_loop(rate=20.0)
        bed.run(2.0)
        gen.stop()
        bed.run(1.0)
        assert gen.failure_count() == 0
        for inst in bed.yoda.instances:
            assert "syns_shed" not in inst.metrics.counters


class TestDrain:
    def test_graceful_drain_completes_and_breaks_nothing(self):
        bed = small_bed()
        procs = bed.closed_loop(2, http_timeout=5.0)
        bed.run(1.0)
        victim = bed.yoda.instances[0].name
        status = bed.yoda.controller.drain_instance(victim)
        bed.run(6.0)
        for proc in procs:
            proc.stop()
        bed.run(3.0)
        assert status.done and status.state.value == "drained"
        ctl = bed.yoda.controller
        assert ctl.metrics.counters["drains_completed"].value == 1
        assert victim not in ctl.live_instance_names()
        assert not bed.yoda.instance_by_name(victim).flows
        assert sum(p.broken_pages for p in procs) == 0
        assert sum(p.pages_loaded for p in procs) > 0

    def test_deadline_forces_handoff_without_breaking_flows(self):
        # huge objects: transfers outlive the deadline, so the drain is
        # forced and the remaining flows migrate through TCPStore
        bed = small_bed(flat_object_bytes=3_000_000, num_lb_instances=2,
                        client_one_way_latency=0.080)
        procs = bed.closed_loop(2, http_timeout=30.0)
        bed.run(1.0)
        victim = bed.yoda.instances[0].name
        had_flows = len(bed.yoda.instance_by_name(victim).flows)
        status = bed.yoda.controller.drain_instance(victim, deadline=0.5)
        bed.run(20.0)
        for proc in procs:
            proc.stop()
        bed.run(8.0)
        ctl = bed.yoda.controller
        if had_flows:
            assert status.state.value == "forced"
            assert status.flows_handed_off > 0
            assert ctl.metrics.counters["drains_forced"].value == 1
        assert sum(p.broken_pages for p in procs) == 0
        assert sum(p.pages_loaded for p in procs) > 0

    def test_cannot_drain_the_last_instance(self):
        bed = small_bed(num_lb_instances=1)
        with pytest.raises(Exception):
            bed.yoda.controller.drain_instance(bed.yoda.instances[0].name)

    def test_draining_instance_refuses_new_syns_silently(self):
        bed = small_bed()
        victim = bed.yoda.instance_by_name(bed.yoda.instances[0].name)
        victim.start_drain()
        assert victim.draining


class TestFlashCrowdScenario:
    def test_flash_crowd_passes_with_real_shedding(self):
        from repro.chaos.library import get_scenario
        from repro.chaos.scenario import ScenarioEngine

        engine = ScenarioEngine(get_scenario("flash-crowd"), lb="yoda",
                                seed=2016)
        outcome = engine.run()
        assert outcome.ok, outcome.render()
        sheds = sum(
            inst.metrics.counters["syns_shed"].value
            for inst in engine.bed.yoda.instances
            if "syns_shed" in inst.metrics.counters
        )
        assert sheds > 100  # the surge was genuinely refused
        ctl = engine.bed.yoda.controller.metrics.counters
        assert ctl["drains_completed"].value == 1
        nar = next(v for v in outcome.verdicts
                   if v.invariant == "no-accepted-request-dropped")
        assert nar.ok and nar.checked > 0


class TestChaosListCli:
    def test_list_flag(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "flash-crowd" in out and "store-partition" in out
        assert "surge" in out  # timelines are printed too

    def test_bare_chaos_lists_instead_of_crashing(self, capsys):
        from repro.cli import main

        assert main(["chaos"]) == 0
        assert "flash-crowd" in capsys.readouterr().out
