"""The exact solver as an optimality oracle for the heuristics."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.assignment import (
    AssignmentProblem, IlpSolver, InstanceSpec, VipSpec,
    solve_greedy, validate_assignment,
)
from repro.core.assignment.exact import solve_exact
from repro.errors import InfeasibleError


def small_problem(seed, n_vips=6, n_inst=6):
    rnd = random.Random(seed)
    vips = [
        VipSpec(f"v{i}", traffic=rnd.uniform(5, 60), rules=rnd.randint(10, 900),
                replicas=rnd.randint(1, 2))
        for i in range(n_vips)
    ]
    instances = [InstanceSpec(f"y{i}", 100.0, 2000) for i in range(n_inst)]
    return AssignmentProblem(vips=vips, instances=instances)


class TestExactSolver:
    def test_finds_obvious_optimum(self):
        # 4 tiny VIPs fit one instance
        prob = AssignmentProblem(
            vips=[VipSpec(f"v{i}", 10, 100, 1) for i in range(4)],
            instances=[InstanceSpec(f"y{i}", 100.0, 2000) for i in range(4)],
        )
        assignment = solve_exact(prob)
        assert assignment.num_instances_used() == 1
        assert validate_assignment(prob, assignment).ok

    def test_respects_replicas(self):
        prob = AssignmentProblem(
            vips=[VipSpec("v", 10, 100, 3)],
            instances=[InstanceSpec(f"y{i}", 100.0, 2000) for i in range(4)],
        )
        assignment = solve_exact(prob)
        assert assignment.num_instances_used() == 3

    def test_rule_capacity_forces_spread(self):
        prob = AssignmentProblem(
            vips=[VipSpec(f"v{i}", 1, 1500, 1) for i in range(3)],
            instances=[InstanceSpec(f"y{i}", 100.0, 2000) for i in range(4)],
        )
        assert solve_exact(prob).num_instances_used() == 3

    def test_infeasible_raises(self):
        prob = AssignmentProblem(
            vips=[VipSpec("v", 500, 100, 2)],
            instances=[InstanceSpec(f"y{i}", 100.0, 2000) for i in range(2)],
        )
        with pytest.raises(InfeasibleError):
            solve_exact(prob)

    def test_too_large_rejected(self):
        prob = AssignmentProblem(
            vips=[VipSpec(f"v{i}", 1, 1, 1) for i in range(20)],
            instances=[InstanceSpec(f"y{i}", 100.0, 2000) for i in range(8)],
        )
        with pytest.raises(ValueError):
            solve_exact(prob)


class TestHeuristicOptimalityGap:
    @pytest.mark.parametrize("seed", range(8))
    def test_greedy_within_two_of_optimal(self, seed):
        prob = small_problem(seed)
        optimal = solve_exact(prob).num_instances_used()
        greedy = solve_greedy(prob).num_instances_used()
        assert optimal <= greedy <= optimal + 2

    @pytest.mark.parametrize("seed", range(4))
    def test_lp_rounding_within_one_of_optimal(self, seed):
        prob = small_problem(seed)
        optimal = solve_exact(prob).num_instances_used()
        lp = IlpSolver(enforce_update_constraints=False).solve(prob)
        assert optimal <= lp.num_instances_used() <= optimal + 1

    def test_exact_never_beats_lp_lower_bound(self):
        for seed in range(4):
            prob = small_problem(seed)
            solver = IlpSolver(enforce_update_constraints=False)
            solver.solve(prob)
            optimal = solve_exact(prob).num_instances_used()
            assert optimal >= solver.lp_lower_bound - 1e-6
