"""Seeded RNG determinism and distribution helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.random import SeededRng, stable_hash32, stable_hash64


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SeededRng(7)
        b = SeededRng(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert SeededRng(1).random() != SeededRng(2).random()

    def test_forks_are_independent(self):
        root = SeededRng(7)
        a = root.fork("a")
        # consuming from one fork does not perturb a freshly made sibling
        a.random()
        b1 = root.fork("b").random()
        b2 = SeededRng(7).fork("b").random()
        assert b1 == b2

    def test_fork_names_namespace(self):
        root = SeededRng(7)
        assert root.fork("x").random() != root.fork("y").random()

    def test_nested_forks(self):
        v1 = SeededRng(7).fork("a").fork("b").random()
        v2 = SeededRng(7).fork("a").fork("b").random()
        assert v1 == v2


class TestStableHash:
    def test_is_process_independent_fixture(self):
        # pinned values: if these change, every recorded ISN changes too
        assert stable_hash32("hello") == stable_hash32("hello")
        assert stable_hash32("hello") != stable_hash32("hello", salt="x")

    def test_range_32(self):
        for s in ("a", "b", "c", "longer-string"):
            assert 0 <= stable_hash32(s) < 2**32

    def test_range_64(self):
        assert 0 <= stable_hash64("key") < 2**64

    @given(st.text(max_size=50))
    def test_deterministic_for_any_text(self, text):
        assert stable_hash32(text) == stable_hash32(text)


class TestDistributions:
    def test_zipf_weights_normalized_and_decreasing(self):
        weights = SeededRng(1).zipf_weights(100, 1.0)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert all(weights[i] >= weights[i + 1] for i in range(99))

    def test_bounded_pareto_in_bounds(self):
        rng = SeededRng(3)
        for _ in range(200):
            x = rng.bounded_pareto(1.2, 10.0, 1000.0)
            assert 10.0 <= x <= 1000.0

    def test_bounded_pareto_invalid_bounds(self):
        with pytest.raises(ValueError):
            SeededRng(1).bounded_pareto(1.0, 10.0, 5.0)

    def test_weighted_choice_respects_zero_weight(self):
        rng = SeededRng(4)
        for _ in range(50):
            assert rng.weighted_choice(["a", "b"], [1.0, 0.0]) == "a"

    def test_isn_for_is_stable_and_32bit(self):
        rng = SeededRng(5)
        isn = rng.isn_for("1.2.3.4:80-5.6.7.8:1234")
        assert isn == SeededRng(99).isn_for("1.2.3.4:80-5.6.7.8:1234")
        assert 0 <= isn < 2**32

    def test_expovariate_positive(self):
        rng = SeededRng(6)
        samples = [rng.expovariate(10.0) for _ in range(100)]
        assert all(s >= 0 for s in samples)
        assert 0.02 < sum(samples) / 100 < 0.5  # mean ~0.1
