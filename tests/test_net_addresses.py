"""Endpoints, four-tuples and address allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.net.addresses import Endpoint, EphemeralPorts, FourTuple, IpAllocator, validate_ip


class TestValidateIp:
    def test_accepts_valid(self):
        assert validate_ip("10.0.0.1") == "10.0.0.1"
        assert validate_ip("255.255.255.255")

    @pytest.mark.parametrize("bad", ["256.0.0.1", "1.2.3", "a.b.c.d", "", "1.2.3.4.5"])
    def test_rejects_invalid(self, bad):
        with pytest.raises(AddressError):
            validate_ip(bad)


class TestEndpoint:
    def test_str_roundtrip(self):
        ep = Endpoint("10.0.0.1", 80)
        assert Endpoint.parse(str(ep)) == ep

    def test_parse_rejects_garbage(self):
        with pytest.raises(AddressError):
            Endpoint.parse("10.0.0.1")
        with pytest.raises(AddressError):
            Endpoint.parse("10.0.0.1:notaport")

    def test_invalid_port(self):
        with pytest.raises(AddressError):
            Endpoint("10.0.0.1", 70000)

    def test_hashable_and_ordered(self):
        a = Endpoint("10.0.0.1", 80)
        b = Endpoint("10.0.0.1", 81)
        assert a < b
        assert len({a, b, Endpoint("10.0.0.1", 80)}) == 2

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 65535))
    def test_any_valid_endpoint_roundtrips(self, c, d, port):
        ep = Endpoint(f"10.0.{c}.{d}", port)
        assert Endpoint.parse(str(ep)) == ep


class TestFourTuple:
    def test_reversed(self):
        ft = FourTuple(Endpoint("1.1.1.1", 1), Endpoint("2.2.2.2", 2))
        assert ft.reversed().src == ft.dst
        assert ft.reversed().reversed() == ft

    def test_key_is_stable(self):
        ft = FourTuple(Endpoint("1.1.1.1", 1), Endpoint("2.2.2.2", 2))
        assert ft.key() == "1.1.1.1:1-2.2.2.2:2"


class TestIpAllocator:
    def test_sequential_unique(self):
        alloc = IpAllocator("10.5")
        ips = [alloc.next() for _ in range(300)]
        assert len(set(ips)) == 300
        assert ips[0] == "10.5.0.1"

    def test_all_valid(self):
        alloc = IpAllocator("10.5")
        for ip in alloc.take(600):
            validate_ip(ip)

    def test_bad_prefix(self):
        with pytest.raises(AddressError):
            IpAllocator("300.1")
        with pytest.raises(AddressError):
            IpAllocator("10.0.0")


class TestEphemeralPorts:
    def test_in_range_and_wrapping(self):
        ports = EphemeralPorts()
        first = ports.next()
        assert first == EphemeralPorts.LOW
        total = EphemeralPorts.HIGH - EphemeralPorts.LOW + 1
        for _ in range(total - 1):
            p = ports.next()
            assert EphemeralPorts.LOW <= p <= EphemeralPorts.HIGH
        assert ports.next() == EphemeralPorts.LOW  # wrapped
