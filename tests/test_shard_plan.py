"""ShardPlanner unit properties: seeds, assignment, window, ownership."""

from __future__ import annotations

import pytest

from repro.errors import ShardError
from repro.net.links import FixedLatency, JitterLatency
from repro.shard import ShardPlanner


class TestPlannerValidation:
    def test_zero_shards_rejected(self):
        with pytest.raises(ShardError, match="num_shards"):
            ShardPlanner(num_cells=4, num_shards=0)

    def test_more_shards_than_cells_rejected(self):
        with pytest.raises(ShardError, match="cannot spread"):
            ShardPlanner(num_cells=2, num_shards=4)

    def test_zero_lookahead_link_rejected(self):
        planner = ShardPlanner(num_cells=2, num_shards=2,
                               cross_model=FixedLatency(0.0))
        with pytest.raises(ShardError, match="zero"):
            planner.plan()

    def test_single_shard_tolerates_degenerate_default(self):
        # no cross-shard links exist, so a zero-bound model is fine; the
        # plan still needs a usable stepping quantum
        plan = ShardPlanner(num_cells=2, num_shards=1,
                            cross_model=FixedLatency(0.0)).plan()
        assert plan.window > 0.0


class TestPlanShape:
    def test_round_robin_assignment(self):
        plan = ShardPlanner(num_cells=5, num_shards=2).plan()
        assert plan.assignment == {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}
        assert [c.index for c in plan.cells_on(1)] == [1, 3]

    def test_cell_seeds_stable_and_layout_independent(self):
        one = ShardPlanner(num_cells=4, num_shards=1).plan()
        four = ShardPlanner(num_cells=4, num_shards=4).plan()
        assert [c.seed for c in one.cells] == [c.seed for c in four.cells]
        # distinct cells get distinct seeds
        assert len({c.seed for c in one.cells}) == 4

    def test_seed_changes_cell_seeds(self):
        a = ShardPlanner(num_cells=2, num_shards=1, seed=1).plan()
        b = ShardPlanner(num_cells=2, num_shards=1, seed=2).plan()
        assert [c.seed for c in a.cells] != [c.seed for c in b.cells]

    def test_window_is_min_cross_shard_lower_bound(self):
        models = {("dc0", "dc1"): FixedLatency(0.050),
                  ("dc1", "dc0"): JitterLatency(0.020, 0.004)}
        plan = ShardPlanner(num_cells=2, num_shards=2,
                            cross_model=FixedLatency(0.030),
                            cross_models=models).plan()
        assert plan.window == pytest.approx(0.020)

    def test_models_cover_colocated_pairs_too(self):
        """The physics table is layout-independent: the same pair keys
        exist no matter how the cells are cut."""
        one = ShardPlanner(num_cells=4, num_shards=1).plan()
        two = ShardPlanner(num_cells=4, num_shards=2).plan()
        assert set(one.models) == set(two.models)
        assert ("dc0", "dc2") in one.models  # co-located in the 2-shard cut
        # but only genuinely cut pairs are lookahead links
        assert all(one.shard_of_cell(0) == one.shard_of_cell(k)
                   for k in range(4)) and not one.links
        assert two.links


class TestOwnership:
    def test_owner_of_ip_resolves_every_cell_prefix(self):
        plan = ShardPlanner(num_cells=3, num_shards=3).plan()
        assert plan.owner_of_ip("10.3.1.7") == (1, "dc1")
        assert plan.owner_of_ip("172.16.2.9") == (2, "net2")
        assert plan.owner_of_ip("100.64.0.1") == (0, "dc0")
        assert plan.owner_of_ip("10.255.2.1") == (2, "dc2")

    def test_unknown_ip_is_unowned(self):
        plan = ShardPlanner(num_cells=2, num_shards=2).plan()
        assert plan.owner_of_ip("8.8.8.8") is None
        assert plan.owner_of_ip("10.3.9.1") is None  # no such cell
