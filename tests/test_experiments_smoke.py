"""Smoke tests: every experiment module runs at tiny scale and produces
the expected row/summary structure.  The full-scale shape assertions live
in benchmarks/."""

import pytest

from repro.experiments import (
    fig6,
    fig9,
    fig10,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig_overload,
    fig_stateless,
    table1,
)


def test_fig6_smoke():
    result = fig6.run(rule_counts=(500, 1000), lookups_per_size=100)
    assert len(result.rows) == 2
    assert result.rows[1]["p90_latency_ms"] > result.rows[0]["p90_latency_ms"]


def test_fig9_smoke():
    result = fig9.run(rate=40.0, duration=3.0, num_instances=2)
    schemes = [r["scheme"] for r in result.rows]
    assert schemes == ["no-LB baseline", "yoda", "haproxy"]
    assert all(r["total_ms"] > 100 for r in result.rows)  # ~RTT-dominated


def test_fig9_cpu_smoke():
    result = fig9.run_cpu(rate=150.0, duration=2.0)
    assert len(result.rows) == 2
    assert result.summary["yoda_over_haproxy_cpu"] > 1.0


def test_fig10_smoke():
    result = fig10.run(client_reqs_per_server=(2_000,), num_servers=2,
                       duration=0.1)
    assert len(result.rows) == 2  # 1 and 2 replicas
    assert all(r["set_p50_ms"] is not None for r in result.rows)


def test_fig12_scenario_smoke():
    outcome = fig12.run_scenario("yoda", retries=0, processes=2,
                                 num_instances=4, fail_count=1,
                                 fail_at=4.0, duration=12.0)
    assert outcome.results
    assert outcome.failed_instances
    assert outcome.broken_fraction == 0.0


def test_fig12_timeline_smoke():
    result = fig12.run_timeline(object_bytes=500_000)
    assert not result.summary["flow_broken"]


def test_fig13_smoke():
    result = fig13.run(initial_instances=2, spare_instances=1,
                       base_rate_per_instance=60.0, duration=12.0,
                       step_at=5.0)
    assert result.summary["broken_requests"] == 0
    assert result.rows


def test_fig14_smoke():
    result = fig14.run(rate=40.0, duration=40.0, sample_interval=4.0)
    assert result.summary["broken_requests"] == 0
    assert result.summary["phase3_srv0_drained"] == 0.0


def test_fig15_smoke():
    result = fig15.run(seed=1)
    assert len(result.rows) >= 100
    assert result.summary["mean_ratio"] > 1.0


def test_fig16_smoke():
    from repro.sim.random import SeededRng
    from repro.workload.trace import TraceConfig, generate_trace

    trace = generate_trace(SeededRng(3), TraceConfig(num_vips=25, intervals=24,
                                                     total_rules_target=8000))
    result = fig16.run(trace=trace, pool_size=80, interval_stride=8)
    assert len(result.rows) == 3
    assert result.summary["limit_migrated_median_pct"] <= \
        result.summary["nolimit_migrated_median_pct"] + 1e-9


def test_fig_overload_smoke():
    result = fig_overload.run_ablation(quick=True)
    assert result.summary["contrast"] == "holds"
    assert result.summary["goodput_ratio_qos"] >= 0.9
    assert result.summary["goodput_ratio_no_qos"] < \
        result.summary["goodput_ratio_qos"]
    assert result.summary["drain_failures_qos"] == 0
    by_variant = {r["variant"]: r for r in result.rows}
    assert by_variant["qos"]["syns_shed"] > 0
    assert by_variant["no-qos"]["syns_shed"] == 0


def test_fig_stateless_smoke():
    result = fig_stateless.run_ablation(quick=True)
    assert result.summary["contrast"] == "holds"
    assert result.summary["memory_ratio"] >= 2.0
    assert result.summary["syn_pps_ratio"] >= 1.2
    assert result.summary["established_pps_ratio"] >= 0.6
    assert result.summary["crash_stateful_ok"]
    assert not result.summary["crash_stateless_ok"]
    by_variant = {r["variant"]: r for r in result.rows}
    assert by_variant["stateless"]["bytes_per_flow"] < \
        by_variant["stateful"]["bytes_per_flow"]
    assert by_variant["stateless"]["syn_pps"] > by_variant["stateful"]["syn_pps"]


def test_table1_single_site_smoke():
    site = table1.SITES[0]
    result = table1.run(sites=[site], include_yoda=False)
    assert len(result.rows) == 1
    assert "timed-out" in result.rows[0]["impact_with_proxy_lb"]


def test_fig_elastic_smoke(tmp_path):
    from repro.experiments import fig_elastic

    bench = tmp_path / "bench.json"
    result = fig_elastic.run(sim_seconds=6.0, base_rps=30.0,
                             static_instances=3, floor_instances=2,
                             bench_path=str(bench))
    assert [r["leg"] for r in result.rows] == [
        "static-peak", "autoscaled", "floor-no-autoscale"]
    for key in ("cost_ratio_auto_vs_static", "slo_autoscaled",
                "invariants_ok", "contrast"):
        assert key in result.summary
    assert bench.exists()


def test_fig_elastic_ablation_smoke(tmp_path):
    from repro.experiments import fig_elastic

    result = fig_elastic.run(sim_seconds=6.0, base_rps=30.0,
                             static_instances=3, floor_instances=2,
                             autoscale=False,
                             bench_path=str(tmp_path / "bench.json"))
    assert [r["leg"] for r in result.rows] == ["floor-no-autoscale"]
    assert "ablation_blows_slo" in result.summary
