"""TCP state machine: handshake, transfer, loss, teardown, resets, timers."""

import pytest

from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.tcp.config import TcpConfig
from repro.tcp.endpoint import ConnectionHandler, TcpStack
from repro.tcp.state import TcpState


class Recorder(ConnectionHandler):
    def __init__(self):
        self.data = bytearray()
        self.events = []

    def on_connected(self, conn):
        self.events.append("connected")

    def on_data(self, conn, data):
        self.data.extend(data)

    def on_remote_close(self, conn):
        self.events.append("remote_close")

    def on_closed(self, conn):
        self.events.append("closed")

    def on_error(self, conn, reason):
        self.events.append(f"error:{reason}")


class EchoServer(Recorder):
    """Closes after echoing ``expect`` bytes back."""

    def __init__(self, expect):
        super().__init__()
        self.expect = expect

    def on_data(self, conn, data):
        super().on_data(conn, data)
        if len(self.data) >= self.expect:
            conn.send(bytes(self.data))
            conn.close()


def make_pair(loss=0.0, config=None):
    loop = EventLoop()
    net = Network(loop, SeededRng(9), default_latency=FixedLatency(0.001))
    if loss:
        net.set_loss_rate(loss)
    a = net.attach(Host("a", ["10.0.0.1"]))
    b = net.attach(Host("b", ["10.0.0.2"]))
    return loop, net, TcpStack(a, loop, config), TcpStack(b, loop, config)


class TestHandshake:
    def test_three_way_handshake(self):
        loop, _, cs, ss = make_pair()
        server_side = Recorder()
        ss.listen(80, lambda c: server_side)
        client_side = Recorder()
        conn = cs.connect(Endpoint("10.0.0.2", 80), client_side)
        loop.run(until=1.0)
        assert conn.state is TcpState.ESTABLISHED
        assert "connected" in client_side.events
        assert "connected" in server_side.events

    def test_syn_to_closed_port_gets_reset(self):
        loop, _, cs, _ = make_pair()
        handler = Recorder()
        cs.connect(Endpoint("10.0.0.2", 81), handler)
        loop.run(until=1.0)
        assert "error:reset" in handler.events

    def test_syn_retransmits_when_lost_then_connects(self):
        config = TcpConfig(syn_rto=1.0)
        loop, net, cs, ss = make_pair(config=config)
        ss.listen(80, lambda c: Recorder())
        handler = Recorder()
        net.set_loss_rate(0.9999)  # drop (almost) everything initially
        conn = cs.connect(Endpoint("10.0.0.2", 80), handler)
        loop.run(until=0.5)
        net.set_loss_rate(0.0)
        loop.run(until=5.0)
        assert conn.state is TcpState.ESTABLISHED
        assert conn.retransmit_count >= 1  # the lost SYN was retransmitted

    def test_connect_gives_up_after_max_retries(self):
        config = TcpConfig(syn_rto=0.1, max_retries=2)
        loop, net, cs, _ = make_pair(config=config)
        net.set_loss_rate(0.9999)
        handler = Recorder()
        cs.connect(Endpoint("10.0.0.2", 80), handler)
        loop.run(until=60.0)
        assert any(e.startswith("error") for e in handler.events)

    def test_duplicate_syn_gets_same_synack(self):
        # server in SYN_RCVD re-answers a duplicated SYN
        loop, net, cs, ss = make_pair()
        ss.listen(80, lambda c: Recorder())
        handler = Recorder()
        conn = cs.connect(Endpoint("10.0.0.2", 80), handler)
        loop.run(until=2.0)
        assert conn.established


class TestTransfer:
    def test_small_payload(self):
        loop, _, cs, ss = make_pair()
        ss.listen(80, lambda c: EchoServer(5))
        client = Recorder()

        class Send(Recorder):
            def on_connected(self, conn):
                conn.send(b"hello")

            def on_data(self, conn, data):
                client.data.extend(data)

            def on_remote_close(self, conn):
                conn.close()

        cs.connect(Endpoint("10.0.0.2", 80), Send())
        loop.run(until=10)
        assert bytes(client.data) == b"hello"

    def test_multi_segment_transfer_preserves_bytes(self):
        loop, _, cs, ss = make_pair()
        blob = bytes(range(256)) * 1000  # 256 KB
        server = Recorder()
        ss.listen(80, lambda c: server)

        class Send(ConnectionHandler):
            def on_connected(self, conn):
                conn.send(blob)
                conn.close()

        cs.connect(Endpoint("10.0.0.2", 80), Send())
        loop.run(until=30)
        assert bytes(server.data) == blob

    @pytest.mark.parametrize("loss", [0.02, 0.1])
    def test_transfer_survives_loss(self, loss):
        loop, _, cs, ss = make_pair(loss=loss)
        blob = b"payload!" * 8000  # 64 KB
        server = Recorder()
        ss.listen(80, lambda c: server)

        class Send(ConnectionHandler):
            def on_connected(self, conn):
                conn.send(blob)
                conn.close()

        cs.connect(Endpoint("10.0.0.2", 80), Send())
        loop.run(until=300)
        assert bytes(server.data) == blob

    def test_bidirectional_transfer(self):
        loop, _, cs, ss = make_pair()
        ss.listen(80, lambda c: EchoServer(4000))
        got = Recorder()

        class Send(ConnectionHandler):
            def on_connected(self, conn):
                conn.send(b"ab" * 2000)

            def on_data(self, conn, data):
                got.data.extend(data)

            def on_remote_close(self, conn):
                conn.close()

        cs.connect(Endpoint("10.0.0.2", 80), Send())
        loop.run(until=30)
        assert bytes(got.data) == b"ab" * 2000

    def test_send_before_established_is_queued(self):
        loop, _, cs, ss = make_pair()
        server = Recorder()
        ss.listen(80, lambda c: server)
        conn = cs.connect(Endpoint("10.0.0.2", 80), Recorder())
        conn.send(b"early")  # still SYN_SENT
        loop.run(until=5)
        assert bytes(server.data) == b"early"


class TestTeardown:
    def test_clean_close_both_sides_reach_closed(self):
        loop, _, cs, ss = make_pair()
        server = Recorder()
        ss.listen(80, lambda c: server)

        class Send(Recorder):
            def on_connected(self, conn):
                conn.send(b"x")
                conn.close()

        handler = Send()
        conn = cs.connect(Endpoint("10.0.0.2", 80), handler)
        loop.run(until=5)
        # server saw remote close; close its side too
        server_conns = list(ss.connections().values())
        for sc in server_conns:
            if sc.state.can_send:
                sc.close()
        loop.run(until=30)
        assert not cs.connections()
        assert not ss.connections()

    def test_send_after_close_raises(self):
        from repro.errors import TcpError

        loop, _, cs, ss = make_pair()
        ss.listen(80, lambda c: Recorder())
        conn = cs.connect(Endpoint("10.0.0.2", 80), Recorder())
        loop.run(until=1)
        conn.close()
        with pytest.raises(TcpError):
            conn.send(b"nope")

    def test_abort_sends_rst_to_peer(self):
        loop, _, cs, ss = make_pair()
        server = Recorder()
        ss.listen(80, lambda c: server)
        conn = cs.connect(Endpoint("10.0.0.2", 80), Recorder())
        loop.run(until=1)
        conn.abort("test")
        loop.run(until=2)
        assert "error:reset" in server.events

    def test_peer_crash_leads_to_timeout_error(self):
        config = TcpConfig(data_rto_initial=0.1, max_retries=3)
        loop, net, cs, ss = make_pair(config=config)
        server = Recorder()
        ss.listen(80, lambda c: server)

        class Send(Recorder):
            def on_connected(self, conn):
                conn.send(b"x" * 5000)

        handler = Send()
        cs.connect(Endpoint("10.0.0.2", 80), handler)
        loop.run(until=0.5)
        ss.host.fail()  # crash the server VM mid-stream

        class More(ConnectionHandler):
            pass

        # client keeps sending; retransmissions exhaust
        for conn in cs.connections().values():
            conn.send(b"y" * 5000)
        loop.run(until=120)
        assert any(e == "error:timeout" for e in handler.events)


class TestStack:
    def test_ephemeral_ports_unique_across_live_conns(self):
        loop, _, cs, ss = make_pair()
        ss.listen(80, lambda c: Recorder())
        conns = [cs.connect(Endpoint("10.0.0.2", 80), Recorder())
                 for _ in range(50)]
        ports = {c.local.port for c in conns}
        assert len(ports) == 50

    def test_listen_twice_rejected(self):
        from repro.errors import TcpError

        loop, _, _, ss = make_pair()
        ss.listen(80, lambda c: Recorder())
        with pytest.raises(TcpError):
            ss.listen(80, lambda c: Recorder())

    def test_connection_bookkeeping_counters(self):
        loop, _, cs, ss = make_pair()
        ss.listen(80, lambda c: EchoServer(3))

        class Send(ConnectionHandler):
            def on_connected(self, conn):
                conn.send(b"abc")

            def on_remote_close(self, conn):
                conn.close()

        conn = cs.connect(Endpoint("10.0.0.2", 80), Send())
        loop.run(until=10)
        assert conn.bytes_sent == 3
        assert conn.bytes_received == 3
