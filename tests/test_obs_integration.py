"""Integration tests for the observability plane: chaos forensics,
span-derived Fig. 9, and the ``repro obs`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.chaos.invariants import InvariantMonitor, Violation
from repro.chaos.scenario import run_scenario
from repro.cli import main
from repro.experiments import fig9
from repro.obs import OBS

from tests.test_chaos_scenarios import tiny_scenario


@pytest.fixture(autouse=True)
def obs_off_after():
    yield
    OBS.disable()


class TestChaosForensics:
    def _monitor(self):
        class _Bed:
            yoda = None
            vip = "10.0.0.1"

            class loop:
                @staticmethod
                def now():
                    return 0.0

        return InvariantMonitor(_Bed(), check_storage=False)

    def test_violation_embeds_flight_recorder_tail(self):
        OBS.enable(clock=lambda: 1.0)
        OBS.flight("yoda-0", "drop", "something suspicious")
        OBS.flight("chaos", "fault", "t+0.5s crash lb:0")
        monitor = self._monitor()
        monitor._violate("acked-byte-loss", 1.0, "flow", "detail")
        violation = monitor.violations["acked-byte-loss"][0]
        assert violation.forensics
        assert any("[chaos] fault" in line for line in violation.forensics)
        assert "flight recorder tail" in str(violation)

    def test_no_forensics_when_plane_disabled(self):
        assert not OBS.enabled
        monitor = self._monitor()
        monitor._violate("acked-byte-loss", 1.0, "flow", "detail")
        assert monitor.violations["acked-byte-loss"][0].forensics == []
        assert "flight recorder tail" not in str(
            monitor.violations["acked-byte-loss"][0])

    def test_scenario_violations_carry_forensic_dump(self):
        """The satellite contract: a broken run's violations embed the
        offending components' last events, including the injected fault."""
        OBS.enable()
        outcome = run_scenario(tiny_scenario(), lb="haproxy", seed=7)
        violations = [
            v for verdict in outcome.verdicts for v in verdict.violations
        ]
        assert violations, "haproxy must break under a serving-crash"
        for violation in violations:
            assert violation.forensics, (
                f"violation without forensic dump: {violation}"
            )
        assert any(
            "[chaos] fault" in line
            for v in violations for line in v.forensics
        ), "the injected fault itself must appear in the dump"

    def test_violation_str_roundtrip_without_forensics(self):
        v = Violation("flow-conservation", 1.5, "f", "gone")
        assert "flow-conservation" in str(v)


class TestFig9FromSpans:
    def test_span_derivation_matches_legacy_exactly(self):
        """Tolerance ZERO: spans start/end at the same timestamps the
        legacy histograms observe, so the derived breakdown is bitwise
        equal, not merely close."""
        result = fig9.run(seed=2016, rate=60.0, duration=3.0,
                          num_instances=2, derive="both")
        assert result.summary["legacy_vs_spans_max_abs_diff_ms"] == 0.0
        # sanity: the rows carry a real breakdown, not a degenerate zero
        yoda = next(r for r in result.rows if r["scheme"] == "yoda")
        assert yoda["storage_ms"] > 0.0
        assert yoda["connection_ms"] > 0.0

    def test_spans_mode_reports_span_rows(self):
        result = fig9.run(seed=2016, rate=40.0, duration=2.0,
                          num_instances=2, derive="spans")
        assert result.summary["derived_from"] == "spans"
        assert result.summary["legacy_vs_spans_max_abs_diff_ms"] == 0.0
        assert len(result.rows) == 3

    def test_bad_derive_rejected(self):
        with pytest.raises(ValueError, match="derive"):
            fig9.run(derive="nope")


class TestObsCli:
    def test_text_report(self, capsys):
        assert main(["obs", "--duration", "1.0", "--rate", "40"]) == 0
        out = capsys.readouterr().out
        assert "span summary" in out
        assert "simulated CPU profile" in out
        assert "scraped time series" in out
        assert not OBS.enabled  # the CLI turns the plane back off

    def test_json_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "obs.json"
        assert main(["obs", "--duration", "1.0", "--rate", "40",
                     "--format", "json", "--out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-obs/v1"
        assert doc["obs"]["spans"]["retained"] > 0

    def test_prometheus_format(self, capsys):
        assert main(["obs", "--duration", "1.0", "--rate", "40",
                     "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        assert "_total{registry=" in out
