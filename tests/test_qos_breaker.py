"""Pure unit suite for the circuit-breaker state machine.

No event loop, no testbed: every transition is driven by an explicit
``now`` argument, which is exactly what makes the breaker safe to sit on
the packet fast path.
"""

import pytest

from repro.qos.breaker import BreakerBoard, BreakerState, BreakerView, CircuitBreaker
from repro.qos.config import QosConfig


def make(**kw):
    defaults = dict(failure_threshold=3, open_duration=1.0, half_open_probes=2)
    defaults.update(kw)
    return CircuitBreaker(**defaults)


class TestClosed:
    def test_starts_closed_and_allows(self):
        brk = make()
        assert brk.state is BreakerState.CLOSED
        assert brk.allow(0.0)

    def test_failures_below_threshold_stay_closed(self):
        brk = make()
        brk.record_failure(0.1)
        brk.record_failure(0.2)
        assert brk.state is BreakerState.CLOSED
        assert brk.allow(0.3)

    def test_threshold_failures_trip_open(self):
        brk = make()
        for t in (0.1, 0.2, 0.3):
            brk.record_failure(t)
        assert brk.state is BreakerState.OPEN
        assert not brk.allow(0.4)
        assert brk.open_count == 1

    def test_success_resets_the_failure_streak(self):
        brk = make()
        brk.record_failure(0.1)
        brk.record_failure(0.2)
        brk.record_success(0.3)
        brk.record_failure(0.4)
        brk.record_failure(0.5)
        assert brk.state is BreakerState.CLOSED

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


class TestLatencyTrip:
    def test_slow_ewma_trips_after_min_samples(self):
        brk = make(latency_threshold=0.05, min_latency_samples=5)
        for i in range(5):
            brk.record_success(0.1 * i, latency=0.2)
        assert brk.state is BreakerState.OPEN

    def test_no_trip_below_min_samples(self):
        brk = make(latency_threshold=0.05, min_latency_samples=5)
        for i in range(4):
            brk.record_success(0.1 * i, latency=0.2)
        assert brk.state is BreakerState.CLOSED

    def test_fast_latencies_never_trip(self):
        brk = make(latency_threshold=0.05, min_latency_samples=3)
        for i in range(50):
            brk.record_success(0.1 * i, latency=0.01)
        assert brk.state is BreakerState.CLOSED

    def test_ewma_resets_on_close(self):
        brk = make(latency_threshold=0.05, min_latency_samples=2)
        brk.record_success(0.0, latency=0.2)
        brk.record_success(0.1, latency=0.2)
        assert brk.state is BreakerState.OPEN
        assert brk.allow(1.2)  # -> HALF_OPEN
        brk.record_success(1.3)
        brk.record_success(1.4)
        assert brk.state is BreakerState.CLOSED
        assert brk.latency_ewma is None


class TestOpenAndHalfOpen:
    def tripped(self):
        brk = make()
        for t in (0.1, 0.2, 0.3):
            brk.record_failure(t)
        return brk

    def test_open_blocks_until_duration_elapses(self):
        brk = self.tripped()
        assert not brk.allow(0.9)
        assert brk.state is BreakerState.OPEN
        assert brk.allow(1.3)  # 0.3 + 1.0
        assert brk.state is BreakerState.HALF_OPEN

    def test_straggler_success_while_open_is_ignored(self):
        brk = self.tripped()
        brk.record_success(0.5)
        assert brk.state is BreakerState.OPEN

    def test_probe_slots_are_metered(self):
        brk = self.tripped()
        assert brk.allow(1.3)
        brk.on_probe_sent(1.3)
        assert brk.allow(1.35)
        brk.on_probe_sent(1.35)
        assert not brk.allow(1.4)  # both slots out, no verdict yet

    def test_probe_successes_close(self):
        brk = self.tripped()
        brk.allow(1.3)
        brk.record_success(1.5)
        assert brk.state is BreakerState.HALF_OPEN
        brk.record_success(1.6)
        assert brk.state is BreakerState.CLOSED
        assert brk.allow(1.7)

    def test_probe_failure_reopens(self):
        brk = self.tripped()
        brk.allow(1.3)
        brk.record_failure(1.5)
        assert brk.state is BreakerState.OPEN
        assert brk.open_count == 2
        assert not brk.allow(1.6)

    def test_stuck_probe_slots_recycle(self):
        brk = self.tripped()
        brk.allow(1.3)
        brk.on_probe_sent(1.3)
        brk.on_probe_sent(1.35)
        assert not brk.allow(1.4)
        # probe flows died without a verdict; after another open_duration
        # the slots are reissued instead of fencing the backend forever
        assert brk.allow(2.4)
        assert brk.state is BreakerState.HALF_OPEN

    def test_listener_sees_every_transition(self):
        seen = []
        brk = make(listener=lambda old, new: seen.append((old, new)))
        for t in (0.1, 0.2, 0.3):
            brk.record_failure(t)
        brk.allow(1.3)
        brk.record_success(1.4)
        brk.record_success(1.5)
        assert seen == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]


class TestBoard:
    def config(self):
        return QosConfig(breaker_failure_threshold=2,
                         breaker_open_duration=1.0)

    def test_unknown_backend_allows(self):
        board = BreakerBoard(self.config())
        assert board.allow("srv-0", 0.0)

    def test_per_backend_isolation(self):
        board = BreakerBoard(self.config())
        board.record_failure("srv-0", 0.1)
        board.record_failure("srv-0", 0.2)
        assert not board.allow("srv-0", 0.3)
        assert board.allow("srv-1", 0.3)
        assert board.open_backends() == ["srv-0"]

    def test_transition_callback_names_the_backend(self):
        seen = []
        board = BreakerBoard(self.config(),
                             on_transition=lambda b, old, new: seen.append(b))
        board.record_failure("srv-2", 0.1)
        board.record_failure("srv-2", 0.2)
        assert seen == ["srv-2"]


class _StaticView:
    def __init__(self, healthy=True):
        self.healthy = healthy

    def is_healthy(self, backend):
        return self.healthy

    def load(self, backend):
        return 0.25


class TestView:
    def test_healthy_requires_monitor_and_breaker(self):
        board = BreakerBoard(QosConfig(breaker_failure_threshold=1))
        view = BreakerView(_StaticView(), board, clock=lambda: 5.0)
        assert view.is_healthy("srv-0")
        board.record_failure("srv-0", 5.0)
        assert not view.is_healthy("srv-0")
        assert view.is_healthy("srv-1")

    def test_monitor_veto_wins(self):
        board = BreakerBoard(QosConfig())
        view = BreakerView(_StaticView(healthy=False), board,
                           clock=lambda: 0.0)
        assert not view.is_healthy("srv-0")

    def test_load_passthrough_and_probe_metering(self):
        board = BreakerBoard(QosConfig(breaker_failure_threshold=1,
                                       breaker_half_open_probes=1,
                                       breaker_open_duration=0.5))
        now = {"t": 0.0}
        view = BreakerView(_StaticView(), board, clock=lambda: now["t"])
        assert view.load("srv-0") == 0.25
        board.record_failure("srv-0", 0.0)
        now["t"] = 0.6
        assert view.is_healthy("srv-0")  # half-open probe admitted
        view.on_selected("srv-0")
        assert not view.is_healthy("srv-0")  # probe slot consumed
