"""Invariant monitor: synthetic-trace audits and the trace digest."""

import pytest

from repro.chaos.invariants import InvariantMonitor
from repro.experiments.harness import Testbed, TestbedConfig
from repro.sim.tracing import TraceRecord

CLIENT = "172.16.0.1:40000"


def make_bed(**overrides):
    defaults = dict(seed=3, lb="yoda", num_lb_instances=2,
                    num_store_servers=2, num_backends=2, corpus="flat",
                    flat_object_count=2)
    defaults.update(overrides)
    return Testbed(TestbedConfig(**defaults))


def rec(time, src, dst, flags, seq=0, ack=0, payload_len=0, dropped=False,
        point="wire", direction="tx"):
    return TraceRecord(time=time, point=point, direction=direction,
                       summary="", src=src, dst=dst, flags=flags, seq=seq,
                       ack=ack, payload_len=payload_len, dropped=dropped)


def feed_clean_flow(monitor, vip_ep, t0=0.0, isn=1000, req=100, resp=500):
    monitor.record(rec(t0, CLIENT, vip_ep, "S", seq=isn))
    monitor.record(rec(t0 + 0.01, vip_ep, CLIENT, "S.", seq=5000, ack=isn + 1))
    monitor.record(rec(t0 + 0.02, CLIENT, vip_ep, ".", seq=isn + 1,
                       payload_len=req))
    monitor.record(rec(t0 + 0.03, vip_ep, CLIENT, ".", seq=5001,
                       ack=isn + 1 + req, payload_len=resp))
    monitor.record(rec(t0 + 0.04, vip_ep, CLIENT, "F.", seq=5001 + resp,
                       ack=isn + 1 + req))
    monitor.record(rec(t0 + 0.05, CLIENT, vip_ep, "F.", seq=isn + 1 + req,
                       ack=5002 + resp))


@pytest.fixture
def monitor_world():
    bed = make_bed()
    monitor = InvariantMonitor(bed, check_storage=False)
    return bed, monitor, f"{bed.vip}:80"


class TestAckedByteLoss:
    def test_clean_flow_has_no_violations(self, monitor_world):
        bed, monitor, vip_ep = monitor_world
        feed_clean_flow(monitor, vip_ep)
        verdicts = {v.invariant: v for v in monitor.finalize(strict_before=1.0)}
        assert verdicts["acked-byte-loss"].ok
        assert verdicts["flow-conservation"].ok
        assert verdicts["flow-conservation"].checked == 1

    def test_rst_after_acked_bytes_is_a_violation(self, monitor_world):
        _, monitor, vip_ep = monitor_world
        monitor.record(rec(0.0, CLIENT, vip_ep, "S", seq=1000))
        monitor.record(rec(0.01, vip_ep, CLIENT, "S.", seq=5000, ack=1001))
        monitor.record(rec(0.02, CLIENT, vip_ep, ".", seq=1001, payload_len=80))
        monitor.record(rec(0.03, vip_ep, CLIENT, ".", seq=5001, ack=1081))
        monitor.record(rec(0.04, vip_ep, CLIENT, "R.", seq=5001, ack=1081))
        verdicts = {v.invariant: v for v in monitor.finalize()}
        assert not verdicts["acked-byte-loss"].ok
        assert "80 request bytes" in str(verdicts["acked-byte-loss"].violations[0])

    def test_rst_before_any_ack_is_permitted(self, monitor_world):
        _, monitor, vip_ep = monitor_world
        monitor.record(rec(0.0, CLIENT, vip_ep, "S", seq=1000))
        monitor.record(rec(0.01, vip_ep, CLIENT, "R.", seq=0, ack=1001))
        verdicts = {v.invariant: v for v in monitor.finalize()}
        assert verdicts["acked-byte-loss"].ok


class TestFlowConservation:
    def test_unfinished_flow_is_a_violation(self, monitor_world):
        _, monitor, vip_ep = monitor_world
        monitor.record(rec(0.0, CLIENT, vip_ep, "S", seq=1000))
        monitor.record(rec(0.01, vip_ep, CLIENT, "S.", seq=5000, ack=1001))
        verdicts = {v.invariant: v for v in monitor.finalize(strict_before=1.0)}
        assert not verdicts["flow-conservation"].ok

    def test_late_flows_are_not_judged(self, monitor_world):
        _, monitor, vip_ep = monitor_world
        monitor.record(rec(5.0, CLIENT, vip_ep, "S", seq=1000))
        verdicts = {v.invariant: v for v in monitor.finalize(strict_before=1.0)}
        assert verdicts["flow-conservation"].ok
        assert verdicts["flow-conservation"].checked == 0


class TestStorageBeforeAck:
    def test_synack_without_durable_record_is_a_violation(self):
        bed = make_bed()
        monitor = InvariantMonitor(bed)  # yoda bed: storage checks on
        vip_ep = f"{bed.vip}:80"
        monitor.record(rec(0.0, CLIENT, vip_ep, "S", seq=1000))
        monitor.record(rec(0.01, vip_ep, CLIENT, "S.", seq=5000, ack=1001))
        verdicts = {v.invariant: v for v in monitor.finalize()}
        assert not verdicts["storage-before-ack"].ok

    def test_synack_with_durable_record_passes(self):
        bed = make_bed()
        monitor = InvariantMonitor(bed)
        vip_ep = f"{bed.vip}:80"
        key = f"yoda:c:{CLIENT}:{vip_ep}"
        bed.yoda.store_servers[0]._set(key, b"state")
        monitor.record(rec(0.0, CLIENT, vip_ep, "S", seq=1000))
        monitor.record(rec(0.01, vip_ep, CLIENT, "S.", seq=5000, ack=1001))
        verdicts = {v.invariant: v for v in monitor.finalize()}
        assert verdicts["storage-before-ack"].ok
        assert verdicts["storage-before-ack"].checked == 1

    def test_record_on_failed_store_does_not_count(self):
        bed = make_bed()
        monitor = InvariantMonitor(bed)
        vip_ep = f"{bed.vip}:80"
        key = f"yoda:c:{CLIENT}:{vip_ep}"
        bed.yoda.store_servers[0]._set(key, b"state")
        bed.yoda.store_servers[0].fail()
        monitor.record(rec(0.0, CLIENT, vip_ep, "S", seq=1000))
        monitor.record(rec(0.01, vip_ep, CLIENT, "S.", seq=5000, ack=1001))
        verdicts = {v.invariant: v for v in monitor.finalize()}
        assert not verdicts["storage-before-ack"].ok


class TestSnatLeak:
    def test_quiesced_bed_has_no_leaks(self):
        bed = make_bed()
        monitor = InvariantMonitor(bed)
        verdicts = {v.invariant: v for v in monitor.finalize()}
        assert verdicts["snat-leak"].ok
        assert verdicts["snat-leak"].checked == len(bed.yoda.instances)

    def test_excluded_instances_are_skipped(self):
        bed = make_bed()
        monitor = InvariantMonitor(bed)
        excluded = bed.yoda.instances[0].name
        verdicts = {v.invariant: v for v in monitor.finalize(
            exclude_instances=[excluded])}
        assert verdicts["snat-leak"].checked == len(bed.yoda.instances) - 1


class TestDigest:
    def test_identical_streams_agree(self, monitor_world):
        bed, monitor, vip_ep = monitor_world
        other = InvariantMonitor(bed, check_storage=False)
        for m in (monitor, other):
            feed_clean_flow(m, vip_ep)
        assert monitor.digest() == other.digest()

    def test_any_difference_changes_digest(self, monitor_world):
        bed, monitor, vip_ep = monitor_world
        other = InvariantMonitor(bed, check_storage=False)
        feed_clean_flow(monitor, vip_ep)
        feed_clean_flow(other, vip_ep, resp=501)
        assert monitor.digest() != other.digest()

    def test_non_wire_records_still_digested(self, monitor_world):
        bed, monitor, vip_ep = monitor_world
        other = InvariantMonitor(bed, check_storage=False)
        feed_clean_flow(monitor, vip_ep)
        feed_clean_flow(other, vip_ep)
        other.record(rec(9.0, CLIENT, vip_ep, ".", point="yoda-0",
                         direction="rx"))
        assert monitor.digest() != other.digest()


class TestReplicationFactorMonitor:
    """Durability audit: live replicas per record, with a bounded grace
    window that does not restart on membership churn."""

    def _bed_with_record(self, num_stores=2):
        from repro.chaos.invariants import ReplicationFactorMonitor
        bed = make_bed(num_store_servers=num_stores)
        inst = bed.yoda.instances[0]
        inst.durable_records = lambda: [("k", b"v", (1, "w"))]
        for store in bed.yoda.store_servers[:2]:
            store._set("k", b"v", version=(1, "w"))
        monitor = ReplicationFactorMonitor(bed, window=1.0, interval=0.25)
        monitor.start()
        return bed, monitor

    def test_full_replication_is_clean(self):
        bed, monitor = self._bed_with_record()
        bed.loop.run(until=3.0)
        assert monitor.checks > 0
        assert monitor.violation_count == 0

    def test_deficit_fires_once_after_the_window(self):
        bed, monitor = self._bed_with_record()
        bed.loop.run(until=1.0)
        bed.yoda.store_servers[1]._delete("k")
        bed.loop.run(until=1.8)  # deficit younger than the window
        assert monitor.violation_count == 0
        bed.loop.run(until=4.0)
        assert monitor.violation_count == 1  # once per key, not per sample

    def test_restored_replica_clears_the_deficit(self):
        bed, monitor = self._bed_with_record()
        bed.loop.run(until=1.0)
        bed.yoda.store_servers[1]._delete("k")
        bed.loop.run(until=1.8)
        bed.yoda.store_servers[1]._set("k", b"v", version=(1, "w"))
        bed.loop.run(until=4.0)
        assert monitor.violation_count == 0

    def test_stale_copy_does_not_count_as_a_replica(self):
        bed, monitor = self._bed_with_record()
        bed.loop.run(until=1.0)
        # replace one copy with an older snapshot: recovering from it
        # would resurrect a dead version of the flow
        bed.yoda.store_servers[1]._delete("k")
        bed.yoda.store_servers[1]._set("k", b"v0", version=(0, "w"))
        bed.loop.run(until=4.0)
        assert monitor.violation_count == 1

    def test_window_survives_membership_churn(self):
        # a rolling restart must not reset the grace period: epoch bumps
        # every second would otherwise make the deficit clock unfalsifiable
        bed, monitor = self._bed_with_record(num_stores=3)
        bystander = bed.yoda.store_servers[2]
        bed.loop.run(until=1.0)
        bed.yoda.store_servers[1]._delete("k")
        bed.loop.run(until=1.6)
        bed.yoda.kv_cluster.mark_dead(bystander.name)
        bed.loop.run(until=1.9)
        bed.yoda.kv_cluster.mark_live(bystander.name)
        bed.loop.run(until=4.0)
        assert monitor.violation_count == 1
