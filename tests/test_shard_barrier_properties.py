"""Barrier-protocol properties: the sharded cut must not change physics.

The core claim of the conservative-lookahead design is that cutting a
world across shards is *invisible* to the simulation: every packet
arrives at the same host at the same virtual time as in a single-process
run.  A toy two-cell ping-pong topology (fixed latencies, so the claim
is exact, not statistical) is run three ways -- single process, 2-shard
inline, 2-shard forked -- and the merged delivery schedules must match
event for event.

Plus direct unit properties of the window arithmetic and the
deterministic routing sort.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.errors import ShardError
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.network import Network
from repro.net.packet import PACKET_POOL
from repro.shard import BarrierCoordinator, ShardedRunner, ShardPlanner
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng

PING_COUNT = 16  # round trips per ping chain
THINK = 0.00075  # local processing delay before a pong goes back out
NUM_CELLS = 2

Event = Tuple[float, str, str, int]


def _host_ip(cell: int) -> str:
    return f"10.3.{cell}.1"  # inside the cell's backend prefix


def _wire_hosts(loop: EventLoop, network: Network, cells,
                events: List[Event]) -> None:
    """Attach one ping-pong host per cell and schedule the initial pings."""
    for cell in cells:
        host = network.attach(
            Host(f"pinger{cell.index}", [_host_ip(cell.index)],
                 site=cell.site))

        def handler(pkt, host=host):
            events.append((round(loop.now(), 9), pkt.src.ip, pkt.dst.ip,
                           pkt.seq))
            if pkt.seq > 0:
                reply = PACKET_POOL.acquire(
                    Endpoint(pkt.dst.ip, pkt.dst.port),
                    Endpoint(pkt.src.ip, pkt.src.port),
                    seq=pkt.seq - 1)
                loop.call_later(THINK, host.send, reply)
            PACKET_POOL.release(pkt)

        host.set_handler(handler)

    def kick(src_cell: int) -> None:
        src = network.host(f"pinger{src_cell}")
        dst_cell = (src_cell + 1) % NUM_CELLS
        ping = PACKET_POOL.acquire(
            Endpoint(_host_ip(src_cell), 9000),
            Endpoint(_host_ip(dst_cell), 9000),
            seq=PING_COUNT)
        src.send(ping)

    for cell in cells:
        loop.call_later(0.1 + 0.013 * cell.index, kick, cell.index)


class _ToyWorld:
    """ShardWorld for one shard of the ping-pong topology."""

    def __init__(self, shard_index: int, plan):
        self.loop = EventLoop()
        self.network = Network(self.loop, SeededRng(plan.seed))
        for (src, dst), model in plan.models.items():
            self.network.set_latency(src, dst, model)
        self.events: List[Event] = []
        _wire_hosts(self.loop, self.network, plan.cells_on(shard_index),
                    self.events)

    def stats(self) -> Dict[str, object]:
        return {"events": tuple(self.events)}


def _reference_schedule(plan, duration: float) -> List[Event]:
    """All cells on one network in one process: the ground truth."""
    loop = EventLoop()
    network = Network(loop, SeededRng(plan.seed))
    for (src, dst), model in plan.models.items():
        network.set_latency(src, dst, model)
    events: List[Event] = []
    _wire_hosts(loop, network, plan.cells, events)
    loop.run(until=duration)
    return sorted(events)


def _sharded_schedule(plan, duration: float, mode: str):
    runner = ShardedRunner(plan, lambda i, p: _ToyWorld(i, p), mode=mode)
    result = runner.run(duration)
    merged: List[Event] = []
    for stats in result.per_shard:
        merged.extend(tuple(e) for e in stats["events"])
    return sorted(merged), result


@pytest.fixture(scope="module")
def plan2():
    return ShardPlanner(num_cells=NUM_CELLS, num_shards=2, seed=2016).plan()


class TestCutInvariance:
    DURATION = 2.0

    def test_two_shard_inline_matches_single_process(self, plan2):
        reference = _reference_schedule(plan2, self.DURATION)
        sharded, result = _sharded_schedule(plan2, self.DURATION, "inline")
        # the chains actually ran and actually crossed the cut
        assert len(reference) == 2 * (PING_COUNT + 1)
        assert result.cross_shard_packets > 0
        assert sharded == reference

    def test_two_shard_forked_matches_single_process(self, plan2):
        reference = _reference_schedule(plan2, self.DURATION)
        sharded, result = _sharded_schedule(plan2, self.DURATION, "fork")
        assert result.cross_shard_packets > 0
        assert sharded == reference

    def test_sharded_run_is_reproducible(self, plan2):
        first, r1 = _sharded_schedule(plan2, self.DURATION, "inline")
        second, r2 = _sharded_schedule(plan2, self.DURATION, "inline")
        assert first == second
        assert r1.digest == r2.digest


class TestWindowArithmetic:
    def test_windows_cover_duration_exactly(self, plan2):
        coord = BarrierCoordinator(plan2)
        ends = coord.window_ends(3.0, 1.0)
        assert ends[-1] == pytest.approx(4.0)
        assert all(b > a for a, b in zip(ends, ends[1:]))
        assert all(e - s <= plan2.window + 1e-12
                   for s, e in zip([3.0] + ends, ends))

    def test_non_multiple_duration_gets_a_short_final_window(self, plan2):
        coord = BarrierCoordinator(plan2)
        ends = coord.window_ends(0.0, plan2.window * 2.5)
        assert len(ends) == 3
        assert ends[-1] == pytest.approx(plan2.window * 2.5)

    def test_duration_shorter_than_window(self, plan2):
        coord = BarrierCoordinator(plan2)
        assert coord.window_ends(0.0, plan2.window / 10) == [
            pytest.approx(plan2.window / 10)]


class TestDeterministicRouting:
    def _export(self, dst, arrival, seq, host="h", wire=("w",)):
        return (dst, arrival, seq, host, wire)

    def test_batches_sorted_by_arrival_origin_seq(self, plan2):
        coord = BarrierCoordinator(plan2)
        exports = [
            [self._export(1, 0.5, 2), self._export(1, 0.2, 1)],
            [self._export(1, 0.2, 0), self._export(0, 0.3, 0)],
        ]
        out = coord.route(exports)
        assert [d[:3] for d in out[1]] == [
            (0.2, 0, 1), (0.2, 1, 0), (0.5, 0, 2)]
        assert [d[:3] for d in out[0]] == [(0.3, 1, 0)]
        assert coord.packets_routed == 4

    def test_unknown_destination_shard_rejected(self, plan2):
        coord = BarrierCoordinator(plan2)
        with pytest.raises(ShardError, match="unknown shard"):
            coord.route([[self._export(9, 0.1, 0)]])
