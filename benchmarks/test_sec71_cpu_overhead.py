"""Section 7.1: YODA's user-space driver costs ~2x HAProxy's CPU."""

from conftest import run_once, show

from repro.experiments import fig9


def test_sec71_cpu_overhead(benchmark):
    result = run_once(benchmark, fig9.run_cpu, seed=2016, rate=300.0,
                      duration=5.0)
    show(result)
    ratio = result.summary["yoda_over_haproxy_cpu"]
    assert 1.4 < ratio < 3.5  # paper: ~2.2x (100% vs 46%)
    yoda_sat = result.rows[0]["extrapolated_saturation_req_s"]
    # paper: 12K req/s; accept the calibrated ballpark
    assert 6_000 < yoda_sat < 25_000
