"""Figure 14: make-before-break policy updates."""

from conftest import run_once, show

from repro.experiments import fig14


def test_fig14_policy_update(benchmark):
    result = run_once(benchmark, fig14.run, seed=2016, rate=120.0)
    show(result)
    s = result.summary
    assert s["broken_requests"] == 0
    assert 0.25 < s["phase1_srv0"] < 0.42  # one third
    assert 0.17 < s["phase2_srv3_joins"] < 0.33  # one quarter
    assert s["phase3_srv0_drained"] == 0.0  # removed backend drains
    assert 0.4 < s["phase4_srv3_double"] < 0.62  # 1:1:2 weights
