"""Sharded-simulation scaling benchmark: regenerates ``BENCH_scale.json``.

Runs the CI-sized slice of the ``scale`` experiment (2 cells over 1 and
2 shards, a short piece of the diurnal day) and validates the emitted
report: the schema, the per-leg accounting, and the determinism
contract (re-running the multi-shard leg with the same seed produced a
bit-identical merged digest -- ``fig_scale`` asserts it and records the
verdict).

Wall-clock speedup is *not* asserted: conservative-lookahead shards buy
wall time only when each shard gets its own core, and CI runners make no
core-count promise.  The report's ``cpus`` field is the context a reader
needs to judge the ``speedup_vs_1shard`` column; the full-size figure
comes from ``PYTHONPATH=src python -m repro run scale``.

    PYTHONPATH=src python -m pytest benchmarks/test_scale_speed.py -q
"""

from __future__ import annotations

import json
import os

from repro.experiments import fig_scale

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_scale.json")


class TestScaleBench:
    def test_quick_scale_run_emits_valid_report(self):
        result = fig_scale.quick(seed=2016, bench_path=BENCH_PATH)
        print()
        print(result.render())

        with open(BENCH_PATH) as fh:
            doc = json.load(fh)
        assert doc["schema"] == fig_scale.SCHEMA
        assert doc["cpus"] >= 1
        assert doc["digest_reproducible"] is True
        assert doc["window_seconds"] > 0.0

        legs = {leg["shards"]: leg for leg in doc["legs"]}
        assert set(legs) == {1, 2}
        for leg in legs.values():
            assert leg["tx_packets"] > 0
            assert leg["packets_per_wall_sec"] > 0
            assert leg["fetches_ok"] > 0
            assert len(leg["digest"]) == 64
        # the 2-shard leg actually cut the world
        assert legs[2]["cross_shard_packets"] > 0
        assert legs[1]["cross_shard_packets"] == 0
        assert legs[1]["speedup_vs_1shard"] == 1.0
