"""Stateless fast-path dispatch benchmarks.

Measures the two quantities the compact dispatch mode trades on, in both
modes, and pins the headline ratios:

- ``syn_pps``: connection-setup dispatch rate (the L4-LB headline metric
  -- connections/sec).  Stateless mode skips the ring hash, the flow-entry
  allocation and the dict store, so it must win here.
- ``established_pps``: per-packet rate on an already-pinned flow.  The
  stateful path is a single hot dict hit -- near the interpreter floor --
  so stateless only has to stay in the same league, not win.
- ``bytes_per_flow``: dispatch-state memory per live flow sampled from a
  real streaming testbed (mux pins + durable flow records vs one
  flow-count-independent compact table).

Results are written to ``BENCH_stateless.json`` at the repo root with the
same merge semantics as ``BENCH_core.json``.  Run with:

    PYTHONPATH=src python -m pytest benchmarks/test_stateless_speed.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict

import pytest

from repro.experiments import fig_stateless

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_stateless.json")
SCHEMA = "bench-stateless/v1"

_metrics: Dict[str, Dict] = {}


def _note(name: str, value: float, unit: str,
          higher_is_better: bool = True) -> None:
    _metrics[name] = {
        "value": round(value, 3),
        "unit": unit,
        "higher_is_better": higher_is_better,
    }
    print(f"\n  [bench] {name}: {value:,.1f} {unit}")


@pytest.fixture(scope="module", autouse=True)
def _emit_report():
    yield
    doc = {"schema": SCHEMA, "metrics": {}}
    if os.path.exists(BENCH_PATH):
        try:
            with open(BENCH_PATH) as fh:
                old = json.load(fh)
            if old.get("schema") == SCHEMA:
                doc = old
        except (OSError, ValueError):
            pass
    doc["python"] = sys.version.split()[0]
    doc["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    doc["metrics"].update(_metrics)
    with open(BENCH_PATH, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


class TestDispatchSpeed:
    def test_syn_and_established_pps(self):
        stateful = fig_stateless.run_speed(stateless=False)
        stateless = fig_stateless.run_speed(stateless=True)
        _note("stateful.syn_pps", stateful["syn_pps"], "packets/sec")
        _note("stateless.syn_pps", stateless["syn_pps"], "packets/sec")
        _note("stateful.established_pps", stateful["established_pps"],
              "packets/sec")
        _note("stateless.established_pps", stateless["established_pps"],
              "packets/sec")
        syn_ratio = stateless["syn_pps"] / stateful["syn_pps"]
        est_ratio = stateless["established_pps"] / stateful["established_pps"]
        _note("syn_pps_ratio", syn_ratio, "x")
        _note("established_pps_ratio", est_ratio, "x")
        # the headline claim: connection setup materially faster, the
        # established path in the same league (stateful's hot dict hit is
        # the CPython floor; parity is not on offer)
        assert syn_ratio >= 1.2, f"SYN dispatch speedup lost: {syn_ratio:.2f}x"
        assert est_ratio >= 0.6, (
            f"established-path regression: {est_ratio:.2f}x"
        )
        # stateless SYN dispatch keeps no per-flow state at all
        assert stateless["flow_table_entries"] == 0
        assert stateful["flow_table_entries"] > 0


class TestDispatchMemory:
    def test_bytes_per_flow(self):
        stateful = fig_stateless.run(seed=2016, stateless=False).summary
        stateless = fig_stateless.run(seed=2016, stateless=True).summary
        _note("stateful.bytes_per_flow", stateful["bytes_per_flow"],
              "bytes/flow", higher_is_better=False)
        _note("stateless.bytes_per_flow", stateless["bytes_per_flow"],
              "bytes/flow", higher_is_better=False)
        ratio = stateful["bytes_per_flow"] / stateless["bytes_per_flow"]
        _note("memory_ratio", ratio, "x")
        assert ratio >= 2.0, f"memory-per-flow reduction lost: {ratio:.2f}x"
        # both legs carried the same live load when sampled
        assert stateful["live_flows_at_sample"] > 0
        assert stateless["live_flows_at_sample"] > 0
