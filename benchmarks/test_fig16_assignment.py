"""Figure 16: assignment algorithm over the 24 h trace."""

from conftest import run_once, show

from repro.experiments import fig16


def test_fig16_assignment(benchmark):
    result = run_once(benchmark, fig16.run, seed=2016, pool_size=170)
    show(result)
    s = result.summary
    # (b) many-to-many stores a small fraction of all-to-all's rules
    assert s["rules_frac_median"] < 0.06  # paper: 0.5-3.7%, median 1%
    # (c) more instances than the all-to-all traffic minimum
    assert s["extra_instances_vs_ata_avg_pct"] > 0  # paper: +27% avg
    # (e) the migration limit works: limit << no-limit
    assert s["limit_migrated_median_pct"] < 11  # paper: 8.3%
    assert s["nolimit_migrated_median_pct"] > 2 * s["limit_migrated_median_pct"]
    # (d) transient overload: limit avoids what no-limit suffers
    assert s["limit_overloaded_median_pct"] < s["nolimit_overloaded_median_pct"]
