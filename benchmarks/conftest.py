"""Benchmark scaffolding.

Each benchmark regenerates one of the paper's tables/figures and prints
the paper-comparable rows.  ``pytest-benchmark`` measures the wall-clock
of the regeneration itself (rounds=1: these are simulations, not
microbenchmarks).
"""

from __future__ import annotations

import os

RESULTS_FILE = os.path.join(os.path.dirname(__file__), "latest_results.txt")


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a whole-experiment function exactly once and return its
    result (pytest-benchmark insists on measuring *something*; one round
    of the full simulation is the honest unit here)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def show(result) -> None:
    """Print the paper-comparable rows and persist them, so a plain
    ``pytest benchmarks/ --benchmark-only`` run (which captures stdout)
    still leaves the regenerated tables on disk."""
    text = result.render()
    print()
    print(text)
    with open(RESULTS_FILE, "a") as fh:
        fh.write(text + "\n\n")
