"""Ablation: the hashed SYN-ACK ISN (DESIGN.md decision #1).

The paper derives the client-facing ISN from a hash of the client 4-tuple
so (a) SYN-ACKs need no extra TCPStore round-trip and (b) any instance
answers a retransmitted SYN identically.  This bench measures both:
TCPStore reads stay at zero on the SYN path even under duplicate SYNs,
and two different instances produce byte-identical SYN-ACKs.
"""

from conftest import run_once, show

from repro.core.flowstate import yoda_isn
from repro.experiments.harness import Testbed, TestbedConfig
from repro.http.client import BrowserClient
from repro.net.addresses import Endpoint


def _run(seed: int = 2016):
    bed = Testbed(TestbedConfig(
        seed=seed, lb="yoda", num_lb_instances=4, num_store_servers=2,
        num_backends=2, corpus="flat", flat_object_count=2,
        flat_object_bytes=20_000, trace_packets=True,
    ))
    results = []
    browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target())
    for _ in range(10):
        browser.fetch("/obj/0.bin", results.append)
    bed.run(30.0)
    gets = sum(i.tcpstore.kv.metrics.counters.get("get_issued").value
               if "get_issued" in i.tcpstore.kv.metrics.counters else 0
               for i in bed.yoda.instances)
    sets = sum(i.tcpstore.kv.metrics.counters.get("set_issued").value
               if "set_issued" in i.tcpstore.kv.metrics.counters else 0
               for i in bed.yoda.instances)
    return bed, results, gets, sets


def test_isn_hash_avoids_storage_reads(benchmark):
    bed, results, gets, sets = run_once(benchmark, _run)
    assert all(r.ok for r in results)
    # connection establishment is write-only: storage-a (1 set) +
    # storage-b (2 sets: client record + server-side index) per flow,
    # plus deletes at termination -- but ZERO reads without failures.
    assert gets == 0, "the hashed ISN removes every read from the fast path"
    assert sets == 3 * len(results)
    print(f"\nper-connection TCPStore ops: {sets / len(results):.1f} sets, "
          f"{gets / len(results):.1f} gets (reads only ever happen on the "
          f"recovery path)")


def test_all_instances_agree_on_isn(benchmark):
    def _check():
        client = Endpoint("172.16.0.1", 50000)
        vip = Endpoint("100.0.0.1", 80)
        return [yoda_isn(client, vip) for _ in range(1000)]

    values = run_once(benchmark, _check)
    assert len(set(values)) == 1
