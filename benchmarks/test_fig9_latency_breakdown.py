"""Figure 9 latency breakdown: yoda ~= haproxy ~= baseline + few ms."""

from conftest import run_once, show

from repro.experiments import fig9


def test_fig9_latency_breakdown(benchmark):
    result = run_once(benchmark, fig9.run, seed=2016, rate=100.0, duration=6.0)
    show(result)
    rows = {r["scheme"]: r for r in result.rows}
    baseline = rows["no-LB baseline"]["total_ms"]
    yoda = rows["yoda"]["total_ms"]
    haproxy = rows["haproxy"]["total_ms"]
    # ordering: baseline < haproxy < yoda (paper: 133 / 144 / 151 ms)
    assert baseline < haproxy < yoda
    # both LBs add modest overhead (paper: 8-14% over baseline)
    assert yoda < baseline * 1.35
    # the TCPStore insert overhead is sub-millisecond-ish (paper: 0.89 ms)
    assert rows["yoda"]["storage_ms"] < 2.5
