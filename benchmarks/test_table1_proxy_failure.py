"""Table 1: impact of a proxy failure on website archetypes."""

from conftest import run_once, show

from repro.experiments import table1


def test_table1_proxy_failure(benchmark):
    result = run_once(benchmark, table1.run, seed=2016)
    show(result)
    rows = {r["website"]: r for r in result.rows}
    # static sites wait out the browser HTTP timeout
    for site in ("nytimes", "reddit", "stanford"):
        assert "timed-out" in rows[site]["impact_with_proxy_lb"]
        assert rows[site]["impact_with_yoda"] in ("no impact",) or \
            rows[site]["impact_with_yoda"].startswith("recovered")
    # session sites reset
    for site in ("vimeo", "soundcloud", "email-service"):
        assert rows[site]["impact_with_proxy_lb"] == "session reset"
        assert rows[site]["impact_with_yoda"] != "session reset"
