"""Ablation: greedy first-fit vs LP-rounding on the Figure 7 problem.

The paper used CPLEX with a 10% gap; our two solvers bracket it.  This
bench quantifies the instance-count gap the LP closes and what it costs
in solve time (Section 8 reports CPLEX at 1.5-21.5 s per round).
"""

import random
import time

from conftest import run_once

from repro.core.assignment import (
    AssignmentProblem, IlpSolver, InstanceSpec, VipSpec,
    solve_greedy, validate_assignment,
)


def _problem(seed: int, num_vips: int = 60, pool: int = 80):
    rnd = random.Random(seed)
    vips = [
        VipSpec(f"v{i}", traffic=rnd.uniform(10, 300),
                rules=rnd.randint(20, 1500), replicas=rnd.randint(1, 4))
        for i in range(num_vips)
    ]
    instances = [InstanceSpec(f"y{i}", 400.0, 2000) for i in range(pool)]
    return AssignmentProblem(vips=vips, instances=instances)


def test_solver_ablation(benchmark):
    def _run():
        rows = []
        for seed in (1, 2, 3):
            prob = _problem(seed)
            t0 = time.perf_counter()
            greedy = solve_greedy(prob)
            t_greedy = time.perf_counter() - t0
            solver = IlpSolver(enforce_update_constraints=False)
            t0 = time.perf_counter()
            lp = solver.solve(prob)
            t_lp = time.perf_counter() - t0
            assert validate_assignment(prob, greedy).ok
            assert validate_assignment(prob, lp).ok
            rows.append({
                "seed": seed,
                "greedy_instances": greedy.num_instances_used(),
                "lp_instances": lp.num_instances_used(),
                "lp_lower_bound": round(solver.lp_lower_bound, 1),
                "greedy_s": round(t_greedy, 3),
                "lp_s": round(t_lp, 3),
            })
        return rows

    rows = run_once(benchmark, _run)
    print()
    for row in rows:
        print(row)
    for row in rows:
        # LP rounding must never lose to plain greedy (it repairs with it)
        assert row["lp_instances"] <= row["greedy_instances"]
        # the relaxation bound is reported, not asserted: the LP shares
        # rule memory fractionally, so on rule-bound problems the bound is
        # far below any integral solution (greedy AND CPLEX alike)
        assert row["lp_instances"] >= row["lp_lower_bound"] - 1e-6
