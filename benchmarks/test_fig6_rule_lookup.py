"""Figure 6: rule look-up latency grows linearly with the chain length."""

from conftest import run_once, show

from repro.experiments import fig6


def test_fig6_rule_lookup(benchmark):
    result = run_once(benchmark, fig6.run, seed=2016, lookups_per_size=1500)
    show(result)
    p90 = {r["rules"]: r["p90_latency_ms"] for r in result.rows}
    # the paper's headline: 10K rules cost ~3x 1K rules
    assert 2.0 < p90[10000] / p90[1000] < 4.0
    # latency grows monotonically with rule count
    ordered = [p90[n] for n in sorted(p90)]
    assert ordered == sorted(ordered)
