"""Figure 13: elastic scale-out keeps CPU in band, breaks nothing."""

from conftest import run_once, show

from repro.experiments import fig13


def test_fig13_scalability(benchmark):
    result = run_once(benchmark, fig13.run, seed=2016, duration=30.0)
    show(result)
    s = result.summary
    assert s["broken_requests"] == 0
    assert s["instances_added"] >= 2  # paper adds 3
    # utilization trajectory: ~40% -> ~80% -> ~60%
    assert 0.3 < s["cpu_before"] < 0.6
    assert s["cpu_during_surge"] > s["cpu_before"] + 0.2
    assert s["cpu_after_scaleout"] < s["cpu_during_surge"] - 0.1
