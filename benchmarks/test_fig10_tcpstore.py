"""Figures 10-11: TCPStore latency stays sub-ms; replication ~2x CPU."""

from conftest import run_once, show

from repro.experiments import fig10


def test_fig10_fig11_tcpstore(benchmark):
    result = run_once(
        benchmark, fig10.run, seed=2016,
        client_reqs_per_server=(4_000, 20_000, 40_000), duration=0.25,
    )
    show(result)
    for row in result.rows:
        # paper: median ~0.75 ms at 40K req/s/server -- "insignificant"
        assert row["set_p50_ms"] < 1.5
    assert result.summary["set_overhead_pct_at_40k"] < 24.0  # paper bound
    assert 1.6 < result.summary["cpu_ratio_2r_over_1r"] < 2.4  # paper: ~2x
