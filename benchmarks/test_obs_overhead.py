"""Observability-plane overhead guard.

The plane's contract on hot paths is *zero perturbation and near-zero
cost when disabled*: every hook is a single ``if OBS.enabled:`` attribute
load.  This benchmark runs the same fig9-style workload as
``test_core_speed.py`` with the plane disabled and compares wall seconds
against the ``fig9_style.wall_seconds`` figure recorded in
``BENCH_core.json``; it also reports (without enforcing) the cost of a
fully enabled plane.

By default the comparison is informational -- wall-clock on shared CI
runners is noisy.  Set ``OBS_OVERHEAD_ENFORCE=1`` to hard-fail when the
disabled-plane run exceeds ``OVERHEAD_BUDGET`` (1.05x) of the recorded
core benchmark, as the ``obs-overhead`` CI job does (it regenerates
``BENCH_core.json`` in the same job, so both numbers come from the same
machine).

    PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -q
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments.harness import Testbed, TestbedConfig
from repro.http.client import BrowserClient
from repro.obs import OBS

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_core.json")
OVERHEAD_BUDGET = 1.05  # disabled-plane wall seconds vs BENCH_core.json
REPEATS = 3  # best-of-N: the honest floor for a deterministic workload


def _fig9_style_run() -> float:
    """The exact workload behind ``fig9_style.wall_seconds``."""
    start = time.perf_counter()
    bed = Testbed(TestbedConfig(
        seed=2016, lb="yoda", num_lb_instances=3, num_store_servers=2,
        num_backends=3, corpus="flat", flat_object_count=8,
        flat_object_bytes=400_000,
    ))
    results = []
    browsers = [BrowserClient(stack, bed.loop, bed.target())
                for stack in bed.client_stacks[:3]]
    for i in range(24):
        browsers[i % len(browsers)].fetch(f"/obj/{i % 8}.bin",
                                          results.append)
    bed.loop.call_later(0.4, lambda: bed.fail_lb_instances(1))
    bed.run(60.0)
    wall = time.perf_counter() - start
    assert results and all(r.ok for r in results)
    return wall


def _core_bench_seconds():
    if not os.path.exists(BENCH_PATH):
        return None
    with open(BENCH_PATH) as fh:
        doc = json.load(fh)
    metric = doc.get("metrics", {}).get("fig9_style.wall_seconds")
    return metric["value"] if metric else None


class TestObsOverhead:
    def test_disabled_plane_overhead(self):
        assert not OBS.enabled
        wall = min(_fig9_style_run() for _ in range(REPEATS))
        print(f"\n  [bench] obs_disabled.wall_seconds: {wall:.3f} s")
        reference = _core_bench_seconds()
        if reference is None:
            pytest.skip("no BENCH_core.json; run "
                        "benchmarks/test_core_speed.py first")
        ratio = wall / reference
        print(f"  [bench] vs BENCH_core.json fig9_style: {ratio:.3f}x "
              f"(budget {OVERHEAD_BUDGET}x)")
        if os.environ.get("OBS_OVERHEAD_ENFORCE") == "1":
            assert ratio <= OVERHEAD_BUDGET, (
                f"tracing-disabled hot paths regressed: {wall:.3f}s vs "
                f"recorded {reference:.3f}s ({ratio:.3f}x > "
                f"{OVERHEAD_BUDGET}x budget)"
            )

    def test_enabled_plane_cost_reported(self):
        """Informational: full tracing on the same workload.  Never
        enforced -- enabled-mode cost is allowed to be real, it just must
        not leak into disabled mode (the test above) or into the packet
        schedule (the golden obs-enabled suite)."""
        disabled = min(_fig9_style_run() for _ in range(REPEATS))
        OBS.enable()
        try:
            enabled = min(_fig9_style_run() for _ in range(REPEATS))
            spans = len(OBS.tracer.spans)
        finally:
            OBS.disable()
        assert spans > 0  # the plane was genuinely live
        print(f"\n  [bench] obs_enabled.wall_seconds: {enabled:.3f} s "
              f"({enabled / disabled:.2f}x disabled, {spans} spans)")
