"""Figure 12: YODA maintains every flow through instance failures."""

from conftest import run_once, show

from repro.experiments import fig12


def test_fig12a_failure_recovery(benchmark):
    result = run_once(
        benchmark, fig12.run, seed=2016, processes=6,
        num_instances=10, fail_count=2, duration=30.0, fail_at=6.0,
    )
    show(result)
    rows = {r["scenario"]: r for r in result.rows}
    # the paper's claims:
    assert rows["haproxy-noretry"]["broken_pct"] > 0  # flows break
    assert rows["yoda-noretry"]["broken_pct"] == 0  # none break
    assert rows["yoda-retry"]["broken_pct"] == 0
    assert rows["haproxy-retry"]["broken_pct"] == 0  # retry saves them...
    assert rows["haproxy-retry"]["max_s"] > 29  # ...after a ~30 s timeout
    assert rows["yoda-noretry"]["max_s"] < 10  # paper: +0.6-3 s
    assert rows["yoda-noretry"]["recovered_flows"] >= 1


def test_fig12b_recovery_timeline(benchmark):
    result = run_once(benchmark, fig12.run_timeline, seed=42)
    show(result)
    assert not result.summary["flow_broken"]
    # server retransmission at ~300 ms, as in the paper's tcpdump
    assert 0.25 < result.summary["first_rto_s"] < 0.4
    assert result.summary["total_latency_s"] < 5.0
