"""Figure 15: max-to-average traffic ratios = per-tenant cost savings."""

from conftest import run_once, show

from repro.experiments import fig15


def test_fig15_cost_reduction(benchmark):
    result = run_once(benchmark, fig15.run, seed=2016)
    print()
    # the full table is 100 rows; print summary + extremes
    print(result.name)
    for row in result.rows[:5] + result.rows[-3:]:
        print(row)
    print("summary:", result.summary)
    s = result.summary
    assert s["num_vips"] >= 100  # paper: 100+
    assert s["total_rules"] >= 50_000  # paper: 50K+
    assert 2.5 < s["mean_ratio"] < 6.0  # paper: 3.7x average saving
    assert s["min_ratio"] < 1.3  # paper: 1.07x
    assert s["max_ratio"] > 15  # paper: 50.3x
