"""Simulator-core microbenchmarks: the perf trajectory every PR must beat.

Measures the hot paths every Yoda mechanism rides on:

- ``scheduler``: the headline events/sec figure on the dominant workload --
  parallel event chains each re-arming a retransmission-style far timer
  (schedule + cancel) on every tick, exactly the pattern TCP RTO and
  KV-timeout timers produce.
- ``dispatch``: pure schedule/fire throughput with a deep heap, no cancels.
- ``cancel_churn``: schedule-then-cancel throughput (timers that almost
  never fire -- the common case for retransmission timers on a healthy
  network).
- ``network``: end-to-end packets/sec through Host -> Network -> TcpStack
  for a bulk TCP transfer.
- ``fig9_style``: wall seconds for a small Testbed page-load run with an
  instance failure (the shape of the paper's Figure 9 experiments).

Results are written to ``BENCH_core.json`` at the repo root.  When the
committed pre-optimization baseline
(``benchmarks/BENCH_core_baseline.json``) is present, per-metric speedups
are included, so the perf trajectory across PRs is explicit.  Run with:

    PYTHONPATH=src python -m pytest benchmarks/test_core_speed.py -q

No pytest-benchmark dependency: simulations are deterministic, so a single
timed run per workload is the honest unit and keeps this runnable
anywhere.  Set ``BENCH_ENFORCE_SPEEDUP=scheduler:2.0`` to hard-fail when a
metric regresses below a required multiple of the baseline.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from typing import Dict

import pytest

from repro.net.host import Host
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.tcp.endpoint import ConnectionHandler, TcpStack

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_core.json")
BASELINE_PATH = os.path.join(REPO_ROOT, "benchmarks",
                             "BENCH_core_baseline.json")
SCHEMA = "bench-core/v1"

_metrics: Dict[str, Dict] = {}


def _note(name: str, value: float, unit: str,
          higher_is_better: bool = True) -> None:
    _metrics[name] = {
        "value": round(value, 3),
        "unit": unit,
        "higher_is_better": higher_is_better,
    }
    print(f"\n  [bench] {name}: {value:,.0f} {unit}")


@pytest.fixture(scope="module", autouse=True)
def _emit_report():
    """Write BENCH_core.json after the module runs (merging, so a partial
    selection of benchmarks updates rather than erases the report)."""
    yield
    doc = {"schema": SCHEMA, "metrics": {}}
    if os.path.exists(BENCH_PATH):
        try:
            with open(BENCH_PATH) as fh:
                old = json.load(fh)
            if old.get("schema") == SCHEMA:
                doc = old
        except (OSError, ValueError):
            pass
    doc["python"] = sys.version.split()[0]
    doc["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    doc["metrics"].update(_metrics)
    doc["speedup_vs_baseline"] = {}
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as fh:
            base = json.load(fh)
        for name, m in doc["metrics"].items():
            b = base.get("metrics", {}).get(name)
            if not b or not b.get("value"):
                continue
            ratio = (m["value"] / b["value"] if m["higher_is_better"]
                     else b["value"] / m["value"])
            doc["speedup_vs_baseline"][name] = round(ratio, 3)
    with open(BENCH_PATH, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    enforce = os.environ.get("BENCH_ENFORCE_SPEEDUP")
    if enforce:
        for clause in enforce.split(","):
            name, _, need = clause.partition(":")
            got = doc["speedup_vs_baseline"].get(name.strip())
            assert got is not None and got >= float(need), (
                f"{name} speedup {got} < required {need}"
            )


def _noop() -> None:
    pass


class TestSchedulerSpeed:
    def test_scheduler_events_per_sec(self):
        """Headline: chains of events each re-arming a far RTO-style timer.

        Every fired event costs one cancel (of the previous 3 s timer) and
        two schedules (the successor event and the fresh timer) -- the
        schedule/cancel-heavy shape that dominates real runs.
        """
        n_target = 150_000
        chains = 2000
        loop = EventLoop()
        rng = random.Random(2016)
        delays = [0.0005 + rng.random() * 0.005 for _ in range(512)]
        timers = [None] * chains
        fired = [0]

        def tick(chain: int) -> None:
            fired[0] += 1
            t = timers[chain]
            if t is not None:
                t.cancel()
            timers[chain] = loop.call_later(3.0, _noop)
            if fired[0] + chains <= n_target:
                loop.call_later(delays[fired[0] % 512], tick, chain)

        for c in range(chains):
            loop.call_later(delays[c % 512], tick, c)
        start = time.perf_counter()
        total = loop.run()
        wall = time.perf_counter() - start
        assert total >= n_target
        _note("scheduler.events_per_sec", total / wall, "events/sec")

    def test_dispatch_events_per_sec(self):
        """Pure schedule+fire with ~2000 outstanding events, no cancels."""
        n_target = 200_000
        width = 2000
        loop = EventLoop()
        rng = random.Random(7)
        delays = [0.0001 + rng.random() * 0.01 for _ in range(512)]
        fired = [0]

        def tick() -> None:
            fired[0] += 1
            if fired[0] + width <= n_target:
                loop.call_later(delays[fired[0] % 512], tick)

        for c in range(width):
            loop.call_later(delays[c % 512], tick)
        start = time.perf_counter()
        total = loop.run()
        wall = time.perf_counter() - start
        assert total == n_target
        _note("dispatch.events_per_sec", total / wall, "events/sec")

    def test_cancel_churn_ops_per_sec(self):
        """Timers armed and cancelled without ever firing: the healthy-
        network retransmission-timer pattern.  One op = schedule+cancel."""
        n_ops = 150_000
        loop = EventLoop()
        stride = 200  # keep a small rotating set alive between cancels
        rng = random.Random(2016)
        evict = [rng.randrange(stride) for _ in range(n_ops)]
        pending = []
        start = time.perf_counter()
        for i in range(n_ops):
            pending.append(loop.call_later(0.3 + (i % 7) * 0.4, _noop))
            if len(pending) > stride:
                pending.pop(evict[i]).cancel()
        for ev in pending:
            ev.cancel()
        loop.run()
        wall = time.perf_counter() - start
        assert loop.now() == 0.0 or loop.pending_count() == 0
        _note("cancel_churn.ops_per_sec", n_ops / wall, "ops/sec")


class _Sink(ConnectionHandler):
    def __init__(self):
        self.received = 0
        self.closed = False

    def on_data(self, conn, data):
        self.received += len(data)

    def on_remote_close(self, conn):
        conn.close()
        self.closed = True


class _Pusher(ConnectionHandler):
    def __init__(self, payload: bytes):
        self.payload = payload

    def on_connected(self, conn):
        conn.send(self.payload)
        conn.close()


class TestDataPlaneSpeed:
    def test_network_packets_per_sec(self):
        """Bulk TCP transfer server->client across the fabric."""
        transfer = 6_000_000
        loop = EventLoop()
        rng = SeededRng(2016)
        net = Network(loop, rng)
        a = net.attach(Host("a", ["10.0.0.1"]))
        b = net.attach(Host("b", ["10.0.0.2"]))
        stack_a = TcpStack(a, loop)
        stack_b = TcpStack(b, loop)
        payload = bytes(transfer)
        stack_b.listen(80, lambda conn: _Pusher(payload))
        sink = _Sink()
        from repro.net.addresses import Endpoint
        stack_a.connect(Endpoint("10.0.0.2", 80), sink)
        start = time.perf_counter()
        loop.run()
        wall = time.perf_counter() - start
        assert sink.received == transfer
        packets = net.metrics.counter("tx_packets").value
        _note("network.packets_per_sec", packets / wall, "packets/sec")

    def test_fig9_style_wall_seconds(self):
        """A small end-to-end Testbed run: page loads + instance failure."""
        from repro.experiments.harness import Testbed, TestbedConfig
        from repro.http.client import BrowserClient

        start = time.perf_counter()
        bed = Testbed(TestbedConfig(
            seed=2016, lb="yoda", num_lb_instances=3, num_store_servers=2,
            num_backends=3, corpus="flat", flat_object_count=8,
            flat_object_bytes=400_000,
        ))
        results = []
        browsers = [BrowserClient(stack, bed.loop, bed.target())
                    for stack in bed.client_stacks[:3]]
        for i in range(24):
            browsers[i % len(browsers)].fetch(f"/obj/{i % 8}.bin",
                                              results.append)
        bed.loop.call_later(0.4, lambda: bed.fail_lb_instances(1))
        bed.run(60.0)
        wall = time.perf_counter() - start
        assert results and all(r.ok for r in results)
        _note("fig9_style.wall_seconds", wall, "seconds",
              higher_is_better=False)
