"""TCP connection states (RFC 793)."""

from __future__ import annotations

import enum


class TcpState(enum.Enum):
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"

    @property
    def synchronized(self) -> bool:
        """States where the handshake has completed."""
        return self in _SYNCHRONIZED

    @property
    def can_send(self) -> bool:
        """States where the local side may still send new data."""
        return self in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)

    @property
    def closed(self) -> bool:
        return self is TcpState.CLOSED


_SYNCHRONIZED = frozenset(
    {
        TcpState.ESTABLISHED,
        TcpState.FIN_WAIT_1,
        TcpState.FIN_WAIT_2,
        TcpState.CLOSE_WAIT,
        TcpState.CLOSING,
        TcpState.LAST_ACK,
        TcpState.TIME_WAIT,
    }
)
