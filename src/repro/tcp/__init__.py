"""A per-packet TCP implementation for the simulator.

This is a real (if compact) TCP: three-way handshake, sequence-number
spaces with 32-bit wraparound, MSS segmentation, sliding window with slow
start and fast retransmit, exponential-backoff retransmission timers, FIN
teardown and RST handling.  Clients and backend servers in the experiments
speak through :class:`~repro.tcp.endpoint.TcpStack` /
:class:`~repro.tcp.endpoint.TcpConnection`; YODA instances instead craft and
rewrite raw packets (as the paper's nfqueue driver does), which is why the
sequence arithmetic lives in its own module they can share.
"""

from repro.tcp.config import TcpConfig
from repro.tcp.endpoint import ConnectionHandler, TcpConnection, TcpStack
from repro.tcp.segment import seq_add, seq_between, seq_diff, seq_ge, seq_gt, seq_le, seq_lt
from repro.tcp.state import TcpState

__all__ = [
    "TcpConfig",
    "TcpStack",
    "TcpConnection",
    "ConnectionHandler",
    "TcpState",
    "seq_add",
    "seq_diff",
    "seq_lt",
    "seq_le",
    "seq_gt",
    "seq_ge",
    "seq_between",
]
