"""TCP endpoints: a per-host stack and per-connection state machines.

Clients and backend servers run real TCP through these classes.  The state
machine covers everything the paper's experiments exercise:

- three-way handshake with retransmitted SYN / SYN-ACK (3 s initial RTO,
  matching the Ubuntu behaviour the paper cites in Section 4.2);
- MSS segmentation, cumulative ACKs, out-of-order reassembly;
- slow start / congestion avoidance, fast retransmit, and RTO with
  exponential backoff starting at 300 ms (the retransmissions visible in
  Figure 12(b));
- FIN teardown, TIME_WAIT, RST on unknown flows (what a live HAProxy
  instance does when a failed peer's flow is rerouted to it).

Applications implement :class:`ConnectionHandler` and drive
:class:`TcpConnection.send` / :meth:`TcpConnection.close`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import TcpError
from repro.net.addresses import Endpoint, EphemeralPorts
from repro.net.host import Host
from repro.net.packet import ACK, FIN, PSH, RST, SYN, PACKET_POOL, Packet
from repro.obs import OBS
from repro.sim.events import EventLoop
from repro.sim.process import Timer
from repro.sim.random import stable_hash32
from repro.tcp.config import TcpConfig
from repro.tcp.segment import seq_add, seq_diff, seq_gt, seq_le, seq_lt
from repro.tcp.state import TcpState

ConnKey = Tuple[Endpoint, Endpoint]  # (local, remote)


class ConnectionHandler:
    """Application callbacks; subclass and override what you need."""

    def on_connected(self, conn: "TcpConnection") -> None:
        """Handshake completed; the connection is ESTABLISHED."""

    def on_data(self, conn: "TcpConnection", data: bytes) -> None:
        """In-order application bytes arrived."""

    def on_remote_close(self, conn: "TcpConnection") -> None:
        """The peer sent FIN; no more data will arrive."""

    def on_closed(self, conn: "TcpConnection") -> None:
        """The connection reached CLOSED/TIME_WAIT cleanly."""

    def on_error(self, conn: "TcpConnection", reason: str) -> None:
        """The connection was aborted ("reset" or "timeout")."""


HandlerFactory = Callable[["TcpConnection"], ConnectionHandler]


class TcpStack:
    """Demultiplexes a host's packets to listeners and connections."""

    def __init__(
        self,
        host: Host,
        loop: EventLoop,
        config: Optional[TcpConfig] = None,
    ):
        self.host = host
        self.loop = loop
        self.config = config or TcpConfig()
        self._conns: Dict[ConnKey, TcpConnection] = {}
        self._listeners: Dict[int, HandlerFactory] = {}
        self._ports = EphemeralPorts()
        self._isn_counter = 0
        host.set_handler(self._on_packet)

    # -- API -----------------------------------------------------------------
    def listen(self, port: int, factory: HandlerFactory) -> None:
        """Accept connections to ``port`` on any IP this host owns."""
        if port in self._listeners:
            raise TcpError(f"port {port} already listening on {self.host.name}")
        self._listeners[port] = factory

    def close_listener(self, port: int) -> None:
        self._listeners.pop(port, None)

    def connect(
        self,
        remote: Endpoint,
        handler: ConnectionHandler,
        local_ip: Optional[str] = None,
        local_port: Optional[int] = None,
        obs_ctx: Optional[Tuple[int, int]] = None,
    ) -> "TcpConnection":
        """Actively open a connection to ``remote``.

        ``obs_ctx`` is an observability trace context; when tracing is
        enabled every segment of this connection carries it in
        ``Packet.meta`` so downstream components join the same trace.
        """
        ip = local_ip or self.host.ip
        if local_port is None:
            # skip ports still held by live/TIME_WAIT connections
            for _ in range(EphemeralPorts.HIGH - EphemeralPorts.LOW + 1):
                candidate = self._ports.next()
                if (Endpoint(ip, candidate), remote) not in self._conns:
                    local_port = candidate
                    break
            else:
                raise TcpError(f"ephemeral ports exhausted toward {remote}")
        local = Endpoint(ip, local_port)
        key = (local, remote)
        if key in self._conns:
            raise TcpError(f"connection {local} -> {remote} already exists")
        conn = TcpConnection(self, local, remote, handler)
        conn.obs_ctx = obs_ctx
        self._conns[key] = conn
        conn._active_open()
        return conn

    def connections(self) -> Dict[ConnKey, "TcpConnection"]:
        return dict(self._conns)

    def choose_isn(self, local: Endpoint, remote: Endpoint) -> int:
        if self.config.isn_fn is not None:
            return self.config.isn_fn(f"{local}-{remote}")
        self._isn_counter += 1
        return stable_hash32(f"{local}-{remote}", salt=str(self._isn_counter))

    # -- plumbing --------------------------------------------------------------
    def _register(self, conn: "TcpConnection") -> None:
        self._conns[(conn.local, conn.remote)] = conn

    def _unregister(self, conn: "TcpConnection") -> None:
        self._conns.pop((conn.local, conn.remote), None)

    def _transmit(self, packet: Packet) -> None:
        self.host.send(packet)

    def _on_packet(self, pkt: Packet) -> None:
        key = (pkt.dst, pkt.src)
        conn = self._conns.get(key)
        if conn is not None:
            conn._handle(pkt)
            return
        if pkt.syn and not pkt.has_ack:
            factory = self._listeners.get(pkt.dst.port)
            if factory is not None:
                conn = TcpConnection(self, local=pkt.dst, remote=pkt.src, handler=None)
                conn.handler = factory(conn)
                self._conns[key] = conn
                conn._passive_open(pkt)
                return
        if not pkt.rst:
            # RFC 793: reset unknown flows.  This is what makes a rerouted
            # flow visibly break when it lands on a proxy with no state.
            rst_seq = pkt.ack if pkt.has_ack else 0
            self._transmit(
                PACKET_POOL.acquire(pkt.dst, pkt.src, flags=RST | ACK,
                                    seq=rst_seq,
                                    ack=seq_add(pkt.seq, max(pkt.seq_span, 1)))
            )


class TcpConnection:
    """One TCP connection's full state machine."""

    __slots__ = (
        "stack", "loop", "config", "local", "remote", "handler", "state",
        "iss", "_snd_una", "_snd_nxt", "_snd_buf", "_snd_buf_seq",
        "_fin_queued", "_fin_sent_seq", "_cwnd", "_ssthresh", "_dupacks",
        "_recovery_point", "irs", "_rcv_nxt", "_reasm", "_remote_fin_seen",
        "_retx_timer", "_time_wait_timer", "_rto", "_retries", "bytes_sent",
        "bytes_received", "retransmit_count", "opened_at", "established_at",
        "closed_at", "obs_ctx",
    )

    def __init__(
        self,
        stack: TcpStack,
        local: Endpoint,
        remote: Endpoint,
        handler: Optional[ConnectionHandler],
    ):
        self.stack = stack
        self.loop = stack.loop
        self.config = stack.config
        self.local = local
        self.remote = remote
        self.handler: ConnectionHandler = handler or ConnectionHandler()
        self.state = TcpState.CLOSED

        # send side
        self.iss = stack.choose_isn(local, remote)
        self._snd_una = self.iss
        self._snd_nxt = self.iss
        self._snd_buf = bytearray()  # bytes in [snd_buf_seq, ...), unacked+unsent
        self._snd_buf_seq = seq_add(self.iss, 1)
        self._fin_queued = False
        self._fin_sent_seq: Optional[int] = None
        self._cwnd = self.config.initial_cwnd_bytes
        self._ssthresh = 1 << 30
        self._dupacks = 0
        self._recovery_point: Optional[int] = None  # NewReno fast recovery

        # receive side
        self.irs = 0
        self._rcv_nxt = 0
        self._reasm: Dict[int, bytes] = {}
        self._remote_fin_seen = False

        # timers & accounting
        self._retx_timer = Timer(self.loop, self._on_rto)
        self._time_wait_timer = Timer(self.loop, self._time_wait_done)
        self._rto = self.config.data_rto_initial
        self._retries = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.retransmit_count = 0
        self.opened_at = self.loop.now()
        self.established_at: Optional[float] = None
        self.closed_at: Optional[float] = None
        self.obs_ctx: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------ API --
    def send(self, data: bytes) -> None:
        """Queue application bytes for transmission."""
        if self._fin_queued:
            raise TcpError("send() after close()")
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT, TcpState.LAST_ACK,
                          TcpState.CLOSING, TcpState.FIN_WAIT_1, TcpState.FIN_WAIT_2):
            raise TcpError(f"send() in state {self.state.value}")
        self._snd_buf.extend(data)
        self._pump()

    def close(self) -> None:
        """Graceful close: FIN after all queued data is sent."""
        if self._fin_queued or self.state is TcpState.CLOSED:
            return
        self._fin_queued = True
        self._pump()

    def abort(self, reason: str = "aborted") -> None:
        """Hard close: send RST, drop all state."""
        if self.state is not TcpState.CLOSED and self.state.synchronized:
            self.stack._transmit(
                PACKET_POOL.acquire(self.local, self.remote, flags=RST | ACK,
                                    seq=self._snd_nxt, ack=self._rcv_nxt)
            )
        self._teardown()
        self.handler.on_error(self, reason)

    def probe(self) -> None:
        """Send a pure ACK at the current position (a keepalive nudge).

        Long-lived clients use this when a stream stalls: at the LB the
        unknown-flow ACK is exactly what triggers client-side flow
        recovery, so a download whose instance died resumes without
        waiting for a retransmission timer.
        """
        if self.state.synchronized:
            self._send_ack()

    @property
    def established(self) -> bool:
        return self.state is TcpState.ESTABLISHED

    @property
    def snd_una(self) -> int:
        return self._snd_una

    @property
    def rcv_nxt(self) -> int:
        return self._rcv_nxt

    # ------------------------------------------------------------- handshake --
    def _active_open(self) -> None:
        self.state = TcpState.SYN_SENT
        self._snd_una = self.iss
        self._snd_nxt = seq_add(self.iss, 1)
        self._send_flags(SYN, seq=self.iss, with_ack=False)
        self._rto = self.config.syn_rto
        self._retx_timer.start(self._rto)

    def _passive_open(self, syn: Packet) -> None:
        if OBS.enabled:
            # adopt the client's trace context, so the server side of the
            # connection reports into the same trace
            ctx = syn.meta.get("obs_ctx")
            if ctx is not None:
                self.obs_ctx = ctx
        self.state = TcpState.SYN_RCVD
        self.irs = syn.seq
        self._rcv_nxt = seq_add(syn.seq, 1)
        self._snd_una = self.iss
        self._snd_nxt = seq_add(self.iss, 1)
        self._send_flags(SYN | ACK, seq=self.iss)
        self._rto = self.config.syn_rto
        self._retx_timer.start(self._rto)

    # ------------------------------------------------------------ packet I/O --
    def _send_flags(self, flags: int, seq: int, with_ack: bool = True,
                    payload: bytes = b"") -> None:
        if with_ack:
            flags |= ACK
        pkt = PACKET_POOL.acquire(self.local, self.remote, flags=flags, seq=seq,
                                  ack=self._rcv_nxt if with_ack else 0,
                                  payload=payload)
        if OBS.enabled and self.obs_ctx is not None:
            pkt.meta["obs_ctx"] = self.obs_ctx
        self.stack._transmit(pkt)

    def _send_ack(self) -> None:
        self._send_flags(ACK, seq=self._snd_nxt)

    def _handle(self, pkt: Packet) -> None:
        if pkt.rst:
            self._handle_rst(pkt)
            return
        if self.state is TcpState.SYN_SENT:
            self._handle_syn_sent(pkt)
            return
        if self.state is TcpState.SYN_RCVD and pkt.syn and not pkt.has_ack:
            # duplicate SYN from the client: re-send SYN-ACK
            self._send_flags(SYN | ACK, seq=self.iss)
            return
        if self.state is TcpState.TIME_WAIT:
            if pkt.fin:
                self._send_ack()  # re-ACK a retransmitted FIN
            return
        if pkt.has_ack:
            self._process_ack(pkt)
        if self.state is TcpState.CLOSED:
            return
        if pkt.payload or pkt.fin:
            self._process_data(pkt)
        self._pump()

    def _handle_rst(self, pkt: Packet) -> None:
        # Accept RST only if plausibly in-window (loose check: not stale).
        if self.state is TcpState.CLOSED:
            return
        self._teardown()
        self.handler.on_error(self, "reset")

    def _handle_syn_sent(self, pkt: Packet) -> None:
        if pkt.syn and pkt.has_ack and pkt.ack == seq_add(self.iss, 1):
            self.irs = pkt.seq
            self._rcv_nxt = seq_add(pkt.seq, 1)
            self._snd_una = pkt.ack
            self._retx_timer.cancel()
            self._retries = 0
            self._rto = self.config.data_rto_initial
            self.state = TcpState.ESTABLISHED
            self.established_at = self.loop.now()
            self._send_ack()
            self.handler.on_connected(self)
            self._pump()

    def _process_ack(self, pkt: Packet) -> None:
        if self.state is TcpState.SYN_RCVD:
            if pkt.ack == seq_add(self.iss, 1):
                self._snd_una = pkt.ack
                self._retx_timer.cancel()
                self._retries = 0
                self._rto = self.config.data_rto_initial
                self.state = TcpState.ESTABLISHED
                self.established_at = self.loop.now()
                self.handler.on_connected(self)
            else:
                return
        acked = seq_diff(pkt.ack, self._snd_una)
        if acked > 0 and seq_le(pkt.ack, self._snd_nxt):
            self._register_ack(pkt.ack, acked)
        elif acked == 0 and not pkt.payload and not pkt.syn and not pkt.fin:
            self._dupacks += 1
            if self._dupacks == self.config.dupack_threshold:
                self._fast_retransmit()

    def _register_ack(self, ack: int, acked_bytes: int) -> None:
        self._dupacks = 0
        # trim the send buffer
        buffered_acked = seq_diff(ack, self._snd_buf_seq)
        if buffered_acked > 0:
            n = min(buffered_acked, len(self._snd_buf))
            del self._snd_buf[:n]
            self._snd_buf_seq = seq_add(self._snd_buf_seq, n)
        self._snd_una = ack
        # congestion window growth
        if self._cwnd < self._ssthresh:
            self._cwnd += min(acked_bytes, self.config.mss)
        else:
            self._cwnd += max(1, self.config.mss * self.config.mss // self._cwnd)
        # retransmission timer management
        self._retries = 0
        self._rto = self.config.data_rto_initial
        if seq_lt(self._snd_una, self._snd_nxt):
            self._retx_timer.start(self._rto)
        else:
            self._retx_timer.cancel()
        # NewReno partial-ACK handling: while recovering from loss, each
        # ACK that does not cover the recovery point exposes the next hole;
        # retransmit it immediately instead of waiting out another RTO.
        if self._recovery_point is not None:
            if seq_lt(ack, self._recovery_point):
                self.retransmit_count += 1
                self._retransmit_oldest()
            else:
                self._recovery_point = None
        # FIN acked?
        if self._fin_sent_seq is not None and seq_gt(ack, self._fin_sent_seq):
            self._on_fin_acked()

    def _on_fin_acked(self) -> None:
        if self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.FIN_WAIT_2
        elif self.state is TcpState.CLOSING:
            self._enter_time_wait()
        elif self.state is TcpState.LAST_ACK:
            self._finish_closed()

    def _process_data(self, pkt: Packet) -> None:
        payload = pkt.payload
        seq = pkt.seq
        advanced = False
        if payload:
            offset = seq_diff(self._rcv_nxt, seq)
            if offset < 0:
                # future segment: stash for reassembly
                self._reasm[seq] = payload
            elif offset < len(payload):
                fresh = payload[offset:]
                self._deliver(fresh)
                advanced = True
                self._drain_reasm()
            # else: entirely duplicate -- just re-ACK below
        # FIN occupies the sequence slot after the payload
        if pkt.fin:
            fin_seq = seq_add(pkt.seq, len(payload))
            if fin_seq == self._rcv_nxt and not self._remote_fin_seen:
                self._remote_fin_seen = True
                self._rcv_nxt = seq_add(self._rcv_nxt, 1)
                advanced = True
                self._on_remote_fin()
        self._send_ack()
        if advanced:
            self._dupacks = 0

    def _deliver(self, data: bytes) -> None:
        self._rcv_nxt = seq_add(self._rcv_nxt, len(data))
        self.bytes_received += len(data)
        self.handler.on_data(self, data)

    def _drain_reasm(self) -> None:
        while self._rcv_nxt in self._reasm:
            chunk = self._reasm.pop(self._rcv_nxt)
            self._deliver(chunk)

    def _on_remote_fin(self) -> None:
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
        elif self.state is TcpState.FIN_WAIT_1:
            # our FIN not yet acked -> simultaneous close
            self.state = TcpState.CLOSING
        elif self.state is TcpState.FIN_WAIT_2:
            self._enter_time_wait()
        self.handler.on_remote_close(self)

    # ------------------------------------------------------------ transmit --
    def _pump(self) -> None:
        if self.state in (TcpState.CLOSED, TcpState.SYN_SENT, TcpState.SYN_RCVD,
                          TcpState.TIME_WAIT):
            return
        while True:
            in_flight = seq_diff(self._snd_nxt, self._snd_una)
            window = min(self._cwnd, self.config.rwnd)
            budget = window - in_flight
            unsent_off = seq_diff(self._snd_nxt, self._snd_buf_seq)
            unsent = len(self._snd_buf) - unsent_off
            if unsent > 0 and budget > 0 and self._fin_sent_seq is None:
                n = min(unsent, self.config.mss, budget)
                chunk = bytes(self._snd_buf[unsent_off:unsent_off + n])
                flags = ACK | (PSH if n == unsent else 0)
                self._send_flags(flags, seq=self._snd_nxt, payload=chunk)
                self._snd_nxt = seq_add(self._snd_nxt, n)
                self.bytes_sent += n
                if not self._retx_timer.armed:
                    self._retx_timer.start(self._rto)
                continue
            if (self._fin_queued and self._fin_sent_seq is None and unsent == 0
                    and self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)):
                self._fin_sent_seq = self._snd_nxt
                self._send_flags(FIN | ACK, seq=self._snd_nxt)
                self._snd_nxt = seq_add(self._snd_nxt, 1)
                self.state = (TcpState.FIN_WAIT_1 if self.state is TcpState.ESTABLISHED
                              else TcpState.LAST_ACK)
                if not self._retx_timer.armed:
                    self._retx_timer.start(self._rto)
            break

    # --------------------------------------------------------------- timers --
    def _on_rto(self) -> None:
        self._retries += 1
        if self._retries > self.config.max_retries:
            self._teardown()
            self.handler.on_error(self, "timeout")
            return
        self.retransmit_count += 1
        if self.state is TcpState.SYN_SENT:
            self._send_flags(SYN, seq=self.iss, with_ack=False)
        elif self.state is TcpState.SYN_RCVD:
            self._send_flags(SYN | ACK, seq=self.iss)
        else:
            self._retransmit_oldest()
            # RTO => multiplicative decrease, restart from one segment
            in_flight = max(seq_diff(self._snd_nxt, self._snd_una), self.config.mss)
            self._ssthresh = max(in_flight // 2, 2 * self.config.mss)
            self._cwnd = self.config.mss
            self._recovery_point = self._snd_nxt
        self._rto = min(self._rto * 2, self.config.rto_max)
        self._retx_timer.start(self._rto)

    def _retransmit_oldest(self) -> None:
        if (self._fin_sent_seq is not None and self._snd_una == self._fin_sent_seq):
            self._send_flags(FIN | ACK, seq=self._fin_sent_seq)
            return
        off = seq_diff(self._snd_una, self._snd_buf_seq)
        if 0 <= off < len(self._snd_buf):
            n = min(self.config.mss, len(self._snd_buf) - off)
            chunk = bytes(self._snd_buf[off:off + n])
            self._send_flags(ACK, seq=self._snd_una, payload=chunk)

    def _fast_retransmit(self) -> None:
        if not seq_lt(self._snd_una, self._snd_nxt):
            return
        self.retransmit_count += 1
        in_flight = max(seq_diff(self._snd_nxt, self._snd_una), self.config.mss)
        self._ssthresh = max(in_flight // 2, 2 * self.config.mss)
        self._cwnd = self._ssthresh
        self._recovery_point = self._snd_nxt
        self._retransmit_oldest()

    # ------------------------------------------------------------- teardown --
    def _enter_time_wait(self) -> None:
        self.state = TcpState.TIME_WAIT
        self._retx_timer.cancel()
        self.handler.on_closed(self)
        self._time_wait_timer.start(self.config.time_wait)

    def _time_wait_done(self) -> None:
        self._finish_closed(notify=False)

    def _finish_closed(self, notify: bool = True) -> None:
        already_closed = self.state is TcpState.CLOSED
        self._teardown()
        if notify and not already_closed:
            self.handler.on_closed(self)

    def _teardown(self) -> None:
        self.state = TcpState.CLOSED
        self.closed_at = self.loop.now()
        self._retx_timer.cancel()
        self._time_wait_timer.cancel()
        self.stack._unregister(self)

    def __repr__(self) -> str:
        return (f"TcpConnection({self.local} -> {self.remote}, "
                f"{self.state.value})")
