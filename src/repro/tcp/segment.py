"""32-bit sequence-space arithmetic (RFC 793 style).

Sequence numbers live modulo 2**32 and comparisons are only meaningful for
numbers within half the space of each other.  YODA's whole tunneling trick
is a constant offset in this space (Section 4.1: translate server sequence
numbers by C - S), so these helpers are shared between the TCP endpoints
and YODA's packet rewriter -- and they must agree about wraparound.
"""

from __future__ import annotations

SEQ_MOD = 1 << 32
_HALF = 1 << 31


def seq_add(seq: int, delta: int) -> int:
    """seq + delta, mod 2**32 (delta may be negative)."""
    return (seq + delta) % SEQ_MOD


def seq_diff(a: int, b: int) -> int:
    """Signed distance a - b, assuming |a - b| < 2**31 in sequence space."""
    d = (a - b) % SEQ_MOD
    if d >= _HALF:
        d -= SEQ_MOD
    return d


def seq_lt(a: int, b: int) -> bool:
    return seq_diff(a, b) < 0


def seq_le(a: int, b: int) -> bool:
    return seq_diff(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    return seq_diff(a, b) > 0


def seq_ge(a: int, b: int) -> bool:
    return seq_diff(a, b) >= 0


def seq_between(low: int, x: int, high: int) -> bool:
    """True when low <= x < high in sequence space."""
    return seq_le(low, x) and seq_lt(x, high)
