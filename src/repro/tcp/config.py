"""TCP tuning knobs.

Defaults follow what the paper observed on its Ubuntu 12.04 testbed: a 3 s
SYN retransmission timeout (Section 4.2) and a 300 ms initial data RTO that
doubles (the 300 ms / 600 ms server retransmissions in Figure 12(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class TcpConfig:
    """Per-stack TCP parameters.

    Attributes:
        mss: maximum segment payload bytes.
        initial_cwnd_segments: IW in segments (RFC 6928's IW10 default --
            the paper relies on HTTP headers fitting the initial window).
        rwnd: advertised receive window in bytes (kept constant).
        syn_rto: initial retransmission timeout for SYN / SYN-ACK.
        data_rto_initial: initial RTO for data and FIN segments.
        rto_max: retransmission timeout ceiling.
        max_retries: give up (abort the connection) after this many
            consecutive retransmissions of the same segment.
        time_wait: linger in TIME_WAIT before releasing the port.
        dupack_threshold: duplicate ACKs that trigger fast retransmit.
        isn_fn: optional initial-sequence-number chooser, called with a
            string key "local-remote"; defaults to a stable hash.
    """

    mss: int = 1460
    initial_cwnd_segments: int = 10
    rwnd: int = 262144
    syn_rto: float = 3.0
    data_rto_initial: float = 0.3
    rto_max: float = 60.0
    max_retries: int = 6
    time_wait: float = 1.0
    dupack_threshold: int = 3
    isn_fn: Optional[Callable[[str], int]] = None

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError(f"mss must be positive, got {self.mss}")
        if self.initial_cwnd_segments <= 0:
            raise ValueError("initial_cwnd_segments must be positive")
        if self.data_rto_initial <= 0 or self.syn_rto <= 0:
            raise ValueError("retransmission timeouts must be positive")
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1")

    @property
    def initial_cwnd_bytes(self) -> int:
        return self.mss * self.initial_cwnd_segments
