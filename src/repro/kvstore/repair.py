"""Anti-entropy re-replication for the flow-state store.

The paper's client-side replication never *recovers* the replication
factor: once a Memcached server dies (or is quarantined), every key it
held stays under-replicated, and keys written while the ring was shrunken
live on servers that stop being the key's replica set the moment the ring
heals.  A second failure then loses ACKed flow state.

:class:`FlowStateRepairer` closes that gap.  One runs inside every YODA
instance as a periodic ``sim`` process.  It watches the shared
:class:`~repro.kvstore.client.MemcachedCluster` membership ``epoch``;
when the epoch moves, it diffs each owned key's *current* replica set
against the set the key was last known to be placed on, and re-writes the
changed ones through the replicating client at their current version
(newest-wins on the servers makes this idempotent and safe against
concurrent writers).  Repair traffic is paced by a token bucket so a big
membership change cannot starve the data path.

"Owned" keys are the records of the flows the instance is currently
serving -- the only records it can reconstruct from local state.  Flow
records owned by a *crashed* instance are repaired by whichever instance
recovers the flow (recovery reads run read-repair, and the new owner's
sweeper takes over from there).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.kvstore.client import ReplicatingKvClient
from repro.kvstore.memcached import Version
from repro.sim.events import EventLoop
from repro.sim.process import PeriodicTask

REPAIR_INTERVAL = 0.2  # seconds between sweeper wake-ups
REPAIR_RATE = 200.0  # keys re-replicated per second, sustained
REPAIR_BURST = 40  # keys re-replicated in one wake-up, max

# One owned record: key, serialized payload, version to re-write it at.
OwnedRecord = Tuple[str, bytes, Optional[Version]]


class TokenBucket:
    """Deterministic token bucket on simulated time."""

    def __init__(self, loop: EventLoop, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.loop = loop
        self.rate = rate
        self.burst = float(burst)
        self._tokens = float(burst)
        self._refilled_at = loop.now()

    def _refill(self) -> None:
        now = self.loop.now()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._refilled_at) * self.rate)
        self._refilled_at = now

    def try_take(self, n: float = 1.0) -> bool:
        self._refill()
        if self._tokens < n:
            return False
        self._tokens -= n
        return True


class FlowStateRepairer:
    """Per-instance anti-entropy sweeper.

    Args:
        loop: the event loop.
        kv: the instance's replicating client (shares its cluster view).
        records_fn: returns the records this instance currently owns; the
            :class:`~repro.core.instance.YodaInstance` supplies its live
            flows' storage keys, payloads, and last-written versions.
        interval: sweep wake-up period.
        rate/burst: token bucket pacing, in keys per second.
    """

    def __init__(
        self,
        loop: EventLoop,
        kv: ReplicatingKvClient,
        records_fn,
        interval: float = REPAIR_INTERVAL,
        rate: float = REPAIR_RATE,
        burst: float = REPAIR_BURST,
    ):
        self.loop = loop
        self.kv = kv
        self.records_fn = records_fn
        self.bucket = TokenBucket(loop, rate, burst)
        self._seen_epoch = kv.cluster.epoch
        self._placed: Dict[str, FrozenSet[str]] = {}
        self._queue: List[OwnedRecord] = []
        self._queued_keys: set = set()
        self.repairs_issued = 0
        self._task = PeriodicTask(loop, interval, self._tick)

    def start(self) -> None:
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    @property
    def backlog(self) -> int:
        return len(self._queue)

    # -- sweep ---------------------------------------------------------------
    def _tick(self) -> None:
        if self.kv.host.failed:
            # a crashed instance owns nothing; its flows re-home elsewhere
            self._placed.clear()
            self._queue.clear()
            self._queued_keys.clear()
            return
        cluster = self.kv.cluster
        if cluster.epoch != self._seen_epoch:
            self._seen_epoch = cluster.epoch
            self._scan(self.records_fn())
        self._drain()

    def _scan(self, records: Iterable[OwnedRecord]) -> None:
        """Diff every owned key's current replica set against its last
        known placement; queue the moved ones for re-replication."""
        owned = set()
        for key, payload, version in records:
            owned.add(key)
            current = frozenset(
                self.kv.cluster.replicas_for(key, self.kv.replicas))
            if not current:
                continue  # nowhere to put it; a later epoch will retry
            if self._placed.get(key) == current:
                continue
            if key not in self._queued_keys:
                self._queue.append((key, payload, version))
                self._queued_keys.add(key)
        # forget placements (and queued work) for keys no longer owned
        for key in [k for k in self._placed if k not in owned]:
            del self._placed[key]
        if self._queued_keys - owned:
            self._queued_keys &= owned
            self._queue = [r for r in self._queue if r[0] in owned]

    def _drain(self) -> None:
        while self._queue and self.bucket.try_take():
            key, payload, version = self._queue.pop(0)
            self._queued_keys.discard(key)
            placement = frozenset(
                self.kv.cluster.replicas_for(key, self.kv.replicas))
            self.kv.set(key, payload, version=version)
            self._placed[key] = placement
            self.repairs_issued += 1
            self.kv.metrics.counter("repair_writes").inc()
