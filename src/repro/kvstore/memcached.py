"""A Memcached-like key-value server on a simulated VM.

Implements the three operations the paper uses (`set`, `get`, `delete`)
over a tiny request/response packet protocol, with an LRU-bounded store and
a CPU model so latency under load and utilization (Figures 10 and 11) are
emergent rather than scripted.  The server itself is *unmodified* in the
paper's sense: replication lives entirely in the client library.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.packet import Packet
from repro.sim.cpu import CpuModel
from repro.sim.events import EventLoop

MEMCACHED_PORT = 11211

# Calibrated so one server reaches ~90% CPU at 160K ops/s -- the paper's
# "80K client req/sec at 90% CPU" with two set operations per client
# request (storage-a and storage-b).
DEFAULT_OP_CPU_COST = 5.6e-6


class MemcachedServer:
    """One Memcached VM: store + CPU + protocol handling."""

    def __init__(
        self,
        host: Host,
        loop: EventLoop,
        max_items: Optional[int] = None,
        op_cpu_cost: float = DEFAULT_OP_CPU_COST,
        port: int = MEMCACHED_PORT,
    ):
        self.host = host
        self.loop = loop
        self.port = port
        self.op_cpu_cost = op_cpu_cost
        self.max_items = max_items
        self.cpu = CpuModel(loop)
        self._store: "OrderedDict[str, bytes]" = OrderedDict()
        self.ops: Dict[str, int] = {"set": 0, "get": 0, "delete": 0}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        host.set_handler(self._on_packet)

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(self.host.ip, self.port)

    def __len__(self) -> int:
        return len(self._store)

    def fail(self) -> None:
        self.host.fail()

    def recover(self) -> None:
        """The VM comes back *empty* -- Memcached has no persistence; that
        is exactly the limitation TCPStore's client-side replication works
        around."""
        self._store.clear()
        self.host.recover()

    # -- protocol ---------------------------------------------------------
    def _on_packet(self, pkt: Packet) -> None:
        req = pkt.meta.get("kv")
        if req is None or pkt.dst.port != self.port:
            return
        self.cpu.execute(self.op_cpu_cost, self._serve, pkt, req)

    def _serve(self, pkt: Packet, req: Dict[str, Any]) -> None:
        if self.host.failed:
            return
        op = req["op"]
        key = req["key"]
        ok, value = True, None
        if op == "set":
            self._set(key, req["value"])
        elif op == "get":
            value = self._get(key)
            ok = value is not None
        elif op == "delete":
            ok = self._store.pop(key, None) is not None
        else:
            ok = False
        self.ops[op] = self.ops.get(op, 0) + 1
        reply = Packet(
            src=Endpoint(self.host.ip, self.port),
            dst=pkt.src,
            payload=value or b"",
            meta={
                "kv_resp": {
                    "req_id": req["req_id"],
                    "op": op,
                    "key": key,
                    "ok": ok,
                    "value": value,
                    "server": self.name,
                }
            },
        )
        self.host.send(reply)

    # -- store ------------------------------------------------------------
    def _set(self, key: str, value: bytes) -> None:
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = value
        if self.max_items is not None and len(self._store) > self.max_items:
            self._store.popitem(last=False)
            self.evictions += 1

    def _get(self, key: str) -> Optional[bytes]:
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return value

    # test/debug access -----------------------------------------------------
    def peek(self, key: str) -> Optional[bytes]:
        """Read without counting a hit (for tests)."""
        return self._store.get(key)
