"""A Memcached-like key-value server on a simulated VM.

Implements the three operations the paper uses (`set`, `get`, `delete`)
over a tiny request/response packet protocol, with an LRU-bounded store and
a CPU model so latency under load and utilization (Figures 10 and 11) are
emergent rather than scripted.  The server itself is *almost* unmodified in
the paper's sense: replication lives entirely in the client library.  The
one extension beyond the paper is that records carry an opaque version
stamp ``(counter, writer_id)`` assigned by the writer, the server keeps the
newest version on conflicting sets, and returns the version with every
read -- which is what lets the client library resolve replica disagreement
with newest-wins plus read-repair instead of first-hit-wins.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.packet import Packet
from repro.obs import OBS
from repro.sim.cpu import CpuModel
from repro.sim.events import EventLoop

MEMCACHED_PORT = 11211

# Calibrated so one server reaches ~90% CPU at 160K ops/s -- the paper's
# "80K client req/sec at 90% CPU" with two set operations per client
# request (storage-a and storage-b).
DEFAULT_OP_CPU_COST = 5.6e-6

# A record version: (monotonic per-key counter, writer id).  Tuples compare
# lexicographically, so the counter dominates and the writer id breaks
# ties deterministically.  ``None`` (an unversioned legacy write) loses to
# any stamped version.
Version = Tuple[int, str]


def version_newer(a: Optional[Version], b: Optional[Version]) -> bool:
    """True when version ``a`` should replace version ``b``."""
    if a is None:
        return False
    if b is None:
        return True
    return tuple(a) > tuple(b)


class MemcachedServer:
    """One Memcached VM: store + CPU + protocol handling."""

    def __init__(
        self,
        host: Host,
        loop: EventLoop,
        max_items: Optional[int] = None,
        op_cpu_cost: float = DEFAULT_OP_CPU_COST,
        port: int = MEMCACHED_PORT,
    ):
        self.host = host
        self.loop = loop
        self.port = port
        self.op_cpu_cost = op_cpu_cost
        self.max_items = max_items
        self.cpu = CpuModel(loop, owner=host.name)
        # key -> (version, value); version None for unversioned writes
        self._store: "OrderedDict[str, Tuple[Optional[Version], bytes]]" = OrderedDict()
        self.ops: Dict[str, int] = {"set": 0, "get": 0, "delete": 0}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_sets_refused = 0
        self.stale_deletes_refused = 0
        host.set_handler(self._on_packet)

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(self.host.ip, self.port)

    def __len__(self) -> int:
        return len(self._store)

    def fail(self) -> None:
        self.host.fail()

    def recover(self) -> None:
        """The VM comes back *empty* -- Memcached has no persistence; that
        is exactly the limitation TCPStore's client-side replication works
        around."""
        self._store.clear()
        self.host.recover()

    # -- protocol ---------------------------------------------------------
    def _on_packet(self, pkt: Packet) -> None:
        req = pkt.meta.get("kv")
        if req is None or pkt.dst.port != self.port:
            return
        self.cpu.execute(self.op_cpu_cost, self._serve, pkt, req,
                         phase="kv_op")

    def _serve(self, pkt: Packet, req: Dict[str, Any]) -> None:
        if self.host.failed:
            return
        op = req["op"]
        key = req["key"]
        ok, value, version = True, None, None
        if op == "set":
            ok, version = self._set(key, req["value"], req.get("version"))
        elif op == "get":
            version, value = self._get(key)
            ok = value is not None
        elif op == "delete":
            ok = self._delete(key, req.get("version"))
        else:
            ok = False
        self.ops[op] = self.ops.get(op, 0) + 1
        if OBS.enabled:
            ctx = pkt.meta.get("obs_ctx")
            if ctx is not None:
                OBS.tracer.event(f"kv.serve.{op}", self.name, ctx=ctx,
                                 attrs={"key": key, "ok": ok})
        reply = Packet(
            src=Endpoint(self.host.ip, self.port),
            dst=pkt.src,
            payload=value or b"",
            meta={
                "kv_resp": {
                    "req_id": req["req_id"],
                    "attempt": req.get("attempt"),
                    "op": op,
                    "key": key,
                    "ok": ok,
                    "value": value,
                    "version": version,
                    "server": self.name,
                }
            },
        )
        self.host.send(reply)

    # -- store ------------------------------------------------------------
    def _set(self, key: str, value: bytes,
             version: Optional[Version] = None,
             ) -> Tuple[bool, Optional[Version]]:
        """Store ``value`` unless a newer version is already held.  Returns
        ``(accepted, winning_version)``; a refusal reports the version it
        kept, so the writer can learn it is fighting a newer record (e.g.
        an orphan left by a previous incarnation of a reused flow key) and
        re-stamp above it."""
        existing = self._store.get(key)
        if existing is not None:
            held_version, _ = existing
            # newest-wins: an older (repair/hint) write must never clobber
            # a newer record; equal versions are idempotent re-writes
            if version_newer(held_version, version):
                self.stale_sets_refused += 1
                self._store.move_to_end(key)
                return False, held_version
            self._store.move_to_end(key)
        self._store[key] = (tuple(version) if version else None, value)
        if self.max_items is not None and len(self._store) > self.max_items:
            self._store.popitem(last=False)
            self.evictions += 1
        return True, tuple(version) if version else None

    def _delete(self, key: str, version: Optional[Version] = None) -> bool:
        """Remove ``key``.  A versioned delete is compare-and-delete: it
        removes only the exact record its issuer stamped.  Client 4-tuples
        recycle, so the storage key of a long-dead flow can belong to a
        *live* flow by the time the dead one's teardown reaches us -- and
        the two incarnations' counters are independent, so no newer/older
        comparison can tell them apart.  Exact match can: every copy of an
        incarnation's record (replica writes, hints, repair, read-repair)
        carries the writer's stamp, so the owner always matches its own
        records and never anyone else's.  A refused delete may strand an
        older orphan copy; the writer-side supersession path converges
        those when the key is next reused.  ``version=None`` (legacy
        callers) deletes unconditionally."""
        record = self._store.get(key)
        if record is None:
            return False
        held_version, _ = record
        if (version is not None and held_version is not None
                and tuple(held_version) != tuple(version)):
            self.stale_deletes_refused += 1
            return False
        del self._store[key]
        return True

    def _get(self, key: str) -> Tuple[Optional[Version], Optional[bytes]]:
        record = self._store.get(key)
        if record is None:
            self.misses += 1
            return None, None
        self._store.move_to_end(key)
        self.hits += 1
        return record

    # test/debug access -----------------------------------------------------
    def peek(self, key: str) -> Optional[bytes]:
        """Read the value without counting a hit (for tests/monitors)."""
        record = self._store.get(key)
        return record[1] if record is not None else None

    def peek_version(self, key: str) -> Optional[Version]:
        """Read the stored version without counting a hit."""
        record = self._store.get(key)
        return record[0] if record is not None else None
