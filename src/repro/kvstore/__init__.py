"""Memcached substrate: scale-out key-value servers + replicating client.

The paper builds TCPStore on unmodified Memcached plus a *modified client
library* that writes each key to K servers chosen by consistent hashing and
issues the replica operations in parallel (Section 6).  This package
provides exactly those two halves:

- :class:`~repro.kvstore.memcached.MemcachedServer` -- one store VM with an
  LRU-bounded dict, a CPU model, and a tiny request/response protocol.
- :class:`~repro.kvstore.client.ReplicatingKvClient` -- the client library
  every YODA instance embeds: K-way replicated set/get/delete with
  first-response-wins reads.
"""

from repro.kvstore.client import KvOpResult, MemcachedCluster, ReplicatingKvClient
from repro.kvstore.hashring import HashRing
from repro.kvstore.memcached import MemcachedServer

__all__ = [
    "MemcachedServer",
    "MemcachedCluster",
    "ReplicatingKvClient",
    "KvOpResult",
    "HashRing",
]
