"""Memcached substrate: scale-out key-value servers + replicating client.

The paper builds TCPStore on unmodified Memcached plus a *modified client
library* that writes each key to K servers chosen by consistent hashing and
issues the replica operations in parallel (Section 6).  This package
provides those two halves, plus the self-healing layer the paper leaves
open (versioned records, newest-wins reads with read-repair, hinted
handoff, and anti-entropy re-replication after membership changes):

- :class:`~repro.kvstore.memcached.MemcachedServer` -- one store VM with an
  LRU-bounded dict, a CPU model, and a tiny request/response protocol that
  keeps the newest version on conflicting sets.
- :class:`~repro.kvstore.client.ReplicatingKvClient` -- the client library
  every YODA instance embeds: K-way replicated set/get/delete with
  newest-wins reads, read-repair, and hinted handoff.
- :class:`~repro.kvstore.repair.FlowStateRepairer` -- the per-instance
  anti-entropy sweeper that restores the replication factor after the
  membership epoch moves.
"""

from repro.kvstore.client import KvOpResult, MemcachedCluster, ReplicatingKvClient
from repro.kvstore.hashring import HashRing
from repro.kvstore.memcached import MemcachedServer, version_newer
from repro.kvstore.repair import FlowStateRepairer, TokenBucket

__all__ = [
    "MemcachedServer",
    "MemcachedCluster",
    "ReplicatingKvClient",
    "KvOpResult",
    "HashRing",
    "FlowStateRepairer",
    "TokenBucket",
    "version_newer",
]
