"""Asynchronous cross-site replication of the flow-state store.

The paper's TCPStore replicates within one site; a whole-site failure
loses every acked flow.  :class:`SiteReplicator` closes that gap the way
production multi-region stores do: every acknowledged flow-state write on
the primary site is queued and shipped *asynchronously* to the secondary
site's Memcached cluster over the WAN, paced by a token bucket so
replication traffic cannot starve the data path.

Asynchrony is the whole design point -- storage-a/storage-b latency (which
gates SYN-ACKs) must not pay a WAN round trip -- and its price is a
*replication lag*: records enqueued but not yet shipped when the primary
site dies are lost.  The replicator therefore tracks bounded lag
explicitly (queue depth, age of the oldest unshipped record, max lag ever
observed) so experiments can plot recovery quality against lag, and
:meth:`promote` reports exactly how many records the failover abandoned.

Reconciliation across sites reuses PR 2's machinery wholesale: records
ship *at the version the primary stamped*, secondary servers keep
newest-wins, deletes ship as compare-and-delete pinned to the primary's
version, and after a promotion the secondary's own writers out-version
stale cross-site copies through the normal adopt/re-stamp supersession
path.  No new consistency mechanism is introduced.

One replicator serves the whole primary site (all instances' TcpStores
feed it), running on its own small relay host so a region kill takes it
down with everything else -- the unshipped queue at that moment is the
ground truth for "bytes of flow state lost".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.kvstore.client import KvOpResult, ReplicatingKvClient
from repro.kvstore.memcached import Version
from repro.kvstore.repair import TokenBucket
from repro.obs import OBS
from repro.sim.events import EventLoop
from repro.sim.process import PeriodicTask

SYNC_INTERVAL = 0.05  # seconds between shipping wake-ups
SYNC_RATE = 400.0  # records shipped per second, sustained
SYNC_BURST = 80  # records shipped in one wake-up, max

# One queued change: payload (None = delete), version, first-enqueued-at.
_Entry = Tuple[Optional[bytes], Optional[Version], float]


class SiteReplicator:
    """Paced, coalescing, asynchronous site-to-site record shipper.

    Args:
        loop: the event loop.
        kv: a :class:`ReplicatingKvClient` whose *cluster* is the secondary
            site's store and whose *host* lives in the primary site (so
            every shipped record pays the real WAN latency and dies with
            the primary region).
        interval: shipping wake-up period.
        rate/burst: token-bucket pacing, in records per second.
    """

    def __init__(
        self,
        loop: EventLoop,
        kv: ReplicatingKvClient,
        interval: float = SYNC_INTERVAL,
        rate: float = SYNC_RATE,
        burst: float = SYNC_BURST,
    ):
        self.loop = loop
        self.kv = kv
        self.bucket = TokenBucket(loop, rate, burst)
        # insertion-ordered; coalescing keeps the FIRST enqueue time so
        # lag() never under-reports how stale the secondary might be
        self._queue: "Dict[str, _Entry]" = {}
        self.promoted = False
        self.records_shipped = 0
        self.deletes_shipped = 0
        self.ship_failures = 0
        self.max_lag = 0.0
        self.lost_at_promotion = 0
        self._task = PeriodicTask(loop, interval, self._tick)
        self._running = False

    # -- control -------------------------------------------------------------
    def start(self) -> None:
        if not self._running:
            self._running = True
            self._task.start()

    def stop(self) -> None:
        if self._running:
            self._running = False
            self._task.stop()

    def promote(self) -> int:
        """Fail over: the secondary becomes authoritative.  Shipping stops
        (the primary is gone; anything still queued is lost) and the
        number of abandoned records is recorded and returned.  Idempotent.
        """
        if self.promoted:
            return self.lost_at_promotion
        self.promoted = True
        self.lost_at_promotion = len(self._queue)
        self._queue.clear()
        self.stop()
        self.kv.metrics.gauge("sitesync_lost_at_promotion").set(
            self.lost_at_promotion)
        if OBS.enabled:
            OBS.flight(f"{self.kv.host.name}.sitesync", "promote",
                       f"secondary promoted; {self.lost_at_promotion} "
                       f"unshipped records abandoned")
        return self.lost_at_promotion

    # -- feed (called by every TcpStore on the primary site) ------------------
    def note(self, key: str, payload: bytes,
             version: Optional[Version]) -> None:
        """An acked write happened on the primary; ship it when paced."""
        self._enqueue(key, payload, version)

    def note_delete(self, key: str, version: Optional[Version]) -> None:
        """A teardown happened on the primary; ship the compare-and-delete
        pinned to the version the owner last stamped."""
        self._enqueue(key, None, version)

    def _enqueue(self, key: str, payload: Optional[bytes],
                 version: Optional[Version]) -> None:
        if self.promoted:
            return  # the primary's stream is history after failover
        held = self._queue.get(key)
        enqueued_at = held[2] if held is not None else self.loop.now()
        self._queue[key] = (payload, version, enqueued_at)

    # -- observables ----------------------------------------------------------
    @property
    def backlog(self) -> int:
        return len(self._queue)

    def lag(self) -> float:
        """Age of the oldest unshipped change (0.0 when fully caught up)."""
        if not self._queue:
            return 0.0
        oldest = next(iter(self._queue.values()))[2]
        return self.loop.now() - oldest

    # -- shipping -------------------------------------------------------------
    def _tick(self) -> None:
        if self.promoted or self.kv.host.failed:
            # a dead relay ships nothing; whatever is queued when the
            # region dies is exactly the failover's data loss
            return
        lag = self.lag()
        if lag > self.max_lag:
            self.max_lag = lag
        self.kv.metrics.gauge("sitesync_lag").set(lag)
        self.kv.metrics.gauge("sitesync_backlog").set(len(self._queue))
        while self._queue and self.bucket.try_take():
            key = next(iter(self._queue))
            payload, version, _ = self._queue.pop(key)
            if payload is None:
                self.kv.delete(key, self._shipped, version=version)
                self.deletes_shipped += 1
            else:
                self.kv.set(key, payload, self._shipped, version=version)
                self.records_shipped += 1

    def _shipped(self, result: KvOpResult) -> None:
        # Failures are not retried here: for a *set*, anti-entropy-style
        # convergence comes from the next write of the same key (flow
        # records are rewritten on every state transition) plus
        # newest-wins on the secondary; for a *delete*, a refused
        # compare-and-delete means the secondary already holds a newer
        # incarnation of the recycled key, which is the correct outcome.
        if not result.ok:
            self.ship_failures += 1
            self.kv.metrics.counter("sitesync_ship_failures").inc()
