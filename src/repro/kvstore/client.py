"""The modified Memcached client library (paper Section 6).

The paper keeps Memcached servers stock and adds persistence in the client:
every key-value pair is written to K servers picked by consistent hashing,
operations go to all replicas *in parallel*, and reads complete on the
first hit.  This module is that library; one instance runs inside every
YODA instance.

TCPStore's latency optimizations from Section 4.3 map as follows:
decentralized server selection = every client owns a ring copy; concurrent
replica ops = the parallel fan-out here; long-lived TCP connections =
modeled as direct datagram exchange (no per-op handshake).

Beyond the paper, the client is *self-healing*:

- **newest-wins reads**: replicas can disagree after a server recovers
  empty or a key's replica set moves; reads gather every replica's answer
  (bounded by the op timeout) and return the highest version, instead of
  first-hit-wins.
- **read-repair**: stale or missing replicas discovered by a read get the
  newest record written back, fire-and-forget.
- **hinted handoff**: replica writes that go unanswered are queued per
  server and flushed when the membership view re-admits it (a recovered
  Memcached comes back *empty*, so the flush is load-bearing).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import KvStoreError
from repro.kvstore.hashring import HashRing
from repro.kvstore.memcached import (
    MEMCACHED_PORT,
    MemcachedServer,
    Version,
    version_newer,
)
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.packet import Packet
from repro.obs import OBS
from repro.sim.events import EventLoop
from repro.sim.metrics import MetricRegistry
from repro.sim.process import Timer
from repro.sim.random import SeededRng

KV_CLIENT_PORT = 11210

MAX_HINTS_PER_SERVER = 512


class MemcachedCluster:
    """Shared membership view: which store servers exist and are believed
    live.  The YODA monitor updates liveness; all clients see it at once
    (decentralized server selection -- no lookup service on the data path).

    A server removed with ``mark_dead(name, until=t)`` is *quarantined*:
    ``mark_live`` refuses to re-admit it before ``t``.  Clients use this
    when they conclude a server is unresponsive from consecutive timeouts,
    so the controller's omniscient-looking monitor cannot instantly undo a
    data-path verdict (e.g. for a partitioned-but-running server).

    Every membership change (add/dead/live/remove) bumps ``epoch`` and
    notifies listeners; the anti-entropy sweeper keys off the epoch to
    decide when replica sets may have moved, and clients key off the
    events to flush hinted writes or prune state for removed servers.
    """

    def __init__(self, servers: Sequence[MemcachedServer]):
        if not servers:
            raise KvStoreError("cluster needs at least one server")
        self.servers: Dict[str, MemcachedServer] = {s.name: s for s in servers}
        self.ring = HashRing([s.name for s in servers])
        self.epoch = 0
        self._quarantined_until: Dict[str, float] = {}
        self._listeners: List[Callable[[str, str], None]] = []

    def add_listener(self, fn: Callable[[str, str], None]) -> None:
        """Register ``fn(event, server_name)``; events are ``"add"``,
        ``"dead"``, ``"live"``, ``"removed"``."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[str, str], None]) -> None:
        if fn in self._listeners:
            self._listeners.remove(fn)

    def _bump(self, event: str, name: str) -> None:
        self.epoch += 1
        for fn in list(self._listeners):
            fn(event, name)

    def add(self, server: MemcachedServer) -> None:
        known = server.name in self.servers
        self.servers[server.name] = server
        if server.name not in self.ring:
            self.ring.add(server.name)
            self._bump("add" if not known else "live", server.name)

    def mark_dead(self, name: str, until: Optional[float] = None) -> None:
        if until is not None:
            current = self._quarantined_until.get(name, 0.0)
            self._quarantined_until[name] = max(current, until)
        if name in self.ring:
            self.ring.remove(name)
            self._bump("dead", name)

    def mark_live(self, name: str, now: Optional[float] = None) -> bool:
        """Re-admit a server to the ring.  Returns False (and does
        nothing) while the server is quarantined and ``now`` is given."""
        if name not in self.servers:
            return False
        if now is not None and now < self._quarantined_until.get(name, 0.0):
            return False
        self._quarantined_until.pop(name, None)
        if name not in self.ring:
            self.ring.add(name)
            self._bump("live", name)
        return True

    def remove(self, name: str) -> bool:
        """Decommission a server entirely: out of the ring *and* the
        membership map.  Clients prune per-server state on the event."""
        if name not in self.servers:
            return False
        del self.servers[name]
        self._quarantined_until.pop(name, None)
        if name in self.ring:
            self.ring.remove(name)
        self._bump("removed", name)
        return True

    def live_count(self) -> int:
        return len(self.ring)

    def endpoint(self, name: str) -> Endpoint:
        return self.servers[name].endpoint

    def replicas_for(self, key: str, k: int) -> List[str]:
        if not len(self.ring):
            return []  # total blackout: callers fail open, not KeyError
        return self.ring.lookup_n(key, k)


@dataclass
class KvOpResult:
    """Outcome of one replicated operation."""

    op: str
    key: str
    ok: bool
    value: Optional[bytes] = None
    version: Optional[Version] = None
    # a replica refused the write because it holds this newer version --
    # the writer should adopt it and re-stamp (see TcpStore)
    superseded_by: Optional[Version] = None
    started_at: float = 0.0
    finished_at: float = 0.0
    replicas_targeted: int = 0
    replicas_answered: int = 0

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at


class _PendingOp:
    __slots__ = ("op", "key", "value", "version", "targets", "on_done",
                 "result", "answered_by", "attempt_answered",
                 "replica_versions", "best_version", "best_value",
                 "successes", "attempts", "finished", "timer", "obs_span")

    def __init__(self, op: str, key: str, value: Optional[bytes],
                 version: Optional[Version], targets: List[str],
                 started_at: float, on_done: Callable[[KvOpResult], None]):
        self.op = op
        self.key = key
        self.value = value
        self.version = version
        self.targets = targets
        self.on_done = on_done
        self.result = KvOpResult(op=op, key=key, ok=False, started_at=started_at,
                                 replicas_targeted=len(targets))
        self.answered_by: set = set()  # any attempt (dup suppression, streaks)
        # current-attempt bookkeeping: a straggler ack from an *old* target
        # set must never complete an op whose retry re-picked targets
        self.attempt_answered: set = set()
        self.replica_versions: Dict[str, Optional[Version]] = {}
        self.best_version: Optional[Version] = None
        self.best_value: Optional[bytes] = None
        self.successes = 0
        self.attempts = 1
        self.finished = False
        self.timer: Optional[Timer] = None
        self.obs_span = None  # observability span, when tracing is enabled


class ReplicatingKvClient:
    """K-way replicating Memcached client embedded in an LB instance.

    Args:
        host: the VM this client runs on (shares the instance's NIC).
        cluster: shared membership view.
        replicas: K, the number of servers each key is stored on.
        op_timeout: per-operation deadline; a dead server is detected by
            silence, not errors.
        max_retries: extra attempts (with exponential backoff) when an
            operation times out with zero replica answers.
        dead_after_timeouts: consecutive per-server timeouts before this
            client marks the server dead in the shared cluster view.
        quarantine: seconds a client-marked-dead server stays out of the
            ring even if the controller believes it healthy.
        rng: optional randomness for retry jitter (decorrelates the
            retry storms of many clients hitting the same dead server).
        read_repair: write the newest version back to replicas a read
            found stale or missing.
        hinted_handoff: queue replica writes that went unanswered and
            flush them when the server rejoins the ring.
    """

    def __init__(
        self,
        host: Host,
        loop: EventLoop,
        cluster: MemcachedCluster,
        replicas: int = 2,
        op_timeout: float = 0.1,
        max_retries: int = 2,
        dead_after_timeouts: int = 3,
        quarantine: float = 1.0,
        rng: Optional[SeededRng] = None,
        read_repair: bool = True,
        hinted_handoff: bool = True,
    ):
        if replicas < 1:
            raise KvStoreError(f"replicas must be >= 1, got {replicas}")
        self.host = host
        self.loop = loop
        self.cluster = cluster
        self.replicas = replicas
        self.op_timeout = op_timeout
        self.max_retries = max_retries
        self.dead_after_timeouts = dead_after_timeouts
        self.quarantine = quarantine
        self.rng = rng
        self.read_repair = read_repair
        self.hinted_handoff = hinted_handoff
        # optional tap fed every completed op's KvOpResult -- the qos
        # plane's adaptive concurrency limiter listens here so store
        # degradation turns into SYN-stage backpressure
        self.latency_listener: Optional[Callable[[KvOpResult], None]] = None
        self.metrics = MetricRegistry(f"{host.name}.kv")
        self._req_ids = itertools.count(1)
        self._pending: Dict[int, _PendingOp] = {}
        self._consecutive_timeouts: Dict[str, int] = {}
        # server -> {key -> (version, value)}: writes owed to a server that
        # was silent/quarantined when they happened
        self._hints: Dict[str, Dict[str, Tuple[Optional[Version], bytes]]] = {}
        cluster.add_listener(self._on_cluster_event)

    # -- public API ---------------------------------------------------------
    def set(self, key: str, value: bytes,
            on_done: Optional[Callable[[KvOpResult], None]] = None,
            version: Optional[Version] = None) -> None:
        self._issue("set", key, value, on_done, version=version)

    def get(self, key: str,
            on_done: Callable[[KvOpResult], None]) -> None:
        self._issue("get", key, None, on_done)

    def delete(self, key: str,
               on_done: Optional[Callable[[KvOpResult], None]] = None,
               version: Optional[Version] = None) -> None:
        """Remove ``key``.  When ``version`` is given this is a
        compare-and-delete: each replica drops the record only if it holds
        exactly that version, so a delete issued by a stale incarnation of
        a recycled flow key can never destroy the live incarnation's
        records (ephemeral-port reuse makes that race real, not
        theoretical)."""
        # a delete supersedes any write still owed to a silent replica
        for hints in self._hints.values():
            hints.pop(key, None)
        self._issue("delete", key, None, on_done, version=version)

    def handle_response(self, pkt: Packet) -> bool:
        """Give the client a chance to consume an incoming packet.

        Returns True when the packet was a kv response addressed to us (the
        LB instance's packet handler calls this before its own logic).
        """
        resp = pkt.meta.get("kv_resp")
        if resp is None:
            return False
        self._on_response(resp)
        return True

    def hint_count(self, server: Optional[str] = None) -> int:
        if server is not None:
            return len(self._hints.get(server, ()))
        return sum(len(h) for h in self._hints.values())

    # -- internals ------------------------------------------------------------
    def _issue(self, op: str, key: str, value: Optional[bytes],
               on_done: Optional[Callable[[KvOpResult], None]],
               version: Optional[Version] = None) -> None:
        on_done = on_done or (lambda r: None)
        targets = self.cluster.replicas_for(key, self.replicas)
        started = self.loop.now()
        if not targets:
            # Fail open, asynchronously: the LB hot path must see a failed
            # result through the normal callback, never a synchronous
            # exception mid-packet (a full store blackout is survivable;
            # an unwound packet handler is not).
            self.metrics.counter("no_live_servers").inc()
            result = KvOpResult(op=op, key=key, ok=False, started_at=started,
                                finished_at=started)
            self.loop.call_soon(on_done, result)
            return
        req_id = next(self._req_ids)
        pending = _PendingOp(op, key, value, version, targets, started, on_done)
        if OBS.enabled:
            # OBS.ctx is the ambient parent (the instance sets it around
            # synchronous TCPStore writes); span timestamps mirror
            # KvOpResult's started_at/finished_at exactly
            pending.obs_span = OBS.tracer.start(
                f"kv.{op}", f"{self.host.name}.kv", ctx=OBS.ctx,
                start=started, attrs={"key": key},
            )
        # one timer per op, re-armed on every attempt (Timer.start cancels
        # any previous arming), instead of a fresh Timer per attempt
        pending.timer = Timer(self.loop, lambda: self._on_timeout(req_id))
        self._pending[req_id] = pending
        self._send_attempt(req_id, pending)
        self.metrics.counter(f"{op}_issued").inc()

    def _send_attempt(self, req_id: int, pending: _PendingOp) -> None:
        pending.attempt_answered = set()
        pending.replica_versions = {}
        pending.timer.start(self._timeout_for(pending.attempts))
        for name in pending.targets:
            endpoint = self.cluster.endpoint(name)
            pkt = Packet(
                src=Endpoint(self.host.ip, KV_CLIENT_PORT),
                dst=endpoint,
                payload=pending.value or b"",
                meta={"kv": {"op": pending.op, "key": pending.key,
                             "value": pending.value,
                             "version": pending.version,
                             "req_id": req_id,
                             "attempt": pending.attempts}},
            )
            if pending.obs_span is not None:
                pkt.meta["obs_ctx"] = OBS.tracer.ctx_of(pending.obs_span)
            self.host.send(pkt)

    def _timeout_for(self, attempt: int) -> float:
        """Exponential backoff with optional jitter; attempt is 1-based."""
        timeout = self.op_timeout * (2 ** (attempt - 1))
        if self.rng is not None:
            timeout *= 1.0 + 0.25 * self.rng.random()
        return timeout

    def _on_response(self, resp: Dict) -> None:
        server = resp.get("server")
        if server is not None:
            self._consecutive_timeouts[server] = 0
        req_id = resp["req_id"]
        pending = self._pending.get(req_id)
        if pending is None or pending.finished:
            return
        current = resp.get("attempt") == pending.attempts
        if server in pending.answered_by and not (
                current and server not in pending.attempt_answered):
            return  # duplicate delivery
        pending.answered_by.add(server)
        pending.result.replicas_answered = len(pending.answered_by)
        if resp["ok"]:
            pending.successes += 1
            if pending.op == "get":
                version = resp.get("version")
                if (pending.best_value is None
                        or version_newer(version, pending.best_version)):
                    pending.best_version = (tuple(version) if version
                                            else None)
                    pending.best_value = resp["value"]
        elif pending.op == "set":
            held = resp.get("version")
            if version_newer(held, pending.version) and version_newer(
                    held, pending.result.superseded_by):
                pending.result.superseded_by = tuple(held)
        if current and server in pending.targets:
            pending.attempt_answered.add(server)
            if pending.op == "get":
                pending.replica_versions[server] = (
                    tuple(resp["version"]) if resp.get("version") else None
                ) if resp["ok"] else None
        # Stragglers from a superseded attempt contribute data (a hit is a
        # hit) but never completion: only current-attempt coverage counts.
        if pending.attempt_answered >= set(pending.targets):
            self._complete(req_id, ok=pending.successes > 0)

    def _on_timeout(self, req_id: int) -> None:
        pending = self._pending.get(req_id)
        if pending is None or pending.finished:
            return
        self.metrics.counter("timeouts").inc()
        if OBS.enabled:
            OBS.flight(f"{self.host.name}.kv", "timeout",
                       f"{pending.op} {pending.key} attempt={pending.attempts} "
                       f"answered={sorted(pending.attempt_answered)}")
        for name in pending.targets:
            if name not in pending.attempt_answered:
                self._penalize(name)
        if pending.successes > 0:
            # Partial answers are enough: the paper's availability-first
            # semantics (any replica ack = durable enough to proceed).
            self._complete(req_id, ok=True)
            return
        if pending.attempts <= self.max_retries:
            pending.attempts += 1
            # Re-pick replicas: marking servers dead above may have moved
            # this key's replica set to responsive servers.
            retry_targets = self.cluster.replicas_for(pending.key, self.replicas)
            if retry_targets:
                pending.targets = retry_targets
                pending.result.replicas_targeted = len(retry_targets)
                self.metrics.counter("retries").inc()
                self._send_attempt(req_id, pending)
                return
        self._complete(req_id, ok=False)

    def _penalize(self, name: str) -> None:
        """Count a per-server consecutive timeout; mark dead at threshold."""
        streak = self._consecutive_timeouts.get(name, 0) + 1
        self._consecutive_timeouts[name] = streak
        if self.dead_after_timeouts and streak >= self.dead_after_timeouts:
            if name in self.cluster.ring:
                self.cluster.mark_dead(
                    name, until=self.loop.now() + self.quarantine)
                self.metrics.counter("servers_marked_dead").inc()
                if OBS.enabled:
                    OBS.flight(f"{self.host.name}.kv", "mark_dead",
                               f"{name} after {streak} consecutive timeouts")
            self._consecutive_timeouts[name] = 0

    def _complete(self, req_id: int, ok: bool) -> None:
        pending = self._pending.pop(req_id)
        pending.finished = True
        if pending.timer is not None:
            pending.timer.cancel()
        pending.result.ok = ok
        pending.result.finished_at = self.loop.now()
        if pending.op == "get":
            pending.result.value = pending.best_value
            pending.result.version = pending.best_version
            pending.result.ok = ok and pending.result.value is not None
            if pending.result.ok:
                self._repair_after_read(pending)
        elif pending.op == "set":
            pending.result.version = pending.version
            if self.hinted_handoff and pending.value is not None:
                for name in pending.targets:
                    if name not in pending.attempt_answered:
                        self._add_hint(name, pending.key, pending.version,
                                       pending.value)
        self.metrics.histogram(f"{pending.op}_latency").observe(pending.result.latency)
        self.metrics.counter(f"{pending.op}_{'ok' if pending.result.ok else 'fail'}").inc()
        if OBS.enabled and pending.obs_span is not None:
            OBS.tracer.end(pending.obs_span, end=pending.result.finished_at,
                           ok=pending.result.ok,
                           replicas=pending.result.replicas_answered)
        if self.latency_listener is not None:
            self.latency_listener(pending.result)
        pending.on_done(pending.result)

    # -- self-healing: read-repair + hinted handoff ---------------------------
    def _repair_after_read(self, pending: _PendingOp) -> None:
        """A read established the newest version; bring the rest of the
        replica set up to it (answered-stale replicas immediately, silent
        ones via a hint for when they return)."""
        if pending.best_value is None:
            return
        for name in pending.targets:
            if name in pending.replica_versions:
                held = pending.replica_versions[name]
                if self.read_repair and version_newer(pending.best_version, held):
                    self._send_direct(name, pending.key, pending.best_value,
                                      pending.best_version)
                    self.metrics.counter("read_repairs").inc()
            elif name not in pending.attempt_answered and self.hinted_handoff:
                self._add_hint(name, pending.key, pending.best_version,
                               pending.best_value)

    def _send_direct(self, name: str, key: str, value: bytes,
                     version: Optional[Version]) -> None:
        """Fire-and-forget single-replica set (repair/hint traffic); the
        response, if any, is ignored (no pending op is registered)."""
        if name not in self.cluster.servers:
            return
        self.host.send(
            Packet(
                src=Endpoint(self.host.ip, KV_CLIENT_PORT),
                dst=self.cluster.endpoint(name),
                payload=value,
                meta={"kv": {"op": "set", "key": key, "value": value,
                             "version": version,
                             "req_id": next(self._req_ids),
                             "attempt": 0}},
            )
        )

    def _add_hint(self, server: str, key: str, version: Optional[Version],
                  value: bytes) -> None:
        hints = self._hints.setdefault(server, {})
        held = hints.get(key)
        if held is not None and version_newer(held[0], version):
            return  # already owe a newer write
        if key not in hints and len(hints) >= MAX_HINTS_PER_SERVER:
            self.metrics.counter("hints_dropped").inc()
            return
        hints[key] = (version, value)
        self.metrics.counter("hints_queued").inc()

    def _flush_hints(self, server: str) -> None:
        hints = self._hints.pop(server, None)
        if not hints:
            return
        for key, (version, value) in hints.items():
            self._send_direct(server, key, value, version)
        self.metrics.counter("hints_flushed").inc(len(hints))

    # -- membership events -----------------------------------------------------
    def _on_cluster_event(self, event: str, name: str) -> None:
        if event in ("live", "add"):
            # the server is back (empty, if it restarted): settle our debts
            self._flush_hints(name)
        elif event == "removed":
            # decommissioned for good: drop every per-server residue and
            # release pending ops still waiting on it
            self._consecutive_timeouts.pop(name, None)
            self._hints.pop(name, None)
            for req_id in list(self._pending):
                pending = self._pending.get(req_id)
                if (pending is None or pending.finished
                        or name not in pending.targets):
                    continue
                pending.targets = [t for t in pending.targets if t != name]
                pending.result.replicas_targeted = len(pending.targets)
                if (not pending.targets
                        or pending.attempt_answered >= set(pending.targets)):
                    self._complete(req_id, ok=pending.successes > 0)
