"""The modified Memcached client library (paper Section 6).

The paper keeps Memcached servers stock and adds persistence in the client:
every key-value pair is written to K servers picked by consistent hashing,
operations go to all replicas *in parallel*, and reads complete on the
first hit.  This module is that library; one instance runs inside every
YODA instance.

TCPStore's latency optimizations from Section 4.3 map as follows:
decentralized server selection = every client owns a ring copy; concurrent
replica ops = the parallel fan-out here; long-lived TCP connections =
modeled as direct datagram exchange (no per-op handshake).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import KvStoreError
from repro.kvstore.hashring import HashRing
from repro.kvstore.memcached import MEMCACHED_PORT, MemcachedServer
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.packet import Packet
from repro.sim.events import EventLoop
from repro.sim.metrics import MetricRegistry
from repro.sim.process import Timer
from repro.sim.random import SeededRng

KV_CLIENT_PORT = 11210


class MemcachedCluster:
    """Shared membership view: which store servers exist and are believed
    live.  The YODA monitor updates liveness; all clients see it at once
    (decentralized server selection -- no lookup service on the data path).

    A server removed with ``mark_dead(name, until=t)`` is *quarantined*:
    ``mark_live`` refuses to re-admit it before ``t``.  Clients use this
    when they conclude a server is unresponsive from consecutive timeouts,
    so the controller's omniscient-looking monitor cannot instantly undo a
    data-path verdict (e.g. for a partitioned-but-running server).
    """

    def __init__(self, servers: Sequence[MemcachedServer]):
        if not servers:
            raise KvStoreError("cluster needs at least one server")
        self.servers: Dict[str, MemcachedServer] = {s.name: s for s in servers}
        self.ring = HashRing([s.name for s in servers])
        self._quarantined_until: Dict[str, float] = {}

    def add(self, server: MemcachedServer) -> None:
        self.servers[server.name] = server
        self.ring.add(server.name)

    def mark_dead(self, name: str, until: Optional[float] = None) -> None:
        self.ring.remove(name)
        if until is not None:
            current = self._quarantined_until.get(name, 0.0)
            self._quarantined_until[name] = max(current, until)

    def mark_live(self, name: str, now: Optional[float] = None) -> bool:
        """Re-admit a server to the ring.  Returns False (and does
        nothing) while the server is quarantined and ``now`` is given."""
        if name not in self.servers:
            return False
        if now is not None and now < self._quarantined_until.get(name, 0.0):
            return False
        self._quarantined_until.pop(name, None)
        self.ring.add(name)
        return True

    def live_count(self) -> int:
        return len(self.ring)

    def endpoint(self, name: str) -> Endpoint:
        return self.servers[name].endpoint

    def replicas_for(self, key: str, k: int) -> List[str]:
        return self.ring.lookup_n(key, k)


@dataclass
class KvOpResult:
    """Outcome of one replicated operation."""

    op: str
    key: str
    ok: bool
    value: Optional[bytes] = None
    started_at: float = 0.0
    finished_at: float = 0.0
    replicas_targeted: int = 0
    replicas_answered: int = 0

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at


class _PendingOp:
    def __init__(self, op: str, key: str, value: Optional[bytes],
                 targets: List[str], started_at: float,
                 on_done: Callable[[KvOpResult], None]):
        self.op = op
        self.key = key
        self.value = value
        self.targets = targets
        self.on_done = on_done
        self.result = KvOpResult(op=op, key=key, ok=False, started_at=started_at,
                                 replicas_targeted=len(targets))
        self.answered_by: set = set()
        self.successes = 0
        self.attempts = 1
        self.finished = False
        self.timer: Optional[Timer] = None


class ReplicatingKvClient:
    """K-way replicating Memcached client embedded in an LB instance.

    Args:
        host: the VM this client runs on (shares the instance's NIC).
        cluster: shared membership view.
        replicas: K, the number of servers each key is stored on.
        op_timeout: per-operation deadline; a dead server is detected by
            silence, not errors.
        max_retries: extra attempts (with exponential backoff) when an
            operation times out with zero replica answers.
        dead_after_timeouts: consecutive per-server timeouts before this
            client marks the server dead in the shared cluster view.
        quarantine: seconds a client-marked-dead server stays out of the
            ring even if the controller believes it healthy.
        rng: optional randomness for retry jitter (decorrelates the
            retry storms of many clients hitting the same dead server).
    """

    def __init__(
        self,
        host: Host,
        loop: EventLoop,
        cluster: MemcachedCluster,
        replicas: int = 2,
        op_timeout: float = 0.1,
        max_retries: int = 2,
        dead_after_timeouts: int = 3,
        quarantine: float = 1.0,
        rng: Optional[SeededRng] = None,
    ):
        if replicas < 1:
            raise KvStoreError(f"replicas must be >= 1, got {replicas}")
        self.host = host
        self.loop = loop
        self.cluster = cluster
        self.replicas = replicas
        self.op_timeout = op_timeout
        self.max_retries = max_retries
        self.dead_after_timeouts = dead_after_timeouts
        self.quarantine = quarantine
        self.rng = rng
        self.metrics = MetricRegistry(f"{host.name}.kv")
        self._req_ids = itertools.count(1)
        self._pending: Dict[int, _PendingOp] = {}
        self._consecutive_timeouts: Dict[str, int] = {}

    # -- public API ---------------------------------------------------------
    def set(self, key: str, value: bytes,
            on_done: Optional[Callable[[KvOpResult], None]] = None) -> None:
        self._issue("set", key, value, on_done)

    def get(self, key: str,
            on_done: Callable[[KvOpResult], None]) -> None:
        self._issue("get", key, None, on_done)

    def delete(self, key: str,
               on_done: Optional[Callable[[KvOpResult], None]] = None) -> None:
        self._issue("delete", key, None, on_done)

    def handle_response(self, pkt: Packet) -> bool:
        """Give the client a chance to consume an incoming packet.

        Returns True when the packet was a kv response addressed to us (the
        LB instance's packet handler calls this before its own logic).
        """
        resp = pkt.meta.get("kv_resp")
        if resp is None:
            return False
        self._on_response(resp)
        return True

    # -- internals ------------------------------------------------------------
    def _issue(self, op: str, key: str, value: Optional[bytes],
               on_done: Optional[Callable[[KvOpResult], None]]) -> None:
        targets = self.cluster.replicas_for(key, self.replicas)
        if not targets:
            raise KvStoreError("no live Memcached servers")
        req_id = next(self._req_ids)
        pending = _PendingOp(op, key, value, targets, self.loop.now(),
                             on_done or (lambda r: None))
        self._pending[req_id] = pending
        self._send_attempt(req_id, pending)
        self.metrics.counter(f"{op}_issued").inc()

    def _send_attempt(self, req_id: int, pending: _PendingOp) -> None:
        pending.timer = Timer(self.loop, lambda: self._on_timeout(req_id))
        pending.timer.start(self._timeout_for(pending.attempts))
        for name in pending.targets:
            endpoint = self.cluster.endpoint(name)
            self.host.send(
                Packet(
                    src=Endpoint(self.host.ip, KV_CLIENT_PORT),
                    dst=endpoint,
                    payload=pending.value or b"",
                    meta={"kv": {"op": pending.op, "key": pending.key,
                                 "value": pending.value, "req_id": req_id}},
                )
            )

    def _timeout_for(self, attempt: int) -> float:
        """Exponential backoff with optional jitter; attempt is 1-based."""
        timeout = self.op_timeout * (2 ** (attempt - 1))
        if self.rng is not None:
            timeout *= 1.0 + 0.25 * self.rng.random()
        return timeout

    def _on_response(self, resp: Dict) -> None:
        server = resp.get("server")
        if server is not None:
            self._consecutive_timeouts[server] = 0
        req_id = resp["req_id"]
        pending = self._pending.get(req_id)
        if pending is None or pending.finished:
            return
        if server in pending.answered_by:
            return  # duplicate delivery or straggler from an earlier attempt
        pending.answered_by.add(server)
        pending.result.replicas_answered = len(pending.answered_by)
        if resp["ok"]:
            pending.successes += 1
            if pending.op == "get" and pending.result.value is None:
                pending.result.value = resp["value"]
        if pending.op == "get" and resp["ok"]:
            # first hit wins: lowest possible read latency
            self._complete(req_id, ok=True)
        elif pending.answered_by >= set(pending.targets):
            self._complete(req_id, ok=pending.successes > 0)

    def _on_timeout(self, req_id: int) -> None:
        pending = self._pending.get(req_id)
        if pending is None or pending.finished:
            return
        self.metrics.counter("timeouts").inc()
        for name in pending.targets:
            if name not in pending.answered_by:
                self._penalize(name)
        if pending.successes > 0:
            # Partial answers are enough: the paper's availability-first
            # semantics (any replica ack = durable enough to proceed).
            self._complete(req_id, ok=True)
            return
        if pending.attempts <= self.max_retries:
            pending.attempts += 1
            # Re-pick replicas: marking servers dead above may have moved
            # this key's replica set to responsive servers.
            retry_targets = self.cluster.replicas_for(pending.key, self.replicas)
            if retry_targets:
                pending.targets = retry_targets
                pending.result.replicas_targeted = len(retry_targets)
                self.metrics.counter("retries").inc()
                self._send_attempt(req_id, pending)
                return
        self._complete(req_id, ok=False)

    def _penalize(self, name: str) -> None:
        """Count a per-server consecutive timeout; mark dead at threshold."""
        streak = self._consecutive_timeouts.get(name, 0) + 1
        self._consecutive_timeouts[name] = streak
        if self.dead_after_timeouts and streak >= self.dead_after_timeouts:
            if name in self.cluster.ring:
                self.cluster.mark_dead(
                    name, until=self.loop.now() + self.quarantine)
                self.metrics.counter("servers_marked_dead").inc()
            self._consecutive_timeouts[name] = 0

    def _complete(self, req_id: int, ok: bool) -> None:
        pending = self._pending.pop(req_id)
        pending.finished = True
        if pending.timer is not None:
            pending.timer.cancel()
        pending.result.ok = ok
        pending.result.finished_at = self.loop.now()
        if pending.op == "get":
            pending.result.ok = ok and pending.result.value is not None
        self.metrics.histogram(f"{pending.op}_latency").observe(pending.result.latency)
        self.metrics.counter(f"{pending.op}_{'ok' if pending.result.ok else 'fail'}").inc()
        pending.on_done(pending.result)
