"""The modified Memcached client library (paper Section 6).

The paper keeps Memcached servers stock and adds persistence in the client:
every key-value pair is written to K servers picked by consistent hashing,
operations go to all replicas *in parallel*, and reads complete on the
first hit.  This module is that library; one instance runs inside every
YODA instance.

TCPStore's latency optimizations from Section 4.3 map as follows:
decentralized server selection = every client owns a ring copy; concurrent
replica ops = the parallel fan-out here; long-lived TCP connections =
modeled as direct datagram exchange (no per-op handshake).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import KvStoreError
from repro.kvstore.hashring import HashRing
from repro.kvstore.memcached import MEMCACHED_PORT, MemcachedServer
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.packet import Packet
from repro.sim.events import EventLoop
from repro.sim.metrics import MetricRegistry
from repro.sim.process import Timer

KV_CLIENT_PORT = 11210


class MemcachedCluster:
    """Shared membership view: which store servers exist and are believed
    live.  The YODA monitor updates liveness; all clients see it at once
    (decentralized server selection -- no lookup service on the data path).
    """

    def __init__(self, servers: Sequence[MemcachedServer]):
        if not servers:
            raise KvStoreError("cluster needs at least one server")
        self.servers: Dict[str, MemcachedServer] = {s.name: s for s in servers}
        self.ring = HashRing([s.name for s in servers])

    def add(self, server: MemcachedServer) -> None:
        self.servers[server.name] = server
        self.ring.add(server.name)

    def mark_dead(self, name: str) -> None:
        self.ring.remove(name)

    def mark_live(self, name: str) -> None:
        if name in self.servers:
            self.ring.add(name)

    def live_count(self) -> int:
        return len(self.ring)

    def endpoint(self, name: str) -> Endpoint:
        return self.servers[name].endpoint

    def replicas_for(self, key: str, k: int) -> List[str]:
        return self.ring.lookup_n(key, k)


@dataclass
class KvOpResult:
    """Outcome of one replicated operation."""

    op: str
    key: str
    ok: bool
    value: Optional[bytes] = None
    started_at: float = 0.0
    finished_at: float = 0.0
    replicas_targeted: int = 0
    replicas_answered: int = 0

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at


class _PendingOp:
    def __init__(self, op: str, key: str, targets: List[str], started_at: float,
                 on_done: Callable[[KvOpResult], None]):
        self.op = op
        self.key = key
        self.targets = targets
        self.on_done = on_done
        self.result = KvOpResult(op=op, key=key, ok=False, started_at=started_at,
                                 replicas_targeted=len(targets))
        self.answered = 0
        self.successes = 0
        self.finished = False
        self.timer: Optional[Timer] = None


class ReplicatingKvClient:
    """K-way replicating Memcached client embedded in an LB instance.

    Args:
        host: the VM this client runs on (shares the instance's NIC).
        cluster: shared membership view.
        replicas: K, the number of servers each key is stored on.
        op_timeout: per-operation deadline; a dead server is detected by
            silence, not errors.
    """

    def __init__(
        self,
        host: Host,
        loop: EventLoop,
        cluster: MemcachedCluster,
        replicas: int = 2,
        op_timeout: float = 0.1,
    ):
        if replicas < 1:
            raise KvStoreError(f"replicas must be >= 1, got {replicas}")
        self.host = host
        self.loop = loop
        self.cluster = cluster
        self.replicas = replicas
        self.op_timeout = op_timeout
        self.metrics = MetricRegistry(f"{host.name}.kv")
        self._req_ids = itertools.count(1)
        self._pending: Dict[int, _PendingOp] = {}

    # -- public API ---------------------------------------------------------
    def set(self, key: str, value: bytes,
            on_done: Optional[Callable[[KvOpResult], None]] = None) -> None:
        self._issue("set", key, value, on_done)

    def get(self, key: str,
            on_done: Callable[[KvOpResult], None]) -> None:
        self._issue("get", key, None, on_done)

    def delete(self, key: str,
               on_done: Optional[Callable[[KvOpResult], None]] = None) -> None:
        self._issue("delete", key, None, on_done)

    def handle_response(self, pkt: Packet) -> bool:
        """Give the client a chance to consume an incoming packet.

        Returns True when the packet was a kv response addressed to us (the
        LB instance's packet handler calls this before its own logic).
        """
        resp = pkt.meta.get("kv_resp")
        if resp is None:
            return False
        self._on_response(resp)
        return True

    # -- internals ------------------------------------------------------------
    def _issue(self, op: str, key: str, value: Optional[bytes],
               on_done: Optional[Callable[[KvOpResult], None]]) -> None:
        targets = self.cluster.replicas_for(key, self.replicas)
        if not targets:
            raise KvStoreError("no live Memcached servers")
        req_id = next(self._req_ids)
        pending = _PendingOp(op, key, targets, self.loop.now(), on_done or (lambda r: None))
        self._pending[req_id] = pending
        pending.timer = Timer(self.loop, lambda: self._on_timeout(req_id))
        pending.timer.start(self.op_timeout)
        for name in targets:
            endpoint = self.cluster.endpoint(name)
            self.host.send(
                Packet(
                    src=Endpoint(self.host.ip, KV_CLIENT_PORT),
                    dst=endpoint,
                    payload=value or b"",
                    meta={"kv": {"op": op, "key": key, "value": value,
                                 "req_id": req_id}},
                )
            )
        self.metrics.counter(f"{op}_issued").inc()

    def _on_response(self, resp: Dict) -> None:
        req_id = resp["req_id"]
        pending = self._pending.get(req_id)
        if pending is None or pending.finished:
            return
        pending.answered += 1
        pending.result.replicas_answered = pending.answered
        if resp["ok"]:
            pending.successes += 1
            if pending.op == "get" and pending.result.value is None:
                pending.result.value = resp["value"]
        if pending.op == "get" and resp["ok"]:
            # first hit wins: lowest possible read latency
            self._complete(req_id, ok=True)
        elif pending.answered == len(pending.targets):
            self._complete(req_id, ok=pending.successes > 0)

    def _on_timeout(self, req_id: int) -> None:
        pending = self._pending.get(req_id)
        if pending is None or pending.finished:
            return
        self.metrics.counter("timeouts").inc()
        self._complete(req_id, ok=pending.successes > 0)

    def _complete(self, req_id: int, ok: bool) -> None:
        pending = self._pending.pop(req_id)
        pending.finished = True
        if pending.timer is not None:
            pending.timer.cancel()
        pending.result.ok = ok
        pending.result.finished_at = self.loop.now()
        if pending.op == "get":
            pending.result.ok = ok and pending.result.value is not None
        self.metrics.histogram(f"{pending.op}_latency").observe(pending.result.latency)
        self.metrics.counter(f"{pending.op}_{'ok' if pending.result.ok else 'fail'}").inc()
        pending.on_done(pending.result)
