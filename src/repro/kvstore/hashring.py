"""Consistent hashing ring.

Used twice in the system, just as in the paper: the Memcached client
library picks the K replica servers for a key, and the L4 mux picks the
YODA instance for a flow.  Both require that *every* node computes the same
answer from the same membership, so hashing is the process-independent
:func:`~repro.sim.random.stable_hash64`.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence

from repro.sim.random import stable_hash64


class HashRing:
    """A consistent-hash ring with virtual nodes.

    >>> ring = HashRing(["a", "b", "c"])
    >>> ring.lookup("some-key") in ("a", "b", "c")
    True
    """

    def __init__(self, nodes: Sequence[str] = (), vnodes: int = 100):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        self._nodes: List[str] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.append(node)
        for i in range(self.vnodes):
            point = stable_hash64(f"{node}#{i}", salt="ring")
            # extremely unlikely collision: nudge deterministically
            while point in self._owners:
                point = (point + 1) % (1 << 64)
            self._owners[point] = node
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        dead = [p for p, owner in self._owners.items() if owner == node]
        for point in dead:
            del self._owners[point]
            idx = bisect.bisect_left(self._points, point)
            del self._points[idx]

    def lookup(self, key: str) -> str:
        """The node owning ``key``."""
        if not self._points:
            raise KeyError("hash ring is empty")
        h = stable_hash64(key, salt="key")
        idx = bisect.bisect_right(self._points, h)
        if idx == len(self._points):
            idx = 0
        return self._owners[self._points[idx]]

    def lookup_n(self, key: str, n: int) -> List[str]:
        """The first ``n`` distinct nodes clockwise from the key's point.

        This is how the client library picks K replica servers; removing a
        server only remaps the keys it owned.
        """
        if not self._points:
            raise KeyError("hash ring is empty")
        n = min(n, len(self._nodes))
        h = stable_hash64(key, salt="key")
        idx = bisect.bisect_right(self._points, h)
        out: List[str] = []
        seen = set()
        for step in range(len(self._points)):
            point = self._points[(idx + step) % len(self._points)]
            owner = self._owners[point]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) == n:
                    break
        return out
