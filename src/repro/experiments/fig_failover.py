"""Multi-region failover: time-to-recovery, bytes lost, replication lag.

Not a paper figure -- the paper's YODA survives *instance* failures
through TCPStore, but a whole-region outage takes the store down with the
instances.  This experiment measures what the cross-site replication
layer buys: long-lived streaming downloads are mid-transfer when the
primary region is killed, and the run reports, per configuration,

- **detect/promote time**: kill instant -> controller promotes the
  standby (VIP re-anchored, store cluster swapped),
- **stream survival**: how many established streams run to completion
  out of the standby region,
- **bytes lost**: response bytes the established streams never received,
- **records lost**: store records the replicator had not shipped when
  the region (relay included) died.

The ablation axis is replication lag: a paced replicator at the default
50 ms interval, a lazy one at 1 s (more unshipped backlog at the kill),
and replication off entirely -- where the standby promotes against an
empty store and every established stream breaks.  Failure detection and
promotion are identical across configurations; what changes is whether
the promoted region can *resume* anything.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.chaos.faults import apply_fault, region_kill
from repro.experiments.harness import ExperimentResult, Testbed, TestbedConfig


def _one_run(
    seed: int,
    replication: bool,
    sync_interval: float,
    streams: int,
    chunks: int,
    chunk_bytes: int,
    interval_ms: int,
    kill_at: float,
    settle: float,
) -> Tuple[Testbed, object, float]:
    bed = Testbed(TestbedConfig(
        seed=seed, lb="yoda", num_lb_instances=3, num_store_servers=2,
        num_backends=3, standby_site="dc2",
        replication=replication, sync_interval=sync_interval,
    ))
    fleet = bed.streaming(streams, chunks=chunks, chunk_bytes=chunk_bytes,
                          interval_ms=interval_ms, start_at=0.2)
    bed.run(kill_at)
    kill_time = bed.loop.now()
    apply_fault(bed, region_kill(0.0, "dc"))
    bed.run(settle)
    return bed, fleet, kill_time


def run(
    seed: int = 2016,
    streams: int = 6,
    chunks: int = 60,
    chunk_bytes: int = 1_000,
    interval_ms: int = 100,
    kill_at: float = 3.0,
    settle: float = 22.0,
    lag_ablation: Tuple[float, ...] = (0.05, 1.0),
) -> ExperimentResult:
    configs: List[Tuple[str, bool, float]] = [
        (f"replication(sync={interval * 1000:.0f}ms)", True, interval)
        for interval in lag_ablation
    ]
    configs.append(("no-replication", False, 0.05))

    rows = []
    for label, replication, sync_interval in configs:
        bed, fleet, kill_time = _one_run(
            seed, replication, sync_interval, streams, chunks, chunk_bytes,
            interval_ms, kill_at, settle,
        )
        controller = bed.yoda.controller
        detect: Optional[float] = (
            controller.failover_at - kill_time if controller.failed_over
            else None
        )
        established = [c.result for c in fleet.clients
                       if c.result.established_at is not None
                       and c.result.established_at < kill_time]
        survived = [r for r in established if r.complete]
        bytes_lost = sum(max(0, r.bytes_expected - r.bytes_received)
                         for r in established)
        # completion measured from the kill: how long the surviving
        # streams needed to finish out of the standby region
        resume_tail = max((r.finished_at - kill_time for r in survived),
                          default=0.0)
        rows.append({
            "config": label,
            "failed_over": controller.failed_over,
            "detect_s": round(detect, 3) if detect is not None else "-",
            "streams": f"{len(survived)}/{len(established)}",
            "bytes_lost": bytes_lost,
            "records_lost": controller.failover_records_lost,
            "last_finish_s": round(resume_tail, 2) if survived else "-",
        })

    with_repl = rows[0]
    without = rows[-1]
    return ExperimentResult(
        name="multi-region failover: stream survival vs replication lag",
        rows=rows,
        summary={
            "survived_with_replication": with_repl["streams"],
            "survived_without": without["streams"],
            "bytes_lost_without": without["bytes_lost"],
        },
        notes=(
            "Streams established before the region kill; 'detect_s' is "
            "kill -> standby promotion, 'last_finish_s' is kill -> last "
            "surviving stream completion.  Replication lag adds resume "
            "work (a stale checkpoint re-serves more bytes) but does not "
            "break correctness; no replication breaks every stream."
        ),
    )


def run_quick(seed: int = 2016) -> ExperimentResult:
    return run(seed=seed, streams=3, chunks=40, settle=18.0,
               lag_ablation=(0.05,))
