"""Figure 9 + Section 7.1 CPU: end-to-end latency breakdown and CPU.

The paper splits median request latency into baseline (Internet + server),
connection (LB-to-backend TCP setup), storage (TCPStore inserts -- YODA
only), and LB packet processing; YODA lands at 151 ms vs HAProxy's 144 ms
over a 133 ms no-LB baseline, with storage costing only 0.89 ms.

We run the same 10 KB-object workload through three deployments: no LB,
YODA, HAProxy.  The request rate is scaled down from the paper's 50K
req/s (10 instances) keeping rate/instance modest so queueing does not
dominate; the breakdown shape is the result.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.stats import median
from repro.experiments.harness import ExperimentResult, Testbed, TestbedConfig
from repro.obs import OBS


def _run_one(lb: str, seed: int, rate: float, duration: float,
             num_instances: int, obs: bool = False) -> Testbed:
    if obs:
        # fresh collectors per deployment; the Testbed attaches its clock
        OBS.enable()
    bed = Testbed(TestbedConfig(
        seed=seed, lb=lb, num_lb_instances=num_instances,
        num_store_servers=3, num_backends=4, corpus="flat",
        flat_object_bytes=10_000, client_jitter=0.004,
    ))
    gen = bed.open_loop(rate)
    bed.run(duration)
    gen.stop()
    bed.run(2.0)  # drain
    bed.generator = gen  # type: ignore[attr-defined]
    if obs:
        bed.obs_spans = OBS.tracer.spans  # type: ignore[attr-defined]
        OBS.disable()
    return bed


def _span_durations(bed: Testbed, name: str) -> List[float]:
    """Durations of finished, successful ``name`` spans -- the span-plane
    equivalent of the legacy per-stage histogram samples."""
    return [
        s.end - s.start
        for s in bed.obs_spans  # type: ignore[attr-defined]
        if s.name == name and s.end is not None and s.attr("ok")
    ]


def _span_rows(beds) -> List[dict]:
    """Fig. 9 breakdown re-derived purely from span data.

    Every span was created to start and end at exactly the timestamps the
    legacy histograms observe, so these rows match the legacy derivation
    bit for bit (the cross-check test asserts tolerance zero).
    """
    baseline_ms = median(_span_durations(beds["none"], "http.request")) * 1e3
    rows = [{
        "scheme": "no-LB baseline", "total_ms": baseline_ms,
        "baseline_ms": baseline_ms, "connection_ms": 0.0,
        "storage_ms": 0.0, "lb_processing_ms": 0.0,
    }]
    for lb in ("yoda", "haproxy"):
        bed = beds[lb]
        total_ms = median(_span_durations(bed, "http.request")) * 1e3
        connect = _span_durations(bed, "server_connect")
        connect_ms = median(connect) * 1e3 if connect else 0.0
        storage_ms = sum(
            median(durs) * 1e3
            for durs in (_span_durations(bed, "storage_a"),
                         _span_durations(bed, "storage_b"))
            if durs
        )
        lb_ms = max(total_ms - baseline_ms - connect_ms - storage_ms, 0.0)
        rows.append({
            "scheme": lb, "total_ms": total_ms, "baseline_ms": baseline_ms,
            "connection_ms": connect_ms, "storage_ms": storage_ms,
            "lb_processing_ms": lb_ms,
        })
    return rows


def run(
    seed: int = 2016,
    rate: float = 120.0,
    duration: float = 8.0,
    num_instances: int = 4,
    derive: str = "legacy",
) -> ExperimentResult:
    """Args:
        derive: "legacy" computes the breakdown from the per-stage
            histograms (the original path, no tracing); "spans" re-derives
            it from the observability plane's span data; "both" runs with
            tracing enabled, reports the legacy rows, and records the
            maximum absolute disagreement (expected: exactly 0.0).
    """
    if derive not in ("legacy", "spans", "both"):
        raise ValueError(f"derive must be legacy|spans|both, got {derive!r}")
    result = ExperimentResult(name="Figure 9: latency breakdown (medians, ms)")

    beds = {}
    for lb in ("none", "yoda", "haproxy"):
        beds[lb] = _run_one(lb, seed, rate, duration, num_instances,
                            obs=derive != "legacy")

    def ok_latencies(bed: Testbed):
        return [r.latency for r in bed.generator.results if r.ok]

    baseline_ms = median(ok_latencies(beds["none"])) * 1e3

    def lb_row(lb: str):
        bed = beds[lb]
        total_ms = median(ok_latencies(bed)) * 1e3
        instances = (bed.yoda.instances if lb == "yoda"
                     else bed.haproxy_instances)
        connect = []
        stage_samples = {"storage_a_latency": [], "storage_b_latency": []}
        for inst in instances:
            hist = inst.metrics.histograms.get("server_connect_latency")
            if hist and len(hist):
                connect.extend(hist.samples())
            for key in stage_samples:
                h = inst.metrics.histograms.get(key)
                if h and len(h):
                    stage_samples[key].extend(h.samples())
        connect_ms = median(connect) * 1e3 if connect else 0.0
        # a flow pays storage-a once and storage-b once: sum the two medians
        storage_ms = sum(
            median(samples) * 1e3
            for samples in stage_samples.values() if samples
        )
        lb_ms = max(total_ms - baseline_ms - connect_ms - storage_ms, 0.0)
        return {
            "scheme": lb, "total_ms": total_ms, "baseline_ms": baseline_ms,
            "connection_ms": connect_ms, "storage_ms": storage_ms,
            "lb_processing_ms": lb_ms,
        }

    legacy_rows = [{
        "scheme": "no-LB baseline", "total_ms": baseline_ms,
        "baseline_ms": baseline_ms, "connection_ms": 0.0,
        "storage_ms": 0.0, "lb_processing_ms": 0.0,
    }]
    yoda_row = lb_row("yoda")
    hap_row = lb_row("haproxy")
    legacy_rows.extend([yoda_row, hap_row])

    span_rows = _span_rows(beds) if derive != "legacy" else None
    result.rows.extend(span_rows if derive == "spans" else legacy_rows)
    result.summary = {
        "paper": "yoda 151 / haproxy 144 / baseline 133 ms; storage 0.89 ms",
        "storage_overhead_ms": round(yoda_row["storage_ms"], 3),
        "yoda_minus_haproxy_ms": round(
            yoda_row["total_ms"] - hap_row["total_ms"], 2
        ),
    }
    if span_rows is not None:
        result.summary["derived_from"] = derive
        result.summary["legacy_vs_spans_max_abs_diff_ms"] = max(
            abs(legacy[key] - derived[key])
            for legacy, derived in zip(legacy_rows, span_rows)
            for key in ("total_ms", "baseline_ms", "connection_ms",
                        "storage_ms", "lb_processing_ms")
        )
    result.notes = (
        "Rate scaled down from the paper's 50K req/s testbed aggregate; "
        "the breakdown shape (storage < 1 ms; YODA slightly slower than "
        "HAProxy due to user-space packet handling) is the claim under test."
    )
    return result


def run_cpu(
    seed: int = 2016,
    rate: float = 400.0,
    duration: float = 6.0,
) -> ExperimentResult:
    """Section 7.1 CPU overhead: YODA's user-space driver costs ~2x
    HAProxy's in-kernel splicing; saturation extrapolates to ~12K req/s
    per YODA instance (paper) with the default cost calibration."""
    result = ExperimentResult(name="Section 7.1: LB instance CPU utilization")
    for lb in ("yoda", "haproxy"):
        bed = Testbed(TestbedConfig(
            seed=seed, lb=lb, num_lb_instances=1, num_store_servers=2,
            num_backends=4, corpus="flat", flat_object_bytes=10_000,
        ))
        instance = (bed.yoda.instances[0] if lb == "yoda"
                    else bed.haproxy_instances[0])
        instance.cpu.reset_window()
        gen = bed.open_loop(rate)
        bed.run(duration)
        util = instance.cpu.utilization_window()
        gen.stop()
        served = gen.ok_count()
        sat_rate = rate / util if util > 0 else float("inf")
        result.rows.append({
            "scheme": lb, "offered_req_s": rate,
            "cpu_util": round(util, 4),
            "extrapolated_saturation_req_s": round(sat_rate),
            "requests_ok": served,
        })
    yoda_util = result.rows[0]["cpu_util"]
    hap_util = result.rows[1]["cpu_util"]
    result.summary = {
        "yoda_over_haproxy_cpu": round(yoda_util / hap_util, 2) if hap_util else None,
        "paper": "~2x (100% vs 46% at 12K req/s)",
    }
    return result
