"""Figure 16: VIP assignment over the 24 h trace (paper Section 8.2).

Every 10 minutes the controller re-solves the Figure 7 problem for the
current traffic.  The paper compares YODA-limit (Eq. 4-7 enforced, delta =
10% migration, relaxed +10% when infeasible) against YODA-no-limit and the
all-to-all baseline, reporting:

(b) rules per instance: many-to-many stores 0.5-3.7% (median 1%) of
    all-to-all's rules;
(c) instances: YODA needs 4.6-73% (avg 27%) more than all-to-all's
    traffic-only minimum; limit vs no-limit within -8% to +11.7%;
(d) transient overload: no-limit 0-20.4% (median 5.3%) of instances;
    ~none avoidable under limit;
(e) flows migrated: no-limit median 44.9%; limit median 8.3%.

Setup mirrors Section 8: R_y = 2K rules (the 5 ms latency point of
Fig. 6), delta = 10%, n_v = 4 t_v / T_y.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import mean, median
from repro.core.assignment.all_to_all import min_instances_for_traffic
from repro.core.assignment.constraints import transient_overloaded_instances
from repro.core.assignment.problem import AssignmentProblem, InstanceSpec
from repro.core.assignment.update import plan_update
from repro.errors import InfeasibleError
from repro.experiments.harness import ExperimentResult
from repro.sim.random import SeededRng
from repro.workload.trace import (
    ProductionTrace,
    TraceConfig,
    generate_trace,
    uniform_instances,
)


def _connections_for(assignment_mapping: Dict[str, List[str]],
                     traffic: Dict[str, float]) -> Dict[Tuple[str, str], float]:
    """Synthesize per-(VIP, instance) connection counts proportional to the
    VIP's traffic split across its assigned instances."""
    conns: Dict[Tuple[str, str], float] = {}
    for vip, instances in assignment_mapping.items():
        if not instances:
            continue
        share = traffic.get(vip, 0.0) / len(instances)
        for inst in instances:
            conns[(vip, inst)] = share
    return conns


def run(
    seed: int = 2016,
    trace: Optional[ProductionTrace] = None,
    trace_config: Optional[TraceConfig] = None,
    instance_capacity: float = 300.0,
    rule_capacity: int = 2_000,
    pool_size: int = 110,
    max_replicas: int = 12,
    interval_stride: int = 12,
    migration_limit: float = 0.10,
    use_lp: bool = False,
) -> ExperimentResult:
    """Run the re-assignment loop over the trace.

    ``use_lp=False`` uses the greedy solver per round (seconds per run);
    the LP-rounding path is exercised by dedicated benches since it costs
    several seconds per round at 100x120 scale.
    """
    trace = trace or generate_trace(SeededRng(seed), trace_config)
    instances = uniform_instances(pool_size, instance_capacity, rule_capacity)
    total_rules = trace.total_rules()

    result = ExperimentResult(name="Figure 16: assignment over the 24 h trace")
    old_limit: Optional[Dict[str, List[str]]] = None
    old_nolimit: Optional[Dict[str, List[str]]] = None

    intervals = list(range(0, trace.intervals, interval_stride))
    for interval in intervals:
        specs = trace.interval_vip_specs(
            interval, instance_capacity, max_replicas=max_replicas
        )
        traffic_now = trace.traffic_at(interval)
        ata_min = min_instances_for_traffic(AssignmentProblem(
            vips=specs, instances=instances
        ))

        # --- YODA-limit: full Eq. 4-7 ---
        prob_limit = AssignmentProblem(
            vips=specs, instances=instances,
            old_assignment=old_limit,
            old_connections=(
                _connections_for(old_limit, traffic_now) if old_limit else None
            ),
            migration_limit=migration_limit if old_limit else None,
        )
        out_limit = plan_update(prob_limit, limit=True, use_lp=use_lp)

        # --- YODA-no-limit: Eq. 1-3 only ---
        prob_nolimit = AssignmentProblem(
            vips=specs, instances=instances,
            old_assignment=old_nolimit,
            old_connections=(
                _connections_for(old_nolimit, traffic_now) if old_nolimit else None
            ),
        )
        out_nolimit = plan_update(prob_nolimit, limit=False, use_lp=use_lp)

        result.rows.append({
            "interval": interval,
            "all_to_all_min": ata_min,
            "limit_instances": out_limit.instances_used,
            "nolimit_instances": out_nolimit.instances_used,
            "limit_rules_frac_of_ata": round(
                out_limit.median_rules_per_instance / total_rules, 4
            ),
            "limit_migrated_pct": round(out_limit.migrated_fraction * 100, 1),
            "nolimit_migrated_pct": round(out_nolimit.migrated_fraction * 100, 1),
            "limit_overloaded_pct": round(
                100 * len(out_limit.transient_overloaded) /
                max(out_limit.instances_used, 1), 1
            ),
            "nolimit_overloaded_pct": round(
                100 * len(out_nolimit.transient_overloaded) /
                max(out_nolimit.instances_used, 1), 1
            ),
            "delta_relaxations": out_limit.relaxations,
            "solve_s": round(out_limit.solve_seconds, 3),
        })
        old_limit = out_limit.assignment.mapping
        old_nolimit = out_nolimit.assignment.mapping

    # skip round 0 for update metrics (no old assignment yet)
    upd = result.rows[1:] if len(result.rows) > 1 else result.rows
    result.summary = {
        "rules_frac_median": round(
            median([r["limit_rules_frac_of_ata"] for r in result.rows]), 4
        ),
        "extra_instances_vs_ata_avg_pct": round(mean([
            100 * (r["limit_instances"] - r["all_to_all_min"]) / r["all_to_all_min"]
            for r in result.rows
        ]), 1),
        "limit_vs_nolimit_instances_avg_pct": round(mean([
            100 * (r["limit_instances"] - r["nolimit_instances"]) /
            max(r["nolimit_instances"], 1) for r in result.rows
        ]), 1),
        "limit_migrated_median_pct": round(
            median([r["limit_migrated_pct"] for r in upd]), 1
        ),
        "nolimit_migrated_median_pct": round(
            median([r["nolimit_migrated_pct"] for r in upd]), 1
        ),
        "nolimit_overloaded_median_pct": round(
            median([r["nolimit_overloaded_pct"] for r in upd]), 1
        ),
        "limit_overloaded_median_pct": round(
            median([r["limit_overloaded_pct"] for r in upd]), 1
        ),
        "solve_s_median": round(median([r["solve_s"] for r in result.rows]), 3),
        "paper": ("rules ~1% of all-to-all; +27% instances vs all-to-all; "
                  "limit within -8..+11.7% of no-limit; migrated 8.3% vs "
                  "44.9% median; no-limit overload median 5.3%"),
    }
    result.notes = (
        "all_to_all_min is the paper's reference line (total traffic / "
        "instance capacity).  Solver: greedy first-fit (LP-rounding "
        "available via use_lp=True; the paper used CPLEX, so absolute "
        "solve times are not comparable)."
    )
    return result
