"""Figure 14: safe user-policy updates (make-before-break).

Timeline (paper Section 7.4): three equal-weight backends; at t=10 s the
operator *adds* Srv-4 (make), at t=20 s *removes* Srv-1 (break), at
t=30 s sets weights to Srv-2:Srv-3:Srv-4 = 1:1:2.  Traffic fractions must
track each change, and -- because instances apply new policy versions to
new connections only -- no client flow may break.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.policy import VipPolicy, weighted_split
from repro.experiments.harness import ExperimentResult, Testbed, TestbedConfig


def run(
    seed: int = 2016,
    rate: float = 150.0,
    duration: float = 40.0,
    sample_interval: float = 2.0,
) -> ExperimentResult:
    bed = Testbed(TestbedConfig(
        seed=seed, lb="yoda", num_lb_instances=3, num_store_servers=2,
        num_backends=4, corpus="flat", flat_object_bytes=20_000,
    ))
    controller = bed.yoda.controller
    all_backends = bed.policy.backends  # srv-0 .. srv-3

    def set_weights(weights: Dict[str, float]) -> None:
        new_policy = controller.policies[bed.vip].updated(
            rules=[weighted_split("split", "*", weights)]
        )
        controller.update_policy(new_policy)

    # phase 1 (0-10 s): srv-0,1,2 equal; srv-3 ("Srv-4") not yet deployed
    set_weights({"srv-0": 1, "srv-1": 1, "srv-2": 1})
    gen = bed.open_loop(rate)
    t0 = bed.loop.now()

    # make-before-break schedule
    bed.loop.call_later(10.0, set_weights,
                        {"srv-0": 1, "srv-1": 1, "srv-2": 1, "srv-3": 1})
    bed.loop.call_later(20.0, set_weights,
                        {"srv-1": 1, "srv-2": 1, "srv-3": 1})
    bed.loop.call_later(30.0, set_weights,
                        {"srv-1": 1, "srv-2": 1, "srv-3": 2})

    samples: List[dict] = []
    last_counts = {name: b.requests_served for name, b in bed.backends.items()}

    def sample() -> None:
        now = bed.loop.now() - t0
        counts = {name: b.requests_served for name, b in bed.backends.items()}
        delta = {name: counts[name] - last_counts[name] for name in counts}
        last_counts.update(counts)
        total = sum(delta.values()) or 1
        row = {"t_s": round(now, 1)}
        row.update({
            name: round(delta[name] / total, 3) for name in sorted(delta)
        })
        samples.append(row)
        bed.loop.call_later(sample_interval, sample)

    bed.loop.call_later(sample_interval, sample)
    bed.run(duration)
    gen.stop()
    bed.run(2.0)

    result = ExperimentResult(name="Figure 14: policy update traffic fractions")
    result.rows = samples

    def window_avg(name: str, lo: float, hi: float) -> float:
        vals = [s[name] for s in samples if lo < s["t_s"] <= hi]
        return round(sum(vals) / len(vals), 3) if vals else 0.0

    result.summary = {
        "phase1_srv0": window_avg("srv-0", 2, 10),
        "phase2_srv3_joins": window_avg("srv-3", 12, 20),
        "phase3_srv0_drained": window_avg("srv-0", 24, 30),
        "phase4_srv3_double": window_avg("srv-3", 32, 40),
        "broken_requests": gen.failure_count(),
        "paper": ("equal thirds -> equal quarters -> equal thirds without "
                  "srv-1(old) -> 1:1:2; zero broken flows"),
    }
    return result
