"""Table 1: impact of a proxy failure on real websites.

The paper breaks one established connection per site (by emulating a
proxy failure) and observes either a page timeout (static sites whose
browsers wait out the full HTTP timeout -- Firefox defaults to 5 minutes)
or a session reset (streaming/stateful services whose shorter app-level
timeouts kill the session).

We model each site archetype as a client profile (HTTP timeout, retry,
session semantics) against the HAProxy deployment, kill the proxy
carrying the connection mid-flow, and classify the observed outcome the
way the paper's table does.  The same profiles run against YODA to show
the contrast: no timeout, no reset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.harness import ExperimentResult, Testbed, TestbedConfig
from repro.http.client import BrowserClient, FetchResult

FIREFOX_TIMEOUT = 300.0  # the paper's "5 min (default Mozilla Firefox)"


@dataclass(frozen=True)
class SiteProfile:
    """One website archetype from Table 1."""

    name: str
    kind: str  # "static-page" | "session"
    http_timeout: float  # how long the client waits before giving up
    object_bytes: int  # the in-flight object when the proxy dies


SITES: List[SiteProfile] = [
    SiteProfile("nytimes", "static-page", FIREFOX_TIMEOUT, 1_200_000),
    SiteProfile("reddit", "static-page", FIREFOX_TIMEOUT, 1_000_000),
    SiteProfile("stanford", "static-page", FIREFOX_TIMEOUT, 800_000),
    SiteProfile("vimeo", "session", 10.0, 8_000_000),
    SiteProfile("soundcloud", "session", 10.0, 5_000_000),
    SiteProfile("email-service", "session", 15.0, 2_000_000),
]


def _observe(site: SiteProfile, lb: str, seed: int) -> FetchResult:
    bed = Testbed(TestbedConfig(
        seed=seed, lb=lb, num_lb_instances=3,
        num_store_servers=2, num_backends=2, corpus="flat",
        flat_object_count=1, flat_object_bytes=site.object_bytes,
    ))
    results: List[FetchResult] = []
    is_session = site.kind == "session"
    browser = BrowserClient(
        bed.client_stacks[0], bed.loop, bed.target(),
        # static pages wait out the browser's absolute HTTP timeout;
        # streaming sessions die after a playback *stall* of that length
        http_timeout=600.0 if is_session else site.http_timeout,
        stall_timeout=site.http_timeout if is_session else None,
        retries=0,
    )
    browser.fetch("/obj/0.bin", results.append)

    def kill_proxy() -> None:
        bed.fail_lb_instances(1)

    bed.loop.call_later(0.25, kill_proxy)  # mid-transfer
    bed.run(site.http_timeout + 120.0)
    assert results, f"{site.name}: fetch never concluded"
    return results[0]


def classify(site: SiteProfile, result: FetchResult) -> str:
    if result.ok:
        extra = result.latency
        if extra > 5.0:
            return f"recovered (+{extra:.1f} s)"
        return "no impact"
    if site.kind == "static-page":
        return f"page timed-out (~{site.http_timeout / 60:.0f} min)"
    return "session reset"


def run(seed: int = 2016, sites: Optional[List[SiteProfile]] = None,
        include_yoda: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        name="Table 1: impact of proxy failure on website archetypes"
    )
    for site in sites or SITES:
        fetch_haproxy = _observe(site, "haproxy", seed)
        row = {
            "website": site.name,
            "kind": site.kind,
            "impact_with_proxy_lb": classify(site, fetch_haproxy),
        }
        if include_yoda:
            fetch_yoda = _observe(site, "yoda", seed)
            row["impact_with_yoda"] = classify(site, fetch_yoda)
            row["yoda_latency_s"] = round(fetch_yoda.latency, 2)
        result.rows.append(row)
    result.summary = {
        "paper": ("static sites: page timed-out (5 min Firefox HTTP "
                  "timeout); streaming/session sites: session reset"),
    }
    return result
