"""Flash crowd: goodput with and without the overload-control plane.

Not a paper figure -- the paper's YODA handles *failures* gracefully but
says nothing about *overload*.  This experiment shows why the qos plane
(repro.qos) earns its place: a crowd of untrusted clients offers several
times the deployment's CPU capacity while a steady tier-0 workload runs
underneath.  With qos, per-VIP token-bucket admission sheds the crowd at
SYN time (tier floors keep tier-0 admitted) and the tier-0 goodput stays
within ~10% of its offered rate; without qos every SYN is accepted, the
instance CPUs saturate, queues build, and *everyone's* requests time out
-- the classic congestion-collapse ablation.

After the crowd leaves, one instance is drained for scale-in
(make-before-break): new SYNs route elsewhere, in-flight requests finish,
and the run asserts zero tier-0 failures during the drain window.

Same scaling trick as Figure 13: request rates are ~SCALE x smaller than
a real deployment with per-packet CPU cost scaled up by SCALE, so the
utilization trajectory is preserved while the simulation stays small.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.stats import percentile
from repro.core.instance import YodaCostModel
from repro.experiments.harness import ExperimentResult, Testbed, TestbedConfig
from repro.net.host import Host
from repro.qos.config import QosConfig
from repro.tcp.endpoint import TcpStack
from repro.workload.clients import OpenLoopGenerator

SCALE = 100.0

# the tier the surge clients land in (see QosConfig.client_tiers below)
CROWD_PREFIX = "172.16.9."


def default_qos(admission_rate: float = 70.0,
                admission_burst: float = 30.0) -> QosConfig:
    """The experiment's qos policy: per-instance admission with the crowd
    in tier 2 (shed first -- only admitted while the bucket is >60%)."""
    return QosConfig(
        admission_rate=admission_rate,
        admission_burst=admission_burst,
        tier_floors=(0.0, 0.0, 0.6),
        client_tiers=((CROWD_PREFIX, 2),),
    )


def run(
    seed: int = 2016,
    qos: bool = True,
    num_instances: int = 3,
    legit_rate: float = 120.0,
    surge_rate: float = 600.0,
    surge_at: float = 4.0,
    surge_duration: float = 6.0,
    drain_at: float = 12.0,
    duration: float = 16.0,
    http_timeout: float = 5.0,
    admission_rate: float = 70.0,
) -> ExperimentResult:
    cost = YodaCostModel(
        packet_cpu_base=4.0e-6 * SCALE,
        packet_cpu_per_byte=1.5e-9 * SCALE,
    )
    bed = Testbed(TestbedConfig(
        seed=seed, lb="yoda", num_lb_instances=num_instances,
        num_store_servers=3, num_backends=3, corpus="flat",
        flat_object_bytes=10_000, yoda_cost=cost,
        qos=default_qos(admission_rate) if qos else None,
    ))

    t_start = bed.loop.now()
    legit_events: List[Dict[str, float]] = []
    crowd_events: List[Dict[str, float]] = []

    def record(bucket: List[Dict[str, float]]):
        def on_result(result) -> None:
            bucket.append({
                "t": bed.loop.now() - t_start,
                "ok": 1.0 if result.ok else 0.0,
                "latency": result.latency,
            })
        return on_result

    legit = bed.open_loop(rate=legit_rate, http_timeout=http_timeout)
    legit.on_result = record(legit_events)

    crowd_host = bed.network.attach(
        Host("crowd-client", [f"{CROWD_PREFIX}1"], site="internet")
    )
    crowd = OpenLoopGenerator(
        TcpStack(crowd_host, bed.loop), bed.loop, bed.target(), surge_rate,
        path_fn=bed.website.random_object, http_timeout=http_timeout,
        on_result=record(crowd_events),
    )
    bed.loop.call_later(surge_at, crowd.start)
    bed.loop.call_later(surge_at + surge_duration, crowd.stop)

    drained = {"name": None}

    def start_drain() -> None:
        victim = bed.yoda.instances[0].name
        drained["name"] = victim
        bed.yoda.controller.drain_instance(victim)

    bed.loop.call_later(drain_at, start_drain)
    bed.run(duration)
    legit.stop()
    bed.run(http_timeout + 1.0)  # let stragglers resolve, drain finish

    # ---------------------------------------------------------------- rows --
    rows: List[Dict[str, object]] = []
    for second in range(int(duration)):
        lo, hi = float(second), float(second + 1)
        lw = [e for e in legit_events if lo <= e["t"] < hi]
        cw = [e for e in crowd_events if lo <= e["t"] < hi]
        rows.append({
            "t_s": second,
            "legit_ok_s": sum(1 for e in lw if e["ok"]),
            "legit_fail_s": sum(1 for e in lw if not e["ok"]),
            "crowd_ok_s": sum(1 for e in cw if e["ok"]),
            "crowd_fail_s": sum(1 for e in cw if not e["ok"]),
        })

    # ------------------------------------------------------------- summary --
    surge_end = surge_at + surge_duration
    in_surge = [e for e in legit_events if surge_at + 1 <= e["t"] < surge_end]
    surge_ok = sum(1 for e in in_surge if e["ok"])
    surge_window = surge_duration - 1
    goodput_ratio = (surge_ok / surge_window / legit_rate) if in_surge else 0.0
    in_drain = [e for e in legit_events if e["t"] >= drain_at]
    drain_failures = sum(1 for e in in_drain if not e["ok"])
    legit_lat = [e["latency"] for e in legit_events if e["ok"]]

    sheds = 0
    breaker_opens = 0
    for inst in bed.yoda.instances:
        counters = inst.metrics.counters
        sheds += sum(c.value for name, c in counters.items()
                     if name.startswith("qos_shed"))
        if "qos_breaker_opens" in counters:
            breaker_opens += counters["qos_breaker_opens"].value
    ctl = bed.yoda.controller.metrics.counters
    drains_completed = (ctl["drains_completed"].value
                        if "drains_completed" in ctl else 0)

    result = ExperimentResult(
        name=f"Flash crowd ({'qos' if qos else 'no-qos'})")
    result.rows = rows
    result.summary = {
        "qos": qos,
        "legit_goodput_ratio_during_surge": round(goodput_ratio, 3),
        "legit_p99_s": (round(percentile(legit_lat, 99), 4)
                        if legit_lat else None),
        "legit_failures_total": sum(1 for e in legit_events if not e["ok"]),
        "legit_failures_during_drain": drain_failures,
        "crowd_admitted_ok": sum(1 for e in crowd_events if e["ok"]),
        "crowd_refused": sum(1 for e in crowd_events if not e["ok"]),
        "syns_shed": sheds,
        "breaker_opens": breaker_opens,
        "drains_completed": drains_completed,
        "drained_instance": drained["name"],
    }
    result.notes = (
        f"{num_instances} instances, tier-0 at {legit_rate:.0f} req/s, "
        f"crowd at {surge_rate:.0f} req/s in "
        f"[{surge_at:.0f}s, {surge_end:.0f}s), drain at {drain_at:.0f}s; "
        f"CPU cost scaled {SCALE:.0f}x (fig13 convention)."
    )
    return result


def run_ablation(seed: int = 2016, quick: bool = False) -> ExperimentResult:
    """The headline contrast: same flash crowd, qos on vs off."""
    kwargs: Dict[str, object] = {}
    if quick:
        kwargs = dict(
            legit_rate=80.0, surge_rate=400.0,
            surge_at=2.0, surge_duration=4.0,
            drain_at=7.0, duration=10.0,
        )
    with_qos = run(seed=seed, qos=True, **kwargs)
    without = run(seed=seed, qos=False, **kwargs)

    result = ExperimentResult(name="Flash-crowd ablation: qos on vs off")
    for label, sub in (("qos", with_qos), ("no-qos", without)):
        result.rows.append({
            "variant": label,
            "goodput_ratio": sub.summary["legit_goodput_ratio_during_surge"],
            "p99_s": sub.summary["legit_p99_s"],
            "legit_failures": sub.summary["legit_failures_total"],
            "drain_failures": sub.summary["legit_failures_during_drain"],
            "syns_shed": sub.summary["syns_shed"],
            "crowd_ok": sub.summary["crowd_admitted_ok"],
        })
    ratio_on = with_qos.summary["legit_goodput_ratio_during_surge"]
    ratio_off = without.summary["legit_goodput_ratio_during_surge"]
    result.summary = {
        "goodput_ratio_qos": ratio_on,
        "goodput_ratio_no_qos": ratio_off,
        "drain_failures_qos": with_qos.summary["legit_failures_during_drain"],
        "contrast": ("holds" if ratio_on >= 0.9 and ratio_off < ratio_on
                     else "LOST"),
    }
    result.notes = with_qos.notes
    return result
