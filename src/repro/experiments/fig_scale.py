"""Sharded-simulation scaling: aggregate packet throughput vs shard count.

Not a paper figure -- the paper's testbed tops out at a handful of muxes,
but YODA's operational regime is *millions* of concurrent flows, and a
single-process discrete-event simulator cannot hold that world.  This
experiment drives the ``repro.shard`` engine: the same multi-cell world
(each cell a complete namespaced YODA deployment under a compressed
diurnal + flash-crowd day of load) is run at 1, 2 and 4 shards, and each
leg reports wall-clock, aggregate simulated packets, and packets
simulated per wall second.

Honesty notes, enforced in the emitted ``BENCH_scale.json``:

- ``cpus`` records the cores actually available.  Conservative-lookahead
  parallelism buys wall-clock only when shards run on *distinct* cores;
  on a 1-CPU machine the forked legs time-slice and the figure documents
  the barrier overhead instead of a speedup.  Nothing is extrapolated.
- The 4-shard leg is re-run with the same seed and its merged run digest
  must be bit-identical -- parallel execution is not allowed to cost
  determinism.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.shard import (
    ScaleWorldConfig,
    ShardedRunner,
    make_scale_plan,
    scale_world_builder,
)
from repro.workload.trace import DiurnalConfig

SCHEMA = "bench-scale/v1"


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux fallback
        return os.cpu_count() or 1


def _run_leg(cfg: ScaleWorldConfig, duration: float, mode: str):
    plan = make_scale_plan(cfg)
    runner = ShardedRunner(plan, scale_world_builder(cfg), mode=mode)
    started = time.perf_counter()
    result = runner.run(duration)
    wall = time.perf_counter() - started
    return result, wall


def run(
    seed: int = 2016,
    shard_counts: Sequence[int] = (1, 2, 4),
    num_cells: int = 4,
    duration: float = 24.0,
    sim_fraction: float = 1e-3,
    bench_path: Optional[str] = None,
) -> ExperimentResult:
    """Run the scale world at each shard count; write ``BENCH_scale.json``."""
    diurnal = DiurnalConfig(seed=seed, sim_seconds=duration,
                            sim_fraction=sim_fraction)
    rows: List[Dict[str, object]] = []
    legs: List[Dict[str, object]] = []
    window = None
    base_pps = None
    repro_leg = max(shard_counts)
    repro_digests: List[str] = []
    for shards in shard_counts:
        cfg = ScaleWorldConfig(seed=seed, num_cells=num_cells,
                               num_shards=shards, diurnal=diurnal)
        # 1 shard = today's in-process path (the honest baseline: no pipe
        # or fork overhead); >1 shard = one OS process per shard
        mode = "inline" if shards == 1 else "fork"
        passes = 2 if shards == repro_leg else 1
        for _ in range(passes):
            result, wall = _run_leg(cfg, duration, mode)
            if shards == repro_leg:
                repro_digests.append(result.digest)
        window = result.window
        tx = result.total_tx_packets
        pps = tx / wall if wall > 0 else 0.0
        if base_pps is None:
            base_pps = pps
        stats = result.per_shard
        fetches_ok = sum(int(s.get("fetches_ok", 0)) for s in stats)
        fetches_failed = sum(int(s.get("fetches_failed", 0)) for s in stats)
        leg = {
            "shards": shards,
            "mode": mode,
            "wall_seconds": round(wall, 3),
            "tx_packets": tx,
            "packets_per_wall_sec": round(pps, 1),
            "speedup_vs_1shard": round(pps / base_pps, 3) if base_pps else 0.0,
            "cross_shard_packets": result.cross_shard_packets,
            "windows": result.windows_run,
            "fetches_ok": fetches_ok,
            "fetches_failed": fetches_failed,
            "digest": result.digest,
        }
        legs.append(leg)
        row = dict(leg)
        row["digest"] = leg["digest"][:12]
        rows.append(row)

    reproducible = len(set(repro_digests)) == 1
    assert reproducible, (
        f"{repro_leg}-shard run digest not reproducible across same-seed "
        f"invocations: {repro_digests}"
    )

    cpus = _cpus()
    doc = {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpus": cpus,
        "seed": seed,
        "num_cells": num_cells,
        "duration": duration,
        "window_seconds": window,
        "legs": legs,
        "digest_reproducible": reproducible,
        "note": (
            "packets_per_wall_sec is measured, never extrapolated; "
            "multi-shard speedup requires >= as many cores as shards"
        ),
    }
    path = bench_path or os.path.join(os.getcwd(), "BENCH_scale.json")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")

    best = max(legs, key=lambda l: l["packets_per_wall_sec"])
    return ExperimentResult(
        name="scale: sharded-simulation throughput vs shard count",
        rows=rows,
        summary={
            "cpus": cpus,
            "window_ms": round((window or 0.0) * 1000, 1),
            "best_speedup": best["speedup_vs_1shard"],
            "digest_reproducible": reproducible,
            "bench": path,
        },
        notes=(
            f"measured on {cpus} cpu(s); conservative-lookahead shards "
            f"only buy wall-clock when each shard gets its own core"
        ),
    )


def quick(seed: int = 2016,
          bench_path: Optional[str] = None) -> ExperimentResult:
    """CI-sized: 2 cells over 1 and 2 shards, a short slice of the day."""
    return run(seed=seed, shard_counts=(1, 2), num_cells=2, duration=6.0,
               sim_fraction=5e-4, bench_path=bench_path)
