"""Figure 15: cost reduction from YODA-as-a-service.

An online service running its own HAProxy fleet must provision for its
*peak* traffic (scaling in/out breaks connections), while a YODA tenant
pays only its average usage.  The per-VIP max-to-average traffic ratio
over the 24 h trace is therefore the per-tenant cost-saving factor; the
paper reports 1.07x-50.3x with a 3.7x average across 100+ VIPs.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.stats import mean, median
from repro.experiments.harness import ExperimentResult
from repro.sim.random import SeededRng
from repro.workload.trace import ProductionTrace, TraceConfig, generate_trace


def run(
    seed: int = 2016,
    trace: Optional[ProductionTrace] = None,
    config: Optional[TraceConfig] = None,
) -> ExperimentResult:
    trace = trace or generate_trace(SeededRng(seed), config)
    ratios = trace.max_to_avg_all()
    ordered = trace.vips_by_volume()
    result = ExperimentResult(
        name="Figure 15: max-to-average traffic ratio per VIP "
             "(sorted by volume, descending)"
    )
    for rank, vip in enumerate(ordered, start=1):
        result.rows.append({
            "rank": rank,
            "vip": vip,
            "profile": trace.profiles.get(vip, "?"),
            "avg_traffic": round(sum(trace.traffic[vip]) / trace.intervals, 2),
            "max_to_avg": round(ratios[vip], 2),
        })
    values = list(ratios.values())
    result.summary = {
        "num_vips": len(values),
        "total_rules": trace.total_rules(),
        "min_ratio": round(min(values), 2),
        "median_ratio": round(median(values), 2),
        "mean_ratio": round(mean(values), 2),
        "max_ratio": round(max(values), 2),
        "paper": "1.07x-50.3x, average 3.7x across 100+ VIPs, 50K+ rules",
    }
    result.notes = (
        "mean_ratio is the paper's headline 'reduces L7 LB instance cost "
        "by 3.7x' number: peak-provisioned (HAProxy) vs average-billed "
        "(YODA-as-a-service)."
    )
    return result
