"""Figures 10 & 11: TCPStore operation latency and CPU under load.

The paper loads 10 Memcached servers at increasing client request rates
and compares stock Memcached (1 copy) against TCPStore's client-side
2-replica persistence: median latency stays sub-millisecond (0.75 ms at
40K client req/s/server) with <24% latency overhead for persistence, and
CPU roughly doubles (each op hits two servers).

Mechanisms reproduced here:
- replica ops are issued in parallel, so the replicated op's latency is
  the *max* of K draws over a jittery in-DC network -- that max-of-two is
  exactly where the paper's <24% overhead comes from;
- arrivals are Poisson, so queueing at the server CPU grows with load;
- per-op CPU cost is calibrated to the paper's "80K client req/s at 90%
  CPU" single-server observation.

The x-axis is client requests per server, as in both figures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.stats import median, percentile
from repro.experiments.harness import ExperimentResult
from repro.kvstore.client import MemcachedCluster, ReplicatingKvClient
from repro.kvstore.memcached import MemcachedServer
from repro.net.host import Host
from repro.net.links import JitterLatency
from repro.net.network import Network
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng


class _StoreRig:
    """Memcached servers + one driving client on a jittery DC fabric."""

    def __init__(self, seed: int, num_servers: int, replicas: int):
        self.loop = EventLoop()
        self.rng = SeededRng(seed)
        self.network = Network(self.loop, self.rng)
        # in-DC one-way latency: 150 us propagation + up to 150 us jitter
        self.network.set_symmetric_latency(
            "dc", "dc", JitterLatency(0.00015, 0.00015)
        )
        self.servers: List[MemcachedServer] = []
        for i in range(num_servers):
            host = self.network.attach(
                Host(f"mc-{i}", [f"10.2.0.{i + 1}"], site="dc")
            )
            self.servers.append(MemcachedServer(host, self.loop))
        self.cluster = MemcachedCluster(self.servers)
        client_host = self.network.attach(Host("kvdriver", ["10.1.0.1"], site="dc"))
        self.kv = ReplicatingKvClient(client_host, self.loop, self.cluster,
                                      replicas=replicas)
        client_host.set_handler(self.kv.handle_response)
        self._arrival_rng = self.rng.fork("arrivals")

    def drive(self, op: str, rate: float, duration: float,
              value: bytes) -> List[float]:
        """Issue ``op`` with Poisson arrivals at mean ``rate`` ops/s."""
        latencies: List[float] = []
        counter = {"i": 0}

        def issue() -> None:
            counter["i"] += 1
            key = f"k{counter['i'] % 5000}"
            done = lambda r: latencies.append(r.latency)
            if op == "set":
                self.kv.set(key, value, done)
            elif op == "get":
                self.kv.get(key, done)
            else:
                self.kv.delete(key, done)

        t = self.loop.now()
        end = t + duration
        while t < end:
            t += self._arrival_rng.expovariate(rate)
            self.loop.call_at(t, issue)
        self.loop.run(until=end + 0.05)
        return latencies


def run(
    seed: int = 2016,
    client_reqs_per_server: Sequence[float] = (4_000, 20_000, 40_000, 70_000),
    num_servers: int = 2,
    duration: float = 0.3,
    value_bytes: int = 256,
) -> ExperimentResult:
    """Latency rows (Figure 10) with CPU columns (Figure 11)."""
    result = ExperimentResult(
        name="Figures 10-11: TCPStore latency and CPU vs per-server load"
    )
    value = b"s" * value_bytes
    for replicas in (1, 2):
        for per_server in client_reqs_per_server:
            rig = _StoreRig(seed, num_servers, replicas)
            client_rate = per_server * num_servers  # client ops/s overall
            row: Dict[str, object] = {
                "replicas": replicas,
                "client_req_s_per_server": per_server,
            }
            # populate the keyspace so gets hit
            rig.drive("set", client_rate, duration / 2, value)
            start_busy = [s.cpu.busy_seconds for s in rig.servers]
            active = 0.0
            for op in ("set", "get", "delete"):
                latencies = rig.drive(op, client_rate, duration, value)
                active += duration
                row[f"{op}_p50_ms"] = (
                    round(median(latencies) * 1e3, 4) if latencies else None
                )
                if op == "set":
                    row["set_p90_ms"] = (
                        round(percentile(latencies, 90) * 1e3, 4)
                        if latencies else None
                    )
            busy = sum(
                s.cpu.busy_seconds - b for s, b in zip(rig.servers, start_busy)
            )
            row["server_cpu_util"] = round(busy / (len(rig.servers) * active), 4)
            result.rows.append(row)

    by_key = {(r["replicas"], r["client_req_s_per_server"]): r
              for r in result.rows}
    top = max(client_reqs_per_server[:3])  # compare at the paper's 40K point
    base, repl = by_key[(1, top)], by_key[(2, top)]
    result.summary = {
        "set_overhead_pct_at_40k": round(
            100 * (repl["set_p50_ms"] - base["set_p50_ms"]) / base["set_p50_ms"], 1
        ),
        "cpu_ratio_2r_over_1r": round(
            repl["server_cpu_util"] / base["server_cpu_util"], 2
        ) if base["server_cpu_util"] else None,
        "paper": "median <= 0.75 ms at 40K; <24% overhead; ~2x CPU",
    }
    result.notes = (
        "Server count scaled down; latency/CPU depend on the per-server "
        "rate, which matches the paper's x-axis."
    )
    return result
