"""Figure 13: scalability -- elastic scale-out without breaking flows.

The paper starts with 6 YODA instances at 5K req/s each (~40% CPU),
doubles the offered load at t=10 s (CPU ~80%), and the controller reacts
by activating 3 more instances, dropping per-instance load to ~6.7K req/s
and CPU to ~60% -- with every client flow maintained and no latency spike.

We run the same timeline at a scaled-down request rate with the
per-packet CPU cost scaled *up* by the same factor, so the utilization
trajectory (40% -> 80% -> ~60%) is preserved while the simulation stays
small.  The workload is the paper's Apache-bench-style single-object
fetch stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.stats import mean, median
from repro.core.controller import AutoscaleConfig
from repro.core.instance import YodaCostModel
from repro.experiments.harness import ExperimentResult, Testbed, TestbedConfig

# paper rates: 5K -> 10K req/s per instance; we run ~33x smaller rates
# with the per-packet CPU cost scaled up by SCALE, so the utilization
# trajectory (~40% -> ~80% -> ~55%) is preserved.
SCALE = 25.0


def run(
    seed: int = 2016,
    initial_instances: int = 6,
    spare_instances: int = 3,
    base_rate_per_instance: float = 150.0,
    duration: float = 30.0,
    step_at: float = 10.0,
    sample_interval: float = 1.0,
) -> ExperimentResult:
    cost = YodaCostModel(
        packet_cpu_base=4.0e-6 * SCALE,
        packet_cpu_per_byte=1.5e-9 * SCALE,
    )
    bed = Testbed(TestbedConfig(
        seed=seed, lb="yoda", num_lb_instances=initial_instances,
        num_store_servers=3, num_backends=6, corpus="flat",
        flat_object_bytes=10_000, yoda_cost=cost,
    ))
    for _ in range(spare_instances):
        bed.yoda.new_spare_instance()
    bed.yoda.controller.enable_autoscaling(AutoscaleConfig(
        high_watermark=0.70, target=0.55, check_interval=5.0,
    ))

    gen = bed.open_loop(rate=base_rate_per_instance * initial_instances)
    samples: List[dict] = []
    t_start = bed.loop.now()
    # own busy-time bookkeeping: the autoscaler resets the shared CPU
    # windows on its schedule, so the sampler must not depend on them
    busy_marker: dict = {}
    time_marker = {"t": bed.loop.now()}

    def sample() -> None:
        ctrl = bed.yoda.controller
        live = [ctrl.instances[n] for n in ctrl.instances
                if ctrl.active.get(n) and not ctrl.instances[n].host.failed]
        now = bed.loop.now()
        window = now - time_marker["t"]
        time_marker["t"] = now
        utils = []
        for i in live:
            busy = i.cpu.busy_seconds
            utils.append(min(1.0, (busy - busy_marker.get(i.name, 0.0)) / window))
            busy_marker[i.name] = busy
        samples.append({
            "t_s": round(now - t_start, 1),
            "instances": len(live),
            "offered_req_s": gen.rate,
            "req_s_per_instance": round(gen.rate / len(live), 1),
            "avg_cpu": round(mean(utils), 3) if utils else 0.0,
        })
        bed.loop.call_later(sample_interval, sample)

    bed.loop.call_later(sample_interval, sample)
    bed.loop.call_later(
        step_at, lambda: gen.set_rate(2 * base_rate_per_instance * initial_instances)
    )
    bed.run(duration)
    gen.stop()
    bed.run(2.0)

    result = ExperimentResult(name="Figure 13: scale-out under load")
    result.rows = samples
    before = [s["avg_cpu"] for s in samples if s["t_s"] < step_at]
    surge = [s["avg_cpu"] for s in samples
             if step_at + 1 < s["t_s"] < step_at + 6]
    after = [s["avg_cpu"] for s in samples if s["t_s"] > step_at + 10]
    final_instances = samples[-1]["instances"] if samples else 0
    broken = gen.failure_count()
    result.summary = {
        "cpu_before": round(mean(before), 3) if before else None,
        "cpu_during_surge": round(mean(surge), 3) if surge else None,
        "cpu_after_scaleout": round(mean(after), 3) if after else None,
        "instances_added": final_instances - initial_instances,
        "broken_requests": broken,
        "median_latency_s": round(median(gen.latencies()), 4) if gen.latencies() else None,
        "paper": "40% -> 80% -> ~60% CPU; +3 instances; zero broken flows",
    }
    result.notes = (
        f"Rates scaled down {SCALE:.0f}x with per-packet CPU cost scaled up "
        f"{SCALE:.0f}x, preserving the utilization trajectory."
    )
    return result
