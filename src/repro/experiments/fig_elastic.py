"""Elasticity redo of the paper's Figure 15 cost analysis.

The paper sizes YODA statically for *peak* traffic and reports the cost
of that headroom.  This experiment plays a 24-hour diurnal +
flash-crowd day (the PR 9 trace generator, compressed onto simulated
seconds) against three provisioning strategies:

- ``static-peak``  -- the paper's answer: a pool sized so the flash
  crowd never saturates it, paid for all day.
- ``autoscaled``   -- the ``repro.autoscale`` closed loop: start at the
  floor, adopt spares when CPU crosses the high watermark, drain back
  down (make-before-break) when the day quiets, and scale the TCPStore
  replica set alongside the instance pool.
- ``floor`` (the ``--no-autoscale`` ablation) -- the floor pool with the
  loop disarmed: what you get if you try to pocket the savings without
  the control loop.  It MUST blow the SLO under the flash crowd; the
  ablation is pinned to fail so the contrast cannot silently rot.

Cost is instance-seconds actually powered (active + draining; parked
spares are free -- that is the whole elasticity bargain), reported both
raw and re-expanded to modeled instance-hours of the 24 h day.  SLO
attainment is the fraction of issued requests that complete OK within
``slo_latency``.  The autoscaled leg must come in under 0.7x the
static-peak cost at equal-or-better SLO attainment, with the
``no-accepted-request-dropped`` and ``scale-events-converge``
invariants holding across every scale event -- the same auditors the
chaos plane uses, wired straight into the experiment.

Honesty notes (enforced in ``BENCH_elastic.json``): the day is
compressed (``sim_seconds`` of virtual time), rates are scaled down
with per-packet CPU cost scaled up by ``SCALE`` (the Figure 13
convention, so utilization trajectories are preserved), and everything
runs on whatever cores the container has -- wall-clock is incidental,
the cost metric is *simulated* instance time, never extrapolated.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.autoscale import ElasticPolicy
from repro.chaos.invariants import (
    NoAcceptedRequestDropped,
    ScaleEventsConverge,
    Verdict,
)
from repro.core.instance import YodaCostModel
from repro.experiments.harness import ExperimentResult, Testbed, TestbedConfig
from repro.workload.trace import DiurnalConfig, DiurnalTrace, generate_diurnal_trace

SCHEMA = "bench-elastic/v1"
# fig13 convention: rates ~SCALE x smaller, CPU cost SCALE x up.  At 100x
# one instance saturates near ~94 req/s, so the whole day fits in a few
# thousand simulated requests while preserving utilization trajectories.
SCALE = 100.0


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux fallback
        return os.cpu_count() or 1


def _day(seed: int, sim_seconds: float, base_rps: float) -> DiurnalTrace:
    """The compressed day: cosine diurnal swing plus two flash crowds
    wide enough (in sim time) that a 0.5 s control loop can race them."""
    cfg = DiurnalConfig(
        seed=seed,
        sim_seconds=sim_seconds,
        interval_seconds=0.5,
        sim_fraction=base_rps / DiurnalConfig().modeled_base_rps,
        flash_crowds=((0.35, 3.0, 0.10), (0.72, 5.0, 0.12)),
    )
    return generate_diurnal_trace(cfg)


def elastic_policy(floor: int, ceiling: int) -> ElasticPolicy:
    """The experiment's production policy: CPU hysteresis band, fast
    checks, bounded steps, cooldowns long enough that the converge
    invariant holds, store replicas riding the instance count."""
    return ElasticPolicy(
        high_watermark=0.45,
        low_watermark=0.15,
        target=0.30,
        check_interval=0.25,
        cooldown_out=0.75,
        cooldown_in=6.0,
        step_out=4,
        step_in=1,
        min_instances=floor,
        max_instances=ceiling,
        scale_down=True,
        drain=True,
        drain_deadline=2.0,
        scale_stores=True,
        instances_per_store=2,
        min_stores=2,
        max_stores=4,
    )


def _run_leg(
    label: str,
    seed: int,
    trace: DiurnalTrace,
    num_instances: int,
    spare_instances: int = 0,
    policy: Optional[ElasticPolicy] = None,
    slo_latency: float = 2.5,
    http_timeout: float = 8.0,
    sample_every: float = 0.25,
) -> Dict[str, object]:
    cost = YodaCostModel(
        packet_cpu_base=4.0e-6 * SCALE,
        packet_cpu_per_byte=1.5e-9 * SCALE,
    )
    bed = Testbed(TestbedConfig(
        seed=seed, lb="yoda",
        num_lb_instances=num_instances,
        spare_instances=spare_instances,
        autoscale=policy,
        num_store_servers=2, num_backends=3,
        corpus="flat", flat_object_bytes=8_000, flat_object_count=20,
        yoda_cost=cost,
    ))
    # the same accepted-work auditor every chaos scenario runs: scale
    # events may refuse new SYNs but must never sacrifice accepted flows
    nar = NoAcceptedRequestDropped(bed)
    bed.network.add_trace(nar)

    ctl = bed.yoda.controller
    day = trace.config.sim_seconds

    # ---- cost meter: sample the powered pool (active + draining) ----------
    samples: List[Dict[str, float]] = []

    def powered_instances() -> int:
        return sum(
            1 for n in ctl.instances
            if ctl._instance_alive.get(n)
            and (ctl.active.get(n) or n in ctl.draining)
        )

    def sample() -> None:
        samples.append({
            "t": bed.loop.now() - t0,
            "instances": powered_instances(),
            "stores": len(ctl.kv_cluster.servers) if ctl.kv_cluster else 0,
            "rate": trace.rate_at(bed.loop.now() - t0),
        })
        if bed.loop.now() - t0 < day - 1e-9:
            bed.loop.call_later(sample_every, sample)

    # ---- the day's load: one open-loop client tracking the trace ----------
    events: List[Dict[str, float]] = []
    t0 = bed.loop.now()
    gen = bed.open_loop(rate=trace.sim_rates[0], http_timeout=http_timeout)

    def on_result(result) -> None:
        events.append({
            "t": bed.loop.now() - t0,
            "ok": 1.0 if result.ok else 0.0,
            "latency": result.latency,
        })

    gen.on_result = on_result

    def follow_trace() -> None:
        t = bed.loop.now() - t0
        if t >= day - 1e-9:
            return
        gen.set_rate(trace.rate_at(t))
        bed.loop.call_later(trace.config.interval_seconds, follow_trace)

    follow_trace()
    sample()
    bed.run(day)
    load_end = bed.loop.now()
    gen.stop()
    bed.run(http_timeout + 2.0)  # stragglers resolve, final drains finish

    # ---- verdicts ---------------------------------------------------------
    verdicts: List[Verdict] = [nar.finalize(strict_before=load_end)]
    autoscalers = bed.yoda.autoscalers
    scale_events = 0
    if autoscalers:
        verdicts.append(ScaleEventsConverge().finalize(autoscalers))
        scale_events = sum(len(a.events) for a in autoscalers)

    # ---- cost + SLO -------------------------------------------------------
    instance_seconds = sum(s["instances"] for s in samples) * sample_every
    store_seconds = sum(s["stores"] for s in samples) * sample_every
    ok_in_slo = sum(1 for e in events
                    if e["ok"] and e["latency"] <= slo_latency)
    attainment = ok_in_slo / len(events) if events else 0.0
    peak = max(s["instances"] for s in samples)
    events_by_kind: Dict[str, int] = {}
    for a in autoscalers:
        for ev in a.events:
            events_by_kind[ev.kind] = events_by_kind.get(ev.kind, 0) + 1
    return {
        "leg": label,
        "instance_seconds": round(instance_seconds, 2),
        "modeled_instance_hours": round(instance_seconds * 24.0 / day, 2),
        "store_seconds": round(store_seconds, 2),
        "peak_instances": peak,
        "requests": len(events),
        "slo_attainment": round(attainment, 4),
        "scale_events": scale_events,
        "events_by_kind": events_by_kind,
        "invariants": {v.invariant: v.ok for v in verdicts},
        "invariants_ok": all(v.ok for v in verdicts),
        "verdicts": verdicts,
        "samples": samples,
    }


def run(
    seed: int = 2016,
    sim_seconds: float = 40.0,
    base_rps: float = 66.0,
    static_instances: int = 9,
    floor_instances: int = 2,
    slo_latency: float = 2.5,
    bench_path: Optional[str] = None,
    autoscale: bool = True,
) -> ExperimentResult:
    """The cost-vs-SLO contrast; writes ``BENCH_elastic.json``.

    ``autoscale=False`` (the CLI's ``--no-autoscale``) runs ONLY the
    floor-provisioned ablation leg and pins its failure: either you pay
    static-peak cost or the flash crowd blows the SLO -- there is no
    free lunch without the loop.
    """
    trace = _day(seed, sim_seconds, base_rps)
    policy = elastic_policy(floor_instances, static_instances)

    legs: List[Dict[str, object]] = []
    if autoscale:
        legs.append(_run_leg("static-peak", seed, trace, static_instances,
                             slo_latency=slo_latency))
        legs.append(_run_leg(
            "autoscaled", seed, trace, floor_instances,
            spare_instances=static_instances - floor_instances,
            policy=policy, slo_latency=slo_latency))
    legs.append(_run_leg("floor-no-autoscale", seed, trace, floor_instances,
                         slo_latency=slo_latency))

    by_leg = {l["leg"]: l for l in legs}
    ablation = by_leg["floor-no-autoscale"]
    # the ablation pin: floor provisioning without the loop must lose
    # the flash crowd (if it ever stops losing, the experiment's load no
    # longer stresses anything and the cost contrast is vacuous)
    ablation_blows_slo = ablation["slo_attainment"] < 0.97

    rows = [
        {
            "leg": l["leg"],
            "inst_hours": l["modeled_instance_hours"],
            "peak_inst": l["peak_instances"],
            "slo": l["slo_attainment"],
            "scale_events": l["scale_events"],
            "invariants": "ok" if l["invariants_ok"] else "BROKEN",
        }
        for l in legs
    ]

    summary: Dict[str, object] = {}
    if autoscale:
        static = by_leg["static-peak"]
        auto = by_leg["autoscaled"]
        cost_ratio = (auto["modeled_instance_hours"]
                      / static["modeled_instance_hours"])
        summary = {
            "cost_ratio_auto_vs_static": round(cost_ratio, 3),
            "slo_static": static["slo_attainment"],
            "slo_autoscaled": auto["slo_attainment"],
            "slo_ablation": ablation["slo_attainment"],
            "scale_events": auto["scale_events"],
            "store_events": (auto["events_by_kind"].get("store-out", 0)
                             + auto["events_by_kind"].get("store-in", 0)),
            "invariants_ok": auto["invariants_ok"],
            "contrast": (
                "holds"
                if (cost_ratio < 0.7
                    and auto["slo_attainment"] >= static["slo_attainment"]
                    and auto["invariants_ok"]
                    and auto["scale_events"] >= 4
                    and ablation_blows_slo)
                else "LOST"
            ),
        }
    else:
        summary = {
            "slo_ablation": ablation["slo_attainment"],
            "ablation_blows_slo": ablation_blows_slo,
            "contrast": "holds" if ablation_blows_slo else "LOST",
        }

    cpus = _cpus()
    doc = {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpus": cpus,
        "seed": seed,
        "sim_seconds": sim_seconds,
        "base_rps": base_rps,
        "cpu_scale": SCALE,
        "slo_latency": slo_latency,
        "modeled_users": trace.config.users,
        "peak_to_mean": round(trace.peak_to_mean(), 3),
        "legs": [
            {k: v for k, v in l.items() if k not in ("verdicts", "samples")}
            for l in legs
        ],
        "summary": summary,
        "note": (
            "cost is simulated instance-seconds re-expanded to a modeled "
            "24 h day (fig13 CPU-scaling convention); single-box run -- "
            "nothing here measures wall-clock parallelism"
        ),
    }
    path = bench_path or os.path.join(os.getcwd(), "BENCH_elastic.json")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    summary = dict(summary)
    summary["bench"] = path

    result = ExperimentResult(
        name=("elastic: autoscaled vs static-peak provisioning"
              if autoscale else "elastic: --no-autoscale ablation"))
    result.rows = rows
    result.summary = summary
    result.notes = (
        f"{trace.config.users / 1e6:.0f}M modeled users, day compressed to "
        f"{sim_seconds:.0f}s at {base_rps:.0f} req/s base (x{SCALE:.0f} CPU "
        f"cost); SLO = ok within {slo_latency:.1f}s; spares cost nothing "
        f"until adopted."
    )
    return result


def quick(seed: int = 2016, bench_path: Optional[str] = None,
          autoscale: bool = True) -> ExperimentResult:
    """CI-sized: a shorter day, same shape and same pins."""
    return run(seed=seed, sim_seconds=28.0, base_rps=60.0,
               static_instances=8, floor_instances=2,
               bench_path=bench_path, autoscale=autoscale)
