"""Stateless compact dispatch: memory per flow, raw speed, crash ablation.

Not a paper figure -- YODA's per-flow state in TCPStore is what buys its
availability story, and this experiment measures what that state *costs*
by contrasting it with the opposite design point: a Concury-style
stateless fast path (``repro.l4lb.compact``) where muxes dispatch from a
frozen O(1) lookup table and instances never write flow records.

Three measurements, same seed:

- **memory**: dispatch + durable state bytes per live flow under a fleet
  of concurrent streaming downloads.  Stateful mode pays a mux flow-table
  pin plus replicated TCPStore records per flow; stateless mode amortizes
  one fixed-size compact table across every flow (>= 2x smaller per flow
  at modest concurrency, and the gap widens with flow count).
- **speed**: wall-clock mux dispatch microbenchmark, both paths.  On the
  new-connection path (the L4-LB headline metric) the stateless table is
  a multiple faster: one crc32 + two array reads versus consistent-hash
  ring lookup + pin allocation + dict store.  On the established path a
  hot CPython dict hit is near the interpreter floor, so the gate there
  is "no material regression", not a win.
- **chaos**: the ``double-crash`` scenario both ways.  Stateful YODA
  recovers mid-transfer flows from TCPStore and comes out clean; the
  stateless leg *must* break established flows when their instance dies
  -- there is nothing durable to recover from.  That demonstrated loss is
  the point: statelessness is a trade, not a free win.
"""

from __future__ import annotations

import sys
import time
from dataclasses import replace
from typing import Dict, Optional

from repro.chaos.library import get_scenario
from repro.chaos.scenario import run_scenario
from repro.experiments.harness import ExperimentResult, Testbed, TestbedConfig
from repro.l4lb.compact import StatelessConfig
from repro.l4lb.service import L4LoadBalancer
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.net.packet import ACK, SYN, Packet
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng

VIP = "100.0.0.1"

# durable per-flow records (client-side, server-side, TLS tickets);
# control-plane keys (yoda:ctl:*) are not flow state and are excluded
FLOW_RECORD_PREFIXES = ("yoda:c:", "yoda:s:", "yoda:tkt:")


# --------------------------------------------------------------- memory --
def dispatch_state_bytes(bed: Testbed) -> Dict[str, int]:
    """Account every byte of LB-tier per-flow dispatch + durable state:
    mux flow-table pins, TCPStore flow records (all replicas), and the
    compact tables themselves (charged to the stateless design)."""
    pin_bytes = 0
    pins = 0
    for mux in bed.l4lb.muxes:
        for key, entry in mux.flow_table.items():
            pins += 1
            pin_bytes += (sys.getsizeof(key) + sys.getsizeof(entry)
                          + sys.getsizeof(entry.instance_ip)
                          + sys.getsizeof(entry.last_used))
    store_bytes = 0
    store_records = 0
    for server in bed.yoda.store_servers:
        for key, (_, value) in server._store.items():
            if key.startswith(FLOW_RECORD_PREFIXES):
                store_records += 1
                store_bytes += len(key) + len(value)
    compact_bytes = 0
    for vip in bed.l4lb.vips():
        table = bed.l4lb.compact_table(vip)
        if table is not None:
            compact_bytes += table.size_bytes()
    live_flows = sum(len(inst.flows) for inst in bed.yoda.instances)
    total = pin_bytes + store_bytes + compact_bytes
    return {
        "pins": pins,
        "pin_bytes": pin_bytes,
        "store_records": store_records,
        "store_bytes": store_bytes,
        "compact_bytes": compact_bytes,
        "live_flows": live_flows,
        "total_bytes": total,
        "bytes_per_flow": total // max(1, live_flows),
    }


def run(
    seed: int = 2016,
    stateless: bool = False,
    streams: int = 32,
    stream_chunks: int = 60,
    sample_at: float = 4.0,
    duration: float = 6.0,
) -> ExperimentResult:
    """One memory leg: hold ``streams`` concurrent paced downloads open
    and sample the dispatch-state footprint mid-run."""
    bed = Testbed(TestbedConfig(
        seed=seed, lb="yoda", num_lb_instances=3, num_store_servers=3,
        num_backends=3, corpus="flat", flat_object_bytes=20_000,
        stateless=StatelessConfig(enabled=True) if stateless else None,
    ))
    sample: Dict[str, int] = {}
    bed.loop.call_later(sample_at, lambda: sample.update(
        dispatch_state_bytes(bed)))
    fleet = bed.streaming(streams, chunks=stream_chunks, chunk_bytes=1_000,
                          interval_ms=100, start_at=0.2, spacing=0.02)
    bed.run(duration)
    bed.run(stream_chunks * 0.1 + 4.0)  # let every stream finish

    result = ExperimentResult(
        name=f"Dispatch-state footprint ({'stateless' if stateless else 'stateful'})")
    result.rows = [dict(sample)]
    result.summary = {
        "stateless": stateless,
        "bytes_per_flow": sample.get("bytes_per_flow", 0),
        "live_flows_at_sample": sample.get("live_flows", 0),
        "streams_completed": fleet.completed(),
        "streams_broken": fleet.broken() + fleet.unfinished(),
    }
    result.notes = (
        f"{streams} concurrent paced streams, footprint sampled at "
        f"t={sample_at:.0f}s; bytes = mux pins + TCPStore flow records "
        f"(all replicas) + compact tables."
    )
    return result


# ---------------------------------------------------------------- speed --
def run_speed(stateless: bool, flows: int = 256,
              rounds: int = 40) -> Dict[str, float]:
    """Wall-clock mux dispatch rate, SYN path and established path.

    A standalone mux with no instance hosts attached: ``process`` resolves
    the target and returns without scheduling events, so the measurement
    is the dispatch decision itself."""
    loop = EventLoop()
    net = Network(loop, SeededRng(7), default_latency=FixedLatency(0.0002))
    lb = L4LoadBalancer(
        loop, net, SeededRng(7), num_muxes=1,
        stateless=StatelessConfig(enabled=True) if stateless else None)
    lb.register_vip(VIP)
    lb.update_mapping(VIP, [f"10.1.0.{i + 1}" for i in range(8)],
                      immediate=True)
    loop.run(until=0.1)  # apply the (delay=0) mapping push
    mux = lb.muxes[0]
    syns = [Packet(src=Endpoint("172.16.0.1", port), dst=Endpoint(VIP, 80),
                   flags=SYN, seq=1)
            for port in range(40000, 40000 + flows)]
    acks = [Packet(src=Endpoint("172.16.0.1", port), dst=Endpoint(VIP, 80),
                   flags=ACK, seq=2)
            for port in range(40000, 40000 + flows)]
    for pkt in syns:  # establish (and warm) every flow
        mux.process(pkt)
    for pkt in acks:  # warmup pass
        mux.process(pkt)

    def timed(pkts) -> float:
        sent = 0
        started = time.perf_counter()
        for _ in range(rounds):
            for pkt in pkts:
                mux.process(pkt)
                sent += 1
        elapsed = time.perf_counter() - started
        return sent / elapsed if elapsed > 0 else 0.0

    syn_pps = timed(syns)
    est_pps = timed(acks)
    # a web-ish mix: one connection setup per nine established packets
    mixed_pps = 10.0 / (1.0 / syn_pps + 9.0 / est_pps)
    return {
        "syn_pps": syn_pps,
        "established_pps": est_pps,
        "mixed_pps": mixed_pps,
        "flow_table_entries": float(len(mux.flow_table)),
    }


# ---------------------------------------------------------------- chaos --
def run_crash_contrast(seed: int = 2016, quick: bool = False):
    """double-crash both ways: stateful must pass, stateless must lose
    established flows (that loss is the ablation's demonstrandum)."""
    base = get_scenario("double-crash")
    if quick:
        base = replace(base, clients=2, object_count=3, duration=8.0,
                       drain=6.0)
    else:
        base = replace(base, clients=3, object_count=4, duration=10.0,
                       drain=8.0)
    stateful = run_scenario(base, lb="yoda", seed=seed)
    stateless = run_scenario(
        replace(base, stateless_config=StatelessConfig(enabled=True)),
        lb="yoda", seed=seed)
    return stateful, stateless


# ------------------------------------------------------------- ablation --
def run_ablation(seed: int = 2016, quick: bool = False) -> ExperimentResult:
    """The headline contrast: memory, speed, and crash survival, both
    modes, one summary."""
    streams = 16 if quick else 32
    chunks = 40 if quick else 60
    mem_stateful = run(seed=seed, stateless=False, streams=streams,
                       stream_chunks=chunks)
    mem_stateless = run(seed=seed, stateless=True, streams=streams,
                        stream_chunks=chunks)
    speed_flows = 128 if quick else 256
    speed_rounds = 20 if quick else 40
    speed_stateful = run_speed(False, flows=speed_flows, rounds=speed_rounds)
    speed_stateless = run_speed(True, flows=speed_flows, rounds=speed_rounds)
    crash_stateful, crash_stateless = run_crash_contrast(seed=seed,
                                                         quick=quick)

    result = ExperimentResult(name="Stateless dispatch ablation")
    for label, mem, speed, crash in (
        ("stateful", mem_stateful, speed_stateful, crash_stateful),
        ("stateless", mem_stateless, speed_stateless, crash_stateless),
    ):
        result.rows.append({
            "variant": label,
            "bytes_per_flow": mem.summary["bytes_per_flow"],
            "live_flows": mem.summary["live_flows_at_sample"],
            "syn_pps": int(speed["syn_pps"]),
            "established_pps": int(speed["established_pps"]),
            "crash_ok": crash.ok,
            "crash_broken_pages": crash.broken_pages,
        })

    per_flow_stateful = mem_stateful.summary["bytes_per_flow"]
    per_flow_stateless = max(1, mem_stateless.summary["bytes_per_flow"])
    mem_ratio = per_flow_stateful / per_flow_stateless
    syn_ratio = (speed_stateless["syn_pps"] / speed_stateful["syn_pps"]
                 if speed_stateful["syn_pps"] > 0 else 0.0)
    est_ratio = (speed_stateless["established_pps"]
                 / speed_stateful["established_pps"]
                 if speed_stateful["established_pps"] > 0 else 0.0)
    # wall-clock rates are noisy: the connection-setup path must win
    # clearly, the established path must merely not materially regress
    contrast_holds = (
        mem_ratio >= 2.0
        and syn_ratio >= 1.2
        and est_ratio >= 0.6
        and crash_stateful.ok
        and not crash_stateless.ok
    )
    result.summary = {
        "bytes_per_flow_stateful": per_flow_stateful,
        "bytes_per_flow_stateless": per_flow_stateless,
        "memory_ratio": round(mem_ratio, 2),
        "syn_pps_ratio": round(syn_ratio, 3),
        "established_pps_ratio": round(est_ratio, 3),
        "crash_stateful_ok": crash_stateful.ok,
        "crash_stateless_ok": crash_stateless.ok,
        "contrast": "holds" if contrast_holds else "LOST",
    }
    result.notes = (
        "memory: dispatch+durable bytes per live flow under "
        f"{streams} concurrent streams; speed: standalone-mux dispatch "
        "(wall clock, SYN + established paths); chaos: double-crash -- "
        "the stateless leg MUST break mid-flight flows (no durable state "
        "to recover)."
    )
    return result
