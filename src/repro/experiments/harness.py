"""Shared experiment scaffolding.

:class:`Testbed` builds the paper's Section 7 testbed shape in one call:
an L4 LB, L7 LB instances (YODA or HAProxy), TCPStore VMs, backend web
servers with the university-site corpus, and client hosts on a simulated
campus network 30 ms (one-way) from the datacenter -- giving the same
~130 ms no-LB baseline the paper reports.

The defaults are scaled down from the 60-VM testbed so each experiment
runs in seconds of wall-clock; every experiment documents its scaling in
EXPERIMENTS.md and keeps the paper's *ratios* (instances : stores :
backends, request rates relative to instance capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import render_table
from repro.baselines.haproxy import HAProxyDeployment, HAProxyInstance
from repro.core.policy import VipPolicy, weighted_split
from repro.core.selector import ScanCostModel
from repro.core.service import YodaService, YodaServiceConfig
from repro.core.instance import YodaCostModel
from repro.http.server import BackendHttpServer, ServiceTimeModel
from repro.net.addresses import Endpoint
from repro.net.host import Host
from repro.net.links import FixedLatency, JitterLatency
from repro.net.network import Network
from repro.obs import OBS
from repro.l4lb.compact import StatelessConfig
from repro.qos.config import HardeningConfig, QosConfig
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.sim.tracing import PacketTrace
from repro.tcp.endpoint import TcpStack
from repro.workload.clients import ClosedLoopProcess, OpenLoopGenerator
from repro.workload.streaming import StreamingFleet
from repro.workload.objects import ObjectCorpus, build_flat_corpus, build_university_site
from repro.workload.website import Website

DEFAULT_VIP = "100.0.0.1"


@dataclass
class ExperimentResult:
    """Uniform experiment output: paper-comparable rows + a summary."""

    name: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def render(self, columns: Optional[List[str]] = None) -> str:
        parts = [render_table(self.rows, columns, title=self.name)]
        if self.summary:
            parts.append("summary: " + ", ".join(
                f"{k}={v}" for k, v in self.summary.items()
            ))
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


@dataclass
class TestbedConfig:
    __test__ = False  # not a pytest class, despite the name

    seed: int = 2016
    lb: str = "yoda"  # "yoda" | "haproxy" | "none"
    num_lb_instances: int = 6
    num_store_servers: int = 3
    num_backends: int = 6
    num_client_hosts: int = 2
    client_one_way_latency: float = 0.030
    client_jitter: float = 0.004
    corpus: str = "university"  # "university" | "flat"
    flat_object_bytes: int = 10_000
    flat_object_count: int = 50
    num_pages: int = 60
    server_service_time: float = 0.004
    yoda_cost: YodaCostModel = field(default_factory=YodaCostModel)
    scan_cost: ScanCostModel = field(default_factory=ScanCostModel)
    monitor_interval: float = 0.6
    down_after: int = 2  # consecutive failed probes before marking down
    up_after: int = 2  # consecutive good probes before marking up
    kv_op_timeout: float = 0.1
    kv_max_retries: int = 2
    kv_dead_after_timeouts: int = 3
    kv_self_healing: bool = True  # read-repair + hints + anti-entropy sweeper
    qos: Optional[QosConfig] = None  # overload-control plane (yoda only)
    hardening: Optional[HardeningConfig] = None  # bundled hardening knobs
    trace_packets: bool = False
    tls_certificate: object = None  # repro.http.tls.Certificate enables SSL
    # -- multi-region (None = the historical single-site testbed) --
    standby_site: Optional[str] = None  # e.g. "dc2": a second region
    num_standby_backends: int = 0  # 0 -> num_backends
    wan_one_way_latency: float = 0.020  # dc <-> standby site
    wan_jitter: float = 0.002
    replication: bool = True  # cross-site flow-store shipping (ablation)
    sync_interval: float = 0.05  # replicator pacing (lag ablations)
    # -- controller high availability (0 = historical singleton) --
    num_controllers: int = 0  # lease-elected controller replicas
    lease_ttl: float = 1.5  # controller lease lifetime
    stepdown_grace: float = 0.0  # how long a cut-off leader keeps acting
    # -- hardening / long-lived-flow knobs --
    header_deadline: Optional[float] = None  # instance slow-loris guard
    backend_progress_deadline: Optional[float] = None  # backend loris guard
    tls_session_tickets: bool = False  # resumption tickets in the flow store
    # compact stateless dispatch (yoda only; None = machinery absent,
    # enabled=False = armed but inert, enabled=True = O(1) dispatch with
    # no durable per-flow writes -- the Concury-style ablation)
    stateless: Optional[StatelessConfig] = None
    # -- closed-loop elastic scaling (repro.autoscale) --
    # an ElasticPolicy arms an autoscaler on every controller (replica);
    # None keeps the deployment static (the historical default)
    autoscale: Optional[object] = None  # yoda only
    spare_instances: int = 0  # pre-provisioned spare instance VMs
    # -- sharded simulation (repro.shard) --
    # >1 partitions the world across this many worker processes; 1 is the
    # historical single-process path, untouched
    num_shards: int = 1
    # cell namespace index (None = the historical flat namespace).  With
    # cell=k every site ("dc{k}"/"net{k}"), host name ("c{k}-..."), VIP
    # (100.64.{k}.1) and IP subnet is stamped with k, so many testbeds can
    # share one network -- or be partitioned across shard workers.
    cell: Optional[int] = None


class Testbed:
    """A wired deployment ready for client workloads."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, config: Optional[TestbedConfig] = None,
                 fabric: Optional[tuple] = None, settle: bool = True):
        self.config = config or TestbedConfig()
        cfg = self.config
        # cell namespace: sites, name prefix, VIP and IP subnet octet all
        # derive from the cell index; None reproduces the historical
        # flat names bit-for-bit
        k = cfg.cell
        if k is None:
            self.site, self.client_site, prefix, sub = "dc", "internet", "", 0
            self.vip = DEFAULT_VIP
        else:
            if cfg.standby_site is not None:
                raise ValueError("cell namespacing and multi-region are "
                                 "mutually exclusive")
            self.site, self.client_site = f"dc{k}", f"net{k}"
            prefix, sub = f"c{k}-", k
            self.vip = f"100.64.{k}.1"
        self._prefix = prefix
        if fabric is None:
            self.loop = EventLoop()
            self.rng = SeededRng(cfg.seed)
            self.network = Network(self.loop, self.rng)
        else:
            # share another testbed's world (the sharded scale world puts
            # several cells on one loop+network per worker process)
            self.loop, self.network = fabric
            self.rng = SeededRng(cfg.seed)
        if OBS.enabled:
            OBS.attach_clock(self.loop.now)
        self.network.set_symmetric_latency(
            self.client_site, self.site,
            JitterLatency(cfg.client_one_way_latency, cfg.client_jitter)
            if cfg.client_jitter > 0 else FixedLatency(cfg.client_one_way_latency),
        )
        if cfg.standby_site is not None:
            # the standby region sits a WAN hop from the primary and the
            # same campus distance from the clients
            wan = (JitterLatency(cfg.wan_one_way_latency, cfg.wan_jitter)
                   if cfg.wan_jitter > 0
                   else FixedLatency(cfg.wan_one_way_latency))
            self.network.set_symmetric_latency("dc", cfg.standby_site, wan)
            self.network.set_symmetric_latency(
                "internet", cfg.standby_site,
                JitterLatency(cfg.client_one_way_latency, cfg.client_jitter)
                if cfg.client_jitter > 0
                else FixedLatency(cfg.client_one_way_latency),
            )
        self.trace: Optional[PacketTrace] = None
        if cfg.trace_packets:
            self.trace = self.network.add_trace(PacketTrace())

        # corpus + backends
        if cfg.corpus == "university":
            self.corpus: ObjectCorpus = build_university_site(
                self.rng, num_pages=cfg.num_pages
            )
        else:
            self.corpus = build_flat_corpus(
                self.rng, cfg.flat_object_count, size=cfg.flat_object_bytes
            )
        self.website = Website(self.corpus, self.rng)
        self.backends: Dict[str, BackendHttpServer] = {}
        service_model = ServiceTimeModel(base=cfg.server_service_time)
        for i in range(cfg.num_backends):
            host = self.network.attach(
                Host(f"{prefix}srv-{i}", [f"10.3.{sub}.{i + 1}"],
                     site=self.site)
            )
            self.backends[f"{prefix}srv-{i}"] = BackendHttpServer(
                host, self.loop, self.corpus.site, service_model=service_model,
                tls_certificate=cfg.tls_certificate,
                progress_deadline=cfg.backend_progress_deadline,
                session_tickets=cfg.tls_session_tickets,
            )

        self.standby_backends: Dict[str, BackendHttpServer] = {}
        if cfg.standby_site is not None:
            for i in range(cfg.num_standby_backends or cfg.num_backends):
                host = self.network.attach(
                    Host(f"srv-s-{i}", [f"10.3.1.{i + 1}"],
                         site=cfg.standby_site)
                )
                self.standby_backends[f"srv-s-{i}"] = BackendHttpServer(
                    host, self.loop, self.corpus.site,
                    service_model=service_model,
                    tls_certificate=cfg.tls_certificate,
                    progress_deadline=cfg.backend_progress_deadline,
                    session_tickets=cfg.tls_session_tickets,
                )

        # primary-backup rule pattern: the standby site's backends sit in a
        # lower-priority rule, selected only once every primary backend is
        # marked unhealthy (i.e. after a region kill)
        rules = [weighted_split("even-split", "*",
                                {n: 1.0 for n in self.backends})]
        if self.standby_backends:
            rules.append(weighted_split("standby-split", "*",
                                        {n: 1.0 for n in self.standby_backends}))
        self.policy = VipPolicy(
            vip=self.vip,
            backends={n: Endpoint(b.ip, 80)
                      for n, b in {**self.backends,
                                   **self.standby_backends}.items()},
            rules=rules,
            certificate=cfg.tls_certificate,
            session_tickets=cfg.tls_session_tickets,
        )

        # load balancer tier
        self.yoda: Optional[YodaService] = None
        self.haproxy: Optional[HAProxyDeployment] = None
        self.haproxy_instances: List[HAProxyInstance] = []
        if cfg.lb == "yoda":
            self.yoda = YodaService(
                self.loop, self.network, self.rng,
                YodaServiceConfig(
                    num_instances=cfg.num_lb_instances,
                    num_store_servers=cfg.num_store_servers,
                    cost_model=cfg.yoda_cost,
                    scan_cost_model=cfg.scan_cost,
                    monitor_interval=cfg.monitor_interval,
                    down_after=cfg.down_after,
                    up_after=cfg.up_after,
                    kv_op_timeout=cfg.kv_op_timeout,
                    kv_max_retries=cfg.kv_max_retries,
                    kv_dead_after_timeouts=cfg.kv_dead_after_timeouts,
                    self_healing=cfg.kv_self_healing,
                    qos=cfg.qos,
                    hardening=cfg.hardening,
                    standby_site=cfg.standby_site,
                    replication=cfg.replication,
                    sync_interval=cfg.sync_interval,
                    num_controllers=cfg.num_controllers,
                    lease_ttl=cfg.lease_ttl,
                    stepdown_grace=cfg.stepdown_grace,
                    header_deadline=cfg.header_deadline,
                    stateless=cfg.stateless,
                    subnet=sub, site=self.site, host_prefix=prefix,
                    router_name=f"{prefix}l4-router",
                    router_ip=f"10.255.{sub}.1",
                    sync_op_timeout=max(
                        0.25, 4 * cfg.wan_one_way_latency + 0.05),
                ),
            )
            self.yoda.add_service(
                self.policy, {**self.backends, **self.standby_backends})
            self.l4lb = self.yoda.l4lb
            for _ in range(cfg.spare_instances):
                self.yoda.new_spare_instance()
            if cfg.autoscale is not None:
                self.yoda.enable_elastic(cfg.autoscale)
        elif cfg.lb == "haproxy":
            if cfg.standby_site is not None:
                raise ValueError("multi-region is a yoda-only feature")
            from repro.l4lb.service import L4LoadBalancer

            self.l4lb = L4LoadBalancer(
                self.loop, self.network, self.rng,
                router_ip=f"10.255.{sub}.1",
                router_name=f"{prefix}l4-router", site=self.site)
            for i in range(cfg.num_lb_instances):
                host = self.network.attach(
                    Host(f"{prefix}haproxy-{i}", [f"10.4.{sub}.{i + 1}"],
                         site=self.site)
                )
                self.haproxy_instances.append(
                    HAProxyInstance(host, self.loop, self.rng,
                                    scan_cost_model=cfg.scan_cost)
                )
            self.haproxy = HAProxyDeployment(
                self.loop, self.l4lb, self.haproxy_instances,
                check_interval=cfg.monitor_interval,
            )
            self.haproxy.add_vip(self.policy)
        elif cfg.lb == "none":
            self.l4lb = None
        else:
            raise ValueError(f"unknown lb kind {cfg.lb!r}")

        # clients
        self.client_stacks: List[TcpStack] = []
        for i in range(cfg.num_client_hosts):
            host = self.network.attach(
                Host(f"{prefix}client-{i}", [f"172.16.{sub}.{i + 1}"],
                     site=self.client_site)
            )
            self.client_stacks.append(TcpStack(host, self.loop))

        if settle:
            self.loop.run_for(1.0)  # mappings & monitor settle

    # ------------------------------------------------------------- targets --
    def target(self) -> Endpoint:
        """Where clients send requests: the VIP, or a backend directly when
        lb == 'none' (the paper's no-LB baseline)."""
        if self.config.lb == "none":
            first = next(iter(self.backends.values()))
            return Endpoint(first.ip, 80)
        return Endpoint(self.vip, 80)

    # -------------------------------------------------------------- clients --
    def closed_loop(self, processes: int, http_timeout: float = 30.0,
                    retries: int = 0,
                    max_pages: Optional[int] = None) -> List[ClosedLoopProcess]:
        out = []
        for i in range(processes):
            stack = self.client_stacks[i % len(self.client_stacks)]
            proc = ClosedLoopProcess(
                stack, self.loop, self.target(), self.website,
                http_timeout=http_timeout, retries=retries, max_pages=max_pages,
            )
            proc.start()
            out.append(proc)
        return out

    def streaming(self, count: int, chunks: int = 40, chunk_bytes: int = 2_000,
                  interval_ms: int = 100, start_at: float = 0.0,
                  spacing: float = 0.05, stall_timeout: float = 1.0,
                  max_stalls: int = 20,
                  http_timeout: float = 120.0) -> StreamingFleet:
        """Launch long-lived paced downloads (``/stream/...`` paths)."""
        fleet = StreamingFleet(
            self.client_stacks, self.loop, self.target(),
            f"/stream/{chunks}/{chunk_bytes}/{interval_ms}", count,
            start_at=start_at, spacing=spacing, stall_timeout=stall_timeout,
            max_stalls=max_stalls, http_timeout=http_timeout,
        )
        fleet.start()
        return fleet

    def open_loop(self, rate: float, http_timeout: float = 30.0) -> OpenLoopGenerator:
        gen = OpenLoopGenerator(
            self.client_stacks[0], self.loop, self.target(), rate,
            path_fn=self.website.random_object, http_timeout=http_timeout,
        )
        gen.start()
        return gen

    # --------------------------------------------------------------- faults --
    def lb_instances(self) -> List[object]:
        """The L7 LB tier, whichever implementation is deployed."""
        if self.yoda is not None:
            return list(self.yoda.instances)
        return list(self.haproxy_instances)

    def serving_lb_instances(self) -> List[object]:
        """LB instances currently carrying flows, busiest first."""
        live = [i for i in self.lb_instances() if not i.host.failed]
        live.sort(key=self._busyness, reverse=True)
        return [i for i in live if self._busyness(i) > 0]

    @staticmethod
    def _busyness(instance) -> int:
        flows = getattr(instance, "flows", None)
        if flows is not None:  # YODA instance
            mid = sum(1 for f in flows.values()
                      if f.phase.value in ("tunnel", "server_syn_sent",
                                           "await_header"))
            return 2 if mid else (1 if flows else 0)
        conns = instance.stack.connections()  # HAProxy instance
        return 2 if conns else 0

    def fail_lb_instances(self, count: int) -> List[str]:
        """Fail ``count`` LB instances, preferring ones carrying flows that
        are genuinely mid-transfer (the paper's interesting case), then any
        busy ones, then idle ones."""
        live = [i for i in self.lb_instances() if not i.host.failed]
        live.sort(key=self._busyness, reverse=True)
        victims = []
        for instance in live[:count]:
            instance.fail()
            victims.append(instance.name)
        return victims

    def run(self, duration: float) -> None:
        self.loop.run_for(duration)
