"""One module per paper table/figure (see DESIGN.md's experiment index).

Every experiment exposes ``run(...) -> ExperimentResult`` with an explicit
seed and scaled-down-but-shape-preserving default parameters; the
``benchmarks/`` tree invokes these and prints the paper-comparable rows.
"""

from repro.experiments.harness import ExperimentResult, Testbed, TestbedConfig

__all__ = ["ExperimentResult", "Testbed", "TestbedConfig"]
