"""Figure 6: rule-lookup latency vs. number of rules.

The paper measures HAProxy's P90 server-selection latency as the rule
chain grows: roughly linear, with 10K rules costing ~3x what 1K rules
cost.  We build rule tables of each size, issue requests whose matching
rule is uniformly distributed through the chain (so scan depth varies),
and report the modeled P90 scan latency plus the *actual* Python
scan wall-clock as a sanity row.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.analysis.stats import percentile
from repro.core.rules import Action, Match, Rule
from repro.core.selector import RuleTable, ScanCostModel
from repro.experiments.harness import ExperimentResult
from repro.http.message import HttpRequest
from repro.sim.random import SeededRng


def build_rule_chain(n_rules: int, backends: Sequence[str]) -> List[Rule]:
    """n distinct URL-match rules (same shape HAProxy chains use)."""
    rules = []
    for i in range(n_rules):
        rules.append(Rule(
            name=f"r-{i}", priority=0,
            match=Match(path=f"/content/{i}/*"),
            action=Action(split={backends[i % len(backends)]: 1.0}),
        ))
    return rules


def run(
    seed: int = 2016,
    rule_counts: Sequence[int] = (1000, 2000, 4000, 6000, 8000, 10000),
    lookups_per_size: int = 2000,
    scan_cost: Optional[ScanCostModel] = None,
) -> ExperimentResult:
    rng = SeededRng(seed).fork("fig6")
    backends = [f"srv-{i}" for i in range(4)]
    result = ExperimentResult(name="Figure 6: look-up latency vs rules")
    for n in rule_counts:
        table = RuleTable(build_rule_chain(n, backends),
                          scan_cost or ScanCostModel())
        latencies = []
        wall_start = time.perf_counter()
        for _ in range(lookups_per_size):
            depth = rng.randint(0, n - 1)
            request = HttpRequest("GET", f"/content/{depth}/x.html")
            selection = table.select(request, rng)
            assert selection is not None
            latencies.append(selection.scan_latency)
        wall = time.perf_counter() - wall_start
        result.rows.append({
            "rules": n,
            "p50_latency_ms": percentile(latencies, 50) * 1e3,
            "p90_latency_ms": percentile(latencies, 90) * 1e3,
            "python_us_per_lookup": wall / lookups_per_size * 1e6,
        })
    first, last = result.rows[0], result.rows[-1]
    result.summary = {
        "p90_ratio_10k_vs_1k": round(
            last["p90_latency_ms"] / first["p90_latency_ms"], 2
        ),
        "paper_ratio": "~3x",
    }
    result.notes = (
        "Scan latency model calibrated so 10K/1K P90 ratio = 3 and 2K rules "
        "lands at the 5 ms target latency of Section 8."
    )
    return result
