"""Figure 12: maintaining flows through LB instance failures.

(a) Fail 2 of the L7 LB instances under a closed-loop browser workload
    (paper: 20 processes, 30 s HTTP timeout, retry 0 or 1) and compare:
    - HAProxy-noretry: ~24% of flows break (every request in flight on the
      failed instances);
    - HAProxy-retry: nothing breaks but affected requests pay the full
      30 s HTTP timeout before retrying on a fresh connection;
    - YODA: nothing breaks and nothing retries; affected flows stall only
      for the retransmission + failover window (paper: +0.6-3 s).

(b) A packet trace at a backend server for one flow crossing the failure:
    drop at the dead instance, server RTOs (300 ms then backed off), the
    L4 mapping update within the 600 ms monitor period, then a surviving
    instance recovers the flow from TCPStore and forwarding resumes --
    with no client HTTP re-request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.stats import cdf_points, median, percentile
from repro.experiments.harness import ExperimentResult, Testbed, TestbedConfig
from repro.http.client import FetchResult
from repro.sim.tracing import TraceRecord


@dataclass
class ScenarioOutcome:
    name: str
    results: List[FetchResult]
    failed_instances: List[str]
    recovered_flows: int
    fail_time: float = 0.0

    def in_flight_at_failure(self) -> List[FetchResult]:
        return [r for r in self.results
                if r.started_at <= self.fail_time <= r.finished_at]

    @property
    def broken_of_in_flight(self) -> float:
        active = self.in_flight_at_failure()
        if not active:
            return 0.0
        return sum(1 for r in active if not r.ok) / len(active)

    @property
    def broken(self) -> List[FetchResult]:
        return [r for r in self.results if not r.ok]

    @property
    def broken_fraction(self) -> float:
        if not self.results:
            return 0.0
        return len(self.broken) / len(self.results)

    @property
    def retried(self) -> int:
        return sum(1 for r in self.results if r.retries_used)

    def latency_cdf(self, points: int = 50):
        return cdf_points([r.latency for r in self.results], points)


def run_scenario(
    lb: str,
    retries: int,
    seed: int = 2016,
    num_instances: int = 10,
    processes: int = 8,
    fail_count: int = 2,
    fail_at: float = 8.0,
    duration: float = 50.0,
    http_timeout: float = 30.0,
) -> ScenarioOutcome:
    bed = Testbed(TestbedConfig(
        seed=seed, lb=lb, num_lb_instances=num_instances,
        num_store_servers=3, num_backends=6, corpus="university",
        num_pages=40,
    ))
    procs = bed.closed_loop(processes, http_timeout=http_timeout,
                            retries=retries)
    bed.run(fail_at)
    victims = bed.fail_lb_instances(fail_count)
    t_fail = bed.loop.now()
    bed.run(duration - fail_at)
    for proc in procs:
        proc.stop()
    bed.run(http_timeout + 5.0)  # let stragglers time out / finish
    results = [fr for proc in procs for fr in proc.object_results()]
    recovered = 0
    if bed.yoda is not None:
        for inst in bed.yoda.instances:
            counter = inst.metrics.counters.get("flows_recovered")
            if counter:
                recovered += counter.value
    return ScenarioOutcome(
        name=f"{lb}-{'retry' if retries else 'noretry'}",
        results=results, failed_instances=victims, recovered_flows=recovered,
        fail_time=t_fail,
    )


def run(
    seed: int = 2016,
    processes: int = 8,
    num_instances: int = 10,
    fail_count: int = 2,
    duration: float = 45.0,
    fail_at: float = 8.0,
) -> ExperimentResult:
    result = ExperimentResult(name="Figure 12(a): failure recovery")
    scenarios = [
        ("haproxy", 0), ("haproxy", 1), ("yoda", 0), ("yoda", 1),
    ]
    outcomes: Dict[str, ScenarioOutcome] = {}
    for lb, retries in scenarios:
        outcome = run_scenario(
            lb, retries, seed=seed, num_instances=num_instances,
            processes=processes, fail_count=fail_count,
            duration=duration, fail_at=fail_at,
        )
        outcomes[outcome.name] = outcome
        lat = [r.latency for r in outcome.results]
        result.rows.append({
            "scenario": outcome.name,
            "requests": len(outcome.results),
            "broken_pct": round(outcome.broken_fraction * 100, 2),
            "broken_of_in_flight_pct": round(outcome.broken_of_in_flight * 100, 1),
            "retried": outcome.retried,
            "p50_s": round(median(lat), 3) if lat else None,
            "p99_s": round(percentile(lat, 99), 3) if lat else None,
            "max_s": round(max(lat), 3) if lat else None,
            "recovered_flows": outcome.recovered_flows,
        })
    result.summary = {
        "paper": ("HAProxy-noretry breaks 24% of in-flight flows; "
                  "YODA breaks none, +0.6-3 s on affected flows; "
                  "HAProxy-retry adds 30 s"),
        "yoda_broken": outcomes["yoda-noretry"].broken_fraction,
        "haproxy_broken": outcomes["haproxy-noretry"].broken_fraction,
    }
    result.notes = (
        "Broken% is over all requests in the run, so its magnitude scales "
        "with run length; the paper's 24% counts flows live at failure "
        "time.  The claims under test: haproxy-noretry > 0, yoda == 0, "
        "haproxy-retry == 0 but with ~30 s latency outliers."
    )
    return result


@dataclass
class TimelineEvent:
    time: float
    what: str


def run_timeline(
    seed: int = 42,
    object_bytes: int = 2_000_000,
    fail_after: float = 0.35,
) -> ExperimentResult:
    """Figure 12(b): per-packet view of one recovered flow, captured at the
    backend like the paper's tcpdump."""
    bed = Testbed(TestbedConfig(
        seed=seed, lb="yoda", num_lb_instances=4, num_store_servers=3,
        num_backends=1, corpus="flat", flat_object_bytes=object_bytes,
        flat_object_count=1, client_jitter=0.0, trace_packets=True,
    ))
    results: List[FetchResult] = []
    from repro.http.client import BrowserClient

    browser = BrowserClient(bed.client_stacks[0], bed.loop, bed.target())
    start = bed.loop.now()
    browser.fetch("/obj/0.bin", results.append)
    fail_time = {}

    def fail_serving() -> None:
        for inst in bed.yoda.instances:
            if inst.flows:
                fail_time["t"] = bed.loop.now()
                inst.fail()
                return

    bed.loop.call_later(fail_after, fail_serving)
    bed.run(60.0)

    assert results, "fetch never completed"
    fetch = results[0]
    events: List[TimelineEvent] = []
    t_fail = fail_time.get("t", start + fail_after)
    events.append(TimelineEvent(0.0, "instance fails (all local state lost)"))
    backend = next(iter(bed.backends.values()))
    retrans = [
        r for r in bed.trace.retransmissions()
        if r.time > t_fail and r.src.startswith(backend.ip)
    ]
    for r in retrans[:4]:
        events.append(TimelineEvent(
            r.time - t_fail, f"server RTO retransmission (seq={r.seq})"
        ))
    recovered_at = None
    for inst in bed.yoda.instances:
        counter = inst.metrics.counters.get("flows_recovered")
        if counter and counter.value:
            recovered_at = inst.name
    result = ExperimentResult(name="Figure 12(b): recovery packet timeline")
    for ev in events:
        result.rows.append({"t_after_failure_s": round(ev.time, 3),
                            "event": ev.what})
    result.rows.append({
        "t_after_failure_s": round(fetch.finished_at - t_fail, 3),
        "event": f"transfer completes (recovered by {recovered_at}, "
                 f"no HTTP re-request, broken={not fetch.ok})",
    })
    result.summary = {
        "flow_broken": not fetch.ok,
        "total_latency_s": round(fetch.latency, 3),
        "first_rto_s": round(retrans[0].time - t_fail, 3) if retrans else None,
        "paper": "RTOs at ~0.3 s; mapping updated within 0.6 s; no timeout",
    }
    return result
