"""Controller HA: the control-plane outage window, measured.

Not a paper figure -- the paper's controller is a singleton daemon, and
its failure model stops at LB instances and stores.  This experiment
kills the *controller* while it matters: an instance crash lands right
inside the controller outage, so somebody must notice the dead instance
and push it out of the VIP mappings.

Two legs, same fault schedule:

- **ha-3**: three lease-elected replicas.  The kill opens a leaderless
  window that closes when a follower wins the next epoch and replays the
  journal; the crash is then remapped by the new leader.
- **single**: one replica, the paper's deployment.  Nobody takes over:
  the outage window runs to the end of the experiment and the crashed
  instance is never removed from the mappings -- its pinned flows break.

Reported per leg: the summed leaderless window after the kill, the
crash -> mapping-repair delay (``-`` when it never happens), stream
survival, and the lease epoch reached.  The ``single`` leg showing an
unbounded window and broken streams is the point: it is the ablation
that prices the tentpole.
"""

from __future__ import annotations

from typing import Optional

from repro.chaos.faults import apply_fault, crash
from repro.experiments.harness import ExperimentResult, Testbed, TestbedConfig

REMAP_POLL_INTERVAL = 0.02


def _one_run(
    seed: int,
    num_controllers: int,
    streams: int,
    chunks: int,
    kill_at: float,
    crash_after: float,
    settle: float,
):
    bed = Testbed(TestbedConfig(
        seed=seed, lb="yoda", num_lb_instances=3, num_store_servers=2,
        num_backends=3, num_controllers=num_controllers,
    ))
    fleet = bed.streaming(streams, chunks=chunks, chunk_bytes=1_000,
                          interval_ms=100, start_at=0.2)
    bed.run(kill_at)
    kill_time = bed.loop.now()
    rs = bed.yoda.replica_set
    leader = rs.acting_replica() or rs.replicas[0]
    leader.fail()
    bed.run(crash_after)
    crash_time = bed.loop.now()
    applied = apply_fault(bed, crash(0.0, "lb:serving"))
    dead = next(i for i in bed.yoda.instances
                if i.host.name == applied.target_name)
    watch = {"remap_at": None}

    def _poll() -> None:
        if dead.ip not in bed.l4lb.mapping(bed.vip):
            watch["remap_at"] = bed.loop.now()
            return
        bed.loop.call_later(REMAP_POLL_INTERVAL, _poll)

    _poll()
    bed.run(settle)
    return bed, fleet, kill_time, crash_time, watch["remap_at"]


def run(
    seed: int = 2016,
    streams: int = 6,
    chunks: int = 80,
    kill_at: float = 2.0,
    crash_after: float = 0.3,
    settle: float = 16.0,
) -> ExperimentResult:
    rows = []
    for label, n in (("ha-3", 3), ("single", 1)):
        bed, fleet, kill_time, crash_time, remap_at = _one_run(
            seed, n, streams, chunks, kill_at, crash_after, settle)
        rs = bed.yoda.replica_set
        end = bed.loop.now()
        outage = sum(
            max(0.0, stop - start)
            for start, stop in rs.leaderless_windows(end)
            if start >= kill_time - 1e-9
        )
        remap: Optional[float] = (
            remap_at - crash_time if remap_at is not None else None)
        results = [c.result for c in fleet.clients]
        completed = sum(1 for r in results if r.complete)
        epoch = max((e for _, ev, _, e in rs.events if ev == "active"),
                    default=0)
        rows.append({
            "config": label,
            "controllers": n,
            "outage_s": round(outage, 3),
            "remap_s": round(remap, 3) if remap is not None else "-",
            "streams": f"{completed}/{len(results)}",
            "epoch": epoch,
        })

    ha, single = rows
    return ExperimentResult(
        name="controller HA: outage window and crash repair",
        rows=rows,
        summary={
            "outage_ha3_s": ha["outage_s"],
            "outage_single_s": single["outage_s"],
            "remap_ha3_s": ha["remap_s"],
            "remap_single_s": single["remap_s"],
            "streams_ha3": ha["streams"],
            "streams_single": single["streams"],
        },
        notes=(
            "Leader killed mid-run, a serving instance crashes inside the "
            "controller outage.  'outage_s' sums leaderless windows after "
            "the kill; 'remap_s' is instance crash -> removal from the VIP "
            "mapping.  With one controller the window never closes, the "
            "dead instance is never remapped, and its pinned streams "
            "break; with three the window is bounded by lease TTL + "
            "election + journal replay."
        ),
    )


def run_quick(seed: int = 2016) -> ExperimentResult:
    return run(seed=seed, streams=4, chunks=60, settle=12.0)
