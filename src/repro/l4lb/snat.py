"""SNAT port-range management.

An L7 instance connecting out to a backend uses the VIP as its source
address; the backend's replies therefore arrive at the L4 LB, which must
know which L7 instance owns that (VIP, port).  Ananta solves this by
pre-allocating disjoint SNAT port ranges per (VIP, instance); this module
does the same.  Ranges are sticky: an instance keeps its range across
mapping updates so in-flight server connections keep resolving.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.errors import SnatExhausted
from repro.obs import OBS

SNAT_BASE_PORT = 1024
SNAT_RANGE_SIZE = 3000
SNAT_MAX_PORT = 65000


class SnatAllocator:
    """Per-VIP SNAT port ranges, one disjoint block per L7 instance."""

    def __init__(self, base: int = SNAT_BASE_PORT, range_size: int = SNAT_RANGE_SIZE):
        self.base = base
        self.range_size = range_size
        # vip -> instance_ip -> (lo, hi) inclusive-exclusive
        self._ranges: Dict[str, Dict[str, Tuple[int, int]]] = {}
        # vip -> instance_ip -> mapping version at FIRST allocation.  The
        # controller ensures ranges synchronously when it pushes a mapping,
        # while each mux adopts that mapping after an independent delay --
        # so a range born at a version newer than a mux's installed entry
        # is proof the push adding its owner is still in flight to that
        # mux (see L4Mux._route_stateful).  Sticky ranges keep the version
        # of their first birth: re-adopted instances look old on purpose,
        # preserving the historical pin-the-fallback behavior.
        self._alloc_versions: Dict[str, Dict[str, int]] = {}
        self.exhaustions = 0  # failed allocations, for dashboards/tests

    def ensure_range(self, vip: str, instance_ip: str,
                     version: int = 0) -> Tuple[int, int]:
        """Get (allocating if needed) the port range for an instance."""
        per_vip = self._ranges.setdefault(vip, {})
        if instance_ip in per_vip:
            return per_vip[instance_ip]
        used_los: Set[int] = {lo for lo, _ in per_vip.values()}
        lo = self.base
        while lo in used_los:
            lo += self.range_size
        hi = lo + self.range_size
        if hi > SNAT_MAX_PORT:
            self.exhaustions += 1
            if OBS.enabled:
                OBS.flight("snat", "exhausted",
                           f"VIP {vip}: no range left for {instance_ip} "
                           f"({len(per_vip)} allocated)")
            raise SnatExhausted(vip, instance_ip)
        per_vip[instance_ip] = (lo, hi)
        self._alloc_versions.setdefault(vip, {})[instance_ip] = version
        return (lo, hi)

    def allocated_after(self, vip: str, instance_ip: str, version: int) -> bool:
        """Was this instance's range first allocated by a mapping push
        NEWER than ``version``?  True means any mux whose entry is still
        at ``version`` simply has not seen the owner yet."""
        return self._alloc_versions.get(vip, {}).get(instance_ip, 0) > version

    def owner_of(self, vip: str, port: int) -> Optional[str]:
        """Which instance owns this SNAT port for this VIP, if any."""
        per_vip = self._ranges.get(vip)
        if not per_vip:
            return None
        for instance_ip, (lo, hi) in per_vip.items():
            if lo <= port < hi:
                return instance_ip
        return None

    def range_of(self, vip: str, instance_ip: str) -> Optional[Tuple[int, int]]:
        per_vip = self._ranges.get(vip)
        if not per_vip:
            return None
        return per_vip.get(instance_ip)

    def release(self, vip: str, instance_ip: str) -> None:
        """Drop an instance's range (only safe once its flows are gone)."""
        per_vip = self._ranges.get(vip)
        if per_vip:
            per_vip.pop(instance_ip, None)
