"""One L4 mux: hashing, flow-table affinity, forwarding.

Each mux holds its own versioned copy of every VIP's instance list --
that independence is load-bearing: the paper's Eq. 4-5 constraints exist
precisely because "the VIP-to-YODA-instance mapping has to be changed on
multiple L4 LB instances, which is not atomic".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.kvstore.hashring import HashRing
from repro.l4lb.compact import CompactDispatchTable, DispatchMode
from repro.net.packet import Packet
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover
    from repro.l4lb.service import L4LoadBalancer


@dataclass
class _FlowEntry:
    instance_ip: str
    last_used: float


class _VipEntry:
    """A mux's view of one VIP: live instances + consistent-hash ring.

    ``draining`` instances are excluded from the ring (no new SYN hashes
    onto them) but stay known, so return traffic on their SNAT ranges and
    pinned established flows keep reaching them until their drain ends.
    """

    def __init__(self, vip: str, instances: List[str], version: int,
                 draining: List[str] = (), epoch: int = -1):
        self.vip = vip
        self.instances = list(instances)
        self.draining = set(draining)
        self.version = version
        # lease epoch of the controller that pushed this entry (-1 when
        # the control plane is unreplicated); entries never regress epochs
        self.epoch = epoch
        self.ring = HashRing(instances, vnodes=50)
        # compact stateless snapshot riding this mapping push, plus the
        # one it replaced -- the previous generation is what lets the
        # stateless path lazily pin established flows to a draining owner
        self.compact: Optional[CompactDispatchTable] = None
        self.prev_compact: Optional[CompactDispatchTable] = None


class L4Mux:
    """One software mux replica."""

    FLOW_IDLE_TIMEOUT = 60.0

    def __init__(self, lb: "L4LoadBalancer", mux_id: int):
        self.lb = lb
        self.mux_id = mux_id
        self.name = f"mux-{mux_id}"
        self.vips: Dict[str, _VipEntry] = {}
        self.flow_table: Dict[str, _FlowEntry] = {}
        self.forwarded = 0
        self.dropped = 0

    # -- control plane ------------------------------------------------------
    def apply_mapping(self, vip: str, instances: List[str], version: int,
                      draining: List[str] = (), epoch: int = -1,
                      compact: Optional[CompactDispatchTable] = None) -> None:
        """Install a new instance list for a VIP (idempotent, versioned).

        An update carrying a lease epoch older than the installed entry's
        is dropped: mapping pushes propagate with independent per-mux
        delays, so a fenced-out controller's last push can still be in
        flight when its successor's lands.

        ``compact`` is the frozen stateless snapshot built for exactly
        this version.  The swap is a single reference assignment inside
        the same entry install -- all-or-nothing with respect to traffic
        interleaved between packets, and the version gate above means a
        stale snapshot can never replace a newer one."""
        current = self.vips.get(vip)
        if current is not None and (current.version >= version
                                    or current.epoch > epoch):
            return
        entry = _VipEntry(vip, instances, version, draining, epoch)
        entry.compact = compact
        if current is not None:
            entry.prev_compact = current.compact
        self.vips[vip] = entry

    def remove_vip(self, vip: str) -> None:
        self.vips.pop(vip, None)
        stale = [k for k in self.flow_table if f">{vip}:" in k]
        for k in stale:
            del self.flow_table[k]

    def flush_instance(self, instance_ip: str) -> int:
        """Remove flow-table entries pinned to an instance.

        The YODA controller calls this when it removes a failed instance
        "from all the mappings at L4 LB" -- it is what lets retransmitted
        packets of existing flows reach a live instance.  The HAProxy
        deployment has no such step, so its established flows stay pinned
        to the dead instance.
        """
        stale = [k for k, e in self.flow_table.items() if e.instance_ip == instance_ip]
        for k in stale:
            del self.flow_table[k]
        if OBS.enabled:
            OBS.flight(self.name, "flush",
                       f"{len(stale)} flow-table entries pinned to "
                       f"{instance_ip} removed")
        return len(stale)

    def expire_flows(self, now: float) -> int:
        stale = [
            k for k, e in self.flow_table.items()
            if now - e.last_used > self.FLOW_IDLE_TIMEOUT
        ]
        for k in stale:
            del self.flow_table[k]
        return len(stale)

    def release_flow(self, flow_key: str) -> bool:
        """Drop one flow-table pin immediately.

        Used when the pinned instance refuses the flow (SNAT exhaustion):
        without this the dead 5-tuple stays pinned for the full idle
        timeout, steering the refused client's in-flight packets -- and
        any retry on the same 5-tuple -- at an instance that already said
        no."""
        return self.flow_table.pop(flow_key, None) is not None

    # -- data plane -----------------------------------------------------------
    def process(self, pkt: Packet) -> None:
        vip = pkt.dst.ip
        entry = self.vips.get(vip)
        if entry is None or not entry.instances:
            self.dropped += 1
            if OBS.enabled:
                OBS.flight(self.name, "drop",
                           f"{pkt.src}>{pkt.dst}: no instances for VIP {vip}")
            return
        now = self.lb.loop.now()
        flow_key = f"{pkt.src}>{pkt.dst}"
        is_new_flow = pkt.syn and not pkt.has_ack
        if self.lb.mode is DispatchMode.STATELESS and entry.compact is not None:
            instance_ip = self._route_stateless(entry, flow_key, pkt,
                                                is_new_flow, now)
        else:
            instance_ip = self._route_stateful(entry, flow_key, pkt,
                                               is_new_flow, now)
        self.forwarded += 1
        if OBS.enabled and is_new_flow:
            OBS.flight(self.name, "route", f"{flow_key} -> {instance_ip}")
            ctx = pkt.meta.get("obs_ctx")
            if ctx is not None:
                OBS.tracer.event("l4.route", self.name, ctx=ctx,
                                 attrs={"instance": instance_ip})
        self.lb.forward_to_instance(instance_ip, pkt)

    def _route_stateful(self, entry: _VipEntry, flow_key: str, pkt: Packet,
                        is_new_flow: bool, now: float) -> str:
        """Default mode: every flow gets a dict pin.  A cache hit now
        returns without churning a fresh ``_FlowEntry`` -- the entry's
        content could not change, so the per-packet allocation was pure
        waste."""
        if not is_new_flow:
            cached = self.flow_table.get(flow_key)
            if cached is not None:
                cached.last_used = now
                return cached.instance_ip
        # Return traffic from a backend lands on the SNAT port range
        # of the owning instance.
        owner = self.lb.snat.owner_of(entry.vip, pkt.dst.port)
        if owner is not None and (owner in entry.instances
                                  or owner in entry.draining):
            instance_ip = owner
        else:
            instance_ip = entry.ring.lookup(flow_key)
            if owner is not None and self.lb.snat.allocated_after(
                    entry.vip, owner, entry.version):
                # Return traffic for a SNAT owner whose range was born in
                # a mapping push NEWER than this mux's entry: the push
                # adding the owner (an autoscaler-adopted spare, say) is
                # still propagating here.  The ring is computed from the
                # STALE membership, so its guess is guaranteed wrong --
                # forward straight to the owner instead, and never pin
                # the route, so the race can't freeze a wrong entry in
                # the flow table.  A dead owner's range is OLDER than the
                # entry, so that path still pins the recovery target
                # exactly as it always has.
                return owner
        self.flow_table[flow_key] = _FlowEntry(instance_ip, now)
        return instance_ip

    def _route_stateless(self, entry: _VipEntry, flow_key: str, pkt: Packet,
                         is_new_flow: bool, now: float) -> str:
        """Compact mode: dispatch from the frozen snapshot, no per-flow
        writes on the common path.  The only pins ever materialized are
        for flows whose current-table target moved off a still-draining
        instance -- the migration case where statelessness alone would
        tear an established flow away from its owner mid-drain."""
        table = entry.compact
        if not is_new_flow:
            if self.flow_table:
                cached = self.flow_table.get(flow_key)
                if cached is not None:
                    cached.last_used = now
                    return cached.instance_ip
            # SNAT ranges all live at >= snat.base, so ordinary client
            # traffic (dst port 80/443) skips the owner scan entirely
            if pkt.dst.port >= self.lb.snat.base:
                owner = self.lb.snat.owner_of(entry.vip, pkt.dst.port)
                if owner is not None and (owner in entry.instances
                                          or owner in entry.draining):
                    return owner
            target = table.lookup(flow_key)
            if entry.draining and entry.prev_compact is not None:
                prev = entry.prev_compact.lookup(flow_key)
                if prev != target and prev in entry.draining:
                    self.flow_table[flow_key] = _FlowEntry(prev, now)
                    return prev
            return target
        # fresh SYN: pure O(1) table read, zero state written
        return table.lookup(flow_key)
