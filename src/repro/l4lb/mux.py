"""One L4 mux: hashing, flow-table affinity, forwarding.

Each mux holds its own versioned copy of every VIP's instance list --
that independence is load-bearing: the paper's Eq. 4-5 constraints exist
precisely because "the VIP-to-YODA-instance mapping has to be changed on
multiple L4 LB instances, which is not atomic".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.kvstore.hashring import HashRing
from repro.net.packet import Packet
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover
    from repro.l4lb.service import L4LoadBalancer


@dataclass
class _FlowEntry:
    instance_ip: str
    last_used: float


class _VipEntry:
    """A mux's view of one VIP: live instances + consistent-hash ring.

    ``draining`` instances are excluded from the ring (no new SYN hashes
    onto them) but stay known, so return traffic on their SNAT ranges and
    pinned established flows keep reaching them until their drain ends.
    """

    def __init__(self, vip: str, instances: List[str], version: int,
                 draining: List[str] = (), epoch: int = -1):
        self.vip = vip
        self.instances = list(instances)
        self.draining = set(draining)
        self.version = version
        # lease epoch of the controller that pushed this entry (-1 when
        # the control plane is unreplicated); entries never regress epochs
        self.epoch = epoch
        self.ring = HashRing(instances, vnodes=50)


class L4Mux:
    """One software mux replica."""

    FLOW_IDLE_TIMEOUT = 60.0

    def __init__(self, lb: "L4LoadBalancer", mux_id: int):
        self.lb = lb
        self.mux_id = mux_id
        self.name = f"mux-{mux_id}"
        self.vips: Dict[str, _VipEntry] = {}
        self.flow_table: Dict[str, _FlowEntry] = {}
        self.forwarded = 0
        self.dropped = 0

    # -- control plane ------------------------------------------------------
    def apply_mapping(self, vip: str, instances: List[str], version: int,
                      draining: List[str] = (), epoch: int = -1) -> None:
        """Install a new instance list for a VIP (idempotent, versioned).

        An update carrying a lease epoch older than the installed entry's
        is dropped: mapping pushes propagate with independent per-mux
        delays, so a fenced-out controller's last push can still be in
        flight when its successor's lands."""
        current = self.vips.get(vip)
        if current is not None and (current.version >= version
                                    or current.epoch > epoch):
            return
        self.vips[vip] = _VipEntry(vip, instances, version, draining, epoch)

    def remove_vip(self, vip: str) -> None:
        self.vips.pop(vip, None)
        stale = [k for k in self.flow_table if f">{vip}:" in k]
        for k in stale:
            del self.flow_table[k]

    def flush_instance(self, instance_ip: str) -> int:
        """Remove flow-table entries pinned to an instance.

        The YODA controller calls this when it removes a failed instance
        "from all the mappings at L4 LB" -- it is what lets retransmitted
        packets of existing flows reach a live instance.  The HAProxy
        deployment has no such step, so its established flows stay pinned
        to the dead instance.
        """
        stale = [k for k, e in self.flow_table.items() if e.instance_ip == instance_ip]
        for k in stale:
            del self.flow_table[k]
        if OBS.enabled:
            OBS.flight(self.name, "flush",
                       f"{len(stale)} flow-table entries pinned to "
                       f"{instance_ip} removed")
        return len(stale)

    def expire_flows(self, now: float) -> int:
        stale = [
            k for k, e in self.flow_table.items()
            if now - e.last_used > self.FLOW_IDLE_TIMEOUT
        ]
        for k in stale:
            del self.flow_table[k]
        return len(stale)

    # -- data plane -----------------------------------------------------------
    def process(self, pkt: Packet) -> None:
        vip = pkt.dst.ip
        entry = self.vips.get(vip)
        if entry is None or not entry.instances:
            self.dropped += 1
            if OBS.enabled:
                OBS.flight(self.name, "drop",
                           f"{pkt.src}>{pkt.dst}: no instances for VIP {vip}")
            return
        now = self.lb.loop.now()
        flow_key = f"{pkt.src}>{pkt.dst}"
        instance_ip: Optional[str] = None

        is_new_flow = pkt.syn and not pkt.has_ack
        if not is_new_flow:
            cached = self.flow_table.get(flow_key)
            if cached is not None:
                cached.last_used = now
                instance_ip = cached.instance_ip

        if instance_ip is None:
            # Return traffic from a backend lands on the SNAT port range
            # of the owning instance.
            owner = self.lb.snat.owner_of(vip, pkt.dst.port)
            if owner is not None and (owner in entry.instances
                                      or owner in entry.draining):
                instance_ip = owner

        if instance_ip is None:
            instance_ip = entry.ring.lookup(flow_key)

        self.flow_table[flow_key] = _FlowEntry(instance_ip, now)
        self.forwarded += 1
        if OBS.enabled and is_new_flow:
            OBS.flight(self.name, "route", f"{flow_key} -> {instance_ip}")
            ctx = pkt.meta.get("obs_ctx")
            if ctx is not None:
                OBS.tracer.event("l4.route", self.name, ctx=ctx,
                                 attrs={"instance": instance_ip})
        self.lb.forward_to_instance(instance_ip, pkt)
