"""Compact stateless dispatch: a version-stamped Othello-style lookup.

The default mux pins every flow with a dict entry and every YODA
instance writes per-flow records into TCPStore -- the per-flow tax that
Concury and the "stateful vs stateless" literature identify as the L4/L7
scalability limiter.  This module implements the alternative: bucket the
5-tuple space with a stable hash and answer ``bucket -> instance`` from
two small integer arrays,

    lookup(key) = A[h_a(bucket)] XOR B[h_b(bucket)]

(an Othello / Bloomier-style minimal perfect mapping).  Memory is
O(buckets), independent of the number of live flows, and a mapping
change swaps one frozen snapshot reference -- atomic with respect to
in-flight traffic, version-stamped so stale control pushes can never
regress a mux (the same contract as ``_VipEntry.version``).

Split exactly as the Othello paper prescribes:

- :class:`CompactTableBuilder` lives on the control side (the
  ``L4LoadBalancer`` service).  It keeps the full truth map and the
  bipartite edge set, updates values in place by XOR flip-propagation
  over the acyclic component, and falls back to a deterministic reseed +
  rebuild when an insert would close a cycle.
- :class:`CompactDispatchTable` is the data-plane artifact: two frozen
  arrays, the instance list, and a version.  Lookups are pure, O(1),
  allocate nothing, and -- by construction plus a final clamp -- can
  never name an instance outside the snapshot's live set.

Determinism contract: everything here derives from seed-independent
stable hashes (``stable_hash32`` on the control side, crc32 on the
per-packet path -- never the simulation RNG) and schedules no events, so
a constructed-but-disabled :class:`StatelessConfig` is bit-identical on
the pinned golden traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.errors import NetworkError
from repro.kvstore.hashring import HashRing
from repro.sim.random import stable_hash32

# Arrays are sized >= 4/3 the bucket count per side: a random bipartite
# graph with n edges over two m-vertex sides is acyclic with high
# probability once m >= 1.33 n (the Othello sizing rule), so rebuild
# storms are rare and the deterministic reseed loop terminates fast.
_SIZING_NUM = 4
_SIZING_DEN = 3


class DispatchMode(Enum):
    """How the mux resolves a flow to a YODA instance."""

    STATEFUL = "stateful"   # per-flow dict pin + durable TCPStore records
    STATELESS = "stateless"  # compact O(1) table; lazy pins only


@dataclass(frozen=True)
class StatelessConfig:
    """Opt-in knobs for the compact fast path.

    ``StatelessConfig()`` (enabled=False) is the *armed* state: the
    builders run and snapshots ride every mapping push, but dispatch is
    unchanged -- the configuration the golden-trace pins prove inert.
    """

    enabled: bool = False
    num_buckets: int = 512
    max_rebuild_attempts: int = 32

    @property
    def mode(self) -> DispatchMode:
        return DispatchMode.STATELESS if self.enabled else DispatchMode.STATEFUL


def bucket_of(flow_key: str, num_buckets: int) -> int:
    """Stable 5-tuple-hash -> bucket; every node computes the same value.

    crc32 rather than the sha256-backed ``stable_hash32``: this runs once
    per packet on the data plane, and it only needs to be deterministic
    across runs and platforms, not cryptographic."""
    return crc32(flow_key.encode()) % num_buckets


def bucket_targets(vip: str, instances: Sequence[str],
                   num_buckets: int) -> Dict[int, int]:
    """The truth map a mapping push wants installed: bucket -> instance
    index.  Assignment goes through a consistent-hash ring so a
    membership change moves ~1/n of the buckets, which keeps the
    incremental ``assign`` path (no rebuild) the common case."""
    ring = HashRing(list(instances), vnodes=50)
    index = {ip: i for i, ip in enumerate(instances)}
    return {
        b: index[ring.lookup(f"{vip}/bucket/{b}")]
        for b in range(num_buckets)
    }


class CompactDispatchTable:
    """Frozen data-plane snapshot: version + instances + two arrays.

    Immutable by convention (the mux only reads), installed by a single
    reference assignment -- a reader mid-packet sees either the old
    snapshot or the new one, never a half-built table.
    """

    __slots__ = ("version", "seed", "num_buckets", "instances",
                 "_a", "_b", "_m", "_pa", "_pb")

    def __init__(self, version: int, seed: int, num_buckets: int,
                 instances: Tuple[str, ...], a: List[int], b: List[int]):
        self.version = version
        self.seed = seed
        self.num_buckets = num_buckets
        self.instances = instances
        self._a = a
        self._b = b
        self._m = len(a)
        # bucket -> slot positions, precomputed once at freeze time so a
        # data-plane lookup is one crc32 plus two array reads -- the
        # seeded sha256 position hash never runs per packet
        self._pa = [_pos(b_, seed, "a", self._m) for b_ in range(num_buckets)]
        self._pb = [_pos(b_, seed, "b", self._m) for b_ in range(num_buckets)]

    def lookup_bucket(self, bucket: int) -> str:
        idx = self._a[self._pa[bucket]] ^ self._b[self._pb[bucket]]
        # Belt and braces: values are written in-range, but a clamped
        # read makes "never an instance outside the live set" a property
        # of the query itself, not of builder correctness.
        if idx >= len(self.instances):
            idx %= len(self.instances)
        return self.instances[idx]

    def lookup(self, flow_key: str) -> str:
        # lookup_bucket inlined: this is the per-packet path, and one
        # Python call frame is measurable at mux dispatch rates
        bucket = crc32(flow_key.encode()) % self.num_buckets
        instances = self.instances
        idx = self._a[self._pa[bucket]] ^ self._b[self._pb[bucket]]
        if idx >= len(instances):
            idx %= len(instances)
        return instances[idx]

    def size_bytes(self) -> int:
        """Modeled footprint: two arrays of 32-bit value slots, the two
        precomputed position arrays, and the instance list -- what a
        kernel/dataplane port would carry."""
        return (4 * 2 * self._m + 4 * 2 * self.num_buckets
                + sum(len(ip) for ip in self.instances) + 16)


def _pos(bucket: int, seed: int, side: str, m: int) -> int:
    return stable_hash32(f"{bucket}", salt=f"othello:{side}:{seed}") % m


class CompactTableBuilder:
    """Control-side builder with incremental Othello maintenance.

    Vertices are array slots (``0..m-1`` on side A, ``m..2m-1`` on side
    B); every tracked bucket is one edge between its two hash positions.
    The edge set stays a forest, which is what makes both operations
    O(component):

    - value update: detach the edge, XOR the delta into every vertex of
      the half-component hanging off its B endpoint (edges inside a
      component see the delta twice and cancel; only the detached edge
      changes), re-attach;
    - insert: same flip with the edge not yet attached, after a
      connectivity check -- two endpoints already connected means the new
      edge would close a cycle, so the builder reseeds deterministically
      and replays the full truth map.
    """

    def __init__(self, num_buckets: int = 512, max_rebuild_attempts: int = 32):
        self.num_buckets = num_buckets
        self.max_rebuild_attempts = max_rebuild_attempts
        self._m = max(4, (num_buckets * _SIZING_NUM + _SIZING_DEN - 1) // _SIZING_DEN)
        self._seed = 0
        self.rebuilds = 0
        self._want: Dict[int, int] = {}
        self._a: List[int] = [0] * self._m
        self._b: List[int] = [0] * self._m
        # vertex -> {bucket: other_vertex}; sides share one numbering
        self._adj: List[Dict[int, int]] = [{} for _ in range(2 * self._m)]

    def __len__(self) -> int:
        return len(self._want)

    # ------------------------------------------------------------ mutation --
    def assign(self, bucket: int, value: int) -> None:
        """Insert or update one ``bucket -> value`` association."""
        if not 0 <= bucket < self.num_buckets:
            raise ValueError(f"bucket {bucket} outside 0..{self.num_buckets - 1}")
        old = self._want.get(bucket)
        if old == value:
            return
        va, vb = self._vertices(bucket)
        if old is not None:
            self._detach(bucket, va, vb)
            self._flip(vb, old ^ value)
            self._attach(bucket, va, vb)
        else:
            if self._connected(va, vb):
                self._want[bucket] = value
                self._rebuild()
                return
            current = self._value_at(va, vb)
            self._flip(vb, current ^ value)
            self._attach(bucket, va, vb)
        self._want[bucket] = value

    def remove(self, bucket: int) -> None:
        """Forget a bucket.  Arrays keep their (now meaningless) XOR for
        the dropped positions -- harmless, since dispatch only ever
        queries buckets the builder currently tracks."""
        if bucket not in self._want:
            return
        va, vb = self._vertices(bucket)
        self._detach(bucket, va, vb)
        del self._want[bucket]

    def update(self, targets: Dict[int, int]) -> None:
        """Converge the tracked map onto ``targets``."""
        for bucket in [b for b in self._want if b not in targets]:
            self.remove(bucket)
        for bucket, value in targets.items():
            self.assign(bucket, value)

    def snapshot(self, version: int,
                 instances: Sequence[str]) -> CompactDispatchTable:
        return CompactDispatchTable(
            version=version, seed=self._seed, num_buckets=self.num_buckets,
            instances=tuple(instances), a=list(self._a), b=list(self._b),
        )

    # ------------------------------------------------------------ internals --
    def _vertices(self, bucket: int) -> Tuple[int, int]:
        return (_pos(bucket, self._seed, "a", self._m),
                self._m + _pos(bucket, self._seed, "b", self._m))

    def _value_at(self, va: int, vb: int) -> int:
        return self._a[va] ^ self._b[vb - self._m]

    def _attach(self, bucket: int, va: int, vb: int) -> None:
        self._adj[va][bucket] = vb
        self._adj[vb][bucket] = va

    def _detach(self, bucket: int, va: int, vb: int) -> None:
        self._adj[va].pop(bucket, None)
        self._adj[vb].pop(bucket, None)

    def _connected(self, start: int, goal: int) -> bool:
        if start == goal:  # impossible across sides, cheap to keep honest
            return True
        seen = {start}
        frontier = [start]
        while frontier:
            v = frontier.pop()
            for nxt in self._adj[v].values():
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def _flip(self, start: int, delta: int) -> None:
        """XOR ``delta`` into every array slot of ``start``'s component."""
        if delta == 0:
            return
        seen = {start}
        frontier = [start]
        while frontier:
            v = frontier.pop()
            if v < self._m:
                self._a[v] ^= delta
            else:
                self._b[v - self._m] ^= delta
            for nxt in self._adj[v].values():
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)

    def _rebuild(self) -> None:
        """Reseed until the whole truth map lays out acyclically.

        Purely counter-driven (seed increments), so the same insert
        history always lands on the same seed -- rebuilds perturb
        nothing observable in the simulation."""
        self.rebuilds += 1
        for _ in range(self.max_rebuild_attempts):
            self._seed += 1
            self._a = [0] * self._m
            self._b = [0] * self._m
            self._adj = [{} for _ in range(2 * self._m)]
            if self._replay():
                return
        raise NetworkError(
            f"compact table: no acyclic layout for {len(self._want)} buckets "
            f"in {self.max_rebuild_attempts} reseeds (m={self._m})"
        )

    def _replay(self) -> bool:
        for bucket, value in self._want.items():
            va, vb = self._vertices(bucket)
            if self._connected(va, vb):
                return False
            self._flip(vb, self._value_at(va, vb) ^ value)
            self._attach(bucket, va, vb)
        return True


def maybe_config(stateless: Optional[StatelessConfig]) -> DispatchMode:
    """Resolve an optional config to the effective dispatch mode."""
    if stateless is not None and stateless.enabled:
        return DispatchMode.STATELESS
    return DispatchMode.STATEFUL
