"""The L4 LB service: router + muxes + mapping propagation.

The router owns every VIP in the network fabric and ECMP-spreads flows
across the muxes (hash of the 5-tuple, as routers do).  Mapping updates
from the controller are applied to each mux after an independent
propagation delay -- the non-atomicity at the heart of the paper's
transient-overload constraints.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import NetworkError
from repro.l4lb.compact import (
    CompactDispatchTable,
    CompactTableBuilder,
    DispatchMode,
    StatelessConfig,
    bucket_targets,
    maybe_config,
)
from repro.l4lb.mux import L4Mux
from repro.l4lb.snat import SnatAllocator
from repro.net.host import Host
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.events import EventLoop
from repro.sim.process import PeriodicTask
from repro.sim.random import SeededRng, stable_hash32


class L4LoadBalancer:
    """Ananta-like L4 LB-as-a-service.

    Args:
        num_muxes: software mux replicas; each holds its own mapping copy.
        mapping_propagation: max delay (seconds) for an update to reach any
            single mux; each mux draws uniformly in [0, this].
        router_ip: address of the internal router host.
    """

    def __init__(
        self,
        loop: EventLoop,
        network: Network,
        rng: SeededRng,
        num_muxes: int = 4,
        mapping_propagation: float = 0.2,
        router_ip: str = "10.255.0.1",
        router_name: str = "l4-router",
        site: str = "dc",
        stateless: Optional[StatelessConfig] = None,
    ):
        if num_muxes < 1:
            raise NetworkError("need at least one mux")
        self.loop = loop
        self.network = network
        self.rng = rng.fork("l4lb")
        self.mapping_propagation = mapping_propagation
        # compact stateless fast path: None = machinery absent (historic
        # behaviour); StatelessConfig(enabled=False) = armed (builders run
        # and snapshots ride every push, dispatch unchanged -- the golden
        # pins hold); enabled=True = muxes dispatch from the snapshots
        self.stateless = stateless
        self.mode: DispatchMode = maybe_config(stateless)
        self._compact_builders: Dict[str, CompactTableBuilder] = {}
        self._compact: Dict[str, CompactDispatchTable] = {}
        self.router = network.attach(Host(router_name, [router_ip], site=site))
        self.router.set_handler(self._on_packet)
        self.muxes: List[L4Mux] = [L4Mux(self, i) for i in range(num_muxes)]
        self.snat = SnatAllocator()
        self._versions: Dict[str, int] = {}
        self._authoritative: Dict[str, List[str]] = {}
        # receiver-side stale-leader rejection (core.leader.FenceGate),
        # attached by YodaService when the control plane is replicated.
        # None in the single-controller configuration: every control call
        # arrives with token=None and is accepted unchecked, exactly as
        # before controller HA existed.
        self.fence = None
        self._gc = PeriodicTask(loop, 30.0, self._expire_flows)
        self._gc.start()

    def _admit(self, token, kind: str) -> None:
        if self.fence is not None:
            self.fence.admit(token, kind, self.loop.now())

    # -- control plane API (used by the YODA controller) ----------------------
    def register_vip(self, vip: str, token=None) -> None:
        """Make the fabric route a VIP's traffic to this service.
        Idempotent, so a newly elected controller can re-anchor every VIP
        it inherited without tracking which were already claimed."""
        self._admit(token, "register_vip")
        self.network.claim_ip(self.router, vip)
        self._versions.setdefault(vip, 0)
        self._authoritative.setdefault(vip, [])

    def unregister_vip(self, vip: str, token=None) -> None:
        self._admit(token, "unregister_vip")
        self._versions.pop(vip, None)
        self._authoritative.pop(vip, None)
        self._compact_builders.pop(vip, None)
        self._compact.pop(vip, None)
        for mux in self.muxes:
            mux.remove_vip(vip)

    def vips(self) -> List[str]:
        return list(self._authoritative)

    def mapping(self, vip: str) -> List[str]:
        """Authoritative (controller-side) instance list for a VIP."""
        return list(self._authoritative.get(vip, []))

    def update_mapping(
        self,
        vip: str,
        instance_ips: List[str],
        flush_removed: bool = True,
        immediate: bool = False,
        draining_ips: Optional[List[str]] = None,
        token=None,
    ) -> None:
        """Install a new VIP -> instances mapping.

        Args:
            instance_ips: L7 LB instances that should receive this VIP.
            flush_removed: also flush flow-table entries pinned to
                instances that left the mapping (YODA does this; a plain
                health-checked HAProxy deployment does not, which is why
                its established flows break silently).
            immediate: apply to all muxes now (test convenience) instead
                of with per-mux propagation delays.
            draining_ips: instances leaving gracefully -- dropped from the
                hash ring (no new SYNs) but neither flushed nor forgotten,
                so their established flows finish in place.
        """
        self._admit(token, "update_mapping")
        if vip not in self._versions:
            raise NetworkError(f"VIP {vip} is not registered")
        draining = list(draining_ips or [])
        previous = set(self._authoritative.get(vip, []))
        removed = previous - set(instance_ips) - set(draining)
        self._authoritative[vip] = list(instance_ips)
        self._versions[vip] += 1
        version = self._versions[vip]
        # the lease epoch rides into each mux's entry: a delayed in-flight
        # push from a fenced-out leader can never regress an entry a newer
        # leader already installed, even across independent mux copies
        epoch = self.fence.epoch if self.fence is not None else -1
        for ip in instance_ips:
            self.snat.ensure_range(vip, ip, version)
        compact = self._build_compact(vip, instance_ips, version)
        for mux in self.muxes:
            delay = 0.0 if immediate else self.rng.uniform(0.0, self.mapping_propagation)
            self.loop.call_later(
                delay, self._apply_to_mux, mux, vip, list(instance_ips), version,
                sorted(removed) if flush_removed else [], draining, epoch,
                compact,
            )

    def _build_compact(self, vip: str, instance_ips: List[str],
                       version: int) -> Optional[CompactDispatchTable]:
        """Refresh the compact builder and freeze a snapshot for this
        mapping version.  Pure stable-hash computation, no events and no
        sim-RNG draws -- an armed-but-disabled config stays bit-identical
        on the pinned golden traces."""
        if self.stateless is None:
            return None
        if not instance_ips:
            self._compact.pop(vip, None)
            return None
        builder = self._compact_builders.get(vip)
        if builder is None:
            builder = CompactTableBuilder(
                num_buckets=self.stateless.num_buckets,
                max_rebuild_attempts=self.stateless.max_rebuild_attempts,
            )
            self._compact_builders[vip] = builder
        builder.update(bucket_targets(vip, instance_ips, builder.num_buckets))
        snapshot = builder.snapshot(version, instance_ips)
        self._compact[vip] = snapshot
        return snapshot

    def _apply_to_mux(
        self, mux: L4Mux, vip: str, instances: List[str], version: int,
        flush: List[str], draining: Optional[List[str]] = None,
        epoch: int = -1, compact: Optional[CompactDispatchTable] = None,
    ) -> None:
        if vip not in self._versions:
            return  # VIP was unregistered while this update was in flight
        mux.apply_mapping(vip, instances, version, draining or [], epoch, compact)
        for instance_ip in flush:
            mux.flush_instance(instance_ip)

    def flush_instance(self, instance_ip: str, token=None) -> int:
        """Flush every mux's flow-table pins for one instance (the forced
        half of a drain: surviving flows must re-hash elsewhere)."""
        self._admit(token, "flush_instance")
        return sum(mux.flush_instance(instance_ip) for mux in self.muxes)

    def compact_version(self, vip: str) -> Optional[int]:
        """Version of the latest compact snapshot built for a VIP (None
        when the stateless machinery is absent or nothing was pushed)."""
        snapshot = self._compact.get(vip)
        return snapshot.version if snapshot is not None else None

    def compact_table(self, vip: str) -> Optional[CompactDispatchTable]:
        return self._compact.get(vip)

    def release_flow(self, client, vip) -> bool:
        """Release the mux flow-table pin for one refused flow, now.

        Data-plane triggered (the owning instance calls this when it
        refuses a flow on SNAT exhaustion), so no fence token: it tears
        down the caller's own pin rather than reconfiguring anything.
        The owning mux is found by the same ECMP hash the router used."""
        flow_key = f"{client}>{vip}"
        idx = stable_hash32(flow_key, salt="ecmp") % len(self.muxes)
        if self.muxes[idx].release_flow(flow_key):
            return True
        # a pin can sit on another mux only if the mux count changed
        # mid-run; sweep the rest so the release is unconditional
        return any(m.release_flow(flow_key) for m in self.muxes)

    def snat_range(self, vip: str, instance_ip: str):
        """The (lo, hi) SNAT port block an instance may use for a VIP."""
        return self.snat.ensure_range(vip, instance_ip)

    # -- data plane -------------------------------------------------------------
    def _on_packet(self, pkt: Packet) -> None:
        """Router: ECMP-spread the flow across muxes."""
        idx = stable_hash32(f"{pkt.src}>{pkt.dst}", salt="ecmp") % len(self.muxes)
        self.muxes[idx].process(pkt)

    def forward_to_instance(self, instance_ip: str, pkt: Packet) -> None:
        """IP-in-IP encapsulation equivalent: deliver the untouched packet
        (dst still the VIP) to the chosen L7 instance's host."""
        host = self.network.host_for_ip(instance_ip)
        if host is None:
            return
        # one intra-DC hop mux -> instance
        self.loop.call_later(0.00025, host.deliver, pkt)

    def _expire_flows(self) -> None:
        now = self.loop.now()
        for mux in self.muxes:
            mux.expire_flows(now)

    # -- introspection ------------------------------------------------------------
    def total_forwarded(self) -> int:
        return sum(m.forwarded for m in self.muxes)

    def mux_versions(self, vip: str) -> List[Optional[int]]:
        """Per-mux mapping version for a VIP (None = not yet installed)."""
        out = []
        for mux in self.muxes:
            entry = mux.vips.get(vip)
            out.append(entry.version if entry else None)
        return out
