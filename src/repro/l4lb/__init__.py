"""Ananta-like L4 load balancer service.

YODA deliberately builds *on top of* the cloud's L4 LB rather than
replacing it (paper Section 3): the L4 LB must (1) split incoming VIP
traffic across L7 instances, (2) re-route to the remaining instances when
one fails, and (3) SNAT the L7 instances' outbound connections so servers
see the VIP.  This package implements that contract with the real Ananta
mechanics that matter to the experiments:

- multiple muxes, each with its *own copy* of the VIP-to-instance mapping;
  mapping updates propagate non-atomically (the transient the ILP's
  Eq. 4-5 guards against);
- per-flow affinity via a flow table, so established flows stick to their
  instance until it is removed and flushed;
- per-(VIP, instance) SNAT port ranges, so return traffic from backends
  finds the right L7 instance.
"""

from repro.l4lb.mux import L4Mux
from repro.l4lb.service import L4LoadBalancer

__all__ = ["L4LoadBalancer", "L4Mux"]
