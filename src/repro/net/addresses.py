"""IP endpoints and address allocation.

Addresses are plain dotted-quad strings; :class:`Endpoint` pairs an address
with a port and is hashable so it can key flow tables.  :class:`FourTuple`
identifies a TCP connection; together with the protocol (always TCP here) it
is the paper's "IP 5-tuple".
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import AddressError

_IP_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


def validate_ip(ip: str) -> str:
    """Return ``ip`` if it is a well-formed dotted quad, else raise."""
    m = _IP_RE.match(ip)
    if not m or any(int(octet) > 255 for octet in m.groups()):
        raise AddressError(f"invalid IPv4 address {ip!r}")
    return ip


@dataclass(frozen=True, order=True)
class Endpoint:
    """An (ip, port) pair."""

    ip: str
    port: int

    def __post_init__(self) -> None:
        validate_ip(self.ip)
        if not 0 <= self.port <= 65535:
            raise AddressError(f"invalid port {self.port}")

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "Endpoint":
        """Parse "ip:port"."""
        ip, sep, port = text.partition(":")
        if not sep:
            raise AddressError(f"expected 'ip:port', got {text!r}")
        try:
            return cls(ip, int(port))
        except ValueError as exc:
            raise AddressError(f"invalid port in {text!r}") from exc


@dataclass(frozen=True, order=True)
class FourTuple:
    """A TCP connection identifier: (src ip, src port, dst ip, dst port).

    The canonical orientation is client -> service: ``src`` is the
    connection initiator.  :meth:`reversed` flips it for return traffic.
    """

    src: Endpoint
    dst: Endpoint

    def reversed(self) -> "FourTuple":
        return FourTuple(self.dst, self.src)

    def key(self) -> str:
        """A stable string key, suitable for hashing / TCPStore keys."""
        return f"{self.src}-{self.dst}"

    def __str__(self) -> str:
        return self.key()


class IpAllocator:
    """Hands out unique addresses from a /16-style prefix.

    >>> alloc = IpAllocator("10.1")
    >>> alloc.next()
    '10.1.0.1'
    >>> alloc.next()
    '10.1.0.2'
    """

    def __init__(self, prefix: str):
        parts = prefix.split(".")
        if len(parts) != 2 or not all(p.isdigit() and int(p) <= 255 for p in parts):
            raise AddressError(f"prefix must look like 'a.b', got {prefix!r}")
        self.prefix = prefix
        self._counter = 0

    def next(self) -> str:
        self._counter += 1
        if self._counter > 255 * 254:
            raise AddressError(f"address space {self.prefix}.0.0/16 exhausted")
        hi, lo = divmod(self._counter - 1, 254)
        return f"{self.prefix}.{hi}.{lo + 1}"

    def take(self, n: int) -> Iterator[str]:
        for _ in range(n):
            yield self.next()


class EphemeralPorts:
    """Allocates client-side ephemeral ports, wrapping within 32768-60999."""

    LOW, HIGH = 32768, 60999

    def __init__(self) -> None:
        self._next = self.LOW

    def next(self) -> int:
        port = self._next
        self._next += 1
        if self._next > self.HIGH:
            self._next = self.LOW
        return port
