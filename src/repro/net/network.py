"""The network fabric: routes packets between hosts.

Delivery is point-to-point by destination IP with a per-site-pair latency
model, optional loss, and tap points for tcpdump-style tracing.  Address
ownership can change at runtime (``claim_ip``), which is how a VIP is owned
by the L4 LB service rather than any single VM.

Fault primitives for the chaos engine live here too: per-path loss (up to
1.0 = blackhole/partition), packet duplication, and latency spikes.  A
"path" is directional and addressed by source/destination *host name or
site name*, so both "partition yoda-0 from the stores" and "lossy uplink
from the datacenter to the internet" are expressible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.host import Host
from repro.net.links import FixedLatency, LatencyModel
from repro.net.packet import PACKET_POOL, Packet, flags_to_str
from repro.obs import OBS
from repro.sim.events import EventLoop
from repro.sim.metrics import MetricRegistry
from repro.sim.random import SeededRng
from repro.sim.tracing import PacketTrace, TraceRecord

DEFAULT_INTRA_DC_LATENCY = 0.00025  # 250 us one-way within the datacenter


@dataclass(slots=True)
class PathFaults:
    """Fault knobs for one directional path (host or site granularity)."""

    loss: float = 0.0  # drop probability; 1.0 = blackhole (partition)
    duplicate: float = 0.0  # probability a packet is delivered twice
    extra_latency: float = 0.0  # added one-way delay (latency spike)

    def is_default(self) -> bool:
        return self.loss == 0.0 and self.duplicate == 0.0 and self.extra_latency == 0.0


class Network:
    """Connects hosts and delivers packets with latency and loss.

    Args:
        loop: the simulation event loop.
        rng: randomness source (forked internally for jitter and loss).
        default_latency: model used when no (src site, dst site) entry is set.
    """

    def __init__(
        self,
        loop: EventLoop,
        rng: SeededRng,
        default_latency: Optional[LatencyModel] = None,
    ):
        self.loop = loop
        self.rng = rng.fork("network")
        self.metrics = MetricRegistry("network")
        self._hosts: Dict[str, Host] = {}  # name -> host
        self._routes: Dict[str, Host] = {}  # ip -> host
        self._latency: Dict[Tuple[str, str], LatencyModel] = {}
        self._default_latency = default_latency or FixedLatency(DEFAULT_INTRA_DC_LATENCY)
        self._loss_rate = 0.0
        self._path_faults: Dict[Tuple[str, str], PathFaults] = {}
        self._traces: List[PacketTrace] = []
        self._last_delivery: Dict[Tuple[str, str], float] = {}
        # hot-path caches.  The latency-model cache maps a host-name pair
        # to the resolved model; it holds no delivery state (the FIFO
        # clamp above must survive cache invalidation), so clearing it on
        # set_latency is always safe.
        self._model_cache: Dict[Tuple[str, str], LatencyModel] = {}
        # sharding hook: when set, a packet whose destination IP has no
        # local route is handed to this callable instead of being dropped
        # (the shard gateway serializes it toward the owning shard)
        self._export_handler: Optional[Callable[[Host, Packet], None]] = None
        self._c_tx = self.metrics.counter("tx_packets")
        self._c_exported = self.metrics.counter("exported_packets")
        self._c_injected = self.metrics.counter("injected_packets")
        self._c_no_route = self.metrics.counter("no_route")
        self._c_lost = self.metrics.counter("lost_packets")
        self._c_path_lost = self.metrics.counter("path_lost_packets")
        self._c_duplicated = self.metrics.counter("duplicated_packets")

    # -- topology ------------------------------------------------------------
    def attach(self, host: Host) -> Host:
        """Attach a host; all of its IPs become routable."""
        if host.name in self._hosts:
            raise NetworkError(f"duplicate host name {host.name!r}")
        for ip in host.ips:
            if ip in self._routes:
                raise NetworkError(
                    f"IP {ip} already owned by {self._routes[ip].name!r}"
                )
        self._hosts[host.name] = host
        for ip in host.ips:
            self._routes[ip] = host
        host.network = self
        self._model_cache.clear()
        return host

    def detach(self, host: Host) -> None:
        """Remove a host and its routes (e.g. a VM being deallocated)."""
        self._hosts.pop(host.name, None)
        for ip in list(host.ips):
            if self._routes.get(ip) is host:
                del self._routes[ip]
        host.network = None
        self._model_cache.clear()

    def claim_ip(self, host: Host, ip: str) -> None:
        """Point ``ip`` at ``host``, overriding any previous owner.

        This is the simulation's equivalent of the cloud fabric routing a
        VIP to the L4 LB service.
        """
        if host.name not in self._hosts:
            raise NetworkError(f"host {host.name!r} is not attached")
        previous = self._routes.get(ip)
        if previous is not None and previous is not host and ip in previous.ips:
            previous.ips.remove(ip)
        self._routes[ip] = host
        if ip not in host.ips:
            host.ips.append(ip)

    def host_for_ip(self, ip: str) -> Optional[Host]:
        return self._routes.get(ip)

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    def hosts(self) -> Iterable[Host]:
        return self._hosts.values()

    # -- path properties ------------------------------------------------------
    def set_latency(self, src_site: str, dst_site: str, model: LatencyModel) -> None:
        """Set the one-way latency model for packets src_site -> dst_site."""
        self._latency[(src_site, dst_site)] = model
        self._model_cache.clear()

    def set_symmetric_latency(self, site_a: str, site_b: str, model: LatencyModel) -> None:
        self.set_latency(site_a, site_b, model)
        self.set_latency(site_b, site_a, model)

    def set_loss_rate(
        self, rate: float, src: Optional[str] = None, dst: Optional[str] = None
    ) -> None:
        """Independent per-packet drop probability in [0, 1].

        With no ``src``/``dst`` this sets the global rate (the original
        form, which must stay below 1.0 -- a total global blackhole is
        never what a caller wants).  With both given it sets a directional
        per-path rate, where each endpoint is a host name or a site name
        and ``rate=1.0`` means a blackhole (one direction of a partition).
        """
        if (src is None) != (dst is None):
            raise NetworkError("set_loss_rate needs both src and dst, or neither")
        if src is None:
            if not 0.0 <= rate < 1.0:
                raise NetworkError(f"global loss rate must be in [0, 1), got {rate}")
            self._loss_rate = rate
            return
        if not 0.0 <= rate <= 1.0:
            raise NetworkError(f"path loss rate must be in [0, 1], got {rate}")
        self._path_fault(src, dst).loss = rate
        self._prune_path_faults()

    def set_duplicate_rate(self, rate: float, src: str, dst: str) -> None:
        """Probability a packet on the path is delivered twice."""
        if not 0.0 <= rate <= 1.0:
            raise NetworkError(f"duplicate rate must be in [0, 1], got {rate}")
        self._path_fault(src, dst).duplicate = rate
        self._prune_path_faults()

    def set_extra_latency(self, seconds: float, src: str, dst: str) -> None:
        """Add a fixed one-way delay on the path (latency spike)."""
        if seconds < 0.0:
            raise NetworkError(f"extra latency must be >= 0, got {seconds}")
        self._path_fault(src, dst).extra_latency = seconds
        self._prune_path_faults()

    def partition(self, a: str, b: str, symmetric: bool = True) -> None:
        """Blackhole traffic a -> b (and b -> a unless ``symmetric=False``).

        Endpoints are host names or site names; asymmetric partitions
        model one-way reachability failures.
        """
        self.set_loss_rate(1.0, src=a, dst=b)
        if symmetric:
            self.set_loss_rate(1.0, src=b, dst=a)

    def heal(self, a: Optional[str] = None, b: Optional[str] = None) -> None:
        """Clear path faults: both directions between ``a`` and ``b``,
        or every path fault when called with no arguments."""
        if (a is None) != (b is None):
            raise NetworkError("heal needs both endpoints, or neither")
        if a is None:
            self._path_faults.clear()
            return
        self._path_faults.pop((a, b), None)
        self._path_faults.pop((b, a), None)

    def _path_fault(self, src: str, dst: str) -> PathFaults:
        key = (src, dst)
        fault = self._path_faults.get(key)
        if fault is None:
            fault = self._path_faults[key] = PathFaults()
        return fault

    def _prune_path_faults(self) -> None:
        # Keep the table empty when no fault is active so the data plane
        # draws no randomness at all on healthy networks (determinism of
        # existing seeded runs is preserved bit-for-bit).
        for key in [k for k, f in self._path_faults.items() if f.is_default()]:
            del self._path_faults[key]

    def _resolve_faults(self, src_host: Host, dst_host: Host) -> Optional[PathFaults]:
        """Most-specific match wins: host>host, host>site, site>host, site>site."""
        if not self._path_faults:
            return None
        table = self._path_faults
        for key in (
            (src_host.name, dst_host.name),
            (src_host.name, dst_host.site),
            (src_host.site, dst_host.name),
            (src_host.site, dst_host.site),
        ):
            fault = table.get(key)
            if fault is not None:
                return fault
        return None

    def add_trace(self, trace: PacketTrace) -> PacketTrace:
        """Record every transmission (and drop) into ``trace``."""
        self._traces.append(trace)
        return trace

    # -- shard boundary -------------------------------------------------------
    def set_export_handler(
        self, handler: Optional[Callable[[Host, Packet], None]]
    ) -> None:
        """Divert packets with no local route to ``handler`` (or clear it).

        In a sharded run each shard's network only routes its own
        sub-world; a destination IP owned by another shard looks like
        "no route" here, and the handler (the shard gateway) captures the
        packet at its exact transmit time instead of dropping it.
        """
        self._export_handler = handler

    def inject(self, packet: Packet, at: float, src_name: str = "@xshard") -> None:
        """Schedule delivery of a packet that originated on another shard.

        ``at`` is the arrival time the barrier coordinator computed
        (send time + cross-shard link latency); conservative lookahead
        guarantees it falls at or after the current window start.  The
        usual per-path FIFO clamp applies so a burst of boundary packets
        from one source cannot reorder.
        """
        self._c_injected.inc()
        dst_host = self._routes.get(packet.dst.ip)
        if dst_host is None:
            # the owner moved (or died) while the packet crossed the pipe;
            # it is dead the same way a transmit-side no-route drop is
            self._c_no_route.inc()
            self._record(packet, point="wire", direction="tx", dropped=True)
            PACKET_POOL.release(packet)
            return
        now = self.loop.now()
        deliver_at = at if at > now else now
        path = (src_name, dst_host.name)
        last = self._last_delivery.get(path, 0.0)
        if deliver_at < last:
            deliver_at = last
        self._last_delivery[path] = deliver_at
        self.loop.call_at(deliver_at, self._deliver, dst_host, packet)

    # -- data plane -----------------------------------------------------------
    def transmit(self, src_host: Host, packet: Packet) -> None:
        """Route ``packet`` toward its destination IP."""
        self._c_tx.inc()
        dst_host = self._routes.get(packet.dst.ip)
        if dst_host is None:
            if self._export_handler is not None:
                self._c_exported.inc()
                self._record(packet, point="wire", direction="tx", dropped=False)
                self._export_handler(src_host, packet)
                return
            self._c_no_route.inc()
            self._record(packet, point="wire", direction="tx", dropped=True)
            # a transmit-side drop is the one point where the packet is
            # provably dead: it was never scheduled for delivery, so no
            # receive path (or duplicate delivery) can still reference it
            PACKET_POOL.release(packet)
            return
        if self._loss_rate and self.rng.random() < self._loss_rate:
            self._c_lost.inc()
            self._record(packet, point="wire", direction="tx", dropped=True)
            PACKET_POOL.release(packet)
            return
        faults = self._resolve_faults(src_host, dst_host)
        if faults is not None and faults.loss:
            if faults.loss >= 1.0 or self.rng.random() < faults.loss:
                self._c_lost.inc()
                self._c_path_lost.inc()
                self._record(packet, point="wire", direction="tx", dropped=True)
                PACKET_POOL.release(packet)
                return
        path = (src_host.name, dst_host.name)
        model = self._model_cache.get(path)
        if model is None:
            model = self._latency.get(
                (src_host.site, dst_host.site), self._default_latency)
            self._model_cache[path] = model
        delay = model.delay(packet, self.rng)
        if faults is not None and faults.extra_latency:
            delay += faults.extra_latency
        self._record(packet, point="wire", direction="tx", dropped=False)
        # FIFO per path: jittered latency must not reorder packets between
        # the same pair of hosts (a single route does not reorder), or TCP
        # would see phantom loss and collapse its window.
        deliver_at = self.loop.now() + delay
        last = self._last_delivery.get(path, 0.0)
        if deliver_at < last:
            deliver_at = last
        self._last_delivery[path] = deliver_at
        self.loop.call_at(deliver_at, self._deliver, dst_host, packet)
        if faults is not None and faults.duplicate and self.rng.random() < faults.duplicate:
            self._c_duplicated.inc()
            self._record(packet, point="wire", direction="tx", dropped=False)
            self.loop.call_at(deliver_at, self._deliver, dst_host, packet)

    def _deliver(self, dst_host: Host, packet: Packet) -> None:
        # Re-check routing at delivery time: ownership may have moved while
        # the packet was in flight.
        current = self._routes.get(packet.dst.ip)
        target = current if current is not None else dst_host
        dropped = target.failed
        self._record(packet, point=target.name, direction="rx", dropped=dropped)
        target.deliver(packet)

    def _record(self, packet: Packet, point: str, direction: str, dropped: bool) -> None:
        if dropped and OBS.enabled:
            # drops are the events failure forensics care about; note them
            # into the capture point's flight recorder independently of
            # whether any packet trace is attached
            OBS.flight(point, "drop",
                       f"{packet.src} > {packet.dst}: "
                       f"{flags_to_str(packet.flags)} seq={packet.seq} "
                       f"len={packet.payload_len}")
        if not self._traces:
            return
        rec = TraceRecord(
            time=self.loop.now(),
            point=point,
            direction=direction,
            summary=packet.summary(),
            src=str(packet.src),
            dst=str(packet.dst),
            flags=flags_to_str(packet.flags),
            seq=packet.seq,
            ack=packet.ack,
            payload_len=packet.payload_len,
            dropped=dropped,
        )
        for trace in self._traces:
            trace.record(rec)
