"""The network fabric: routes packets between hosts.

Delivery is point-to-point by destination IP with a per-site-pair latency
model, optional loss, and tap points for tcpdump-style tracing.  Address
ownership can change at runtime (``claim_ip``), which is how a VIP is owned
by the L4 LB service rather than any single VM.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.host import Host
from repro.net.links import FixedLatency, LatencyModel
from repro.net.packet import Packet, flags_to_str
from repro.sim.events import EventLoop
from repro.sim.metrics import MetricRegistry
from repro.sim.random import SeededRng
from repro.sim.tracing import PacketTrace, TraceRecord

DEFAULT_INTRA_DC_LATENCY = 0.00025  # 250 us one-way within the datacenter


class Network:
    """Connects hosts and delivers packets with latency and loss.

    Args:
        loop: the simulation event loop.
        rng: randomness source (forked internally for jitter and loss).
        default_latency: model used when no (src site, dst site) entry is set.
    """

    def __init__(
        self,
        loop: EventLoop,
        rng: SeededRng,
        default_latency: Optional[LatencyModel] = None,
    ):
        self.loop = loop
        self.rng = rng.fork("network")
        self.metrics = MetricRegistry("network")
        self._hosts: Dict[str, Host] = {}  # name -> host
        self._routes: Dict[str, Host] = {}  # ip -> host
        self._latency: Dict[Tuple[str, str], LatencyModel] = {}
        self._default_latency = default_latency or FixedLatency(DEFAULT_INTRA_DC_LATENCY)
        self._loss_rate = 0.0
        self._traces: List[PacketTrace] = []
        self._last_delivery: Dict[Tuple[str, str], float] = {}

    # -- topology ------------------------------------------------------------
    def attach(self, host: Host) -> Host:
        """Attach a host; all of its IPs become routable."""
        if host.name in self._hosts:
            raise NetworkError(f"duplicate host name {host.name!r}")
        for ip in host.ips:
            if ip in self._routes:
                raise NetworkError(
                    f"IP {ip} already owned by {self._routes[ip].name!r}"
                )
        self._hosts[host.name] = host
        for ip in host.ips:
            self._routes[ip] = host
        host.network = self
        return host

    def detach(self, host: Host) -> None:
        """Remove a host and its routes (e.g. a VM being deallocated)."""
        self._hosts.pop(host.name, None)
        for ip in list(host.ips):
            if self._routes.get(ip) is host:
                del self._routes[ip]
        host.network = None

    def claim_ip(self, host: Host, ip: str) -> None:
        """Point ``ip`` at ``host``, overriding any previous owner.

        This is the simulation's equivalent of the cloud fabric routing a
        VIP to the L4 LB service.
        """
        if host.name not in self._hosts:
            raise NetworkError(f"host {host.name!r} is not attached")
        previous = self._routes.get(ip)
        if previous is not None and previous is not host and ip in previous.ips:
            previous.ips.remove(ip)
        self._routes[ip] = host
        if ip not in host.ips:
            host.ips.append(ip)

    def host_for_ip(self, ip: str) -> Optional[Host]:
        return self._routes.get(ip)

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    def hosts(self) -> Iterable[Host]:
        return self._hosts.values()

    # -- path properties ------------------------------------------------------
    def set_latency(self, src_site: str, dst_site: str, model: LatencyModel) -> None:
        """Set the one-way latency model for packets src_site -> dst_site."""
        self._latency[(src_site, dst_site)] = model

    def set_symmetric_latency(self, site_a: str, site_b: str, model: LatencyModel) -> None:
        self.set_latency(site_a, site_b, model)
        self.set_latency(site_b, site_a, model)

    def set_loss_rate(self, rate: float) -> None:
        """Independent per-packet drop probability in [0, 1)."""
        if not 0.0 <= rate < 1.0:
            raise NetworkError(f"loss rate must be in [0, 1), got {rate}")
        self._loss_rate = rate

    def add_trace(self, trace: PacketTrace) -> PacketTrace:
        """Record every transmission (and drop) into ``trace``."""
        self._traces.append(trace)
        return trace

    # -- data plane -----------------------------------------------------------
    def transmit(self, src_host: Host, packet: Packet) -> None:
        """Route ``packet`` toward its destination IP."""
        self.metrics.counter("tx_packets").inc()
        dst_host = self._routes.get(packet.dst.ip)
        if dst_host is None:
            self.metrics.counter("no_route").inc()
            self._record(packet, point="wire", direction="tx", dropped=True)
            return
        if self._loss_rate and self.rng.random() < self._loss_rate:
            self.metrics.counter("lost_packets").inc()
            self._record(packet, point="wire", direction="tx", dropped=True)
            return
        model = self._latency.get((src_host.site, dst_host.site), self._default_latency)
        delay = model.delay(packet, self.rng)
        self._record(packet, point="wire", direction="tx", dropped=False)
        # FIFO per path: jittered latency must not reorder packets between
        # the same pair of hosts (a single route does not reorder), or TCP
        # would see phantom loss and collapse its window.
        deliver_at = self.loop.now() + delay
        path = (src_host.name, dst_host.name)
        last = self._last_delivery.get(path, 0.0)
        if deliver_at < last:
            deliver_at = last
        self._last_delivery[path] = deliver_at
        self.loop.call_at(deliver_at, self._deliver, dst_host, packet)

    def _deliver(self, dst_host: Host, packet: Packet) -> None:
        # Re-check routing at delivery time: ownership may have moved while
        # the packet was in flight.
        current = self._routes.get(packet.dst.ip)
        target = current if current is not None else dst_host
        dropped = target.failed
        self._record(packet, point=target.name, direction="rx", dropped=dropped)
        target.deliver(packet)

    def _record(self, packet: Packet, point: str, direction: str, dropped: bool) -> None:
        if not self._traces:
            return
        rec = TraceRecord(
            time=self.loop.now(),
            point=point,
            direction=direction,
            summary=packet.summary(),
            src=str(packet.src),
            dst=str(packet.dst),
            flags=flags_to_str(packet.flags),
            seq=packet.seq,
            ack=packet.ack,
            payload_len=packet.payload_len,
            dropped=dropped,
        )
        for trace in self._traces:
            trace.record(rec)
