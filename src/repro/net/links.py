"""One-way latency models for network paths.

The testbed in the paper has two very different path classes: intra-DC hops
(sub-millisecond) and the campus-client-to-Azure Internet path (tens of
milliseconds, giving the 133 ms no-LB baseline of Figure 9).  A
:class:`LatencyModel` computes the one-way delay for a packet; the
:class:`~repro.net.network.Network` keeps one per site pair.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.net.packet import IP_TCP_HEADER_BYTES, Packet
from repro.sim.random import SeededRng


class LatencyModel(abc.ABC):
    """Computes the one-way delay, in seconds, for a packet on a path."""

    @abc.abstractmethod
    def delay(self, packet: Packet, rng: SeededRng) -> float:
        """One-way latency for ``packet``; must be >= 0."""

    def lower_bound(self) -> float:
        """The smallest delay this model can ever produce.

        The sharded simulator's conservative lookahead window is the
        minimum of this over every cross-shard link: no packet sent inside
        a window can arrive before the next one starts.  0.0 is always a
        safe (if useless) answer, so models without a known floor need no
        override -- the shard planner rejects zero-bound cross links.
        """
        return 0.0


class FixedLatency(LatencyModel):
    """Constant one-way delay; the deterministic default for tests."""

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        self.seconds = seconds

    def delay(self, packet: Packet, rng: SeededRng) -> float:
        return self.seconds

    def lower_bound(self) -> float:
        return self.seconds

    def __repr__(self) -> str:
        return f"FixedLatency({self.seconds})"


class JitterLatency(LatencyModel):
    """Base delay plus uniform jitter in [0, jitter]."""

    def __init__(self, base: float, jitter: float):
        if base < 0 or jitter < 0:
            raise ValueError("base and jitter must be >= 0")
        self.base = base
        self.jitter = jitter

    def delay(self, packet: Packet, rng: SeededRng) -> float:
        return self.base + rng.uniform(0.0, self.jitter)

    def lower_bound(self) -> float:
        return self.base

    def __repr__(self) -> str:
        return f"JitterLatency(base={self.base}, jitter={self.jitter})"


class LognormalLatency(LatencyModel):
    """Heavy-ish tailed delay: base + lognormal(mu, sigma).

    Suitable for the Internet leg between clients and the datacenter.
    """

    def __init__(self, base: float, mu: float, sigma: float, cap: Optional[float] = None):
        if base < 0:
            raise ValueError("base must be >= 0")
        self.base = base
        self.mu = mu
        self.sigma = sigma
        self.cap = cap

    def delay(self, packet: Packet, rng: SeededRng) -> float:
        extra = rng.lognormal(self.mu, self.sigma)
        if self.cap is not None:
            extra = min(extra, self.cap)
        return self.base + extra

    def lower_bound(self) -> float:
        return self.base

    def __repr__(self) -> str:
        return f"LognormalLatency(base={self.base}, mu={self.mu}, sigma={self.sigma})"


class BandwidthLatency(LatencyModel):
    """Propagation delay plus serialization at a link rate.

    delay = base + wire_len / bytes_per_second.  Used where per-byte cost
    matters (e.g. stressing large-object transfers).
    """

    def __init__(self, base: float, bytes_per_second: float):
        if base < 0 or bytes_per_second <= 0:
            raise ValueError("base >= 0 and bytes_per_second > 0 required")
        self.base = base
        self.bytes_per_second = bytes_per_second

    def delay(self, packet: Packet, rng: SeededRng) -> float:
        return self.base + packet.wire_len / self.bytes_per_second

    def lower_bound(self) -> float:
        # the IP+TCP header is the smallest thing that can cross the link
        return self.base + IP_TCP_HEADER_BYTES / self.bytes_per_second

    def __repr__(self) -> str:
        return f"BandwidthLatency(base={self.base}, rate={self.bytes_per_second})"
