"""Hosts: the things packets are delivered to.

A host owns one or more IP addresses (the L4 LB owns every VIP) and a packet
handler.  Failure injection lives here: a failed host silently drops
everything it receives and refuses to send -- exactly what a crashed VM
looks like from the network, which is what the paper's failure experiments
rely on (no RST, no FIN; peers discover the failure only via timeouts).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.errors import NetworkError
from repro.net.packet import Packet
from repro.sim.metrics import MetricRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

PacketHandler = Callable[[Packet], None]


class Host:
    """A network-attached node.

    Attributes:
        name: unique human-readable identifier.
        ips: addresses this host answers for.
        site: latency domain ("dc", "internet", ...); the network picks the
            latency model from the (src site, dst site) pair.
    """

    def __init__(self, name: str, ips: List[str], site: str = "dc"):
        if not ips:
            raise NetworkError(f"host {name!r} needs at least one IP")
        self.name = name
        self.ips = list(ips)
        self.site = site
        self.network: Optional["Network"] = None
        self.failed = False
        self.metrics = MetricRegistry(name)
        self._handler: Optional[PacketHandler] = None
        # counter objects cached once; registry lookups are off the
        # per-packet path
        self._c_tx_packets = self.metrics.counter("tx_packets")
        self._c_tx_bytes = self.metrics.counter("tx_bytes")
        self._c_rx_packets = self.metrics.counter("rx_packets")
        self._c_rx_bytes = self.metrics.counter("rx_bytes")
        self._c_rx_dropped = self.metrics.counter("rx_dropped_failed")

    @property
    def ip(self) -> str:
        """Primary address."""
        return self.ips[0]

    def set_handler(self, handler: PacketHandler) -> None:
        """Install the function that receives every delivered packet."""
        self._handler = handler

    # -- lifecycle ---------------------------------------------------------
    def fail(self) -> None:
        """Crash the host: drop all future rx/tx until :meth:`recover`."""
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    # -- I/O ----------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Transmit a packet into the network fabric."""
        if self.network is None:
            raise NetworkError(f"host {self.name!r} is not attached to a network")
        if self.failed:
            return  # a crashed VM transmits nothing
        self._c_tx_packets.inc()
        self._c_tx_bytes.inc(packet.wire_len)
        self.network.transmit(self, packet)

    def deliver(self, packet: Packet) -> None:
        """Called by the network when a packet arrives for one of our IPs."""
        if self.failed:
            self._c_rx_dropped.inc()
            return
        self._c_rx_packets.inc()
        self._c_rx_bytes.inc(packet.wire_len)
        if self._handler is not None:
            self._handler(packet)
        else:
            self.metrics.counter("rx_unhandled").inc()

    def __repr__(self) -> str:
        state = "FAILED" if self.failed else "up"
        return f"Host({self.name!r}, ips={self.ips}, {state})"
