"""The simulated TCP/IP packet.

One class models the whole header stack the simulation needs: IP addresses,
TCP ports/flags/sequence numbers, and a payload.  The ``meta`` mapping
carries out-of-band simulation facts that real networks encode elsewhere
(e.g. the IP-in-IP encapsulation target the L4 mux would add, Ananta-style).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.errors import NetworkError, ShardError
from repro.net.addresses import Endpoint, FourTuple

# TCP flag bits (same values as the real header, for familiarity).
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10

IP_TCP_HEADER_BYTES = 40  # 20 IP + 20 TCP, ignoring options

_packet_ids = itertools.count(1)


def flags_to_str(flags: int) -> str:
    """tcpdump-style flag string: 'S', 'S.', '.', 'P.', 'F.', 'R'."""
    out = ""
    if flags & SYN:
        out += "S"
    if flags & FIN:
        out += "F"
    if flags & RST:
        out += "R"
    if flags & PSH:
        out += "P"
    if flags & ACK:
        out += "."
    return out or "-"


@dataclass(slots=True)
class Packet:
    """A TCP segment travelling through the simulated network.

    Attributes:
        src, dst: L3/L4 endpoints as seen on the wire *right now* -- the
            L4 LB and YODA instances rewrite these in flight, exactly as the
            paper's Figure 4 shows.
        flags: TCP flag bitmask (SYN/ACK/FIN/RST/PSH).
        seq: sequence number of the first payload byte (or of the SYN/FIN).
        ack: acknowledgment number; meaningful when the ACK flag is set.
        payload: application bytes carried by this segment.
        meta: simulation side-channel (encapsulation target, original
            5-tuple before SNAT, ...).  Never inspected by endpoints.
        pool_state: free-list bookkeeping (see :class:`PacketPool`); 0 for
            packets constructed directly.
    """

    src: Endpoint
    dst: Endpoint
    flags: int = 0
    seq: int = 0
    ack: int = 0
    payload: bytes = b""
    meta: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    pool_state: int = field(default=0, repr=False, compare=False)

    # -- flag helpers ----------------------------------------------------
    @property
    def syn(self) -> bool:
        return bool(self.flags & SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & ACK)

    @property
    def is_pure_ack(self) -> bool:
        """ACK flag set, no payload, no SYN/FIN/RST."""
        return (
            self.has_ack
            and not self.payload
            and not (self.flags & (SYN | FIN | RST))
        )

    # -- sizes -----------------------------------------------------------
    @property
    def payload_len(self) -> int:
        return len(self.payload)

    @property
    def wire_len(self) -> int:
        return IP_TCP_HEADER_BYTES + len(self.payload)

    @property
    def seq_span(self) -> int:
        """Sequence-space consumed: payload bytes, +1 for SYN, +1 for FIN."""
        span = len(self.payload)
        if self.syn:
            span += 1
        if self.fin:
            span += 1
        return span

    # -- identity --------------------------------------------------------
    @property
    def four_tuple(self) -> FourTuple:
        return FourTuple(self.src, self.dst)

    def copy(self, **changes: Any) -> "Packet":
        """A shallow copy with a fresh packet id and optional field changes."""
        fields = dict(
            src=self.src,
            dst=self.dst,
            flags=self.flags,
            seq=self.seq,
            ack=self.ack,
            payload=self.payload,
            meta=dict(self.meta),
        )
        fields.update(changes)
        return Packet(**fields)

    def summary(self) -> str:
        return (
            f"{self.src} > {self.dst}: {flags_to_str(self.flags)} "
            f"seq={self.seq} ack={self.ack} len={self.payload_len}"
        )

    def __repr__(self) -> str:
        return f"Packet({self.summary()})"


# pool_state values
_POOL_FOREIGN = 0  # constructed directly; the pool never recycles it
_POOL_LIVE = 1  # issued by a pool, currently in flight
_POOL_FREE = 2  # sitting on a free list
_POOL_DETACHED = 3  # serialized for a cross-process handoff; locally dead

# wire-format version for detached packets (first tuple element); bumping
# it makes a mixed-version shard fleet fail loudly instead of misparsing
WIRE_VERSION = 1

_WIRE_SCALARS = (str, int, float, bytes, bool, type(None))


def _wire_meta(meta: Dict[str, Any]) -> tuple:
    """Validate and flatten ``meta`` for pickling across a process pipe.

    Only plain data may cross a shard boundary -- a meta entry holding a
    live object (host, flow, callback) would silently detach from its
    world when pickled, so anything non-scalar raises instead.
    """
    items = []
    for key, value in meta.items():
        if not _wire_safe(value):
            raise ShardError(
                f"packet meta[{key!r}] = {value!r} cannot cross a shard "
                f"boundary (only plain str/int/float/bytes/bool/None and "
                f"tuples/lists/dicts of those serialize)"
            )
        items.append((key, value))
    return tuple(items)


def _wire_safe(value: Any) -> bool:
    if isinstance(value, _WIRE_SCALARS):
        return True
    if isinstance(value, (tuple, list)):
        return all(_wire_safe(v) for v in value)
    if isinstance(value, dict):
        return all(isinstance(k, str) and _wire_safe(v)
                   for k, v in value.items())
    return False


class PacketPool:
    """A free list for :class:`Packet` objects on the TCP hot path.

    ``acquire`` hands out a recycled instance (with a fresh ``packet_id``
    and cleared ``meta``) when one is available, else constructs a new one.
    ``release`` returns a packet to the free list; it is only legal at
    points where the object is provably dead -- in this simulator, the
    transmit-side drop paths in ``Network.transmit``, which run before any
    delivery (or duplicate delivery) could retain a reference.  Releasing
    a directly-constructed packet is a no-op, so the network can release
    unconditionally.

    With ``debug=True`` (and at no cost otherwise), misuse raises:
    releasing the same object twice always raises; mutating a packet after
    releasing it is detected by a field fingerprint at the next acquire.
    """

    def __init__(self, debug: bool = False):
        self._free: list = []
        self._debug = debug
        self._fingerprints: Dict[int, tuple] = {}
        # packets serialized for a cross-shard handoff, awaiting reclaim;
        # fingerprinted unconditionally -- the boundary is not the hot path
        # and a mutate-after-detach would corrupt another world's flow
        self._detached: list = []
        self._detached_fingerprints: Dict[int, tuple] = {}
        self.created = 0
        self.recycled = 0
        self.detached = 0
        self.adopted = 0

    @staticmethod
    def _fingerprint(pkt: Packet) -> tuple:
        return (pkt.src, pkt.dst, pkt.flags, pkt.seq, pkt.ack, pkt.payload,
                len(pkt.meta), pkt.packet_id)

    def acquire(self, src: Endpoint, dst: Endpoint, flags: int = 0,
                seq: int = 0, ack: int = 0, payload: bytes = b"") -> Packet:
        if self._free:
            pkt = self._free.pop()
            if self._debug:
                expected = self._fingerprints.pop(id(pkt), None)
                if expected is not None and expected != self._fingerprint(pkt):
                    raise NetworkError(
                        f"pooled packet mutated after release: {pkt!r}"
                    )
            pkt.src = src
            pkt.dst = dst
            pkt.flags = flags
            pkt.seq = seq
            pkt.ack = ack
            pkt.payload = payload
            pkt.meta.clear()
            pkt.packet_id = next(_packet_ids)
            self.recycled += 1
        else:
            pkt = Packet(src=src, dst=dst, flags=flags, seq=seq, ack=ack,
                         payload=payload)
            self.created += 1
        pkt.pool_state = _POOL_LIVE
        return pkt

    def release(self, packet: Packet) -> bool:
        """Return ``packet`` to the free list.

        Returns True if the packet was adopted; False for foreign
        (directly constructed) packets.  Raises on double release.
        """
        state = packet.pool_state
        if state == _POOL_FREE:
            raise NetworkError(f"packet released twice: {packet!r}")
        if state == _POOL_DETACHED:
            raise ShardError(
                f"packet released after detach (ownership was transferred "
                f"to another shard): {packet!r}"
            )
        if state != _POOL_LIVE:
            return False
        packet.pool_state = _POOL_FREE
        if self._debug:
            self._fingerprints[id(packet)] = self._fingerprint(packet)
        self._free.append(packet)
        return True

    def free_count(self) -> int:
        return len(self._free)

    # -- cross-process handoff (the sharded simulator's boundary) ---------
    def detach(self, packet: Packet) -> tuple:
        """Serialize ``packet`` for a cross-shard handoff.

        Returns a plain picklable wire tuple and marks the local object
        dead: ownership transfers to whichever :class:`PacketPool` later
        :meth:`adopt`\\ s the tuple.  Detaching twice, detaching a released
        packet, or releasing after detach all raise; mutating the object
        after detach is caught (always, not just in debug mode) when the
        pool reclaims its detached packets at the next barrier.
        """
        state = packet.pool_state
        if state == _POOL_DETACHED:
            raise ShardError(f"packet detached twice: {packet!r}")
        if state == _POOL_FREE:
            raise ShardError(f"detach of a released packet: {packet!r}")
        wire = (
            WIRE_VERSION,
            packet.src.ip, packet.src.port,
            packet.dst.ip, packet.dst.port,
            packet.flags, packet.seq, packet.ack, packet.payload,
            _wire_meta(packet.meta),
        )
        packet.pool_state = _POOL_DETACHED
        if state == _POOL_LIVE:
            self._detached.append(packet)
            self._detached_fingerprints[id(packet)] = self._fingerprint(packet)
        self.detached += 1
        return wire

    def adopt(self, wire: tuple) -> Packet:
        """Rehydrate a detached wire tuple into a packet owned by *this*
        pool (the receiving shard's side of the ownership transfer)."""
        if not isinstance(wire, tuple) or not wire or wire[0] != WIRE_VERSION:
            raise ShardError(f"unrecognized packet wire format: {wire!r}")
        _, src_ip, src_port, dst_ip, dst_port, flags, seq, ack, payload, meta = wire
        pkt = self.acquire(Endpoint(src_ip, src_port), Endpoint(dst_ip, dst_port),
                           flags=flags, seq=seq, ack=ack, payload=payload)
        for key, value in meta:
            pkt.meta[key] = value
        self.adopted += 1
        return pkt

    def reclaim_detached(self) -> int:
        """Fold detached packets back into the free list.

        Called at a shard barrier, once the wire tuples are safely on the
        pipe.  Any packet mutated since its detach raises -- that object
        was supposed to be dead, and the mutation means some component
        still holds (and uses) a reference it no longer owns.
        """
        count = 0
        for pkt in self._detached:
            expected = self._detached_fingerprints.pop(id(pkt), None)
            if expected is not None and expected != self._fingerprint(pkt):
                raise ShardError(
                    f"detached packet mutated before reclaim: {pkt!r}"
                )
            pkt.pool_state = _POOL_FREE
            if self._debug:
                self._fingerprints[id(pkt)] = self._fingerprint(pkt)
            self._free.append(pkt)
            count += 1
        self._detached.clear()
        return count

    def detached_count(self) -> int:
        return len(self._detached)


# The shared pool the TCP hot path draws from; Network.transmit releases
# dropped packets back into it.
PACKET_POOL = PacketPool()


def make_syn(src: Endpoint, dst: Endpoint, isn: int) -> Packet:
    return Packet(src=src, dst=dst, flags=SYN, seq=isn)


def make_syn_ack(src: Endpoint, dst: Endpoint, isn: int, ack: int) -> Packet:
    return Packet(src=src, dst=dst, flags=SYN | ACK, seq=isn, ack=ack)


def make_ack(src: Endpoint, dst: Endpoint, seq: int, ack: int) -> Packet:
    return Packet(src=src, dst=dst, flags=ACK, seq=seq, ack=ack)


def make_rst(src: Endpoint, dst: Endpoint, seq: int) -> Packet:
    return Packet(src=src, dst=dst, flags=RST, seq=seq)
