"""Simulated network fabric: addresses, packets, hosts and links.

The fabric delivers :class:`~repro.net.packet.Packet` objects between
:class:`~repro.net.host.Host` objects with per-site-pair latency models,
optional loss, failure injection and tcpdump-style tracing.  It is the layer
beneath TCP; everything above (TCP endpoints, the L4 LB muxes, YODA's
packet driver) exchanges packets through a single :class:`Network`.
"""

from repro.net.addresses import Endpoint, FourTuple, IpAllocator
from repro.net.host import Host
from repro.net.links import FixedLatency, JitterLatency, LatencyModel, LognormalLatency
from repro.net.network import Network
from repro.net.packet import (
    ACK,
    FIN,
    PSH,
    RST,
    SYN,
    Packet,
    flags_to_str,
)

__all__ = [
    "Endpoint",
    "FourTuple",
    "IpAllocator",
    "Host",
    "Network",
    "Packet",
    "SYN",
    "ACK",
    "FIN",
    "RST",
    "PSH",
    "flags_to_str",
    "LatencyModel",
    "FixedLatency",
    "JitterLatency",
    "LognormalLatency",
]
