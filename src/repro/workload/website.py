"""A browsable website: corpus + popularity distribution."""

from __future__ import annotations

from typing import List, Optional

from repro.sim.random import SeededRng
from repro.workload.objects import ObjectCorpus


class Website:
    """Wraps a corpus with Zipf page popularity for client workloads."""

    def __init__(self, corpus: ObjectCorpus, rng: SeededRng, zipf_skew: float = 0.9):
        self.corpus = corpus
        self._rng = rng.fork("website")
        self._pages = corpus.page_paths()
        if not self._pages:
            raise ValueError("corpus has no pages")
        self._weights = self._rng.zipf_weights(len(self._pages), zipf_skew)

    @property
    def pages(self) -> List[str]:
        return list(self._pages)

    def random_page(self) -> str:
        return self._rng.weighted_choice(self._pages, self._weights)

    def objects_of(self, page: str) -> List[str]:
        return list(self.corpus.pages.get(page, []))

    def random_object(self) -> str:
        """A single object path (for ab-style single-fetch workloads)."""
        page = self.random_page()
        objects = self.corpus.pages.get(page)
        if objects:
            return self._rng.choice(objects)
        return page
