"""Synthetic web-object corpus matching the paper's crawl statistics.

Section 7 ("Setup"): four online services, each emulating a university
website of faculty/student pages with embedded objects; 10K+ objects total,
sizes 1 KB-442 KB with a 46 KB median.  Sizes here are lognormal (the
canonical web-object size distribution), clipped to the paper's range and
centered on its median.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.http.server import StaticSite
from repro.sim.random import SeededRng

MIN_OBJECT_BYTES = 1_000
MAX_OBJECT_BYTES = 442_000
MEDIAN_OBJECT_BYTES = 46_000


@dataclass
class ObjectCorpus:
    """A set of pages, each with embedded objects."""

    site: StaticSite
    pages: Dict[str, List[str]] = field(default_factory=dict)  # html -> objects

    @property
    def object_count(self) -> int:
        return len(self.site)

    def page_paths(self) -> List[str]:
        return list(self.pages)

    def total_bytes(self) -> int:
        return sum(self.site.size_of(p) or 0 for p in self.site.paths())

    def page_weight(self, page: str) -> int:
        """Bytes transferred for a full page load."""
        total = self.site.size_of(page) or 0
        for obj in self.pages.get(page, []):
            total += self.site.size_of(obj) or 0
        return total


def _sample_object_size(rng: SeededRng) -> int:
    """Lognormal centered on the paper's 46 KB median, clipped to
    [1 KB, 442 KB]."""
    mu = math.log(MEDIAN_OBJECT_BYTES)
    size = int(rng.lognormal(mu, 1.0))
    return max(MIN_OBJECT_BYTES, min(MAX_OBJECT_BYTES, size))


def build_university_site(
    rng: SeededRng,
    num_pages: int = 200,
    objects_per_page: Tuple[int, int] = (3, 12),
    prefix: str = "",
) -> ObjectCorpus:
    """Build one emulated university website.

    Each page is an HTML document (small) plus several embedded objects
    (images/CSS/JS with the crawl's size distribution).  Paths are stable
    for a given seed.
    """
    site = StaticSite()
    pages: Dict[str, List[str]] = {}
    kinds = ["jpg", "png", "css", "js", "gif"]
    for p in range(num_pages):
        person = "faculty" if p % 3 == 0 else "student"
        page_path = f"{prefix}/{person}/u{p}/index.html"
        html_size = max(MIN_OBJECT_BYTES, int(rng.lognormal(math.log(8_000), 0.6)))
        site.add(page_path, min(html_size, MAX_OBJECT_BYTES))
        objects: List[str] = []
        for o in range(rng.randint(*objects_per_page)):
            kind = rng.choice(kinds)
            obj_path = f"{prefix}/{person}/u{p}/obj{o}.{kind}"
            site.add(obj_path, _sample_object_size(rng))
            objects.append(obj_path)
        pages[page_path] = objects
    return ObjectCorpus(site=site, pages=pages)


def build_flat_corpus(rng: SeededRng, num_objects: int,
                      size: int = 10_000, prefix: str = "/obj") -> ObjectCorpus:
    """Uniform small-object corpus for the latency/CPU stress experiments
    (Section 7.1 uses 10 KB responses)."""
    site = StaticSite()
    pages: Dict[str, List[str]] = {}
    for i in range(num_objects):
        path = f"{prefix}/{i}.bin"
        site.add(path, size)
        pages[path] = []
    return ObjectCorpus(site=site, pages=pages)
