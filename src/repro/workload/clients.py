"""Client workload processes.

Two shapes, matching the paper's two tools:

- :class:`ClosedLoopProcess` -- the Python browser emulator: each process
  loads a page (HTML + embedded objects) and "waits for the
  completion/timeout of the previous request before issuing a new one"
  (Section 7.2 runs 20 of these per client machine).
- :class:`OpenLoopGenerator` -- the Apache-bench-like tool: fixed request
  rate of single-object fetches, regardless of completions (Sections 7.1
  and 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.http.client import BrowserClient, FetchResult, PageLoadResult
from repro.net.addresses import Endpoint
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.tcp.endpoint import TcpStack
from repro.workload.website import Website


class ClosedLoopProcess:
    """One browser process issuing page loads back-to-back."""

    def __init__(
        self,
        stack: TcpStack,
        loop: EventLoop,
        target: Endpoint,
        website: Website,
        http_timeout: float = 30.0,
        retries: int = 0,
        think_time: float = 0.0,
        max_pages: Optional[int] = None,
    ):
        self.loop = loop
        self.website = website
        self.think_time = think_time
        self.max_pages = max_pages
        self.browser = BrowserClient(
            stack, loop, target, http_timeout=http_timeout, retries=retries
        )
        self.results: List[PageLoadResult] = []
        self._running = False

    def start(self) -> None:
        self._running = True
        self._next_page()

    def stop(self) -> None:
        self._running = False

    def _next_page(self) -> None:
        if not self._running:
            return
        if self.max_pages is not None and len(self.results) >= self.max_pages:
            self._running = False
            return
        page = self.website.random_page()
        self.browser.load_page(page, self.website.objects_of(page), self._done)

    def _done(self, result: PageLoadResult) -> None:
        self.results.append(result)
        if self.think_time > 0:
            self.loop.call_later(self.think_time, self._next_page)
        else:
            self.loop.call_soon(self._next_page)

    # -- analysis ------------------------------------------------------------
    @property
    def pages_loaded(self) -> int:
        return len(self.results)

    @property
    def broken_pages(self) -> int:
        return sum(1 for r in self.results if r.broken)

    def object_results(self) -> List[FetchResult]:
        return [fr for r in self.results for fr in r.object_results]


class OpenLoopGenerator:
    """Apache-bench style: fire single-object GETs at a fixed rate."""

    def __init__(
        self,
        stack: TcpStack,
        loop: EventLoop,
        target: Endpoint,
        rate: float,
        path_fn: Callable[[], str],
        http_timeout: float = 30.0,
        on_result: Optional[Callable[[FetchResult], None]] = None,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.stack = stack
        self.loop = loop
        self.target = target
        self.rate = rate
        self.path_fn = path_fn
        self.http_timeout = http_timeout
        self.on_result = on_result
        self.results: List[FetchResult] = []
        self.issued = 0
        self._running = False
        self._browser = BrowserClient(stack, loop, target, http_timeout=http_timeout)

    def start(self) -> None:
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    def set_rate(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate

    def _tick(self) -> None:
        if not self._running:
            return
        self.issued += 1
        self._browser.fetch(self.path_fn(), self._done)
        self.loop.call_later(1.0 / self.rate, self._tick)

    def _done(self, result: FetchResult) -> None:
        self.results.append(result)
        if self.on_result is not None:
            self.on_result(result)

    # -- analysis ------------------------------------------------------------
    def ok_count(self) -> int:
        return sum(1 for r in self.results if r.ok)

    def failure_count(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    def latencies(self) -> List[float]:
        return [r.latency for r in self.results if r.ok]
