"""Workloads: web object corpora, browser processes and the 24 h trace.

The paper's testbed serves a crawled university website (10K+ objects,
1 KB-442 KB, median 46 KB) to closed-loop browser-like clients, and its
simulations replay a one-day production trace with 100+ VIPs and 50K+
rules.  Neither artifact is public, so both are synthesized here with the
published marginals (see DESIGN.md's substitution table).
"""

from repro.workload.clients import ClosedLoopProcess, OpenLoopGenerator
from repro.workload.objects import ObjectCorpus, build_university_site
from repro.workload.trace import ProductionTrace, TraceConfig, generate_trace
from repro.workload.website import Website

__all__ = [
    "ObjectCorpus",
    "build_university_site",
    "Website",
    "ClosedLoopProcess",
    "OpenLoopGenerator",
    "ProductionTrace",
    "TraceConfig",
    "generate_trace",
]
