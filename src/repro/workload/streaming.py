"""Long-lived streaming download clients.

The multi-region failover experiments need flows that are *in flight* when
a whole region dies: a client mid-way through a chunked download whose
serving instance, flow store and backend all vanish at once.  The backends
pace ``/stream/<chunks>/<chunk_bytes>/<interval_ms>`` responses chunk by
chunk, so a download spans seconds of simulated time -- long enough to
straddle a region kill.

A plain request/response fetcher cannot survive that: after the kill the
client is silent (it has nothing left to send), so no packet ever reaches
the standby region to trigger flow recovery.  :class:`StreamingClient`
therefore keeps a stall timer and, when the stream goes quiet, nudges with
a pure ACK (:meth:`TcpConnection.probe`).  The ACK lands on a standby
instance, which recovers the flow from the replicated store and resumes
the transfer -- or, with replication disabled, finds nothing and resets us.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.net.addresses import Endpoint
from repro.sim.events import EventLoop
from repro.sim.process import Timer
from repro.tcp.endpoint import ConnectionHandler, TcpConnection, TcpStack

HEADER_END = b"\r\n\r\n"


@dataclass
class StreamResult:
    """Outcome of one long-lived download."""

    path: str
    ok: bool = False
    error: Optional[str] = None  # "reset" | "tcp-timeout" | "timeout" | ...
    started_at: float = 0.0
    established_at: Optional[float] = None  # response headers received
    finished_at: float = 0.0
    bytes_expected: int = 0
    bytes_received: int = 0
    stalls: int = 0  # probe nudges sent while the stream was quiet

    @property
    def complete(self) -> bool:
        return self.ok and self.bytes_received >= self.bytes_expected

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class StreamingClient(ConnectionHandler):
    """Download one paced stream, probing through stalls instead of aborting.

    ``stall_timeout`` is the patience per quiet period, not per transfer;
    every expiry sends a pure ACK and re-arms, up to ``max_stalls`` times.
    ``http_timeout`` bounds the whole download as a backstop.
    """

    def __init__(
        self,
        stack: TcpStack,
        loop: EventLoop,
        target: Endpoint,
        path: str,
        on_done: Callable[[StreamResult], None],
        stall_timeout: float = 1.0,
        max_stalls: int = 20,
        http_timeout: float = 120.0,
    ):
        self.stack = stack
        self.loop = loop
        self.target = target
        self.path = path
        self.on_done = on_done
        self.stall_timeout = stall_timeout
        self.max_stalls = max_stalls
        self.result = StreamResult(path=path, started_at=loop.now())
        self._head = bytearray()  # bytes before the header/body boundary
        self._headers_done = False
        self._stall_timer = Timer(loop, self._stalled)
        self._deadline_timer = Timer(loop, lambda: self._abort("timeout"))
        self._conn: Optional[TcpConnection] = None
        self._finished = False
        self._http_timeout = http_timeout

    def start(self) -> "StreamingClient":
        self._deadline_timer.start(self._http_timeout)
        self._stall_timer.start(self.stall_timeout)
        self._conn = self.stack.connect(self.target, self)
        return self

    # -- TCP callbacks ------------------------------------------------------
    def on_connected(self, conn: TcpConnection) -> None:
        request = (
            f"GET {self.path} HTTP/1.0\r\n"
            f"Host: {self.target.ip}\r\n\r\n"
        ).encode()
        conn.send(request)

    def on_data(self, conn: TcpConnection, data: bytes) -> None:
        if self._finished:
            return
        self._stall_timer.start(self.stall_timeout)
        if not self._headers_done:
            self._head.extend(data)
            idx = self._head.find(HEADER_END)
            if idx < 0:
                return
            self._headers_done = True
            self.result.established_at = self.loop.now()
            header_block = bytes(self._head[:idx]).decode("latin-1")
            for line in header_block.split("\r\n")[1:]:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    self.result.bytes_expected = int(value.strip())
            self.result.bytes_received = len(self._head) - idx - len(HEADER_END)
            self._head.clear()
        else:
            self.result.bytes_received += len(data)
        if (self.result.bytes_expected
                and self.result.bytes_received >= self.result.bytes_expected):
            self._complete()

    def on_remote_close(self, conn: TcpConnection) -> None:
        if self._finished:
            return
        if (self._headers_done and self.result.bytes_expected
                and self.result.bytes_received >= self.result.bytes_expected):
            self._complete()
        else:
            self._finish(False, "closed-early")

    def on_error(self, conn: TcpConnection, reason: str) -> None:
        if not self._finished:
            self._finish(False, "reset" if reason == "reset" else "tcp-timeout")

    # -- internals ----------------------------------------------------------
    def _stalled(self) -> None:
        """Stream went quiet: nudge so a surviving instance recovers us."""
        if self._finished:
            return
        self.result.stalls += 1
        if self.result.stalls > self.max_stalls:
            self._abort("stalled")
            return
        if self._conn is not None:
            self._conn.probe()
        self._stall_timer.start(self.stall_timeout)

    def _abort(self, error: str) -> None:
        if self._conn is not None:
            # silently abandon the socket, as a browser does
            self._conn.handler = ConnectionHandler()
            self._conn.abort("stream-" + error)
        self._finish(False, error)

    def _complete(self) -> None:
        if self._conn is not None and self._conn.state.can_send:
            self._conn.close()
        self._finish(True, None)

    def _finish(self, ok: bool, error: Optional[str]) -> None:
        if self._finished:
            return
        self._finished = True
        self._stall_timer.cancel()
        self._deadline_timer.cancel()
        self.result.ok = ok
        self.result.error = error
        self.result.finished_at = self.loop.now()
        self.on_done(self.result)


class StreamingFleet:
    """Launch ``n`` staggered streaming downloads and collect results."""

    def __init__(
        self,
        stacks: List[TcpStack],
        loop: EventLoop,
        target: Endpoint,
        path: str,
        count: int,
        start_at: float = 0.0,
        spacing: float = 0.05,
        stall_timeout: float = 1.0,
        max_stalls: int = 20,
        http_timeout: float = 120.0,
    ):
        self.stacks = stacks
        self.loop = loop
        self.target = target
        self.path = path
        self.count = count
        self.start_at = start_at
        self.spacing = spacing
        self.stall_timeout = stall_timeout
        self.max_stalls = max_stalls
        self.http_timeout = http_timeout
        self.results: List[StreamResult] = []
        self.clients: List[StreamingClient] = []

    def start(self) -> None:
        for i in range(self.count):
            stack = self.stacks[i % len(self.stacks)]
            delay = self.start_at + i * self.spacing
            self.loop.call_later(delay, lambda s=stack: self._launch(s))

    def _launch(self, stack: TcpStack) -> None:
        client = StreamingClient(
            stack, self.loop, self.target, self.path, self.results.append,
            stall_timeout=self.stall_timeout, max_stalls=self.max_stalls,
            http_timeout=self.http_timeout,
        )
        self.clients.append(client)
        client.start()

    # -- analysis ------------------------------------------------------------
    def completed(self) -> int:
        return sum(1 for r in self.results if r.complete)

    def broken(self) -> int:
        return sum(1 for r in self.results if not r.complete)

    def unfinished(self) -> int:
        return self.count - len(self.results)
