"""Synthetic 24-hour production traffic trace (paper Section 8 setup).

The paper's trace is proprietary; its published aggregates parameterize
this generator: 100+ VIPs, 50K+ L7 rules total, 10-minute intervals over
24 hours, and per-VIP max-to-average traffic ratios spanning 1.07x-50.3x
with a ~3.7x mean (Figure 15 -- the quantity that *is* the cost-saving
result, so reproducing its marginals reproduces the analysis).

Per-VIP profiles mix three archetypes:
- steady diurnal (sinusoid, small amplitude) -> ratios near 1.1-2x;
- peaky diurnal (large amplitude + noise) -> ratios 2-6x;
- bursty (flash crowds on a low base) -> ratios up to ~50x.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.assignment.problem import InstanceSpec, VipSpec
from repro.sim.random import SeededRng


@dataclass
class TraceConfig:
    num_vips: int = 100
    intervals: int = 144  # 24 h of 10-minute windows
    interval_seconds: float = 600.0
    total_rules_target: int = 70_000
    # aggregate traffic scale (arbitrary units; capacities use the same)
    base_traffic_scale: float = 100.0
    zipf_skew: float = 1.1
    steady_fraction: float = 0.55
    peaky_fraction: float = 0.30  # remainder is bursty


@dataclass
class ProductionTrace:
    """Per-VIP, per-interval traffic plus per-VIP rule counts."""

    config: TraceConfig
    vips: List[str]
    traffic: Dict[str, List[float]]  # vip -> per-interval traffic
    rules: Dict[str, int]
    profiles: Dict[str, str] = field(default_factory=dict)

    @property
    def intervals(self) -> int:
        return self.config.intervals

    def total_rules(self) -> int:
        return sum(self.rules.values())

    def traffic_at(self, interval: int) -> Dict[str, float]:
        return {v: self.traffic[v][interval] for v in self.vips}

    def total_traffic_at(self, interval: int) -> float:
        return sum(self.traffic[v][interval] for v in self.vips)

    def max_to_avg(self, vip: str) -> float:
        series = self.traffic[vip]
        avg = sum(series) / len(series)
        return max(series) / avg if avg > 0 else 1.0

    def max_to_avg_all(self) -> Dict[str, float]:
        return {v: self.max_to_avg(v) for v in self.vips}

    def vips_by_volume(self) -> List[str]:
        """VIPs sorted by total traffic, descending (Fig. 15's x-axis)."""
        return sorted(self.vips, key=lambda v: -sum(self.traffic[v]))

    def interval_vip_specs(
        self,
        interval: int,
        instance_capacity: float,
        replica_factor: float = 4.0,
        oversub: float = 0.25,
        max_replicas: Optional[int] = None,
    ) -> List[VipSpec]:
        """Build the assignment problem's VIP specs for one interval.

        Section 8 sets n_v = 4 * t_v / T_y ("4x more redundancy than using
        YODA individually"), with at least 2 replicas.
        """
        specs = []
        for vip in self.vips:
            t_v = self.traffic[vip][interval]
            if t_v <= 0:
                continue
            n_v = max(1, math.ceil(replica_factor * t_v / instance_capacity))
            if max_replicas is not None:
                n_v = min(n_v, max_replicas)
            # feasibility floor: the per-instance share after f_v failures,
            # t_v / (n_v - f_v), must fit one instance's capacity
            feasible_n = math.ceil(t_v / (instance_capacity * (1.0 - oversub)))
            n_v = max(n_v, feasible_n, 1)
            specs.append(VipSpec(
                name=vip, traffic=t_v, rules=self.rules[vip],
                replicas=n_v, oversub=oversub,
            ))
        return specs


def _rule_count(rng: SeededRng, target_mean: float) -> int:
    """Heavy-tailed rules per VIP ("billions of URLs and cookies" for the
    big tenants, a handful for small ones)."""
    sigma = 1.1
    mu = math.log(target_mean) - sigma * sigma / 2.0
    # cap below the Section 8 per-instance rule capacity (R_y = 2K) so
    # every VIP is placeable
    return max(5, min(1_800, int(rng.lognormal(mu, sigma))))


def generate_trace(rng: SeededRng, config: Optional[TraceConfig] = None) -> ProductionTrace:
    cfg = config or TraceConfig()
    rng = rng.fork("trace")
    vips = [f"vip-{i:03d}" for i in range(cfg.num_vips)]
    weights = rng.zipf_weights(cfg.num_vips, cfg.zipf_skew)

    rules: Dict[str, int] = {}
    mean_rules = cfg.total_rules_target / cfg.num_vips
    for vip in vips:
        rules[vip] = _rule_count(rng, mean_rules)

    traffic: Dict[str, List[float]] = {}
    profiles: Dict[str, str] = {}
    for vip, weight in zip(vips, weights):
        base = cfg.base_traffic_scale * weight * cfg.num_vips
        roll = rng.random()
        if roll < cfg.steady_fraction:
            profiles[vip] = "steady"
            series = _diurnal(rng, cfg.intervals, base,
                              amplitude=rng.uniform(0.02, 0.35), noise=0.04)
        elif roll < cfg.steady_fraction + cfg.peaky_fraction:
            profiles[vip] = "peaky"
            series = _diurnal(rng, cfg.intervals, base,
                              amplitude=rng.uniform(0.5, 0.95), noise=0.15)
        else:
            profiles[vip] = "bursty"
            series = _bursty(rng, cfg.intervals, base)
        traffic[vip] = series
    return ProductionTrace(config=cfg, vips=vips, traffic=traffic,
                           rules=rules, profiles=profiles)


def _diurnal(rng: SeededRng, n: int, base: float,
             amplitude: float, noise: float) -> List[float]:
    phase = rng.uniform(0, 2 * math.pi)
    out = []
    for i in range(n):
        level = 1.0 + amplitude * math.sin(2 * math.pi * i / n + phase)
        level *= max(0.1, 1.0 + rng.gauss(0, noise))
        out.append(base * level)
    return out


def _bursty(rng: SeededRng, n: int, base: float) -> List[float]:
    """Low steady floor with a few flash crowds (max/avg can reach ~50x)."""
    floor = base * rng.uniform(0.05, 0.3)
    out = [floor * max(0.2, 1.0 + rng.gauss(0, 0.1)) for _ in range(n)]
    bursts = rng.randint(1, 4)
    for _ in range(bursts):
        center = rng.randint(0, n - 1)
        width = rng.randint(1, 6)
        height = floor * rng.uniform(8, 160)
        for i in range(max(0, center - width), min(n, center + width + 1)):
            falloff = 1.0 - abs(i - center) / (width + 1)
            out[i] = max(out[i], height * falloff)
    return out


# ---------------------------------------------------------------------------
# Diurnal + flash-crowd load trace (the sharded scale experiment's input;
# sized in modeled *users*, then compressed onto simulation time)
# ---------------------------------------------------------------------------

@dataclass
class DiurnalConfig:
    """A population-scale day of traffic, compressed for simulation.

    The modeled side is millions of users on a 24 h cycle; the simulated
    side plays the same *shape* in ``sim_seconds`` of virtual time with
    ``sim_fraction`` of the modeled request rate, so the generator also
    serves the future autoscaler experiment at full modeled scale.
    """

    seed: int = 2016
    users: int = 2_000_000  # modeled population
    requests_per_user_hour: float = 6.0  # each, while active
    diurnal_amplitude: float = 0.55  # peak/trough swing around the mean
    peak_hour: float = 20.0  # evening peak, like the paper's Figure 15
    # flash crowds: (start as a fraction of the day, rate multiplier at
    # the spike, width as a fraction of the day)
    flash_crowds: Tuple[Tuple[float, float, float], ...] = (
        (0.35, 3.0, 0.04),
        (0.70, 5.0, 0.02),
    )
    noise: float = 0.03  # multiplicative per-interval jitter
    # compression onto simulation time
    sim_seconds: float = 40.0  # virtual seconds covering the whole day
    interval_seconds: float = 2.0  # rate-update cadence (sim time)
    sim_fraction: float = 2e-4  # fraction of modeled rps actually issued

    @property
    def modeled_base_rps(self) -> float:
        return self.users * self.requests_per_user_hour / 3600.0

    @property
    def num_intervals(self) -> int:
        return max(1, int(round(self.sim_seconds / self.interval_seconds)))


@dataclass
class DiurnalTrace:
    """Per-interval request rates: modeled (population) and simulated."""

    config: DiurnalConfig
    times: List[float]  # sim-time start of each interval
    modeled_rps: List[float]
    sim_rates: List[float]

    def rate_at(self, sim_time: float) -> float:
        """Simulated request rate in force at ``sim_time``."""
        idx = min(len(self.sim_rates) - 1,
                  max(0, int(sim_time / self.config.interval_seconds)))
        return self.sim_rates[idx]

    def peak_to_mean(self) -> float:
        mean = sum(self.modeled_rps) / len(self.modeled_rps)
        return max(self.modeled_rps) / mean if mean > 0 else 1.0


def diurnal_shape(cfg: DiurnalConfig, day_fraction: float) -> float:
    """The deterministic rate multiplier at a point in the day ([0, 1))."""
    hour = (day_fraction * 24.0) % 24.0
    level = 1.0 + cfg.diurnal_amplitude * math.cos(
        2 * math.pi * (hour - cfg.peak_hour) / 24.0)
    for start, magnitude, width in cfg.flash_crowds:
        if width <= 0:
            continue
        dist = abs(day_fraction - start)
        if dist < width:
            # triangular spike peaking at `magnitude` times the base
            level = max(level, magnitude * (1.0 - dist / width))
    return max(0.05, level)


def generate_diurnal_trace(config: Optional[DiurnalConfig] = None,
                           stream: str = "diurnal") -> DiurnalTrace:
    """Build the compressed day.  Same config + stream => same trace,
    bit-for-bit; distinct ``stream`` labels (one per cell) give phase-
    aligned but independently jittered copies."""
    cfg = config or DiurnalConfig()
    rng = SeededRng(cfg.seed).fork(stream)
    times: List[float] = []
    modeled: List[float] = []
    sim_rates: List[float] = []
    base = cfg.modeled_base_rps
    for i in range(cfg.num_intervals):
        t = i * cfg.interval_seconds
        frac = (t + 0.5 * cfg.interval_seconds) / cfg.sim_seconds
        level = diurnal_shape(cfg, frac)
        if cfg.noise > 0:
            level *= max(0.2, 1.0 + rng.gauss(0, cfg.noise))
        rps = base * level
        times.append(t)
        modeled.append(rps)
        sim_rates.append(max(0.5, rps * cfg.sim_fraction))
    return DiurnalTrace(config=cfg, times=times, modeled_rps=modeled,
                        sim_rates=sim_rates)


def uniform_instances(count: int, traffic_capacity: float,
                      rule_capacity: int) -> List[InstanceSpec]:
    """Homogeneous instance pool (the paper's instances are identical VMs)."""
    return [
        InstanceSpec(f"yoda-{i:03d}", traffic_capacity, rule_capacity)
        for i in range(count)
    ]
