"""AIMD adaptive concurrency limiting.

Bounds how many connection-phase flows an instance holds at once, driven
by the latency of the storage operations those flows depend on.  When the
TCPStore runs slow (overloaded, degraded, partially partitioned), admitting
more handshakes just queues more timers behind the same sick store -- the
timeout storm the paper's 100 ms op deadline turns into RST storms.  The
limiter converts that degradation into SYN-stage backpressure instead:
multiplicative decrease on a slow/failed op, additive increase after a
window of healthy ones (TCP Reno's control law, applied to admission).

Pure counters over a caller-supplied clock: acquiring, releasing and
observing never schedule events or draw randomness, so a limiter that is
never driven to its limit is invisible to the packet schedule.
"""

from __future__ import annotations

from typing import Optional

from repro.qos.config import QosConfig


class AdaptiveConcurrencyLimiter:
    """AIMD limit on in-flight connection admissions."""

    __slots__ = ("limit", "min_limit", "max_limit", "latency_target",
                 "backoff", "increase", "cooldown", "inflight",
                 "decreases", "increases", "_ok_streak", "_last_decrease")

    def __init__(self, config: QosConfig):
        self.limit = float(config.limiter_initial)
        self.min_limit = float(config.limiter_min)
        self.max_limit = float(config.limiter_max)
        self.latency_target: Optional[float] = config.limiter_latency_target
        self.backoff = config.limiter_backoff
        self.increase = config.limiter_increase
        self.cooldown = config.limiter_cooldown
        self.inflight = 0
        self.decreases = 0
        self.increases = 0
        self._ok_streak = 0
        self._last_decrease = float("-inf")

    def try_acquire(self) -> bool:
        """Claim a connection-phase slot; False = shed this SYN."""
        if self.inflight >= int(self.limit):
            return False
        self.inflight += 1
        return True

    def release(self) -> None:
        """A flow left the connection phase (established or destroyed)."""
        if self.inflight > 0:
            self.inflight -= 1

    def observe(self, latency: float, ok: bool, now: float) -> None:
        """Feed one storage-op outcome into the control law."""
        if self.latency_target is None:
            return
        if not ok or latency > self.latency_target:
            self._ok_streak = 0
            # one decrease per cooldown window, or a burst of slow ops
            # would collapse the limit to the floor in a single RTT
            if now - self._last_decrease >= self.cooldown:
                self.limit = max(self.min_limit, self.limit * self.backoff)
                self._last_decrease = now
                self.decreases += 1
            return
        self._ok_streak += 1
        if self._ok_streak >= int(self.limit):
            self.limit = min(self.max_limit, self.limit + self.increase)
            self._ok_streak = 0
            self.increases += 1
