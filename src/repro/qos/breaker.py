"""Per-backend circuit breakers feeding the selection path.

A :class:`CircuitBreaker` is a pure state machine over a caller-supplied
clock -- no timers, no randomness -- so an always-closed breaker board is
invisible to the deterministic packet schedule.  The classic three
states:

- **CLOSED**: traffic flows; consecutive connect failures (or a connect
  latency EWMA above threshold) trip it OPEN.
- **OPEN**: the backend is skipped by selection; after ``open_duration``
  the next ``allow`` check falls through to HALF_OPEN.
- **HALF_OPEN**: a bounded number of probe connections are admitted;
  ``half_open_probes`` successes close the breaker, any failure re-opens
  it.  If every probe slot is consumed but no verdict arrives within
  another ``open_duration`` (the probe flow died some other way), the
  slots are re-issued rather than deadlocking the backend out forever.

The board plugs into ``RuleTable.select`` via :class:`BreakerView`, which
wraps the controller's health view: a backend is selectable when the
monitor likes it AND its breaker admits traffic.  Selection's existing
fail-open second scan (``_FailOpen``) deliberately bypasses the breakers
too -- when every candidate looks sick, routing somewhere beats resetting
the client.
"""

from __future__ import annotations

import enum
from functools import partial
from typing import Callable, Dict, Optional

from repro.core.selector import BackendView
from repro.qos.config import QosConfig


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """One backend's breaker; all transitions are driven by ``now``."""

    __slots__ = (
        "failure_threshold", "latency_threshold", "min_latency_samples",
        "open_duration", "half_open_probes", "ewma_alpha", "state",
        "latency_ewma", "open_count", "_fail_streak", "_samples",
        "_opened_at", "_probes_issued", "_probe_successes", "_last_probe_at",
        "listener",
    )

    def __init__(self, failure_threshold: int = 5,
                 latency_threshold: Optional[float] = None,
                 open_duration: float = 1.0, half_open_probes: int = 2,
                 min_latency_samples: int = 10, ewma_alpha: float = 0.3,
                 listener: Optional[Callable[[BreakerState, BreakerState], None]] = None):
        if failure_threshold < 1 or half_open_probes < 1:
            raise ValueError("breaker thresholds must be >= 1")
        self.failure_threshold = failure_threshold
        self.latency_threshold = latency_threshold
        self.min_latency_samples = min_latency_samples
        self.open_duration = open_duration
        self.half_open_probes = half_open_probes
        self.ewma_alpha = ewma_alpha
        self.state = BreakerState.CLOSED
        self.latency_ewma: Optional[float] = None
        self.open_count = 0
        self._fail_streak = 0
        self._samples = 0
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probe_successes = 0
        self._last_probe_at = 0.0
        self.listener = listener

    # ------------------------------------------------------------ transitions --
    def _transition(self, new: BreakerState, now: float) -> None:
        old, self.state = self.state, new
        if new is BreakerState.OPEN:
            self.open_count += 1
            self._opened_at = now
            self._fail_streak = 0
        elif new is BreakerState.HALF_OPEN:
            self._probes_issued = 0
            self._probe_successes = 0
            self._last_probe_at = now
        elif new is BreakerState.CLOSED:
            self._fail_streak = 0
            self._samples = 0
            self.latency_ewma = None  # a fresh start after recovery
        if self.listener is not None and old is not new:
            self.listener(old, new)

    # ------------------------------------------------------------- feedback --
    def record_success(self, now: float, latency: Optional[float] = None) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self._transition(BreakerState.CLOSED, now)
            return
        if self.state is BreakerState.OPEN:
            # a straggler from before the trip; the probe phase decides
            return
        self._fail_streak = 0
        if latency is not None and self.latency_threshold is not None:
            ewma = self.latency_ewma
            self.latency_ewma = (latency if ewma is None
                                 else ewma + self.ewma_alpha * (latency - ewma))
            self._samples += 1
            if (self._samples >= self.min_latency_samples
                    and self.latency_ewma > self.latency_threshold):
                self._transition(BreakerState.OPEN, now)

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN, now)
            return
        if self.state is BreakerState.OPEN:
            return
        self._fail_streak += 1
        if self._fail_streak >= self.failure_threshold:
            self._transition(BreakerState.OPEN, now)

    # -------------------------------------------------------------- queries --
    def allow(self, now: float) -> bool:
        """May new traffic be routed to this backend right now?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self._opened_at >= self.open_duration:
                self._transition(BreakerState.HALF_OPEN, now)
                return True
            return False
        # HALF_OPEN: admit while probe slots remain; recycle stuck slots
        if self._probes_issued >= self.half_open_probes:
            if now - self._last_probe_at >= self.open_duration:
                self._probes_issued = self._probe_successes
                return True
            return False
        return True

    def on_probe_sent(self, now: float) -> None:
        """Selection routed a probe here while half-open."""
        if self.state is BreakerState.HALF_OPEN:
            self._probes_issued += 1
            self._last_probe_at = now


class BreakerBoard:
    """All of one instance's breakers, created lazily per backend."""

    def __init__(self, config: QosConfig,
                 on_transition: Optional[Callable[[str, BreakerState, BreakerState], None]] = None):
        self.config = config
        self.on_transition = on_transition
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, backend: str) -> CircuitBreaker:
        brk = self._breakers.get(backend)
        if brk is None:
            cfg = self.config
            listener = None
            if self.on_transition is not None:
                listener = partial(self.on_transition, backend)
            brk = self._breakers[backend] = CircuitBreaker(
                failure_threshold=cfg.breaker_failure_threshold,
                latency_threshold=cfg.breaker_latency_threshold,
                open_duration=cfg.breaker_open_duration,
                half_open_probes=cfg.breaker_half_open_probes,
                min_latency_samples=cfg.breaker_min_latency_samples,
                listener=listener,
            )
        return brk

    def record_success(self, backend: str, now: float,
                       latency: Optional[float] = None) -> None:
        self.breaker(backend).record_success(now, latency)

    def record_failure(self, backend: str, now: float) -> None:
        self.breaker(backend).record_failure(now)

    def allow(self, backend: str, now: float) -> bool:
        brk = self._breakers.get(backend)
        return True if brk is None else brk.allow(now)

    def on_selected(self, backend: str, now: float) -> None:
        brk = self._breakers.get(backend)
        if brk is not None:
            brk.on_probe_sent(now)

    def open_backends(self) -> list:
        return sorted(b for b, brk in self._breakers.items()
                      if brk.state is not BreakerState.CLOSED)


class BreakerView:
    """A BackendView that also consults the breaker board.

    ``on_selected`` is the optional hook ``RuleTable.select`` calls after
    a successful pick; it is what meters half-open probe slots.
    """

    def __init__(self, inner: BackendView, board: BreakerBoard,
                 clock: Callable[[], float]):
        self._inner = inner
        self._board = board
        self._clock = clock

    def is_healthy(self, backend: str) -> bool:
        return (self._inner.is_healthy(backend)
                and self._board.allow(backend, self._clock()))

    def load(self, backend: str) -> float:
        return self._inner.load(backend)

    def on_selected(self, backend: str) -> None:
        self._board.on_selected(backend, self._clock())
