"""Token-bucket admission with priority-tiered shedding.

Everything here is a pure computation over the caller-supplied clock:
buckets refill lazily on access, no events are scheduled and no
randomness is drawn, so an admission controller that never refuses a
connection is invisible to the deterministic packet schedule.

Tier semantics: tier 0 is the highest priority.  A tier-k connection is
admitted only while the bucket's fill fraction is at or above
``tier_floors[k]`` -- so as offered load drains the bucket, the lowest
tiers are shed first and the remaining tokens are reserved for the
higher-priority traffic (the classic layered-bucket discipline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.qos.config import QosConfig


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one SYN-time admission check."""

    admitted: bool
    reason: str = "ok"  # "ok" | "tier" | "rate" | "concurrency" | "draining"
    tier: int = 0


_ADMIT_T0 = AdmissionDecision(admitted=True)


class TokenBucket:
    """A lazily-refilled token bucket (no timers, pure f(now))."""

    __slots__ = ("rate", "capacity", "tokens", "updated")

    def __init__(self, rate: float, capacity: float, now: float = 0.0):
        if rate <= 0 or capacity <= 0:
            raise ValueError("token bucket rate and capacity must be positive")
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity
        self.updated = now

    def _refill(self, now: float) -> None:
        if now > self.updated:
            self.tokens = min(self.capacity,
                              self.tokens + (now - self.updated) * self.rate)
            self.updated = now

    def level(self, now: float) -> float:
        """Current fill fraction in [0, 1]."""
        self._refill(now)
        return self.tokens / self.capacity

    def try_take(self, now: float, n: float = 1.0) -> bool:
        self._refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


class AdmissionController:
    """Per-VIP token buckets + tier classification for one instance."""

    def __init__(self, config: QosConfig):
        self.config = config
        self._buckets: Dict[str, TokenBucket] = {}
        self.admitted = 0
        self.shed_by_reason: Dict[str, int] = {}

    def classify(self, client_ip: str) -> int:
        """Map a client IP to a priority tier (0 = highest)."""
        for prefix, tier in self.config.client_tiers:
            if client_ip.startswith(prefix):
                return tier
        return 0

    def _bucket(self, vip: str, now: float) -> TokenBucket:
        bucket = self._buckets.get(vip)
        if bucket is None:
            bucket = self._buckets[vip] = TokenBucket(
                self.config.admission_rate, self.config.admission_burst, now)
        return bucket

    def admit(self, vip: str, client_ip: str, now: float) -> AdmissionDecision:
        if self.config.admission_rate is None:
            self.admitted += 1
            return _ADMIT_T0
        tier = self.classify(client_ip)
        bucket = self._bucket(vip, now)
        floors = self.config.tier_floors
        floor = floors[min(tier, len(floors) - 1)]
        if floor > 0.0 and bucket.level(now) < floor:
            self.shed_by_reason["tier"] = self.shed_by_reason.get("tier", 0) + 1
            return AdmissionDecision(admitted=False, reason="tier", tier=tier)
        if not bucket.try_take(now):
            self.shed_by_reason["rate"] = self.shed_by_reason.get("rate", 0) + 1
            return AdmissionDecision(admitted=False, reason="rate", tier=tier)
        self.admitted += 1
        return AdmissionDecision(admitted=True, tier=tier)

    def shed_total(self) -> int:
        return sum(self.shed_by_reason.values())

    def bucket_level(self, vip: str, now: float) -> Optional[float]:
        bucket = self._buckets.get(vip)
        return None if bucket is None else bucket.level(now)
