"""repro.qos -- the overload-control plane.

Admission control with priority-tiered shedding, per-backend circuit
breakers, AIMD adaptive concurrency limits, and make-before-break
connection draining.  See DESIGN.md section 7.
"""

from repro.qos.admission import (
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.qos.breaker import (
    BreakerBoard,
    BreakerState,
    BreakerView,
    CircuitBreaker,
)
from repro.qos.concurrency import AdaptiveConcurrencyLimiter
from repro.qos.config import HardeningConfig, QosConfig
from repro.qos.drain import DrainCoordinator, DrainState, DrainStatus
from repro.qos.plane import InstanceQos

__all__ = [
    "AdaptiveConcurrencyLimiter",
    "AdmissionController",
    "AdmissionDecision",
    "BreakerBoard",
    "BreakerState",
    "BreakerView",
    "CircuitBreaker",
    "DrainCoordinator",
    "DrainState",
    "DrainStatus",
    "HardeningConfig",
    "InstanceQos",
    "QosConfig",
    "TokenBucket",
]
