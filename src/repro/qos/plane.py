"""Per-instance bundle of the overload-control mechanisms.

:class:`InstanceQos` is what a :class:`~repro.core.instance.YodaInstance`
actually holds: the admission controller, the breaker board and the AIMD
limiter for one VM, wired into that instance's metric registry and the
observability plane.  All decisions are pure computations on the event
loop's clock -- the qos plane schedules nothing and draws no randomness,
which is what the qos-armed golden-trace suite pins down.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.selector import BackendView
from repro.obs import OBS
from repro.qos.admission import AdmissionController, AdmissionDecision
from repro.qos.breaker import BreakerBoard, BreakerState, BreakerView
from repro.qos.concurrency import AdaptiveConcurrencyLimiter
from repro.qos.config import QosConfig


class InstanceQos:
    """One instance's overload-control state."""

    def __init__(self, config: QosConfig, clock: Callable[[], float],
                 metrics, name: str):
        self.config = config
        self.clock = clock
        self.metrics = metrics
        self.name = name
        self.admission = AdmissionController(config)
        self.breakers: Optional[BreakerBoard] = (
            BreakerBoard(config, on_transition=self._on_breaker_transition)
            if config.breaker_enabled else None
        )
        self.limiter: Optional[AdaptiveConcurrencyLimiter] = (
            AdaptiveConcurrencyLimiter(config)
            if config.limiter_enabled else None
        )
        self._view_inner: Optional[BackendView] = None
        self._view_cached: Optional[BreakerView] = None

    # -------------------------------------------------------------- admission --
    def admit_syn(self, vip: str, client_ip: str) -> AdmissionDecision:
        """SYN-time gate: token bucket + tiers, then the concurrency limit.

        An admitted decision has already consumed a limiter slot; the
        instance must release it via :meth:`release_slot` exactly once.
        """
        decision = self.admission.admit(vip, client_ip, self.clock())
        if not decision.admitted:
            self.metrics.counter(f"qos_shed_{decision.reason}").inc()
            return decision
        if self.limiter is not None and not self.limiter.try_acquire():
            self.metrics.counter("qos_shed_concurrency").inc()
            return AdmissionDecision(admitted=False, reason="concurrency",
                                     tier=decision.tier)
        return decision

    def release_slot(self) -> None:
        if self.limiter is not None:
            self.limiter.release()

    # --------------------------------------------------------------- breakers --
    def view(self, inner: BackendView) -> BackendView:
        """The selection view: controller health AND breaker verdicts."""
        if self.breakers is None:
            return inner
        if self._view_cached is None or self._view_inner is not inner:
            self._view_inner = inner
            self._view_cached = BreakerView(inner, self.breakers, self.clock)
        return self._view_cached

    def backend_success(self, backend: str, latency: float) -> None:
        if self.breakers is not None:
            self.breakers.record_success(backend, self.clock(), latency)

    def backend_failure(self, backend: str) -> None:
        if self.breakers is not None:
            self.metrics.counter("qos_backend_failures").inc()
            self.breakers.record_failure(backend, self.clock())

    def _on_breaker_transition(self, backend: str, old: BreakerState,
                               new: BreakerState) -> None:
        if new is BreakerState.OPEN:
            self.metrics.counter("qos_breaker_opens").inc()
        elif new is BreakerState.CLOSED:
            self.metrics.counter("qos_breaker_closes").inc()
        if OBS.enabled:
            OBS.flight(self.name, "breaker",
                       f"{backend} {old.value} -> {new.value}")

    # ------------------------------------------------------------ backpressure --
    def observe_kv(self, result) -> None:
        """KV-op latency feedback (wired to the instance's kv client)."""
        if self.limiter is not None:
            self.limiter.observe(result.latency, result.ok,
                                 result.finished_at)
