"""Connection draining: make-before-break scale-in.

The drain state machine (DESIGN.md section 7):

    ACTIVE --drain_instance()--> DRAINING --flow table empty--> DRAINED
                                    |
                                    +------deadline hit---> FORCED handoff

While DRAINING, the controller keeps the instance out of the mux hash
rings (no new SYNs land on it) but leaves its SNAT range and flow-table
pins intact, so established flows and backend return traffic still reach
it.  The coordinator polls the instance's flow table; when it empties the
instance is removed cleanly and its SNAT range released.  If the deadline
fires first, the instance forgets its local flow state *without deleting
the TCPStore records* and its mux pins are flushed -- the surviving flows
recover on whichever instance the ring re-hashes their next packet to,
which is exactly the failover path the paper already pays for, exercised
deliberately.

The coordinator only schedules events once a drain actually starts, so an
idle qos plane stays invisible to the deterministic packet schedule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs import OBS
from repro.sim.process import PeriodicTask


class DrainState(enum.Enum):
    DRAINING = "draining"
    DRAINED = "drained"  # flow table emptied before the deadline
    FORCED = "forced"  # deadline hit: flows handed off via TCPStore


@dataclass
class DrainStatus:
    """One instance's drain, observable by experiments and tests."""

    name: str
    started_at: float
    deadline_at: float
    flows_at_start: int
    state: DrainState = DrainState.DRAINING
    finished_at: Optional[float] = None
    flows_handed_off: int = 0
    to_spare: bool = False

    @property
    def done(self) -> bool:
        return self.state is not DrainState.DRAINING


class DrainCoordinator:
    """Watches draining instances for the controller."""

    def __init__(self, loop, controller, check_interval: float = 0.25):
        self.loop = loop
        self.controller = controller
        self.drains: Dict[str, DrainStatus] = {}
        self._task = PeriodicTask(loop, check_interval, self._tick)
        self._running = False

    def start(self, name: str, deadline: float,
              to_spare: bool = False) -> DrainStatus:
        instance = self.controller.instances[name]
        now = self.loop.now()
        status = DrainStatus(
            name=name, started_at=now, deadline_at=now + deadline,
            flows_at_start=len(instance.flows), to_spare=to_spare,
        )
        self.drains[name] = status
        if not self._running:
            self._running = True
            self._task.start()
        return status

    def resume(self, name: str, started_at: float, deadline_at: float,
               flows_at_start: int, to_spare: bool = False) -> DrainStatus:
        """Adopt a drain another controller started (journal replay after
        a leadership change): the deadline is absolute -- the new leader
        finishes the old leader's clock, it does not restart it."""
        status = DrainStatus(
            name=name, started_at=started_at, deadline_at=deadline_at,
            flows_at_start=flows_at_start, to_spare=to_spare,
        )
        self.drains[name] = status
        if not self._running:
            self._running = True
            self._task.start()
        return status

    def halt(self) -> None:
        """Stop polling without resolving anything (the owning controller
        replica died; a successor resumes from the journal)."""
        self._running = False
        self._task.stop()

    def _tick(self) -> None:
        # A controller that lost its lease must not finish drains: the
        # finish path pushes mappings and flushes muxes, which its
        # successor (who resumed this drain from the journal) now owns.
        if not getattr(self.controller, "acting", lambda: True)():
            return
        now = self.loop.now()
        for name in list(self.drains):
            status = self.drains[name]
            if status.done:
                continue
            instance = self.controller.instances[name]
            if instance.host.failed:
                # Crashed mid-drain: the monitor already pulled it from the
                # mappings and its local state is gone; flows recover via
                # TCPStore like any crash.  Nothing left to wait for.
                status.flows_handed_off = 0
                self._finish(status, DrainState.FORCED, now, crashed=True)
            elif not instance.flows:
                self._finish(status, DrainState.DRAINED, now)
            elif now >= status.deadline_at:
                status.flows_handed_off = len(instance.flows)
                self._finish(status, DrainState.FORCED, now)
        if all(s.done for s in self.drains.values()):
            self._running = False
            self._task.stop()

    def _finish(self, status: DrainStatus, state: DrainState,
                now: float, crashed: bool = False) -> None:
        status.state = state
        status.finished_at = now
        if OBS.enabled:
            OBS.flight("controller", "drain_done",
                       f"{status.name} {state.value} after "
                       f"{now - status.started_at:.3f}s "
                       f"(handed_off={status.flows_handed_off})")
        self.controller._finish_drain(status, crashed=crashed)
