"""Configuration for the overload-control plane.

Two dataclasses, both pure data:

- :class:`QosConfig` sizes the qos mechanisms themselves (admission
  buckets, shedding tiers, circuit breakers, AIMD concurrency limits,
  drain deadlines).  The defaults are **armed but neutral**: every
  mechanism is constructed and consulted on the hot path, yet none of
  them can trip under a workload that stays inside capacity -- which is
  what lets the golden-trace suite assert bit-identical packet schedules
  with qos constructed but never triggered.
- :class:`HardeningConfig` gathers the hardening constants that were
  previously scattered across the controller (health-probe hysteresis)
  and the KV client (retry backoff / consecutive-timeout thresholds), so
  experiments and ablations can sweep them as one object.  Defaults equal
  the historical constants exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class QosConfig:
    """Knobs for admission, shedding, breakers, backpressure and drain."""

    # -- per-VIP token-bucket admission (new connections per second, per
    # instance).  None disables rate-based shedding entirely: every SYN
    # is admitted without drawing a token.
    admission_rate: Optional[float] = None
    admission_burst: float = 50.0
    # Priority tiers, lowest index = highest priority.  ``tier_floors[k]``
    # is the bucket fill fraction below which tier k is shed; tier 0's
    # floor should stay 0.0 so top-priority traffic is only refused when
    # the bucket is truly empty.  Lower tiers are shed first because their
    # floors are higher -- the bucket drains *through* them.
    tier_floors: Tuple[float, ...] = (0.0, 0.35, 0.7)
    # Client IP prefix -> tier assignments, e.g. (("172.16.9.", 2),).
    # First matching prefix wins; unmatched clients are tier 0.
    client_tiers: Tuple[Tuple[str, int], ...] = ()

    # -- per-backend circuit breakers
    breaker_enabled: bool = True
    breaker_failure_threshold: int = 5  # consecutive failures to open
    # EWMA of backend connect latency that trips the breaker; None
    # disables the latency criterion (failures still count).
    breaker_latency_threshold: Optional[float] = None
    breaker_min_latency_samples: int = 10
    breaker_open_duration: float = 1.0  # seconds open before probing
    breaker_half_open_probes: int = 2  # probe successes needed to close

    # -- adaptive concurrency (AIMD on observed TCPStore latency):
    # bounds connection-phase flows in flight, shrinking multiplicatively
    # when storage ops run slow or fail and growing additively while they
    # behave.  latency_target None disables the latency-driven decrease,
    # leaving only the (generous) static ceiling.
    limiter_enabled: bool = True
    limiter_initial: int = 512
    limiter_min: int = 8
    limiter_max: int = 4096
    limiter_latency_target: Optional[float] = None
    limiter_backoff: float = 0.5  # multiplicative decrease factor
    limiter_increase: float = 1.0  # additive increase per success window
    limiter_cooldown: float = 0.5  # min seconds between decreases

    # -- graceful drain (make-before-break scale-in)
    drain_deadline: float = 10.0  # force TCPStore handoff after this long
    drain_check_interval: float = 0.25


@dataclass
class HardeningConfig:
    """The scattered hardening constants, liftable as one unit.

    Every default matches the value previously hard-coded at its use
    site, so constructing a ``HardeningConfig()`` and applying it is a
    no-op -- ablations override individual fields.
    """

    # controller health monitoring (core/controller.py)
    monitor_interval: float = 0.6
    down_after: int = 2  # consecutive failed probes before marking down
    up_after: int = 2  # consecutive good probes before marking up

    # KV client retry/timeout behaviour (kvstore/client.py)
    kv_op_timeout: float = 0.1
    kv_max_retries: int = 2
    kv_dead_after_timeouts: int = 3
    kv_quarantine: float = 1.0
