"""The shard worker: one shard's sub-world and its barrier protocol half.

A worker owns an :class:`EventLoop` + :class:`Network` slice of the world
(built by a *builder* callable so tests can supply toy topologies and the
scale experiment its cell fabric), a :class:`DigestTrace` folding the
shard's packet schedule into a running SHA-256, and -- in multi-shard
plans -- a :class:`ShardGateway` for boundary packets.

The same class serves both execution modes: the inline runner calls
``inject``/``run_window``/``finish`` directly, and :func:`worker_main` is
the child-process entry point speaking the identical protocol over a
pipe.  Workers are started with the ``fork`` start method, so the builder
and plan cross into the child by inheritance, never by pickling; only
wire tuples travel the pipes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

from repro.net.network import Network
from repro.shard.gateway import DeliveryRecord, ExportRecord, ShardGateway
from repro.shard.plan import ShardPlan
from repro.sim.events import EventLoop
from repro.sim.tracing import DigestTrace


class ShardWorld(Protocol):
    """What a builder must return: a loop, its network, and extra stats."""

    loop: EventLoop
    network: Network

    def stats(self) -> Dict[str, float]: ...


WorldBuilder = Callable[[int, ShardPlan], "ShardWorld"]


class ShardWorker:
    """One shard: builds its world and steps it window by window."""

    def __init__(self, shard_index: int, plan: ShardPlan,
                 builder: WorldBuilder):
        self.shard_index = shard_index
        self.plan = plan
        self.world = builder(shard_index, plan)
        self.digest = DigestTrace(f"shard-{shard_index}")
        self.world.network.add_trace(self.digest)
        self.gateway: Optional[ShardGateway] = None
        if plan.num_shards > 1:
            self.gateway = ShardGateway(shard_index, plan, self.world.network)

    def now(self) -> float:
        return self.world.loop.now()

    def inject(self, deliveries: List[DeliveryRecord]) -> None:
        if deliveries:
            assert self.gateway is not None
            self.gateway.inject_all(deliveries)

    def run_window(self, until: float) -> List[ExportRecord]:
        self.world.loop.run(until=until)
        if self.gateway is None:
            return []
        return self.gateway.drain()

    def finish(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "shard": self.shard_index,
            "digest": self.digest.digest(),
            "records": self.digest.count,
            "tx_packets": self.world.network.metrics.counter(
                "tx_packets").value,
            "now": self.now(),
        }
        if self.gateway is not None:
            out["exported"] = self.gateway.exported
            out["injected"] = self.gateway.injected
        out.update(self.world.stats())
        return out


def worker_main(shard_index: int, plan: ShardPlan, builder: WorldBuilder,
                conn) -> None:
    """Child-process entry: build the shard, then serve barrier messages.

    Protocol (parent -> child / child -> parent):
        -> ("window", until, deliveries)   run to ``until``
        <- ("exports", shard, exports)
        -> ("finish",)
        <- ("done", shard, stats)
    Construction ends with ("ready", shard, now) so the parent can align
    every shard's start time before the first window.
    """
    try:
        worker = ShardWorker(shard_index, plan, builder)
        conn.send(("ready", shard_index, worker.now()))
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "window":
                _, until, deliveries = msg
                worker.inject(deliveries)
                exports = worker.run_window(until)
                conn.send(("exports", shard_index, exports))
            elif kind == "finish":
                conn.send(("done", shard_index, worker.finish()))
                return
            else:  # pragma: no cover - protocol misuse
                raise ValueError(f"unknown shard message {kind!r}")
    except Exception as exc:  # surface crashes instead of hanging the barrier
        try:
            conn.send(("error", shard_index, f"{type(exc).__name__}: {exc}"))
        finally:
            raise
    finally:
        conn.close()
