"""Sharded multi-process simulation: conservative-lookahead partitioning.

The world is cut by site/VIP into N shards, each running its own event
loop (optionally in its own OS process), exchanging cross-shard packets
at deterministic time-windowed barriers.  See DESIGN.md section 12.
"""

from repro.shard.barrier import BarrierCoordinator, merge_digests
from repro.shard.gateway import ShardGateway
from repro.shard.plan import CellSpec, CrossLink, ShardPlan, ShardPlanner
from repro.shard.runner import ShardedRunner, ShardRunResult, run_scenario_sharded
from repro.shard.worker import ShardWorker, worker_main
from repro.shard.world import (
    ScaleShardWorld,
    ScaleWorldConfig,
    make_scale_plan,
    run_testbed_sharded,
    scale_world_builder,
)

__all__ = [
    "BarrierCoordinator",
    "CellSpec",
    "CrossLink",
    "ScaleShardWorld",
    "ScaleWorldConfig",
    "ShardGateway",
    "ShardPlan",
    "ShardPlanner",
    "ShardRunResult",
    "ShardWorker",
    "ShardedRunner",
    "make_scale_plan",
    "merge_digests",
    "run_scenario_sharded",
    "run_testbed_sharded",
    "scale_world_builder",
    "worker_main",
]
