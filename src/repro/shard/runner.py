"""The sharded-runner facade: one call from plan to merged result.

Two execution modes over the identical barrier protocol:

- ``inline``: every :class:`ShardWorker` lives in this process and is
  stepped round-robin.  No parallelism, but bit-identical to the forked
  mode (the protocol is the same messages in the same order), so tests
  and 1-CPU machines exercise the full machinery cheaply.
- ``fork``: one OS process per shard (``multiprocessing`` with the
  ``fork`` start method -- plans and builders are inherited, never
  pickled), pipes carrying only wire tuples.  This is the mode that
  actually buys wall-clock on multi-core machines.

``run_scenario_sharded`` is the golden-equivalence entry point: it runs a
pinned chaos scenario through the sharded path (1-shard plans reuse the
scenario engine with windowed stepping) and returns digests directly
comparable to ``tests/golden/*.json``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ShardError
from repro.shard.barrier import BarrierCoordinator, merge_digests
from repro.shard.plan import ShardPlan
from repro.shard.worker import ShardWorker, WorldBuilder, worker_main


@dataclass
class ShardRunResult:
    """A finished sharded run, merged across shards."""

    num_shards: int
    window: float
    windows_run: int
    duration: float  # virtual seconds advanced past the aligned start
    digest: str  # merged run digest
    per_shard: List[Dict[str, object]] = field(default_factory=list)
    cross_shard_packets: int = 0

    @property
    def total_tx_packets(self) -> int:
        return sum(int(s.get("tx_packets", 0)) for s in self.per_shard)

    @property
    def total_records(self) -> int:
        return sum(int(s.get("records", 0)) for s in self.per_shard)


class ShardedRunner:
    """Drive a planned world for a duration and merge the outcome."""

    def __init__(self, plan: ShardPlan, builder: WorldBuilder,
                 mode: str = "fork"):
        if mode not in ("fork", "inline"):
            raise ShardError(f"unknown shard execution mode {mode!r}")
        self.plan = plan
        self.builder = builder
        self.mode = mode
        self.coordinator = BarrierCoordinator(plan)

    def run(self, duration: float) -> ShardRunResult:
        if duration <= 0:
            raise ShardError(f"duration must be positive, got {duration}")
        if self.mode == "inline":
            return self._run_inline(duration)
        return self._run_forked(duration)

    # -- inline ----------------------------------------------------------
    def _run_inline(self, duration: float) -> ShardRunResult:
        workers = [ShardWorker(i, self.plan, self.builder)
                   for i in range(self.plan.num_shards)]
        start = max(w.now() for w in workers)
        deliveries: List[List] = [[] for _ in workers]
        for until in self.coordinator.window_ends(start, duration):
            exports = []
            for worker, batch in zip(workers, deliveries):
                worker.inject(batch)
                exports.append(worker.run_window(until))
            deliveries = self.coordinator.route(exports)
        self._flush_tail(deliveries)
        stats = [w.finish() for w in workers]
        return self._result(duration, stats)

    # -- forked ----------------------------------------------------------
    def _run_forked(self, duration: float) -> ShardRunResult:
        ctx = multiprocessing.get_context("fork")
        conns, procs = [], []
        try:
            for i in range(self.plan.num_shards):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=worker_main,
                    args=(i, self.plan, self.builder, child),
                    name=f"shard-{i}",
                )
                proc.start()
                child.close()
                conns.append(parent)
                procs.append(proc)
            start = max(self._expect(c, "ready")[2] for c in conns)
            deliveries: List[List] = [[] for _ in conns]
            for until in self.coordinator.window_ends(start, duration):
                for conn, batch in zip(conns, deliveries):
                    conn.send(("window", until, batch))
                exports = [self._expect(c, "exports")[2] for c in conns]
                deliveries = self.coordinator.route(exports)
            self._flush_tail(deliveries)
            for conn in conns:
                conn.send(("finish",))
            stats = [self._expect(c, "done")[2] for c in conns]
            return self._result(duration, stats)
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join()

    @staticmethod
    def _expect(conn, kind: str) -> tuple:
        msg = conn.recv()
        if msg[0] == "error":
            raise ShardError(f"shard {msg[1]} failed: {msg[2]}")
        if msg[0] != kind:
            raise ShardError(f"expected {kind!r} from shard, got {msg[0]!r}")
        return msg

    def _flush_tail(self, deliveries: List[List]) -> None:
        # packets exported in the final window would arrive after the run
        # ends; dropping them at the cut is fine for statistics, but a
        # silent loss would skew packet accounting, so note the count
        self.tail_dropped = sum(len(batch) for batch in deliveries)

    def _result(self, duration: float,
                stats: List[Dict[str, object]]) -> ShardRunResult:
        digest = merge_digests(
            {int(s["shard"]): str(s["digest"]) for s in stats})
        crossed = sum(int(s.get("exported", 0)) for s in stats)
        return ShardRunResult(
            num_shards=self.plan.num_shards,
            window=self.plan.window,
            windows_run=self.coordinator.windows_run,
            duration=duration,
            digest=digest,
            per_shard=stats,
            cross_shard_packets=crossed,
        )


# ---------------------------------------------------------------------------
# Golden-equivalence path: chaos scenarios through the sharded machinery
# ---------------------------------------------------------------------------

def run_scenario_sharded(name: str, overrides: Optional[Dict] = None,
                         seed: int = 2016, lb: str = "yoda",
                         step_window: float = 0.25,
                         replication: Optional[bool] = None,
                         forked: bool = False) -> Dict[str, object]:
    """Run a library chaos scenario as a 1-shard sharded job.

    The world is not cut (chaos scenarios are single-cell), but the run
    goes through the shard execution shape: the loop advances in fixed
    windows, the schedule folds into a :class:`DigestTrace`, and with
    ``forked=True`` the whole thing executes in a shard worker process
    with only digests crossing the pipe.  Output digests are directly
    comparable to the pinned golden files.
    """
    if forked:
        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe()
        proc = ctx.Process(
            target=_scenario_child,
            args=(name, overrides, seed, lb, step_window, replication, child),
            name=f"shard-scenario-{name}",
        )
        proc.start()
        child.close()
        try:
            msg = parent.recv()
        finally:
            parent.close()
            proc.join(timeout=120)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join()
        if msg[0] == "error":
            raise ShardError(f"scenario worker failed: {msg[1]}")
        return msg[1]
    return _run_scenario_windowed(name, overrides, seed, lb, step_window,
                                  replication)


def _scenario_child(name, overrides, seed, lb, step_window, replication,
                    conn) -> None:
    try:
        result = _run_scenario_windowed(name, overrides, seed, lb,
                                        step_window, replication)
        conn.send(("ok", result))
    except Exception as exc:
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        raise
    finally:
        conn.close()


def _run_scenario_windowed(name, overrides, seed, lb, step_window,
                           replication=None) -> Dict[str, object]:
    # imported here: repro.chaos pulls in the full experiment stack, which
    # the lean shard data path (plan/gateway/worker) must not depend on
    from repro.chaos.library import get_scenario
    from repro.chaos.scenario import ScenarioEngine
    from repro.sim.tracing import DigestTrace

    scenario = get_scenario(name)
    if overrides:
        scenario = dataclasses.replace(scenario, **overrides)
    recorder = DigestTrace(f"scenario-{name}")
    engine = ScenarioEngine(scenario, lb=lb, seed=seed, taps=[recorder],
                            step_window=step_window, replication=replication)
    outcome = engine.run()
    return {
        "scenario": name,
        "digest": recorder.digest(),
        "records": recorder.count,
        "engine_digest": outcome.trace_digest,
        "ok": outcome.ok,
    }
