"""The shard gateway: one shard's side of every cross-shard link.

Installed as the network's export handler, it captures packets whose
destination IP belongs to another shard *at their exact transmit time*,
serializes them through :meth:`PacketPool.detach` (ownership transfer --
the local object is dead the moment it is captured), and stamps each with
the arrival time implied by the cross-shard link's latency model.  The
barrier coordinator routes the resulting wire records; the destination
shard's gateway adopts them into its own pool and schedules delivery.

Determinism: export order is the deterministic event order of the local
loop; every record carries a monotonic sequence number; the coordinator
sorts deliveries by (arrival time, origin shard, sequence), so injection
order is a pure function of the run.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.host import Host
from repro.net.network import Network
from repro.net.packet import PACKET_POOL, Packet, PacketPool
from repro.shard.plan import ShardPlan
from repro.sim.random import SeededRng

# (dst_shard, arrival_time, send_seq, origin_host_name, wire_tuple)
ExportRecord = Tuple[int, float, int, str, tuple]
# (arrival_time, origin_shard, send_seq, origin_host_name, wire_tuple)
DeliveryRecord = Tuple[float, int, int, str, tuple]


class ShardGateway:
    """Captures, serializes and rehydrates boundary packets for one shard."""

    def __init__(
        self,
        shard_index: int,
        plan: ShardPlan,
        network: Network,
        pool: Optional[PacketPool] = None,
    ):
        self.shard_index = shard_index
        self.plan = plan
        self.network = network
        self.pool = pool if pool is not None else PACKET_POOL
        # jitter on cross-shard links draws from a stream owned by the
        # *sending* gateway, independent of every in-shard stream
        self._xrng = SeededRng(plan.seed).fork(f"xshard/{shard_index}")
        self._outbox: List[ExportRecord] = []
        self._seq = 0
        self.exported = 0
        self.injected = 0
        self.unroutable = 0
        network.set_export_handler(self._export)

    # -- transmit side ---------------------------------------------------
    def _export(self, src_host: Host, packet: Packet) -> None:
        owner = self.plan.owner_of_ip(packet.dst.ip)
        if owner is None or owner[0] == self.shard_index:
            # nobody owns the address (or we do, and it is dead): same
            # fate as the network's own no-route drop
            self.unroutable += 1
            self.pool.release(packet)
            return
        dst_shard, dst_site = owner
        model = self.plan.link_model(src_host.site, dst_site)
        arrival = self.network.loop.now() + model.delay(packet, self._xrng)
        wire = self.pool.detach(packet)
        self._outbox.append(
            (dst_shard, arrival, self._seq, src_host.name, wire))
        self._seq += 1
        self.exported += 1

    def drain(self) -> List[ExportRecord]:
        """Hand the window's exports to the coordinator and reclaim the
        detached carcasses (any mutate-after-detach raises here)."""
        out, self._outbox = self._outbox, []
        self.pool.reclaim_detached()
        return out

    # -- receive side ----------------------------------------------------
    def inject_all(self, deliveries: List[DeliveryRecord]) -> None:
        """Adopt and schedule a window's worth of incoming packets.

        ``deliveries`` arrive pre-sorted by (arrival, origin shard, seq);
        conservative lookahead guarantees every arrival time is at or
        after the current window start, so scheduling is always legal.
        """
        for arrival, _origin_shard, _seq, origin_host, wire in deliveries:
            packet = self.pool.adopt(wire)
            self.network.inject(packet, arrival, src_name=origin_host)
            self.injected += 1
