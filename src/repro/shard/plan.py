"""The shard planner: cut a multi-cell world into per-process sub-worlds.

The simulated world is a set of *cells* -- namespaced
:class:`~repro.experiments.harness.Testbed` deployments (sites ``dc{k}``
and ``net{k}``, VIP ``100.64.{k}.1``, IP subnet ``k``) that only interact
over well-known cross-cell links.  The planner assigns cells to shards
round-robin, derives the conservative-lookahead window from the slowest
guarantee the cross-shard links can make (the *minimum* of every link
model's :meth:`~repro.net.links.LatencyModel.lower_bound`), and publishes
the IP-prefix ownership map shard gateways use to route boundary packets.

A zero lower bound would make the lookahead window empty -- lockstep
barriers could never advance -- so the planner rejects such links up
front instead of letting the runner spin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ShardError
from repro.net.links import FixedLatency, LatencyModel
from repro.sim.random import stable_hash32

DEFAULT_CROSS_CELL_LATENCY = 0.010  # 10 ms one-way between cells


@dataclass(frozen=True)
class CellSpec:
    """One cell's identity: everything derivable from its index + seed."""

    index: int
    seed: int

    @property
    def site(self) -> str:
        return f"dc{self.index}"

    @property
    def client_site(self) -> str:
        return f"net{self.index}"

    @property
    def vip(self) -> str:
        return f"100.64.{self.index}.1"

    def ip_prefixes(self) -> List[Tuple[str, str]]:
        """(prefix, site) pairs covering every address the cell can own.

        Mirrors the subnet stamping in :class:`Testbed`/:class:`YodaService`
        construction; the gateway resolves an exported packet's owner by
        longest matching prefix.
        """
        k = self.index
        dc, net = self.site, self.client_site
        return [
            (f"172.16.{k}.", net),  # client hosts
            (f"100.64.{k}.", dc),  # the cell's VIP
            (f"10.1.{k}.", dc),  # yoda instances
            (f"10.2.{k}.", dc),  # tcpstore servers
            (f"10.3.{k}.", dc),  # backends
            (f"10.4.{k}.", dc),  # haproxy instances
            (f"10.8.{k}.", dc),  # controller replicas
            (f"10.255.{k}.", dc),  # the L4 router
        ]


@dataclass(frozen=True)
class CrossLink:
    """One directional cross-shard site pair and its latency model."""

    src_site: str
    dst_site: str
    model: LatencyModel

    @property
    def lookahead(self) -> float:
        return self.model.lower_bound()


@dataclass
class ShardPlan:
    """The planner's output: assignment, links, window, ownership map."""

    seed: int
    num_shards: int
    cells: List[CellSpec]
    assignment: Dict[int, int]  # cell index -> shard index
    window: float  # conservative lookahead (seconds)
    links: List[CrossLink] = field(default_factory=list)
    # the complete inter-cell latency table, co-located pairs included --
    # a cell pair behaves identically whether it shares a shard or not,
    # so 1/2/4-shard legs of an experiment run the same physical world
    models: Dict[Tuple[str, str], LatencyModel] = field(default_factory=dict)
    default_model: LatencyModel = field(
        default_factory=lambda: FixedLatency(DEFAULT_CROSS_CELL_LATENCY))
    # derived lookup table (built in __post_init__)
    _prefix_owner: List[Tuple[str, int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for cell in self.cells:
            shard = self.assignment[cell.index]
            for prefix, site in cell.ip_prefixes():
                self._prefix_owner.append((prefix, shard, site))
        # longest prefix first so a short prefix can never shadow a longer
        self._prefix_owner.sort(key=lambda e: -len(e[0]))

    def shard_of_cell(self, cell_index: int) -> int:
        return self.assignment[cell_index]

    def cells_on(self, shard: int) -> List[CellSpec]:
        return [c for c in self.cells if self.assignment[c.index] == shard]

    def owner_of_ip(self, ip: str) -> Optional[Tuple[int, str]]:
        """(shard, site) owning ``ip``, or None if no cell claims it."""
        for prefix, shard, site in self._prefix_owner:
            if ip.startswith(prefix):
                return shard, site
        return None

    def link_model(self, src_site: str, dst_site: str) -> LatencyModel:
        return self.models.get((src_site, dst_site), self.default_model)


class ShardPlanner:
    """Cuts a cell-structured topology into ``num_shards`` sub-worlds."""

    def __init__(
        self,
        num_cells: int,
        num_shards: int,
        seed: int = 2016,
        cross_model: Optional[LatencyModel] = None,
        cross_models: Optional[Dict[Tuple[str, str], LatencyModel]] = None,
    ):
        if num_shards < 1:
            raise ShardError(f"num_shards must be >= 1, got {num_shards}")
        if num_cells < num_shards:
            raise ShardError(
                f"cannot spread {num_cells} cells over {num_shards} shards"
            )
        self.num_cells = num_cells
        self.num_shards = num_shards
        self.seed = seed
        self.cross_model = cross_model or FixedLatency(
            DEFAULT_CROSS_CELL_LATENCY)
        self.cross_models = dict(cross_models or {})

    def _cell_seed(self, index: int) -> int:
        # stable per-cell seed: a cell is built identically no matter which
        # shard (or how many shards) it lands on
        return stable_hash32(f"cell/{index}", salt=str(self.seed))

    def plan(self) -> ShardPlan:
        cells = [CellSpec(index=k, seed=self._cell_seed(k))
                 for k in range(self.num_cells)]
        assignment = {k: k % self.num_shards for k in range(self.num_cells)}
        links: List[CrossLink] = []
        bounds: List[float] = []
        models: Dict[Tuple[str, str], LatencyModel] = {}
        for a in cells:
            for b in cells:
                if a.index == b.index:
                    continue
                # any site of a can talk to any site of b
                for src in (a.site, a.client_site):
                    for dst in (b.site, b.client_site):
                        model = self.cross_models.get((src, dst),
                                                      self.cross_model)
                        models[(src, dst)] = model
                        if assignment[a.index] == assignment[b.index]:
                            continue  # co-located: not a lookahead bound
                        link = CrossLink(src, dst, model)
                        if link.lookahead <= 0.0:
                            raise ShardError(
                                f"cross-shard link {src}->{dst} has a zero "
                                f"latency lower bound ({model!r}); the "
                                f"conservative lookahead window would be "
                                f"empty"
                            )
                        links.append(link)
                        bounds.append(link.lookahead)
        window = min(bounds) if bounds else self.cross_model.lower_bound()
        if window <= 0.0:
            # single-shard plans with a degenerate default still need a
            # usable stepping quantum
            window = DEFAULT_CROSS_CELL_LATENCY
        return ShardPlan(
            seed=self.seed,
            num_shards=self.num_shards,
            cells=cells,
            assignment=assignment,
            window=window,
            links=links,
            models=models,
            default_model=self.cross_model,
        )
