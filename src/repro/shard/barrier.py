"""The barrier coordinator: lockstep windows with conservative lookahead.

Time advances in fixed windows of ``plan.window`` seconds -- the minimum
latency any cross-shard link can exhibit.  A packet exported during
window ``[T, T+W)`` was sent at some ``t >= T`` with link latency
``L >= W``, so it arrives at ``t + L >= T + W``: never inside a window
another shard is still executing.  So the coordinator can run every shard to ``T+W`` in
parallel, collect their exports at the barrier, and hand each shard its
incoming packets before anyone enters ``[T+W, T+2W)``: no shard ever
receives an event in its past, and no rollbacks are needed.

Routing is deterministic: exports are gathered in shard order, and each
destination's batch is sorted by (arrival time, origin shard, send
sequence) before injection.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Sequence

from repro.errors import ShardError
from repro.shard.gateway import DeliveryRecord, ExportRecord
from repro.shard.plan import ShardPlan


class BarrierCoordinator:
    """Window arithmetic + deterministic cross-shard routing."""

    def __init__(self, plan: ShardPlan):
        if plan.window <= 0.0:
            raise ShardError(f"unusable lookahead window {plan.window}")
        self.plan = plan
        self.windows_run = 0
        self.packets_routed = 0

    def window_ends(self, start: float, duration: float) -> List[float]:
        """The barrier times covering ``[start, start + duration]``."""
        count = max(1, math.ceil(duration / self.plan.window - 1e-9))
        end = start + duration
        return [min(start + (i + 1) * self.plan.window, end)
                for i in range(count)]

    def route(
        self, exports_by_shard: Sequence[List[ExportRecord]]
    ) -> List[List[DeliveryRecord]]:
        """Turn each shard's export batch into each shard's delivery batch."""
        out: List[List[DeliveryRecord]] = [
            [] for _ in range(self.plan.num_shards)
        ]
        for origin, exports in enumerate(exports_by_shard):
            for dst_shard, arrival, seq, origin_host, wire in exports:
                if not 0 <= dst_shard < self.plan.num_shards:
                    raise ShardError(
                        f"export addressed to unknown shard {dst_shard}")
                out[dst_shard].append(
                    (arrival, origin, seq, origin_host, wire))
                self.packets_routed += 1
        for batch in out:
            batch.sort(key=lambda d: (d[0], d[1], d[2]))
        self.windows_run += 1
        return out


def merge_digests(per_shard: Dict[int, str]) -> str:
    """One run digest from per-shard schedule digests (shard order)."""
    sha = hashlib.sha256()
    for shard in sorted(per_shard):
        sha.update(f"{shard}:{per_shard[shard]}\n".encode())
    return sha.hexdigest()
