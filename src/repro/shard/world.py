"""The scale world: many namespaced cells under one diurnal day of load.

Each cell is a complete small YODA deployment (its own L4 LB, instance
tier, store cluster, backends and clients) built by the standard
:class:`Testbed` with ``cell=k`` namespacing, so any number of cells can
share one event loop and network -- and be cut across shard workers at
any granularity.  Clients in every cell follow the compressed diurnal +
flash-crowd trace (:mod:`repro.workload.trace`), and a configurable
fraction of each cell's requests targets the *next* cell's VIP, which is
the traffic that exercises cross-shard links.

Construction is layout-independent: every cell builds from its own
:class:`CellSpec` seed, the inter-cell latency table comes from the plan
(identical for co-located and cut pairs), and each cell's workload RNG
streams are derived from the cell index -- so moving a cell between
shards never changes what the cell *does*, only where it executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ShardError
from repro.experiments.harness import Testbed, TestbedConfig
from repro.net.addresses import Endpoint
from repro.net.links import FixedLatency
from repro.net.network import Network
from repro.shard.plan import ShardPlan, ShardPlanner
from repro.sim.events import EventLoop
from repro.sim.random import SeededRng
from repro.workload.clients import OpenLoopGenerator
from repro.workload.trace import DiurnalConfig, DiurnalTrace, generate_diurnal_trace

SETTLE_SECONDS = 1.0  # per-shard warmup before the first barrier window


@dataclass
class ScaleWorldConfig:
    """Sizing for the sharded scale experiment."""

    seed: int = 2016
    num_cells: int = 4
    num_shards: int = 1
    # per-cell deployment (small: the point is many cells, not big ones)
    num_lb_instances: int = 3
    num_store_servers: int = 2
    num_backends: int = 3
    num_client_hosts: int = 2
    object_count: int = 40
    object_bytes: int = 6_000
    # inter-cell fabric
    cross_latency: float = 0.010  # dc <-> dc one-way (the lookahead floor)
    client_cross_latency: float = 0.030  # net <-> remote dc one-way
    cross_fraction: float = 0.15  # of each cell's rate aimed at a neighbor
    http_timeout: float = 8.0
    diurnal: DiurnalConfig = field(default_factory=DiurnalConfig)

    @classmethod
    def from_testbed(cls, cfg: TestbedConfig,
                     num_cells: Optional[int] = None,
                     diurnal: Optional[DiurnalConfig] = None
                     ) -> "ScaleWorldConfig":
        """Lift one testbed's shape into a multi-cell sharded world.

        ``cfg.num_shards`` is the opt-in knob: every cell is a replica of
        the given deployment shape (sizes, seed), partitioned by VIP
        across that many shards.
        """
        if cfg.cell is not None:
            raise ShardError(
                "pass the base (un-namespaced) TestbedConfig; cells are "
                "stamped by the planner")
        shards = max(1, cfg.num_shards)
        return cls(
            seed=cfg.seed,
            num_cells=num_cells if num_cells is not None else shards,
            num_shards=shards,
            num_lb_instances=cfg.num_lb_instances,
            num_store_servers=cfg.num_store_servers,
            num_backends=cfg.num_backends,
            num_client_hosts=cfg.num_client_hosts,
            object_count=cfg.flat_object_count,
            object_bytes=cfg.flat_object_bytes,
            diurnal=diurnal or DiurnalConfig(seed=cfg.seed),
        )


def make_scale_plan(cfg: ScaleWorldConfig) -> ShardPlan:
    """Plan the cell cut; client paths are slower than the DC backbone,
    so the backbone's 10 ms stays the conservative lookahead window."""
    models = {}
    client_model = FixedLatency(cfg.client_cross_latency)
    for j in range(cfg.num_cells):
        for k in range(cfg.num_cells):
            if j == k:
                continue
            models[(f"net{j}", f"dc{k}")] = client_model
            models[(f"dc{j}", f"net{k}")] = client_model
    planner = ShardPlanner(
        num_cells=cfg.num_cells,
        num_shards=cfg.num_shards,
        seed=cfg.seed,
        cross_model=FixedLatency(cfg.cross_latency),
        cross_models=models,
    )
    return planner.plan()


class ScaleShardWorld:
    """One shard's slice of the scale world: its cells plus their load."""

    def __init__(self, shard_index: int, plan: ShardPlan,
                 cfg: ScaleWorldConfig):
        self.shard_index = shard_index
        self.loop = EventLoop()
        rng = SeededRng(plan.seed).fork(f"shardworld/{shard_index}")
        self.network = Network(self.loop, rng)
        # the full inter-cell latency table: identical on every shard, so
        # a cell pair behaves the same co-located or cut
        for (src, dst), model in plan.models.items():
            self.network.set_latency(src, dst, model)

        self.beds: Dict[int, Testbed] = {}
        self.generators: List[OpenLoopGenerator] = []
        self.traces: Dict[int, DiurnalTrace] = {}
        for cell in plan.cells_on(shard_index):
            self.beds[cell.index] = Testbed(
                TestbedConfig(
                    seed=cell.seed,
                    cell=cell.index,
                    lb="yoda",
                    num_lb_instances=cfg.num_lb_instances,
                    num_store_servers=cfg.num_store_servers,
                    num_backends=cfg.num_backends,
                    num_client_hosts=cfg.num_client_hosts,
                    corpus="flat",
                    flat_object_count=cfg.object_count,
                    flat_object_bytes=cfg.object_bytes,
                ),
                fabric=(self.loop, self.network),
                settle=False,
            )
        # one settle for the whole shard: mappings and monitors converge
        # before the first barrier window (no cross-cell traffic yet, so
        # settling without barriers is safe)
        self.loop.run_for(SETTLE_SECONDS)

        for cell in plan.cells_on(shard_index):
            self._start_cell_load(cell.index, plan, cfg)

    def _start_cell_load(self, k: int, plan: ShardPlan,
                         cfg: ScaleWorldConfig) -> None:
        bed = self.beds[k]
        trace = generate_diurnal_trace(cfg.diurnal, stream=f"cell{k}")
        self.traces[k] = trace
        neighbor = plan.cells[(k + 1) % len(plan.cells)]
        legs: List[Tuple[OpenLoopGenerator, float]] = []
        local = OpenLoopGenerator(
            bed.client_stacks[0], self.loop, Endpoint(bed.vip, 80),
            rate=max(0.1, trace.sim_rates[0] * (1.0 - cfg.cross_fraction)),
            path_fn=bed.website.random_object,
            http_timeout=cfg.http_timeout,
        )
        legs.append((local, 1.0 - cfg.cross_fraction))
        if cfg.cross_fraction > 0 and neighbor.index != k:
            # every cell's flat corpus has the same paths, so a remote
            # fetch needs no knowledge of the remote cell beyond its VIP
            cross = OpenLoopGenerator(
                bed.client_stacks[-1], self.loop,
                Endpoint(neighbor.vip, 80),
                rate=max(0.1, trace.sim_rates[0] * cfg.cross_fraction),
                path_fn=bed.website.random_object,
                http_timeout=cfg.http_timeout,
            )
            legs.append((cross, cfg.cross_fraction))
        for gen, share in legs:
            gen.start()
            self.generators.append(gen)
            for t, rate in zip(trace.times[1:], trace.sim_rates[1:]):
                self.loop.call_later(t, gen.set_rate, max(0.1, rate * share))

    def stats(self) -> Dict[str, float]:
        return {
            "cells": len(self.beds),
            "fetches_issued": sum(g.issued for g in self.generators),
            "fetches_ok": sum(g.ok_count() for g in self.generators),
            "fetches_failed": sum(g.failure_count() for g in self.generators),
        }


def scale_world_builder(cfg: ScaleWorldConfig):
    """The ``WorldBuilder`` the sharded runner forks into each worker."""

    def build(shard_index: int, plan: ShardPlan) -> ScaleShardWorld:
        return ScaleShardWorld(shard_index, plan, cfg)

    return build


def run_testbed_sharded(config: TestbedConfig, duration: float,
                        num_cells: Optional[int] = None,
                        diurnal: Optional[DiurnalConfig] = None,
                        mode: Optional[str] = None):
    """The ``TestbedConfig.num_shards`` facade: run cell-replicas of a
    deployment shape under diurnal load through the barrier engine.

    ``num_shards=1`` (the default everywhere) stays on the in-process
    path -- one worker, no gateway, no export handler.  ``mode`` defaults
    to ``inline`` for one shard and ``fork`` for more.
    """
    from repro.shard.runner import ShardedRunner

    cfg = ScaleWorldConfig.from_testbed(config, num_cells=num_cells,
                                        diurnal=diurnal)
    plan = make_scale_plan(cfg)
    if mode is None:
        mode = "inline" if cfg.num_shards == 1 else "fork"
    runner = ShardedRunner(plan, scale_world_builder(cfg), mode=mode)
    return runner.run(duration)
