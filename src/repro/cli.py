"""Command-line experiment runner.

Regenerate any of the paper's tables/figures without pytest::

    python -m repro list
    python -m repro run fig12 --seed 7
    python -m repro run all

Each experiment prints the same rows its benchmark checks; `--seed`
changes the deterministic seed, `--quick` shrinks the workload for a fast
sanity pass.

Chaos scenarios (fault injection + invariant monitors, YODA vs the
HAProxy baseline under the same fault schedule)::

    python -m repro chaos list
    python -m repro chaos store-partition
    python -m repro chaos all --seed 7 --no-baseline
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Tuple

from repro.experiments import (
    fig6,
    fig9,
    fig10,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig_ctrl,
    fig_elastic,
    fig_failover,
    fig_overload,
    fig_scale,
    fig_stateless,
    table1,
)

# name -> (description, full_run(seed), quick_run(seed))
EXPERIMENTS: Dict[str, Tuple[str, Callable, Callable]] = {
    "table1": (
        "impact of proxy failure on website archetypes",
        lambda seed: table1.run(seed=seed),
        lambda seed: table1.run(seed=seed, sites=table1.SITES[:2]),
    ),
    "fig6": (
        "rule look-up latency vs number of rules",
        lambda seed: fig6.run(seed=seed),
        lambda seed: fig6.run(seed=seed, rule_counts=(1000, 4000, 10000),
                              lookups_per_size=300),
    ),
    "fig9": (
        "end-to-end latency breakdown (baseline / YODA / HAProxy)",
        lambda seed: fig9.run(seed=seed),
        lambda seed: fig9.run(seed=seed, rate=60.0, duration=4.0,
                              num_instances=2),
    ),
    "sec71": (
        "LB instance CPU utilization (YODA vs HAProxy)",
        lambda seed: fig9.run_cpu(seed=seed),
        lambda seed: fig9.run_cpu(seed=seed, rate=200.0, duration=3.0),
    ),
    "fig10": (
        "TCPStore latency and CPU vs load (figs 10-11)",
        lambda seed: fig10.run(seed=seed),
        lambda seed: fig10.run(seed=seed,
                               client_reqs_per_server=(4_000, 20_000),
                               duration=0.15),
    ),
    "fig12": (
        "failure recovery: 4 scenarios + packet timeline",
        lambda seed: fig12.run(seed=seed, processes=6, duration=30.0,
                               fail_at=6.0),
        lambda seed: fig12.run(seed=seed, processes=3, num_instances=6,
                               duration=15.0, fail_at=4.0),
    ),
    "fig12b": (
        "recovery packet timeline at the backend",
        lambda seed: fig12.run_timeline(seed=seed),
        lambda seed: fig12.run_timeline(seed=seed, object_bytes=500_000),
    ),
    "fig13": (
        "elastic scale-out under a 2x traffic surge",
        lambda seed: fig13.run(seed=seed),
        lambda seed: fig13.run(seed=seed, initial_instances=3,
                               spare_instances=2,
                               base_rate_per_instance=80.0,
                               duration=16.0, step_at=6.0),
    ),
    "overload": (
        "flash crowd: goodput with/without the qos overload-control plane",
        lambda seed: fig_overload.run_ablation(seed=seed),
        lambda seed: fig_overload.run_ablation(seed=seed, quick=True),
    ),
    "failover": (
        "multi-region failover: stream survival vs replication lag",
        lambda seed: fig_failover.run(seed=seed),
        lambda seed: fig_failover.run_quick(seed=seed),
    ),
    "ctrl": (
        "controller HA: outage window, crash repair, single-ctl ablation",
        lambda seed: fig_ctrl.run(seed=seed),
        lambda seed: fig_ctrl.run_quick(seed=seed),
    ),
    "scale": (
        "sharded-simulation throughput at 1/2/4 shards (BENCH_scale.json)",
        lambda seed: fig_scale.run(seed=seed),
        lambda seed: fig_scale.quick(seed=seed),
    ),
    "elastic": (
        "autoscaled vs static-peak cost on the diurnal day "
        "(BENCH_elastic.json)",
        lambda seed, **kw: fig_elastic.run(seed=seed, **kw),
        lambda seed, **kw: fig_elastic.quick(seed=seed, **kw),
    ),
    "stateless": (
        "stateless compact dispatch: memory/flow, speed, crash ablation",
        lambda seed: fig_stateless.run_ablation(seed=seed),
        lambda seed: fig_stateless.run_ablation(seed=seed, quick=True),
    ),
    "fig14": (
        "make-before-break policy updates",
        lambda seed: fig14.run(seed=seed),
        lambda seed: fig14.run(seed=seed, rate=50.0),
    ),
    "fig15": (
        "per-VIP max/avg traffic ratios (cost reduction)",
        lambda seed: fig15.run(seed=seed),
        lambda seed: fig15.run(seed=seed),
    ),
    "fig16": (
        "VIP assignment over the 24 h trace",
        lambda seed: fig16.run(seed=seed, pool_size=170),
        lambda seed: fig16.run(seed=seed, pool_size=170, interval_stride=36),
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the YODA paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    runp.add_argument("--seed", type=int, default=2016)
    runp.add_argument("--quick", action="store_true",
                      help="smaller workloads, same shapes")
    runp.add_argument("--no-autoscale", action="store_true",
                      help="(elastic only) run just the floor-provisioned "
                           "ablation leg with the control loop disarmed -- "
                           "pinned to blow the SLO under the flash crowd")
    chaosp = sub.add_parser(
        "chaos", help="run a chaos scenario ('list', a name, or 'all')")
    chaosp.add_argument("scenario", nargs="?", default=None)
    chaosp.add_argument("--list", action="store_true", dest="list_scenarios",
                        help="enumerate built-in scenarios and their "
                             "fault timelines")
    chaosp.add_argument("--seed", type=int, default=2016)
    chaosp.add_argument("--no-baseline", action="store_true",
                        help="skip the HAProxy contrast run")
    chaosp.add_argument("--no-repair", action="store_true",
                        help="disable store self-healing (read-repair, "
                             "hinted handoff, anti-entropy) -- the "
                             "durability ablation")
    chaosp.add_argument("--no-replication", action="store_true",
                        help="disable cross-site flow-store replication -- "
                             "the multi-region ablation (established "
                             "flows cannot survive a region kill)")
    chaosp.add_argument("--single-controller", action="store_true",
                        help="run with one controller replica instead of "
                             "the scenario's HA set -- the controller "
                             "ablation (a leader kill leaves the control "
                             "plane down for good)")
    chaosp.add_argument("--stateless", action="store_true",
                        help="route via the compact stateless dispatch "
                             "table instead of per-flow mux state -- the "
                             "fast-path ablation (established flows do "
                             "not survive an instance crash)")
    obsp = sub.add_parser(
        "obs", help="run a short traced workload (with a mid-run LB crash) "
                    "and emit the observability report")
    obsp.add_argument("--seed", type=int, default=2016)
    obsp.add_argument("--rate", type=float, default=80.0,
                      help="open-loop request rate (req/s)")
    obsp.add_argument("--duration", type=float, default=4.0)
    obsp.add_argument("--format", choices=["text", "prom", "json"],
                      default="text")
    obsp.add_argument("--out", default=None,
                      help="write the report to a file instead of stdout")
    args = parser.parse_args(argv)

    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "obs":
        return _run_obs(args)

    if args.command == "list":
        width = max(len(n) for n in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"  {name:<{width}}  {EXPERIMENTS[name][0]}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _, full, quick = EXPERIMENTS[name]
        kwargs = {}
        if name == "elastic" and args.no_autoscale:
            kwargs["autoscale"] = False
        started = time.perf_counter()
        result = (quick if args.quick else full)(args.seed, **kwargs)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{name} finished in {elapsed:.1f}s]\n")
    return 0


def _run_obs(args) -> int:
    # Imported lazily so `python -m repro list` stays instant.
    from repro.experiments.harness import Testbed, TestbedConfig
    from repro.obs import OBS
    from repro.obs.export import render_json, render_prometheus
    from repro.obs.report import render_report
    from repro.obs.scrape import MetricScraper

    OBS.enable()
    bed = Testbed(TestbedConfig(
        seed=args.seed, lb="yoda", num_lb_instances=3, num_store_servers=2,
        num_backends=3, corpus="flat", flat_object_bytes=10_000,
    ))
    scraper = MetricScraper(bed.loop).start()
    gen = bed.open_loop(args.rate)
    # a mid-run instance crash gives the flight recorders and the chaos
    # forensics something real to show
    bed.loop.call_later(args.duration * 0.25, lambda: bed.fail_lb_instances(1))
    bed.run(args.duration)
    gen.stop()
    bed.run(1.0)  # drain
    scraper.stop()

    if args.format == "prom":
        text = render_prometheus()
    elif args.format == "json":
        text = render_json()
    else:
        text = render_report()
        text += (
            f"\n\n== scraped time series {'=' * 38}\n"
            f"{len(scraper.names())} series over {scraper.scrapes} scrapes "
            f"(e.g. {', '.join(scraper.names()[:3])})\n"
        )
    OBS.disable()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"[obs report written to {args.out}]")
    else:
        print(text)
    return 0


def _run_chaos(args) -> int:
    # Imported lazily so `python -m repro list` stays instant.
    from repro.chaos import get_scenario, run_contrast, run_scenario
    from repro.chaos.library import BUILTIN_SCENARIOS, scenario_names

    if args.list_scenarios or args.scenario in (None, "list"):
        width = max(len(n) for n in BUILTIN_SCENARIOS)
        for name in scenario_names():
            scenario = BUILTIN_SCENARIOS[name]
            print(f"  {name:<{width}}  {scenario.description.strip()}")
            for line in scenario.timeline():
                print(f"  {'':<{width}}    {line}")
        return 0

    names = scenario_names() if args.scenario == "all" else [args.scenario]
    exit_code = 0
    for name in names:
        try:
            scenario = get_scenario(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        started = time.perf_counter()
        repair = not args.no_repair
        replication = False if args.no_replication else None
        if args.single_controller:
            import dataclasses
            scenario = dataclasses.replace(scenario, num_controllers=1)
        if args.stateless:
            import dataclasses
            from repro.l4lb.compact import StatelessConfig
            scenario = dataclasses.replace(
                scenario, stateless_config=StatelessConfig(enabled=True))
        if (args.no_baseline or args.no_replication
                or args.single_controller or args.stateless):
            # the replication ablation is a YODA-only knob; contrasting
            # it against HAProxy would compare different deployments
            outcomes = {"yoda": run_scenario(scenario, lb="yoda",
                                             seed=args.seed, repair=repair,
                                             replication=replication)}
        else:
            outcomes = run_contrast(scenario, seed=args.seed, repair=repair)
        elapsed = time.perf_counter() - started
        for outcome in outcomes.values():
            print(outcome.render())
        yoda_ok = outcomes["yoda"].ok
        haproxy = outcomes.get("haproxy")
        if haproxy is not None:
            contrast = "holds" if (yoda_ok and not haproxy.ok) else "LOST"
            print(f"[{name}: yoda {'clean' if yoda_ok else 'BROKEN'}, "
                  f"haproxy {'broken' if not haproxy.ok else 'clean'} -> "
                  f"contrast {contrast}; {elapsed:.1f}s]\n")
            if not yoda_ok:
                exit_code = 1
        else:
            print(f"[{name}: yoda {'clean' if yoda_ok else 'BROKEN'}; "
                  f"{elapsed:.1f}s]\n")
            if not yoda_ok:
                exit_code = 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
