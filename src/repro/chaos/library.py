"""Built-in chaos scenario suite.

Every scenario pairs its distinctive fault with a permanent crash of the
LB instance that is busiest at that moment ("lb:serving").  The crash is
what separates the two tiers: YODA recovers the orphaned flows through
TCPStore, while HAProxy's locally-held flow state dies with the VM and
the pinned connections break (the paper's Figure 12 / Table 1 contrast).
The distinctive fault then stresses a different layer each time --
stores, paths, health checking, or the CPU itself.
"""

from __future__ import annotations

from typing import Dict, List

from repro.chaos.faults import (
    controller_kill,
    controller_partition,
    crash,
    drain,
    duplicate,
    flap,
    latency_spike,
    lease_store_outage,
    loss,
    partition,
    probe_loss,
    region_kill,
    slow_cpu,
    surge,
    wan_partition,
)
from repro.autoscale.policy import ElasticPolicy
from repro.chaos.scenario import Scenario
from repro.qos.config import QosConfig

BUILTIN_SCENARIOS: Dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    BUILTIN_SCENARIOS[scenario.name] = scenario
    return scenario


_register(Scenario(
    name="store-partition",
    description=(
        "One TCPStore server is partitioned from the datacenter (its VM "
        "stays up, so the omniscient monitor still likes it); kv clients "
        "must detect the silence themselves, mark it dead and quarantine "
        "it.  A serving instance then crashes and recovery must succeed "
        "against the shrunken ring."
    ),
    faults=[
        partition(1.0, "store:0", "dc", duration=6.0),
        crash(3.0, "lb:serving"),
    ],
))

_register(Scenario(
    name="asym-loss",
    description=(
        "Lossy return path (10% dc->internet) plus 5% duplication on the "
        "forward path while a serving instance crashes: TCP absorbs the "
        "packet-level chaos and TCPStore absorbs the instance loss."
    ),
    faults=[
        loss(1.0, 0.10, "dc", "internet", duration=6.0),
        duplicate(1.0, 0.05, "internet", "dc", duration=6.0),
        crash(3.0, "lb:serving"),
    ],
    # 10% loss stretches transfers (RTO backoff); give pages and the
    # drain room so slow is not misread as broken
    http_timeout=20.0,
    drain=12.0,
))

_register(Scenario(
    name="store-death-midhandshake",
    description=(
        "A store replica dies right as the first wave of handshakes is "
        "persisting storage-a (it revives empty later -- Memcached keeps "
        "nothing), then a serving instance crashes: every surviving key "
        "must still be durable on the second replica."
    ),
    faults=[
        crash(0.04, "store:0", duration=5.0),
        crash(3.0, "lb:serving"),
    ],
))

_register(Scenario(
    name="instance-flap",
    description=(
        "One instance flaps (3 fail/recover cycles) while another, "
        "currently serving, crashes for good.  Flows touched by the "
        "flapping instance migrate back and forth through TCPStore "
        "without breaking."
    ),
    faults=[
        flap(1.0, "lb:0", period=1.2, count=3),
        crash(5.0, "lb:serving"),
    ],
))

_register(Scenario(
    name="gray-cpu",
    description=(
        "Gray failure: an instance silently runs 30x slower (health "
        "probes still pass) and clients see a latency spike on top; a "
        "serving instance crashes mid-run.  Correctness must survive "
        "even when performance rots."
    ),
    faults=[
        slow_cpu(1.0, "lb:0", factor=30.0, duration=6.0),
        latency_spike(1.0, 0.030, "internet", "dc", duration=6.0),
        crash(3.0, "lb:serving"),
    ],
))

_register(Scenario(
    name="double-crash",
    description=(
        "Combined failure: a serving instance and a store replica die "
        "within 100 ms of each other.  Recovery reads must race past the "
        "dead replica (first-hit-wins) while the ring heals."
    ),
    faults=[
        crash(2.0, "lb:serving"),
        crash(2.1, "store:1", duration=5.0),
    ],
    # big objects keep transfers in flight across the crash instant --
    # that is what kills HAProxy's locally-pinned connections
    object_bytes=1_200_000,
    http_timeout=20.0,
))

_register(Scenario(
    name="rolling-store-restart",
    description=(
        "Every TCPStore server restarts in sequence (each revives empty "
        "-- Memcached keeps nothing), then a serving instance crashes.  "
        "Between restarts the anti-entropy sweeper must refill the "
        "recovered server and re-home the keys that moved, or the second "
        "restart in the sequence erases the only surviving replica of "
        "everything the first one held."
    ),
    faults=[
        crash(1.0, "store:0", duration=1.2),
        crash(4.0, "store:1", duration=1.2),
        crash(7.0, "store:2", duration=1.2),
        crash(9.5, "lb:serving"),
    ],
    # slow clients + big objects keep each page in flight ~5 s, so records
    # written before a restart are still load-bearing at the next one --
    # exactly the flows the anti-entropy sweeper exists to protect
    object_bytes=4_500_000,
    client_one_way_latency=0.120,
    http_timeout=20.0,
    drain=10.0,
))

_register(Scenario(
    name="crash-heal-crash",
    description=(
        "A store replica crashes, heals empty, and then a *different* "
        "replica crashes before the run ends; a serving instance dies in "
        "between.  Keys replicated on exactly those two servers survive "
        "only if read-repair/hinted-handoff/anti-entropy refilled the "
        "healed server before the second crash -- plain client-side "
        "replication silently drops to zero copies."
    ),
    faults=[
        crash(1.0, "store:0", duration=1.2),
        crash(3.6, "store:1", duration=6.0),
        crash(3.9, "lb:serving"),
    ],
    # the instance crash lands while the healed-but-once-empty store:0 and
    # the just-dead store:1 are the two replicas of the first page wave's
    # records: recovery succeeds only if store:0 was refilled in time
    object_bytes=4_500_000,
    client_one_way_latency=0.120,
    http_timeout=20.0,
    drain=10.0,
))

_register(Scenario(
    name="probe-loss",
    description=(
        "30% of controller health probes vanish while a serving instance "
        "genuinely crashes.  Hysteresis must keep healthy instances from "
        "flapping out of the VIP ring on single dropped probes, yet "
        "still detect the real failure."
    ),
    faults=[
        probe_loss(0.5, 0.30, duration=8.0),
        crash(3.0, "lb:serving"),
    ],
))


_register(Scenario(
    name="flash-crowd",
    description=(
        "A 300 req/s open-loop surge (tier-2 clients, IP 172.16.9.x) "
        "slams the VIP while an instance is drained for scale-in "
        "mid-crowd, then a serving instance crashes outright.  The qos "
        "plane must shed the surge at SYN time (stateless RST, tier "
        "floor 60%) while tier-0 browser clients stay admitted, the "
        "drain must hand its instance off make-before-break, and "
        "recovery must still work with the pool down two -- the "
        "no-accepted-request-dropped verdict is the point of the "
        "exercise."
    ),
    faults=[
        surge(2.0, 300.0, duration=3.0),
        drain(4.0, "lb:0", deadline=6.0),
        crash(8.0, "lb:serving"),
    ],
    object_bytes=80_000,
    object_count=8,
    qos_config=QosConfig(
        admission_rate=30.0,
        admission_burst=20.0,
        tier_floors=(0.0, 0.0, 0.6),
        client_tiers=(("172.16.9.", 2),),
    ),
))


_register(Scenario(
    name="flash-crowd-autoscale",
    description=(
        "The flash crowd again -- but the pool starts at 2 instances and "
        "the autoscaler, not an operator, must react: admission-bucket "
        "pressure from the qos plane drives closed-loop scale-out (spare "
        "adoption, 2 per event, 1.5 s cooldown) while the surge is still "
        "ramping, then a serving instance crashes and the next pass must "
        "backfill the lost capacity.  Accepted requests survive every "
        "scale event and the event stream must converge (no thrash) -- "
        "audited by no-accepted-request-dropped and scale-events-converge."
    ),
    faults=[
        surge(2.0, 300.0, duration=4.0),
        crash(9.0, "lb:serving"),
    ],
    object_bytes=80_000,
    object_count=8,
    num_lb_instances=2,
    spare_instances=3,
    cpu_scale=6.0,
    http_timeout=15.0,
    drain=12.0,
    autoscale=ElasticPolicy(
        high_watermark=0.70,
        admission_pressure_high=0.40,
        check_interval=0.5,
        cooldown_out=1.5,
        cooldown_in=8.0,
        step_out=2,
        min_instances=2,
        max_instances=5,
        scale_down=False,
    ),
    qos_config=QosConfig(
        admission_rate=30.0,
        admission_burst=20.0,
        tier_floors=(0.0, 0.0, 0.6),
        client_tiers=(("172.16.9.", 2),),
    ),
))

_register(Scenario(
    name="scale-in-during-region-kill",
    description=(
        "The autoscaler sees an idle pool and starts a make-before-break "
        "scale-in drain -- and the whole primary region dies while that "
        "drain is still bleeding flows.  The controller must not confuse "
        "the in-flight voluntary drain with the region death: it promotes "
        "the standby, resumes every established stream from replicated "
        "flow state, and the 30 s scale-in cooldown keeps the policy from "
        "piling further events onto the failover (scale-events-converge "
        "audits exactly that)."
    ),
    faults=[
        region_kill(3.5, "dc"),
    ],
    clients=0,  # page clients cannot outlive their region; streams can
    streams=6,
    duration=12.0,
    drain=10.0,
    standby_site="dc2",
    num_lb_instances=4,
    autoscale=ElasticPolicy(
        low_watermark=0.30,
        check_interval=1.0,
        scale_down=True,
        drain=True,
        drain_deadline=6.0,
        cooldown_out=30.0,
        cooldown_in=30.0,
        min_instances=3,
    ),
))

_register(Scenario(
    name="region-kill",
    description=(
        "The whole primary region dies at once -- instances, stores, "
        "backends, L4 router, the replication relay itself.  Long-lived "
        "streaming downloads are mid-transfer at the kill; the controller "
        "must detect the region death, promote the standby store cluster, "
        "re-anchor the VIP at the standby L4 LB, and the standby "
        "instances must resume every established stream from the "
        "replicated flow state (re-serving from a standby backend and "
        "suppressing the bytes the client already acknowledged).  The "
        "--no-replication ablation breaks every established stream "
        "deterministically."
    ),
    faults=[
        region_kill(3.0, "dc"),
    ],
    clients=0,  # page clients cannot outlive their region; streams can
    streams=6,
    duration=12.0,
    drain=10.0,
    standby_site="dc2",
))

_register(Scenario(
    name="wan-partition",
    description=(
        "The WAN between the regions is severed for 5 s while a serving "
        "instance crashes inside the primary.  Replication backlogs and "
        "catches up after the heal; the controller must NOT promote the "
        "standby (its omniscient probes still see the primary alive) -- "
        "promotion here would be split brain.  In-region recovery of the "
        "crashed instance's flows proceeds exactly as single-site."
    ),
    faults=[
        wan_partition(2.0, "dc", "dc2", duration=5.0),
        crash(3.0, "lb:serving"),
    ],
    streams=4,
    standby_site="dc2",
    drain=10.0,
))

_register(Scenario(
    name="region-gray-failure",
    description=(
        "Partial-site gray failure: one primary instance and one primary "
        "store replica die, and the WAN doubles in latency -- but the "
        "region as a whole is alive.  The controller must treat this as "
        "ordinary single-site attrition (in-region recovery, ring "
        "shrink), never as a region death; streams ride through on "
        "surviving primary capacity."
    ),
    faults=[
        crash(2.0, "store:0", duration=6.0),
        latency_spike(2.0, 0.040, "dc", "dc2", duration=6.0),
        crash(3.5, "lb:serving"),
    ],
    streams=4,
    standby_site="dc2",
    drain=10.0,
))


_register(Scenario(
    name="ctrl-leader-kill-mid-drain",
    description=(
        "The lease-holding controller is killed for good while a drain "
        "it started is still in flight, then a serving instance crashes. "
        "A follower must win the next lease epoch, replay the journal, "
        "finish the old leader's drain on the old leader's deadline, and "
        "handle the crash -- while the data plane rides out the "
        "leaderless window untouched."
    ),
    faults=[
        drain(2.5, "lb:0", deadline=7.0),
        controller_kill(3.0, "ctl:leader"),
        crash(6.5, "lb:serving"),
    ],
    streams=4,
    num_controllers=3,
))

_register(Scenario(
    name="ctrl-leader-kill-mid-failover",
    description=(
        "The primary region dies -- and the lease-holding controller "
        "dies with it, because controller replicas are hosts in a "
        "region, not omniscient daemons.  The standby-site replica must "
        "win the lease against a store cluster that is half gone, "
        "replay the journal, detect the region death and promote the "
        "standby -- resuming every established stream.  This is the "
        "region-kill scenario without the singleton controller's "
        "immortality assumption."
    ),
    faults=[
        region_kill(3.0, "dc"),
    ],
    clients=0,  # page clients cannot outlive their region; streams can
    streams=6,
    duration=12.0,
    drain=12.0,
    standby_site="dc2",
    num_controllers=3,
))

_register(Scenario(
    name="ctrl-partition-dueling-leader",
    description=(
        "The lease holder is cut off from the lease store while its VM "
        "stays up, with a 2 s step-down grace: it keeps acting on its "
        "stale lease while a follower claims the next epoch -- two live "
        "controllers, both pushing.  The fence gates must serialize the "
        "duel (the old epoch's pushes bounce) and the instance crash in "
        "the middle must be recovered exactly once, by the new leader."
    ),
    faults=[
        controller_partition(2.0, "ctl:leader", duration=6.0),
        crash(4.5, "lb:serving"),
    ],
    streams=4,
    num_controllers=3,
    stepdown_grace=2.0,
))

_register(Scenario(
    name="ctrl-rolling-restart",
    description=(
        "Operational churn: one leader restarts, the lease store goes "
        "dark for a spell (nobody can renew or claim), then the next "
        "leader restarts too, with an instance crash landing right "
        "inside the last takeover.  Long streams must ride through "
        "every handoff; each new leader resumes from the journal."
    ),
    faults=[
        controller_kill(2.0, "ctl:leader", duration=3.0),
        lease_store_outage(6.0, duration=1.5),
        controller_kill(10.0, "ctl:leader", duration=3.0),
        crash(11.5, "lb:serving"),
    ],
    streams=4,
    stream_chunks=120,  # ~12 s: alive across both leader restarts
    duration=14.0,
    drain=10.0,
    num_controllers=3,
))


def get_scenario(name: str) -> Scenario:
    try:
        return BUILTIN_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (built-ins: {known})") from None


def scenario_names() -> List[str]:
    return sorted(BUILTIN_SCENARIOS)
