"""Chaos engine: declarative fault injection + online invariant monitors.

Three layers:

- :mod:`repro.chaos.faults` -- fault specs (partitions, asymmetric loss,
  duplication, latency spikes, crashes, flapping, gray CPU slowdowns,
  probe loss) and their application to a :class:`Testbed`.
- :mod:`repro.chaos.invariants` -- an online monitor that taps the packet
  trace and audits the paper's Section 4.2 guarantees while a run executes.
- :mod:`repro.chaos.scenario` -- the engine that compiles a seeded fault
  timeline onto the event loop and runs it against YODA and the HAProxy
  baseline, plus :mod:`repro.chaos.library`'s built-in scenario suite.

Run from the command line::

    python -m repro chaos list
    python -m repro chaos store-partition
    python -m repro chaos all --seed 7
"""

from repro.chaos.faults import (
    FaultSpec,
    crash,
    duplicate,
    flap,
    latency_spike,
    loss,
    partition,
    probe_loss,
    slow_cpu,
)
from repro.chaos.invariants import (
    InvariantMonitor,
    ReplicationFactorMonitor,
    Verdict,
    Violation,
)
from repro.chaos.library import BUILTIN_SCENARIOS, get_scenario
from repro.chaos.scenario import (
    Scenario,
    ScenarioEngine,
    ScenarioOutcome,
    run_contrast,
    run_scenario,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "FaultSpec",
    "InvariantMonitor",
    "ReplicationFactorMonitor",
    "Scenario",
    "ScenarioEngine",
    "ScenarioOutcome",
    "Verdict",
    "Violation",
    "crash",
    "duplicate",
    "flap",
    "get_scenario",
    "latency_spike",
    "loss",
    "partition",
    "probe_loss",
    "run_contrast",
    "run_scenario",
    "slow_cpu",
]
