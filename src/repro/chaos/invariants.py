"""Online invariant monitors for chaos runs.

:class:`InvariantMonitor` is a packet-trace tap (``network.add_trace``)
that audits the paper's Section 4.2 guarantees *while the run executes*:

- **storage-before-ack**: a YODA instance never emits the client-facing
  SYN-ACK before the client record is durable in TCPStore (storage-a),
  and never ACKs the backend's SYN-ACK before the server record and the
  server-side index are durable (storage-b).  Checked omnisciently at
  the instant the packet hits the wire, by peeking every live store.
- **acked-byte-loss**: once the LB has ACKed request bytes, the flow must
  never be reset toward the client -- acknowledged data may not vanish.
- **flow-conservation**: every flow admitted during the load phase ends
  in an orderly FIN exchange with response bytes delivered (after the
  drain period); nothing silently evaporates.
- **snat-leak**: after the run quiesces, no live instance holds SNAT
  ports that no flow owns.

The monitor also folds every trace record into a SHA-256 digest, which is
how scenario determinism (same seed -> byte-identical packet schedule) is
asserted cheaply.

:class:`ReplicationFactorMonitor` is a second, sampling monitor (a
periodic process, not a trace tap) for the self-healing store: after any
store-membership change, every live flow's durable records must be back
on K live replicas within a bounded window -- the property the
anti-entropy sweeper exists to restore, and the one plain client-side
replication silently loses after the first server failure.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.core.flowstate import client_key
from repro.kvstore.memcached import version_newer
from repro.obs import OBS
from repro.sim.process import PeriodicTask
from repro.sim.tracing import TraceRecord
from repro.tcp.segment import seq_diff

MAX_VIOLATIONS_KEPT = 50  # per invariant; beyond this only the count grows
FORENSICS_TAIL = 20  # flight-recorder events embedded per violation


def _forensics_tail() -> List[str]:
    """Dump the flight recorders' merged tail at the moment of violation.

    Empty when the observability plane is off -- forensics are a debugging
    aid, never a behavioural dependency."""
    if not OBS.enabled:
        return []
    return OBS.recorders.dump_tail(last=FORENSICS_TAIL)


@dataclass
class Violation:
    """One observed invariant breach."""

    invariant: str
    time: float
    flow: str
    detail: str
    forensics: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        base = f"[{self.time:.3f}s] {self.invariant} {self.flow}: {self.detail}"
        if self.forensics:
            base += "\n  flight recorder tail:\n    " + "\n    ".join(self.forensics)
        return base


@dataclass
class Verdict:
    """Final judgement for one invariant."""

    invariant: str
    ok: bool
    checked: int
    violations: List[Violation] = field(default_factory=list)
    violation_count: int = 0

    def __str__(self) -> str:
        status = "ok" if self.ok else f"FAIL ({self.violation_count})"
        return f"{self.invariant}: {status} ({self.checked} checks)"


class _FlowAudit:
    """Book-keeping for one client-facing flow (client ep, vip ep)."""

    __slots__ = (
        "opened_at", "client_isn", "synack_seen", "acked_req_bytes",
        "resp_bytes", "fin_from_lb", "fin_from_client", "rst_from_lb",
        "last_activity",
    )

    def __init__(self, opened_at: float):
        self.opened_at = opened_at
        self.client_isn: Optional[int] = None
        self.synack_seen = False
        self.acked_req_bytes = 0
        self.resp_bytes = 0
        self.fin_from_lb = False
        self.fin_from_client = False
        self.rst_from_lb = False
        self.last_activity = opened_at


class InvariantMonitor:
    """Attach with ``bed.network.add_trace(monitor)``; call
    :meth:`finalize` after the run drains to collect verdicts."""

    def __init__(self, bed, check_storage: Optional[bool] = None):
        self.bed = bed
        if check_storage is None:
            # storage invariants only exist for YODA deployments, and the
            # stateless dispatch mode waives them by contract: it ACKs
            # without durable writes -- that is the whole bargain, and its
            # losses surface through flow-conservation instead
            stateless = getattr(bed.config, "stateless", None)
            check_storage = (bed.yoda is not None
                             and not (stateless is not None
                                      and stateless.enabled))
        self.check_storage = check_storage
        self.vips: Set[str] = {bed.vip}
        self._vip_client_eps = {f"{vip}:80" for vip in self.vips}
        self.flows: Dict[str, _FlowAudit] = {}
        self._server_pairs_synned: Set[str] = set()
        self._server_pairs_checked: Set[str] = set()
        self.violations: Dict[str, List[Violation]] = {}
        self.violation_counts: Dict[str, int] = {}
        self.checks: Dict[str, int] = {
            "storage-before-ack": 0,
            "acked-byte-loss": 0,
            "flow-conservation": 0,
            "snat-leak": 0,
        }
        self._digest = hashlib.sha256()
        self.records_seen = 0

    # ------------------------------------------------------------ trace tap --
    def record(self, rec: TraceRecord) -> None:
        self.records_seen += 1
        self._digest.update(
            f"{rec.time:.9f}|{rec.point}|{rec.direction}|{rec.src}|{rec.dst}|"
            f"{rec.flags}|{rec.seq}|{rec.ack}|{rec.payload_len}|{rec.dropped}"
            .encode()
        )
        # Audit the wire-tx stream only: each send appears exactly once
        # there (the mux -> instance hop is an in-DC deliver, not a wire
        # transmission, so no packet is double-counted).
        if rec.point != "wire" or rec.direction != "tx":
            return
        if rec.dst in self._vip_client_eps:
            self._on_client_to_lb(rec)
        elif rec.src in self._vip_client_eps:
            self._on_lb_to_client(rec)
        elif self.check_storage and self._is_vip_snat(rec.src):
            self._on_lb_to_server(rec)

    def _is_vip_snat(self, ep: str) -> bool:
        ip, _, port = ep.rpartition(":")
        return ip in self.vips and port != "80"

    # ----------------------------------------------------- client-side audit --
    def _on_client_to_lb(self, rec: TraceRecord) -> None:
        flow_id = f"{rec.src}>{rec.dst}"
        audit = self.flows.get(flow_id)
        if audit is None:
            audit = self.flows[flow_id] = _FlowAudit(rec.time)
        audit.last_activity = rec.time
        if "S" in rec.flags and audit.client_isn is None:
            audit.client_isn = rec.seq
        if "F" in rec.flags:
            audit.fin_from_client = True

    def _on_lb_to_client(self, rec: TraceRecord) -> None:
        flow_id = f"{rec.dst}>{rec.src}"
        audit = self.flows.get(flow_id)
        if audit is None:
            # LB spoke first?  Only possible for stray RSTs; track anyway.
            audit = self.flows[flow_id] = _FlowAudit(rec.time)
        audit.last_activity = rec.time
        if "S" in rec.flags and "." in rec.flags:  # tcpdump style: ACK is "."
            # SYN-ACK on the wire: storage-a must already be durable.
            if self.check_storage and not audit.fin_from_lb:
                self.checks["storage-before-ack"] += 1
                key = client_key(rec.dst, rec.src)
                if not self._stored_somewhere(key):
                    self._violate(
                        "storage-before-ack", rec.time, flow_id,
                        f"SYN-ACK sent but {key!r} is on no live store",
                    )
            audit.synack_seen = True
        if "R" in rec.flags:
            audit.rst_from_lb = True
            if audit.acked_req_bytes > 0:
                self._violate(
                    "acked-byte-loss", rec.time, flow_id,
                    f"RST to client after ACKing {audit.acked_req_bytes} "
                    f"request bytes",
                )
            return
        if "F" in rec.flags:
            audit.fin_from_lb = True
        if not rec.dropped:
            audit.resp_bytes += rec.payload_len
        if "." in rec.flags and audit.client_isn is not None:
            self.checks["acked-byte-loss"] += 1
            acked = seq_diff(rec.ack, (audit.client_isn + 1) & 0xFFFFFFFF)
            if acked > audit.acked_req_bytes:
                audit.acked_req_bytes = acked

    # ----------------------------------------------------- server-side audit --
    def _on_lb_to_server(self, rec: TraceRecord) -> None:
        pair = f"{rec.src}>{rec.dst}"
        if "S" in rec.flags:
            # A new backend connection attempt resets this pair's audit
            # (backend switches reuse the SNAT port against a new server).
            self._server_pairs_synned.add(pair)
            self._server_pairs_checked.discard(pair)
            return
        if ("." in rec.flags and "R" not in rec.flags and "F" not in rec.flags
                and pair in self._server_pairs_synned
                and pair not in self._server_pairs_checked):
            # First ACK completing the backend handshake: storage-b (the
            # updated client record + server-side index) must be durable.
            self._server_pairs_checked.add(pair)
            self.checks["storage-before-ack"] += 1
            vip_ip, _, snat_port = rec.src.rpartition(":")
            key = f"yoda:s:{vip_ip}:{snat_port}:{rec.dst}"
            if not self._stored_somewhere(key):
                self._violate(
                    "storage-before-ack", rec.time, pair,
                    f"backend handshake ACK sent but {key!r} is on no "
                    f"live store",
                )

    # ------------------------------------------------------------- helpers --
    def _stored_somewhere(self, key: str) -> bool:
        """Omniscient peek: is the key durable on any store whose VM is
        up?  (A partitioned-but-running store still holds its data.)
        Both regions count: after a failover the standby stores are the
        live copies."""
        yoda = self.bed.yoda
        for server in list(yoda.store_servers) + list(yoda.standby_store_servers):
            if not server.host.failed and server.peek(key) is not None:
                return True
        return False

    def _violate(self, invariant: str, time: float, flow: str, detail: str) -> None:
        self.violation_counts[invariant] = self.violation_counts.get(invariant, 0) + 1
        bucket = self.violations.setdefault(invariant, [])
        if len(bucket) < MAX_VIOLATIONS_KEPT:
            bucket.append(Violation(invariant, time, flow, detail,
                                    forensics=_forensics_tail()))

    # ------------------------------------------------------------- finalize --
    def finalize(self, strict_before: Optional[float] = None,
                 exclude_instances: Iterable[str] = ()) -> List[Verdict]:
        """Run end-of-run audits and return one verdict per invariant.

        Args:
            strict_before: flows opened before this loop-time must have
                completed cleanly (FINs both ways + response bytes); later
                flows may legitimately still be in flight.  None skips the
                conservation sweep.
            exclude_instances: host names exempt from the SNAT audit --
                instances the scenario crashed keep their port bookkeeping
                frozen on purpose, so a recovered VM never reissues a port
                a migrated flow still occupies.
        """
        now = self.bed.loop.now()
        if strict_before is not None:
            for flow_id, audit in self.flows.items():
                if audit.client_isn is None or audit.opened_at >= strict_before:
                    continue
                self.checks["flow-conservation"] += 1
                if audit.rst_from_lb:
                    continue  # already reported under acked-byte-loss
                clean = (audit.fin_from_lb and audit.fin_from_client
                         and audit.resp_bytes > 0)
                if not clean:
                    self._violate(
                        "flow-conservation", now, flow_id,
                        f"flow opened at {audit.opened_at:.3f}s never "
                        f"finished (synack={audit.synack_seen} "
                        f"resp_bytes={audit.resp_bytes} "
                        f"fin_lb={audit.fin_from_lb} "
                        f"fin_client={audit.fin_from_client})",
                    )
        if self.check_storage:
            excluded = set(exclude_instances)
            for instance in (list(self.bed.yoda.instances)
                             + list(self.bed.yoda.standby_instances)):
                if instance.host.failed or instance.name in excluded:
                    continue
                self.checks["snat-leak"] += 1
                leaked = instance.snat_ports_leaked()
                for vip, ports in leaked.items():
                    self._violate(
                        "snat-leak", now, instance.name,
                        f"{len(ports)} SNAT ports leaked for {vip}: "
                        f"{sorted(ports)[:8]}",
                    )
        out = []
        for invariant, checked in self.checks.items():
            count = self.violation_counts.get(invariant, 0)
            out.append(Verdict(
                invariant=invariant,
                ok=count == 0,
                checked=checked,
                violations=list(self.violations.get(invariant, [])),
                violation_count=count,
            ))
        return out

    def digest(self) -> str:
        """SHA-256 over every trace record seen (determinism witness)."""
        return self._digest.hexdigest()


class NoAcceptedRequestDropped:
    """Trace tap: an *accepted* request is never sacrificed.

    The overload-control plane is allowed to refuse work -- but only at
    SYN time, before any state or promise exists.  A flow counts as
    **accepted** once the LB has both completed the client handshake
    (SYN-ACK seen) and acknowledged at least one request byte; from then
    on shedding it is a correctness bug, not a policy decision.  Two
    breaches:

    - **reset-after-accept**: an RST toward the client after acceptance
      (caught online, at the packet).
    - **vanished**: an accepted flow opened during the strict window that
      never reaches an orderly close with response bytes delivered.

    SYN-stage sheds (the qos plane's stateless RST arrives before any
    SYN-ACK) and handshake-only flood flows (no request byte ever acked)
    are exempt by construction -- which is exactly the boundary the
    flash-crowd scenario exists to probe.  The invariant is strictly
    weaker than acked-byte-loss + flow-conservation together, so
    attaching it to every scenario can never fail a run the existing
    invariants pass.
    """

    invariant = "no-accepted-request-dropped"

    def __init__(self, bed):
        self.bed = bed
        self.vips: Set[str] = {bed.vip}
        self._vip_client_eps = {f"{vip}:80" for vip in self.vips}
        self.flows: Dict[str, _FlowAudit] = {}
        self.checks = 0
        self.violations: List[Violation] = []
        self.violation_count = 0

    def _violate(self, time: float, flow: str, detail: str) -> None:
        self.violation_count += 1
        if len(self.violations) < MAX_VIOLATIONS_KEPT:
            self.violations.append(Violation(self.invariant, time, flow,
                                             detail,
                                             forensics=_forensics_tail()))

    def record(self, rec: TraceRecord) -> None:
        if rec.point != "wire" or rec.direction != "tx":
            return
        if rec.dst in self._vip_client_eps:
            flow_id = f"{rec.src}>{rec.dst}"
            audit = self.flows.get(flow_id)
            if audit is None:
                audit = self.flows[flow_id] = _FlowAudit(rec.time)
            audit.last_activity = rec.time
            if "S" in rec.flags and audit.client_isn is None:
                audit.client_isn = rec.seq
            if "F" in rec.flags:
                audit.fin_from_client = True
        elif rec.src in self._vip_client_eps:
            flow_id = f"{rec.dst}>{rec.src}"
            audit = self.flows.get(flow_id)
            if audit is None:
                audit = self.flows[flow_id] = _FlowAudit(rec.time)
            audit.last_activity = rec.time
            if "S" in rec.flags and "." in rec.flags:
                audit.synack_seen = True
            if "R" in rec.flags:
                if (not audit.rst_from_lb and audit.synack_seen
                        and audit.acked_req_bytes > 0):
                    self.checks += 1
                    self._violate(
                        rec.time, flow_id,
                        f"accepted request reset "
                        f"({audit.acked_req_bytes} request bytes acked)",
                    )
                audit.rst_from_lb = True
                return
            if "F" in rec.flags:
                audit.fin_from_lb = True
            if not rec.dropped:
                audit.resp_bytes += rec.payload_len
            if "." in rec.flags and audit.client_isn is not None:
                acked = seq_diff(rec.ack, (audit.client_isn + 1) & 0xFFFFFFFF)
                if acked > audit.acked_req_bytes:
                    audit.acked_req_bytes = acked

    def finalize(self, strict_before: Optional[float] = None) -> Verdict:
        now = self.bed.loop.now()
        if strict_before is not None:
            for flow_id, audit in self.flows.items():
                accepted = (audit.client_isn is not None and audit.synack_seen
                            and audit.acked_req_bytes > 0)
                if not accepted or audit.opened_at >= strict_before:
                    continue  # never accepted: refusing it was legal
                self.checks += 1
                if audit.rst_from_lb:
                    continue  # already reported at the RST
                clean = (audit.fin_from_lb and audit.fin_from_client
                         and audit.resp_bytes > 0)
                if not clean:
                    self._violate(
                        now, flow_id,
                        f"accepted flow (opened {audit.opened_at:.3f}s, "
                        f"{audit.acked_req_bytes} bytes acked) never "
                        f"finished (resp_bytes={audit.resp_bytes} "
                        f"fin_lb={audit.fin_from_lb} "
                        f"fin_client={audit.fin_from_client})",
                    )
        return Verdict(
            invariant=self.invariant,
            ok=self.violation_count == 0,
            checked=self.checks,
            violations=list(self.violations),
            violation_count=self.violation_count,
        )


REPLICATION_WINDOW = 2.0  # seconds to restore K replicas after a change
REPLICATION_SAMPLE_INTERVAL = 0.25


class ReplicationFactorMonitor:
    """Audits store durability: K live replicas per record, restored
    within a bounded window after any membership change.

    Every ``interval`` seconds it walks the durable records of every live
    flow on every live YODA instance and counts, omnisciently, the live
    store servers holding the record at (or above) its current version --
    stale copies on a diverged replica do not count, because recovering
    from them would resurrect a dead flow snapshot.  A record may be
    under-replicated transiently (that is what failures do); it becomes a
    violation only when the deficit survives longer than ``window``
    seconds.  The window is the whole grace period: it must cover failure
    detection plus re-replication, and it does NOT restart on membership
    changes -- otherwise a rolling restart (epoch bumps every couple of
    seconds) could erode a record to zero copies without the monitor ever
    saying so.
    """

    invariant = "replication-factor"

    def __init__(self, bed, window: float = REPLICATION_WINDOW,
                 interval: float = REPLICATION_SAMPLE_INTERVAL):
        if bed.yoda is None:
            raise ValueError("replication-factor monitoring needs a YODA bed")
        self.bed = bed
        self.window = window
        self.checks = 0
        self.violations: List[Violation] = []
        self.violation_count = 0
        self._deficit_since: Dict[str, float] = {}
        self._violated: Set[str] = set()
        self._task = PeriodicTask(bed.loop, interval, self._tick)

    def start(self) -> None:
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    def _tick(self) -> None:
        yoda = self.bed.yoda
        now = self.bed.loop.now()
        # a record is durable wherever it lives -- after a region failover
        # that is the standby site's stores, not the (dead) primary's
        all_stores = list(yoda.store_servers) + list(yoda.standby_store_servers)
        live_stores = [s for s in all_stores if not s.host.failed]
        need = min(yoda.config.store_replicas, len(live_stores))
        if need == 0:
            return
        sampled = set()
        for instance in list(yoda.instances) + list(yoda.standby_instances):
            if instance.host.failed:
                continue
            for key, _payload, version in instance.durable_records():
                if key in sampled:
                    continue  # two instances racing over a migrating flow
                sampled.add(key)
                self.checks += 1
                holders = sum(
                    1 for s in live_stores
                    if s.peek(key) is not None
                    and not version_newer(version, s.peek_version(key))
                )
                if holders >= need:
                    self._deficit_since.pop(key, None)
                    self._violated.discard(key)
                    continue
                first = self._deficit_since.setdefault(key, now)
                if now - first > self.window and key not in self._violated:
                    self._violated.add(key)
                    self.violation_count += 1
                    if len(self.violations) < MAX_VIOLATIONS_KEPT:
                        self.violations.append(Violation(
                            self.invariant, now, key,
                            f"{holders}/{need} live replicas for "
                            f"{now - first:.2f}s (window {self.window}s, "
                            f"epoch {yoda.kv_cluster.epoch})",
                            forensics=_forensics_tail(),
                        ))
        # flows that vanished while in deficit stop being tracked
        for key in [k for k in self._deficit_since if k not in sampled]:
            self._deficit_since.pop(key, None)
            self._violated.discard(key)

    def finalize(self) -> Verdict:
        self.stop()
        return Verdict(
            invariant=self.invariant,
            ok=self.violation_count == 0,
            checked=self.checks,
            violations=list(self.violations),
            violation_count=self.violation_count,
        )


class EstablishedFlowsSurviveRegionFailover:
    """The multi-region headline guarantee: a long-lived flow that was
    established (response headers delivered) before the region kill must
    still run to completion -- served out of the standby region from the
    replicated flow state.  Streams that never established before the
    kill are exempt (refusing or retrying a not-yet-accepted request is
    legal); streams started after the kill are ordinary new connections
    and are audited by the other invariants.

    With replication disabled the standby stores hold nothing, recovery
    finds no record, and every established stream breaks -- the ablation
    violates this invariant deterministically.
    """

    invariant = "established-flows-survive-region-failover"

    def finalize(self, clients, kill_time: Optional[float]) -> Verdict:
        checks = 0
        violations: List[Violation] = []
        if kill_time is not None:
            for client in clients:
                r = client.result
                if r.established_at is None or r.established_at >= kill_time:
                    continue
                checks += 1
                if not r.complete:
                    violations.append(Violation(
                        self.invariant, r.finished_at or kill_time, r.path,
                        f"stream established at {r.established_at:.3f}s "
                        f"(kill at {kill_time:.3f}s) broke: "
                        f"{r.bytes_received}/{r.bytes_expected} bytes, "
                        f"error={r.error}",
                        forensics=_forensics_tail(),
                    ))
        return Verdict(
            invariant=self.invariant,
            ok=not violations,
            checked=checks,
            violations=violations[:MAX_VIOLATIONS_KEPT],
            violation_count=len(violations),
        )


class AtMostOneActingLeader:
    """Controller HA's safety half: fencing must make leadership changes
    look atomic to the receivers.  Audited from the fence-gate logs, not
    from the electors' self-reported state -- two replicas may *believe*
    they lead (that is what ``stepdown_grace`` manufactures), but the
    moment their effects interleave at a receiver the gates must have
    serialized them:

    - per gate, the accepted-entry epoch sequence never regresses;
    - globally, one epoch never acts through two different holders
      (epochs are fenced lease versions, so a second holder at the same
      epoch means the lease store handed out the same term twice).

    The replica set's own election log is swept for the same property
    (two overlapping ``active`` reigns at one epoch)."""

    invariant = "at-most-one-acting-leader"

    def finalize(self, replica_set) -> Verdict:
        checks = 0
        violations: List[Violation] = []
        holder_by_epoch: Dict[int, str] = {}

        def _claim(epoch: int, holder: str, time: float, where: str) -> None:
            seen = holder_by_epoch.setdefault(epoch, holder)
            if seen != holder:
                violations.append(Violation(
                    self.invariant, time, where,
                    f"epoch {epoch} acted through two holders: "
                    f"{seen!r} and {holder!r}",
                    forensics=_forensics_tail(),
                ))

        for gate in replica_set.gates():
            high = -1
            for time, epoch, holder, kind, accepted in gate.log:
                if not accepted:
                    continue
                checks += 1
                if epoch < high:
                    violations.append(Violation(
                        self.invariant, time, gate.name,
                        f"accepted {kind} at epoch {epoch} after already "
                        f"accepting epoch {high} -- fencing regressed",
                        forensics=_forensics_tail(),
                    ))
                high = max(high, epoch)
                _claim(epoch, holder, time, gate.name)
        for time, event, name, epoch in replica_set.events:
            if event == "active":
                checks += 1
                _claim(epoch, name, time, "election-log")
        return Verdict(
            invariant=self.invariant,
            ok=not violations,
            checked=checks,
            violations=violations[:MAX_VIOLATIONS_KEPT],
            violation_count=len(violations),
        )


class ControlPlaneStaticStability:
    """Controller HA's liveness half: the data plane must not need a
    leader to keep moving bytes.  Every stream established *before* a
    leaderless window opened must still run to completion -- muxes keep
    their last pushed mappings, instances keep serving, TCPStore keeps
    answering, and only *reconfiguration* (remaps, drains, promotion)
    waits for the next leader.  Streams first established inside or
    after a window are ordinary new work, audited by the other
    invariants."""

    invariant = "control-plane-static-stability"

    def finalize(self, clients,
                 windows: List) -> Verdict:
        checks = 0
        violations: List[Violation] = []
        starts = [w[0] for w in windows]
        for client in clients:
            r = client.result
            if r.established_at is None:
                continue
            overlapped = [s for s in starts if s > r.established_at]
            if not overlapped:
                continue  # never lived through a leaderless moment
            checks += 1
            if not r.complete:
                first = min(overlapped)
                violations.append(Violation(
                    self.invariant, r.finished_at or first, r.path,
                    f"stream established at {r.established_at:.3f}s broke "
                    f"after the control plane went leaderless at "
                    f"{first:.3f}s: {r.bytes_received}/{r.bytes_expected} "
                    f"bytes, error={r.error}",
                    forensics=_forensics_tail(),
                ))
        return Verdict(
            invariant=self.invariant,
            ok=not violations,
            checked=checks,
            violations=violations[:MAX_VIOLATIONS_KEPT],
            violation_count=len(violations),
        )


class NoSplitBrainPromotion:
    """A WAN partition must never masquerade as a region death: the
    controller may promote the standby region only when the primary is
    actually gone (a region-kill fault fired).  Promotion during a mere
    partition would put two live regions behind one VIP -- split brain."""

    invariant = "no-split-brain-promotion"

    def finalize(self, controller, region_killed: bool) -> Verdict:
        violations: List[Violation] = []
        failed_over = bool(getattr(controller, "failed_over", False))
        if failed_over and not region_killed:
            violations.append(Violation(
                self.invariant, getattr(controller, "failover_at", 0.0) or 0.0,
                "controller",
                "standby region promoted but no region-kill fault fired "
                "(WAN partition or gray failure misread as region death)",
                forensics=_forensics_tail(),
            ))
        return Verdict(
            invariant=self.invariant,
            ok=not violations,
            checked=1,
            violations=violations,
            violation_count=len(violations),
        )


class ScaleEventsConverge:
    """The autoscaler must converge, not flap.  Audited from the engines'
    event ledgers (every actuated scale event, journal-restored across
    leader takeovers): within any sliding window of ``window`` seconds,

    - the instance-scale direction (out vs in) changes at most
      ``max_direction_changes`` times -- out/in/out/in is the classic
      hysteresis failure, burning drains and spare adoptions to hold the
      same capacity;
    - at most ``max_events_per_window`` events fire at all -- even a
      monotone stampede means the step limits or cooldowns are not
      doing their job.

    Store-membership events are held to the same event-count bound
    (each one triggers a full anti-entropy pass) but not the direction
    bound: one store move per instance-tier excursion is the design.
    """

    invariant = "scale-events-converge"

    def __init__(self, window: float = 10.0, max_direction_changes: int = 2,
                 max_events_per_window: int = 6):
        self.window = window
        self.max_direction_changes = max_direction_changes
        self.max_events_per_window = max_events_per_window

    def finalize(self, autoscalers) -> Verdict:
        events = sorted(
            (e for a in autoscalers for e in a.events), key=lambda e: e.at)
        violations: List[Violation] = []
        total = 0

        def _flag(at: float, detail: str) -> None:
            if len(violations) < MAX_VIOLATIONS_KEPT:
                violations.append(Violation(
                    self.invariant, at, "autoscale", detail,
                    forensics=_forensics_tail(),
                ))

        instance_events = [e for e in events if e.kind in ("out", "in")]
        for i, e in enumerate(instance_events):
            total += 1
            recent = [f for f in instance_events[:i + 1]
                      if f.at > e.at - self.window]
            flips = sum(1 for a, b in zip(recent, recent[1:])
                        if a.kind != b.kind)
            if flips > self.max_direction_changes:
                _flag(e.at,
                      f"{flips} direction changes inside {self.window:.0f}s "
                      f"(> {self.max_direction_changes}): "
                      + " -> ".join(f.kind for f in recent))
        for i, e in enumerate(events):
            recent = [f for f in events[:i + 1] if f.at > e.at - self.window]
            if len(recent) > self.max_events_per_window:
                _flag(e.at,
                      f"{len(recent)} scale events inside {self.window:.0f}s "
                      f"(> {self.max_events_per_window})")
        return Verdict(
            invariant=self.invariant,
            ok=not violations,
            checked=max(total, len(events)),
            violations=violations,
            violation_count=len(violations),
        )
