"""Declarative fault primitives and their application to a testbed.

A :class:`FaultSpec` is pure data: what happens, when (relative to load
start), to whom, and for how long.  Targets are *selectors* resolved at
fire time, so "crash the instance currently serving the most flows" is
expressible without knowing instance names up front:

- ``"lb:serving"``   -- the busiest live L7 LB instance at fire time
- ``"lb:<i>"``       -- the i-th L7 LB instance (YODA or HAProxy)
- ``"store:<i>"``    -- the i-th TCPStore server (no-op for HAProxy beds)
- ``"backend:<i>"``  -- the i-th backend web server
- ``"ctl:leader"``   -- the controller replica currently holding the lease
- ``"ctl:<i>"``      -- the i-th controller replica (HA beds only)
- anything else      -- a raw host name or site name (path endpoints only)

Path faults (``loss``, ``duplicate``, ``latency_spike``, ``partition``)
address src/dst by the same selectors, resolved to host names (or passed
through as site names).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.net.host import Host
from repro.obs import OBS
from repro.tcp.endpoint import TcpStack
from repro.workload.clients import OpenLoopGenerator


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.  ``at`` is seconds after load start; a
    ``duration`` makes the fault auto-revert (heal, recover, speed up)."""

    # partition|loss|duplicate|latency|crash|flap|slow_cpu|probe_loss|
    # surge|drain|region_kill|controller_kill|controller_partition|
    # lease_store_outage
    kind: str
    at: float
    duration: Optional[float] = None
    target: Optional[str] = None  # host-level faults
    src: Optional[str] = None  # path faults
    dst: Optional[str] = None
    rate: float = 0.0
    extra: float = 0.0  # latency spike seconds
    factor: float = 1.0  # CPU slowdown multiplier
    symmetric: bool = True
    period: float = 1.0  # flap cycle length (down half, up half)
    count: int = 2  # flap cycles
    deadline: Optional[float] = None  # drain: force handoff after this

    def describe(self) -> str:
        if self.target is not None:
            where = self.target
        elif self.kind == "surge":
            where = "clients"
        elif self.kind == "lease_store_outage":
            where = "lease store"
        elif self.src is not None:
            where = f"{self.src}->{self.dst}"
        else:
            where = "controller"  # probe_loss has no single victim
        extras = {
            "loss": f" rate={self.rate}",
            "duplicate": f" rate={self.rate}",
            "latency": f" extra={self.extra}s",
            "slow_cpu": f" x{self.factor}",
            "probe_loss": f" rate={self.rate}",
            "flap": f" period={self.period}s count={self.count}",
            "surge": f" rate={self.rate}/s",
            "drain": (f" deadline={self.deadline}s"
                      if self.deadline is not None else ""),
        }.get(self.kind, "")
        window = f" for {self.duration}s" if self.duration else ""
        return f"t+{self.at}s {self.kind} {where}{extras}{window}"


# -- declarative constructors -------------------------------------------------
def partition(at: float, a: str, b: str, duration: Optional[float] = None,
              symmetric: bool = True) -> FaultSpec:
    return FaultSpec(kind="partition", at=at, src=a, dst=b,
                     duration=duration, symmetric=symmetric)


def loss(at: float, rate: float, src: str, dst: str,
         duration: Optional[float] = None) -> FaultSpec:
    return FaultSpec(kind="loss", at=at, rate=rate, src=src, dst=dst,
                     duration=duration)


def duplicate(at: float, rate: float, src: str, dst: str,
              duration: Optional[float] = None) -> FaultSpec:
    return FaultSpec(kind="duplicate", at=at, rate=rate, src=src, dst=dst,
                     duration=duration)


def latency_spike(at: float, extra: float, src: str, dst: str,
                  duration: Optional[float] = None) -> FaultSpec:
    return FaultSpec(kind="latency", at=at, extra=extra, src=src, dst=dst,
                     duration=duration)


def crash(at: float, target: str, duration: Optional[float] = None) -> FaultSpec:
    return FaultSpec(kind="crash", at=at, target=target, duration=duration)


def flap(at: float, target: str, period: float = 1.0, count: int = 2) -> FaultSpec:
    return FaultSpec(kind="flap", at=at, target=target, period=period, count=count)


def slow_cpu(at: float, target: str, factor: float,
             duration: Optional[float] = None) -> FaultSpec:
    return FaultSpec(kind="slow_cpu", at=at, target=target, factor=factor,
                     duration=duration)


def probe_loss(at: float, rate: float, duration: Optional[float] = None) -> FaultSpec:
    return FaultSpec(kind="probe_loss", at=at, rate=rate, duration=duration)


def surge(at: float, rate: float, duration: Optional[float] = None) -> FaultSpec:
    """Flash crowd: a fresh client host fires open-loop requests at
    ``rate``/s (stopped after ``duration``).  The surge host gets its own
    IP prefix (172.16.9.x) so qos tiering can classify it."""
    return FaultSpec(kind="surge", at=at, rate=rate, duration=duration)


def drain(at: float, target: str,
          deadline: Optional[float] = None) -> FaultSpec:
    """Graceful scale-in: ask the controller to drain an LB instance
    (make-before-break).  Vacuous on HAProxy beds."""
    return FaultSpec(kind="drain", at=at, target=target, deadline=deadline)


def region_kill(at: float, site: str) -> FaultSpec:
    """Kill an entire region: every host in ``site`` -- LB instances,
    stores, backends, routers -- dies at once, permanently.  The dead
    region never comes back; recovery means failing over to the standby."""
    return FaultSpec(kind="region_kill", at=at, target=site)


def controller_kill(at: float, target: str = "ctl:leader",
                    duration: Optional[float] = None) -> FaultSpec:
    """Kill a controller replica (its elector, monitor and drains stop
    with it).  ``"ctl:leader"`` resolves to whoever holds the lease at
    fire time.  Without a duration the replica stays dead -- with three
    replicas that is how you force a real takeover.  Vacuous on beds
    without controller HA."""
    return FaultSpec(kind="controller_kill", at=at, target=target,
                     duration=duration)


def controller_partition(at: float, target: str = "ctl:leader",
                         duration: Optional[float] = None) -> FaultSpec:
    """Cut one controller replica off from the lease store while its VM
    stays up.  Its omniscient probes and mapping pushes keep running --
    only lease renewals vanish -- so with a nonzero ``stepdown_grace``
    this manufactures the dueling-leader window the fence gates exist
    for."""
    return FaultSpec(kind="controller_partition", at=at, target=target,
                     duration=duration)


def lease_store_outage(at: float,
                       duration: Optional[float] = None) -> FaultSpec:
    """Sever *every* controller replica from the lease store at once.
    Nobody can renew or claim; the acting leader must keep acting on its
    unexpired lease (availability-first) and the data plane must stay
    statically stable if the lease does lapse."""
    return FaultSpec(kind="lease_store_outage", at=at, duration=duration)


def wan_partition(at: float, a: str, b: str,
                  duration: Optional[float] = None) -> FaultSpec:
    """Sever the WAN between two sites.  Both sides stay up and keep
    serving their local traffic; only cross-site packets (flow-store
    replication, inter-region probes) vanish."""
    return FaultSpec(kind="partition", at=at, src=a, dst=b, duration=duration)


# -- target resolution --------------------------------------------------------
def resolve_target(bed, selector: str):
    """Resolve a host-level selector to an object with fail()/recover()
    (and .cpu for slowdowns).  Returns None when the selector has no
    equivalent in this deployment (e.g. a store on an HAProxy bed)."""
    if ":" not in selector:
        # raw backend/server name
        obj = bed.backends.get(selector)
        if obj is not None:
            return obj
        raise SimulationError(f"unknown fault target {selector!r}")
    kind, _, arg = selector.partition(":")
    if kind == "lb":
        pool = bed.lb_instances()
        if arg == "serving":
            serving = bed.serving_lb_instances()
            return serving[0] if serving else (pool[0] if pool else None)
        return pool[int(arg)] if int(arg) < len(pool) else None
    if kind == "store":
        if bed.yoda is None:
            return None  # HAProxy keeps no flow store; fault is vacuous
        servers = bed.yoda.store_servers
        return servers[int(arg)] if int(arg) < len(servers) else None
    if kind == "backend":
        return bed.backends.get(f"srv-{arg}")
    if kind == "ctl":
        return _resolve_controller(bed, arg)
    raise SimulationError(f"unknown fault target {selector!r}")


def _resolve_controller(bed, arg: str):
    """Resolve ``ctl:leader`` / ``ctl:<i>`` to a ControllerReplica.
    None when the bed has no replicated control plane (the fault is then
    vacuous, like store faults on an HAProxy bed)."""
    rs = getattr(bed.yoda, "replica_set", None) if bed.yoda is not None else None
    if rs is None or not rs.replicas:
        return None
    if arg == "leader":
        acting = rs.acting_replica()
        if acting is not None:
            return acting
        # leaderless at fire time: hit whoever held the lease last, so
        # back-to-back leader kills land on successive leaders
        return rs._last_active or rs.replicas[0]
    idx = int(arg)
    return rs.replicas[idx] if idx < len(rs.replicas) else None


def resolve_path_endpoint(bed, selector: str) -> Optional[str]:
    """Resolve a path endpoint selector to a host name; site names and
    raw host names pass through untouched."""
    if ":" not in selector:
        return selector
    obj = resolve_target(bed, selector)
    if obj is None:
        return None
    return obj.host.name


# -- application --------------------------------------------------------------
@dataclass
class AppliedFault:
    """What a FaultSpec resolved to at fire time."""

    spec: FaultSpec
    revert: Optional[Callable[[], None]] = None
    target_name: Optional[str] = None  # resolved host name (host-level faults)


def apply_fault(bed, spec: FaultSpec) -> AppliedFault:
    """Apply a fault now.  The returned record carries the revert callable
    (None when self-terminating or vacuous in this deployment) and the
    resolved target so callers know *which* host a selector picked."""
    net = bed.network
    if OBS.enabled:
        OBS.flight("chaos", "fault", spec.describe())
    if spec.kind == "partition":
        a = resolve_path_endpoint(bed, spec.src)
        b = resolve_path_endpoint(bed, spec.dst)
        if a is None or b is None:
            return AppliedFault(spec)
        net.partition(a, b, symmetric=spec.symmetric)
        return AppliedFault(spec, revert=lambda: net.heal(a, b))
    if spec.kind in ("loss", "duplicate", "latency"):
        a = resolve_path_endpoint(bed, spec.src)
        b = resolve_path_endpoint(bed, spec.dst)
        if a is None or b is None:
            return AppliedFault(spec)
        if spec.kind == "loss":
            net.set_loss_rate(spec.rate, src=a, dst=b)
            return AppliedFault(
                spec, revert=lambda: net.set_loss_rate(0.0, src=a, dst=b))
        if spec.kind == "duplicate":
            net.set_duplicate_rate(spec.rate, src=a, dst=b)
            return AppliedFault(
                spec, revert=lambda: net.set_duplicate_rate(0.0, src=a, dst=b))
        net.set_extra_latency(spec.extra, src=a, dst=b)
        return AppliedFault(
            spec, revert=lambda: net.set_extra_latency(0.0, src=a, dst=b))
    if spec.kind == "crash":
        target = resolve_target(bed, spec.target)
        if target is None:
            return AppliedFault(spec)
        target.fail()
        return AppliedFault(spec, revert=target.recover,
                            target_name=target.host.name)
    if spec.kind == "flap":
        target = resolve_target(bed, spec.target)
        if target is None:
            return AppliedFault(spec)
        _run_flap(bed, target, spec.period, spec.count)
        # each flap cycle ends recovered; nothing to revert
        return AppliedFault(spec, target_name=target.host.name)
    if spec.kind == "slow_cpu":
        target = resolve_target(bed, spec.target)
        cpu = getattr(target, "cpu", None)
        if cpu is None:
            return AppliedFault(spec)
        cpu.set_slowdown(spec.factor)
        return AppliedFault(spec, revert=lambda: cpu.set_slowdown(1.0),
                            target_name=target.host.name)
    if spec.kind == "probe_loss":
        if bed.yoda is None:
            return AppliedFault(spec)  # HAProxy checks have no loss hook
        controller = bed.yoda.controller
        controller.probe_loss_rate = spec.rate
        return AppliedFault(
            spec, revert=lambda: setattr(controller, "probe_loss_rate", 0.0))
    if spec.kind == "surge":
        # index off the bed (not a module counter) so identical runs
        # attach identically-named hosts -- determinism depends on it
        surge_clients = getattr(bed, "_surge_clients", None)
        if surge_clients is None:
            surge_clients = bed._surge_clients = []
        idx = len(surge_clients)
        host = bed.network.attach(
            Host(f"surge-client-{idx}", [f"172.16.9.{idx + 1}"],
                 site="internet")
        )
        stack = TcpStack(host, bed.loop)
        gen = OpenLoopGenerator(
            stack, bed.loop, bed.target(), spec.rate,
            path_fn=bed.website.random_object, http_timeout=5.0,
        )
        gen.start()
        surge_clients.append(gen)
        return AppliedFault(spec, revert=gen.stop, target_name=host.name)
    if spec.kind == "region_kill":
        site = spec.target
        # fail LB instances through their own fail() (cancels timers and
        # freezes SNAT bookkeeping), then every remaining host in the site
        if bed.yoda is not None:
            pools = list(bed.yoda.instances) + list(bed.yoda.standby_instances)
            for instance in pools:
                if instance.host.site == site and not instance.host.failed:
                    instance.fail()
            # controller replicas die with their region through their own
            # fail() (elector + monitor + drains stop); a bare host.fail()
            # would leave a dead leader's omniscient probes running
            rs = getattr(bed.yoda, "replica_set", None)
            if rs is not None:
                for replica in rs.replicas:
                    if replica.host.site == site and not replica.host.failed:
                        replica.fail()
        for host in list(net.hosts()):
            if host.site == site and not host.failed:
                host.fail()
        # permanent: a dead region stays dead (revert=None)
        return AppliedFault(spec, target_name=site)
    if spec.kind == "controller_kill":
        replica = resolve_target(bed, spec.target)
        if replica is None:
            return AppliedFault(spec)
        replica.fail()
        return AppliedFault(spec, revert=replica.recover,
                            target_name=replica.host.name)
    if spec.kind == "controller_partition":
        replica = resolve_target(bed, spec.target)
        if replica is None:
            return AppliedFault(spec)
        # cut the replica off from every site holding a lease server; its
        # host stays up, so omniscient control actions keep firing -- the
        # live-stale-leader case the fence gates exist for
        sites = sorted({s.host.site
                        for s in bed.yoda.lease_cluster.servers.values()})
        name = replica.host.name
        for site in sites:
            net.partition(name, site)

        def _heal_ctl():
            for site in sites:
                net.heal(name, site)
        return AppliedFault(spec, revert=_heal_ctl, target_name=name)
    if spec.kind == "lease_store_outage":
        rs = getattr(bed.yoda, "replica_set", None) if bed.yoda else None
        if rs is None or not rs.replicas:
            return AppliedFault(spec)
        pairs = [(r.host.name, s.host.name)
                 for r in rs.replicas
                 for s in bed.yoda.lease_cluster.servers.values()]
        for a, b in pairs:
            net.partition(a, b)

        def _heal_lease():
            for a, b in pairs:
                net.heal(a, b)
        return AppliedFault(spec, revert=_heal_lease, target_name="lease-store")
    if spec.kind == "drain":
        if bed.yoda is None:
            return AppliedFault(spec)  # HAProxy scale-in just drops flows
        target = resolve_target(bed, spec.target)
        if target is None:
            return AppliedFault(spec)
        bed.yoda.controller.drain_instance(target.name, deadline=spec.deadline)
        # the drain coordinator owns completion; nothing to revert
        return AppliedFault(spec, target_name=target.host.name)
    raise SimulationError(f"unknown fault kind {spec.kind!r}")


def _run_flap(bed, target, period: float, count: int) -> None:
    """count cycles of (down for period/2, up for period/2)."""
    half = period / 2.0
    for cycle in range(count):
        bed.loop.call_later(cycle * period, target.fail)
        bed.loop.call_later(cycle * period + half, target.recover)
