"""The scenario engine: compile a fault timeline onto the event loop.

A :class:`Scenario` is declarative data -- workload sizing plus a list of
:class:`FaultSpec` entries with times relative to load start.  The engine
builds a :class:`Testbed`, attaches an :class:`InvariantMonitor`, starts
closed-loop clients, schedules every fault, runs the load phase, then
heals all outstanding faults and drains so every admitted flow can reach
its terminal state before the invariants are finalized.

Determinism: with the same seed, the whole run -- fault resolution
included -- replays identically, which :meth:`ScenarioOutcome.trace_digest`
witnesses as a SHA-256 over the packet schedule.

``run_contrast`` runs the same scenario against YODA and the HAProxy
baseline, preserving the paper's Figure 12 contrast: YODA must come out
clean while HAProxy demonstrably breaks flows under the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.faults import AppliedFault, FaultSpec, apply_fault
from repro.chaos.invariants import (
    AtMostOneActingLeader,
    ControlPlaneStaticStability,
    EstablishedFlowsSurviveRegionFailover,
    InvariantMonitor,
    NoAcceptedRequestDropped,
    NoSplitBrainPromotion,
    ReplicationFactorMonitor,
    ScaleEventsConverge,
    Verdict,
)
from repro.core.instance import YodaCostModel
from repro.experiments.harness import Testbed, TestbedConfig
from repro.l4lb.compact import StatelessConfig
from repro.qos.config import QosConfig


@dataclass
class Scenario:
    """A named, self-contained chaos experiment."""

    name: str
    description: str
    faults: List[FaultSpec] = field(default_factory=list)
    duration: float = 12.0  # load phase (seconds, after testbed settle)
    drain: float = 8.0  # quiesce window before invariants are finalized
    clients: int = 4
    http_timeout: float = 10.0
    client_one_way_latency: float = 0.030  # higher = slower, longer-lived flows
    object_bytes: int = 300_000
    object_count: int = 6
    num_lb_instances: int = 4
    num_store_servers: int = 3
    num_backends: int = 3
    qos_config: Optional[QosConfig] = None  # overload-control plane (yoda)
    # compact stateless dispatch (yoda): enabled=True is the Concury-style
    # ablation leg -- established flows must NOT survive an instance crash
    stateless_config: Optional[StatelessConfig] = None
    # -- multi-region (None = the historical single-site scenario) --
    standby_site: Optional[str] = None  # e.g. "dc2": build a second region
    replication: bool = True  # cross-site flow-store shipping (ablation)
    # -- controller HA (0 = the historical singleton controller) --
    num_controllers: int = 0  # lease-elected controller replicas
    lease_ttl: float = 1.5
    stepdown_grace: float = 0.0  # how long a cut-off leader keeps acting
    # -- closed-loop elastic scaling (None = autoscaler disarmed) --
    autoscale: Optional[object] = None  # ElasticPolicy (yoda only)
    spare_instances: int = 0  # pre-provisioned spare instance VMs
    cpu_scale: float = 1.0  # scales per-packet CPU cost so load is visible
    # long-lived streaming downloads riding alongside the page workload;
    # the region-failover invariant audits the ones established pre-kill
    streams: int = 0
    stream_chunks: int = 60
    stream_chunk_bytes: int = 1_000
    stream_interval_ms: int = 100
    stream_stall_timeout: float = 1.0
    stream_max_stalls: int = 8  # probes before a stream gives up

    def timeline(self) -> List[str]:
        return [spec.describe() for spec in sorted(self.faults, key=lambda s: s.at)]


@dataclass
class ScenarioOutcome:
    """Everything a scenario run produced."""

    scenario: str
    lb: str
    seed: int
    verdicts: List[Verdict]
    pages_loaded: int
    broken_pages: int
    trace_digest: str
    applied: List[str] = field(default_factory=list)  # resolved fault targets
    repair: bool = True  # store self-healing enabled for this run
    replication: bool = True  # cross-site shipping enabled for this run
    streams_completed: int = 0
    streams_broken: int = 0
    failed_over: bool = False  # controller promoted the standby region
    records_lost: int = 0  # store records that never reached the standby
    stateless: bool = False  # compact stateless dispatch was enabled
    scale_events: int = 0  # autoscaler events actuated during the run

    @property
    def invariants_ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def violation_count(self) -> int:
        return sum(v.violation_count for v in self.verdicts)

    @property
    def ok(self) -> bool:
        """Zero invariant violations AND zero client-visible breakage."""
        served = self.pages_loaded + self.streams_completed > 0
        return (self.invariants_ok and self.broken_pages == 0
                and self.streams_broken == 0 and served)

    def render(self) -> str:
        lines = [
            f"scenario {self.scenario} [{self.lb}] seed={self.seed}"
            f"{'' if self.repair else ' (repair OFF)'}"
            f"{'' if self.replication else ' (replication OFF)'}"
            f"{' (stateless dispatch)' if self.stateless else ''}: "
            f"{'PASS' if self.ok else 'BROKEN'}",
            f"  pages: {self.pages_loaded} loaded, {self.broken_pages} broken",
        ]
        if self.scale_events:
            lines.append(f"  scale events: {self.scale_events}")
        if self.streams_completed or self.streams_broken:
            lines.append(
                f"  streams: {self.streams_completed} completed, "
                f"{self.streams_broken} broken"
                + (f"; failed over, {self.records_lost} records lost"
                   if self.failed_over else "")
            )
        for verdict in self.verdicts:
            lines.append(f"  {verdict}")
            for violation in verdict.violations[:3]:
                lines.append(f"    {violation}")
        lines.append(f"  trace digest: {self.trace_digest[:16]}")
        return "\n".join(lines)


class ScenarioEngine:
    """Run one scenario against one LB implementation."""

    def __init__(self, scenario: Scenario, lb: str = "yoda", seed: int = 2016,
                 repair: bool = True, replication: Optional[bool] = None,
                 taps: Optional[List] = None,
                 step_window: Optional[float] = None):
        self.scenario = scenario
        self.lb = lb
        self.seed = seed
        self.repair = repair
        # advance the loop in fixed windows of this many seconds instead of
        # one continuous run.  The event order is identical either way (the
        # loop fires the same events at the same times); shard workers use
        # it so every scenario can be driven between barrier windows, and
        # the golden suite pins that the windowed path truly is a no-op.
        self.step_window = step_window
        # None = the scenario's own setting; False = the cross-site
        # replication ablation (--no-replication)
        self.replication = (scenario.replication if replication is None
                            else replication)
        # extra packet-trace taps (objects with a ``record(rec)`` method)
        # attached alongside the invariant monitor -- the golden-trace
        # suite uses this to capture the full packet schedule
        self.taps: List = list(taps or [])
        self.applied: List[AppliedFault] = []
        self.bed: Optional[Testbed] = None
        self.monitor: Optional[InvariantMonitor] = None
        self.rf_monitor: Optional[ReplicationFactorMonitor] = None
        self.nar_monitor: Optional[NoAcceptedRequestDropped] = None
        self.fleet = None  # StreamingFleet when the scenario has streams
        self._region_kill_time: Optional[float] = None

    def build(self) -> Testbed:
        s = self.scenario
        cost = None
        if s.cpu_scale != 1.0:
            base = YodaCostModel()
            cost = YodaCostModel(
                packet_cpu_base=base.packet_cpu_base * s.cpu_scale,
                packet_cpu_per_byte=base.packet_cpu_per_byte * s.cpu_scale,
            )
        self.bed = Testbed(TestbedConfig(
            seed=self.seed,
            lb=self.lb,
            num_lb_instances=s.num_lb_instances,
            num_store_servers=s.num_store_servers,
            num_backends=s.num_backends,
            client_one_way_latency=s.client_one_way_latency,
            corpus="flat",
            flat_object_bytes=s.object_bytes,
            flat_object_count=s.object_count,
            kv_self_healing=self.repair,
            qos=s.qos_config if self.lb == "yoda" else None,
            stateless=s.stateless_config if self.lb == "yoda" else None,
            standby_site=s.standby_site,
            replication=self.replication,
            num_controllers=s.num_controllers if self.lb == "yoda" else 0,
            lease_ttl=s.lease_ttl,
            stepdown_grace=s.stepdown_grace,
            autoscale=s.autoscale if self.lb == "yoda" else None,
            spare_instances=s.spare_instances if self.lb == "yoda" else 0,
            **({"yoda_cost": cost} if cost is not None else {}),
        ))
        self.monitor = InvariantMonitor(self.bed)
        self.bed.network.add_trace(self.monitor)
        # load shedding may refuse work but never sacrifices accepted
        # requests -- audited on every scenario, not just qos ones
        self.nar_monitor = NoAcceptedRequestDropped(self.bed)
        self.bed.network.add_trace(self.nar_monitor)
        for tap in self.taps:
            self.bed.network.add_trace(tap)
        if self.bed.yoda is not None:
            # durability is audited even (especially) when repair is off:
            # the verdict is how an ablated run reports its flow-state loss
            self.rf_monitor = ReplicationFactorMonitor(self.bed)
            self.rf_monitor.start()
        return self.bed

    def run(self) -> ScenarioOutcome:
        bed = self.build()
        s = self.scenario
        processes = bed.closed_loop(s.clients, http_timeout=s.http_timeout)
        if s.streams > 0:
            self.fleet = bed.streaming(
                s.streams, chunks=s.stream_chunks,
                chunk_bytes=s.stream_chunk_bytes,
                interval_ms=s.stream_interval_ms, start_at=0.2,
                stall_timeout=s.stream_stall_timeout,
                max_stalls=s.stream_max_stalls,
            )
        for spec in s.faults:
            bed.loop.call_later(spec.at, self._fire, spec)
        self._advance(s.duration)
        load_end = bed.loop.now()
        for proc in processes:
            proc.stop()
        self._heal_all()
        self._advance(s.drain)
        crashed = [a.target_name for a in self.applied
                   if a.spec.kind in ("crash", "flap") and a.target_name]
        verdicts = self.monitor.finalize(
            strict_before=load_end, exclude_instances=crashed)
        verdicts.append(self.nar_monitor.finalize(strict_before=load_end))
        if self.rf_monitor is not None:
            verdicts.append(self.rf_monitor.finalize())
        if self.fleet is not None:
            verdicts.append(EstablishedFlowsSurviveRegionFailover().finalize(
                self.fleet.clients, self._region_kill_time))
        controller = bed.yoda.controller if bed.yoda is not None else None
        if s.standby_site is not None and controller is not None:
            verdicts.append(NoSplitBrainPromotion().finalize(
                controller, region_killed=self._region_kill_time is not None))
        replica_set = bed.yoda.replica_set if bed.yoda is not None else None
        if replica_set is not None:
            verdicts.append(AtMostOneActingLeader().finalize(replica_set))
            verdicts.append(ControlPlaneStaticStability().finalize(
                self.fleet.clients if self.fleet is not None else [],
                replica_set.leaderless_windows(bed.loop.now())))
        autoscalers = (bed.yoda.autoscalers if bed.yoda is not None else [])
        scale_events = 0
        if autoscalers:
            verdicts.append(ScaleEventsConverge().finalize(autoscalers))
            scale_events = sum(len(a.events) for a in autoscalers)
        return ScenarioOutcome(
            scenario=s.name,
            lb=self.lb,
            seed=self.seed,
            verdicts=verdicts,
            pages_loaded=sum(p.pages_loaded for p in processes),
            broken_pages=sum(p.broken_pages for p in processes),
            trace_digest=self.monitor.digest(),
            applied=[
                f"{a.spec.kind}:{a.target_name}" for a in self.applied
                if a.target_name
            ],
            repair=self.repair,
            replication=self.replication,
            streams_completed=(self.fleet.completed()
                               if self.fleet is not None else 0),
            streams_broken=(self.fleet.broken() + self.fleet.unfinished()
                            if self.fleet is not None else 0),
            failed_over=bool(getattr(controller, "failed_over", False)),
            records_lost=int(
                getattr(controller, "failover_records_lost", 0) or 0),
            stateless=bool(self.lb == "yoda"
                           and s.stateless_config is not None
                           and s.stateless_config.enabled),
            scale_events=scale_events,
        )

    def _advance(self, duration: float) -> None:
        if self.step_window is None:
            self.bed.run(duration)
            return
        loop = self.bed.loop
        end = loop.now() + duration
        while loop.now() < end:
            loop.run(until=min(loop.now() + self.step_window, end))

    def _fire(self, spec: FaultSpec) -> None:
        applied = apply_fault(self.bed, spec)
        self.applied.append(applied)
        if spec.kind == "region_kill":
            self._region_kill_time = self.bed.loop.now()
        if spec.duration is not None and applied.revert is not None:
            revert, applied.revert = applied.revert, None
            self.bed.loop.call_later(spec.duration, revert)

    def _heal_all(self) -> None:
        """End of load phase: undo every *environmental* fault still in
        force (network, CPU, probes) so the drain window measures
        recovery, not steady-state faults.  Crashes without a duration
        are permanent -- a dead VM stays dead, which is exactly what the
        YODA-vs-HAProxy contrast hinges on."""
        for applied in self.applied:
            if (applied.revert is not None
                    and applied.spec.kind not in ("crash", "controller_kill")):
                applied.revert()
                applied.revert = None
        self.bed.network.heal()


def run_scenario(scenario: Scenario, lb: str = "yoda",
                 seed: int = 2016, repair: bool = True,
                 replication: Optional[bool] = None) -> ScenarioOutcome:
    return ScenarioEngine(scenario, lb=lb, seed=seed, repair=repair,
                          replication=replication).run()


def run_contrast(scenario: Scenario, seed: int = 2016,
                 repair: bool = True) -> Dict[str, ScenarioOutcome]:
    """The Figure 12 contrast: same schedule, both LB tiers.  Multi-region
    and autoscale scenarios are YODA-only (HAProxy keeps no external flow
    state to replicate and no elastic control loop), so those skip the
    baseline leg."""
    out = {"yoda": run_scenario(scenario, lb="yoda", seed=seed, repair=repair)}
    if scenario.standby_site is None and scenario.autoscale is None:
        out["haproxy"] = run_scenario(scenario, lb="haproxy", seed=seed)
    return out
