"""Result analysis helpers: statistics and text-table rendering."""

from repro.analysis.report import render_table
from repro.analysis.stats import cdf_points, mean, median, percentile

__all__ = ["render_table", "median", "mean", "percentile", "cdf_points"]
