"""Small statistics helpers shared by experiments (no numpy on hot paths)."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return math.fsum(values) / len(values)


def percentile(values: Sequence[float], p: float) -> float:
    """Exact percentile with linear interpolation, p in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError(f"p out of range: {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def median(values: Sequence[float]) -> float:
    return percentile(values, 50)


def cdf_points(values: Sequence[float], points: int = 100) -> List[Tuple[float, float]]:
    """Downsampled (value, cumulative fraction) pairs."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    step = max(1, n // points)
    out = [(ordered[i], (i + 1) / n) for i in range(0, n, step)]
    if out[-1][0] != ordered[-1]:
        out.append((ordered[-1], 1.0))
    return out


def fraction(values: Iterable[bool]) -> float:
    items = list(values)
    if not items:
        return 0.0
    return sum(items) / len(items)
