"""Plain-text table rendering for experiment output.

Every benchmark prints the rows the corresponding paper table/figure
reports, in a stable aligned format suitable for diffing across runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[List[str]] = None,
    title: str = "",
) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = columns or list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in cells)) for i, c in enumerate(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, sep, body])
    return "\n".join(parts)
