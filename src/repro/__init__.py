"""Reproduction of "YODA: A Highly Available Layer-7 Load Balancer"
(Gandhi, Hu, Zhang -- EuroSys 2016).

The public API re-exports the pieces a downstream user composes:

- substrate: :class:`EventLoop`, :class:`SeededRng`, :class:`Network`,
  :class:`Host`, :class:`TcpStack`, :class:`BackendHttpServer`,
  :class:`BrowserClient`;
- the system under study: :class:`YodaService` (one-call deployment),
  :class:`YodaInstance`, :class:`YodaController`, :class:`TcpStore`,
  :class:`VipPolicy` and the policy helpers;
- the baseline: :class:`HAProxyInstance` / :class:`HAProxyDeployment`;
- analysis: the ``repro.experiments`` modules regenerate every table and
  figure of the paper's evaluation (see DESIGN.md / EXPERIMENTS.md).

Quick start::

    from repro import EventLoop, Network, SeededRng, YodaService

    loop = EventLoop()
    network = Network(loop, SeededRng(1))
    yoda = YodaService(loop, network, SeededRng(1))
    ...

See ``examples/quickstart.py`` for the complete version.
"""

from repro.baselines import HAProxyDeployment, HAProxyInstance
from repro.core import (
    TcpStore,
    VipPolicy,
    YodaController,
    YodaInstance,
    YodaService,
    least_loaded,
    primary_backup,
    sticky_sessions,
    weighted_split,
)
from repro.http import BackendHttpServer, BrowserClient, StaticSite
from repro.kvstore import MemcachedCluster, MemcachedServer, ReplicatingKvClient
from repro.l4lb import L4LoadBalancer
from repro.net import Endpoint, Host, Network
from repro.sim import EventLoop, SeededRng
from repro.tcp import TcpStack

__version__ = "1.0.0"

__all__ = [
    "EventLoop",
    "SeededRng",
    "Network",
    "Host",
    "Endpoint",
    "TcpStack",
    "BackendHttpServer",
    "BrowserClient",
    "StaticSite",
    "MemcachedServer",
    "MemcachedCluster",
    "ReplicatingKvClient",
    "L4LoadBalancer",
    "YodaService",
    "YodaInstance",
    "YodaController",
    "TcpStore",
    "VipPolicy",
    "weighted_split",
    "primary_backup",
    "sticky_sessions",
    "least_loaded",
    "HAProxyInstance",
    "HAProxyDeployment",
    "__version__",
]
