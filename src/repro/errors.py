"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single except clause without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Examples: scheduling an event in the past, or running a loop that was
    already stopped.
    """


class NetworkError(ReproError):
    """Invalid network operation (unknown address, duplicate host, ...)."""


class AddressError(NetworkError):
    """An IP address or endpoint string could not be parsed or allocated."""


class SnatExhausted(NetworkError):
    """No SNAT port range is left to allocate for a VIP.

    Carries the VIP and the instance that asked, so operators (and the
    overload experiments) can tell *which* service ran out of outbound
    ports rather than seeing a generic network failure.
    """

    def __init__(self, vip: str, instance_ip: str):
        super().__init__(
            f"SNAT port space exhausted for VIP {vip} "
            f"(requested by {instance_ip})"
        )
        self.vip = vip
        self.instance_ip = instance_ip


class ShardError(ReproError):
    """Invalid sharded-simulation operation.

    Examples: a cross-shard link faster than the conservative lookahead
    window, a packet detached twice from a :class:`~repro.net.packet.
    PacketPool`, or non-serializable metadata on a boundary packet.
    """


class TcpError(ReproError):
    """A TCP endpoint was driven into an invalid operation for its state."""


class HttpError(ReproError):
    """Malformed HTTP message or invalid client/server usage."""


class HttpParseError(HttpError):
    """Raw bytes could not be parsed as an HTTP message."""


class SlowClientTimeout(HttpError):
    """A peer fed request bytes slower than the progress deadline allows
    (the slow-loris guard).

    Carries the peer and the deadline so operators can distinguish an
    attack pattern (many peers, one source range) from a genuinely slow
    client.
    """

    def __init__(self, peer: str, deadline: float):
        super().__init__(
            f"no request progress from {peer} within {deadline:.3f}s"
        )
        self.peer = peer
        self.deadline = deadline


class KvStoreError(ReproError):
    """Key-value store (Memcached substrate) failure."""


class StoreUnavailableError(KvStoreError):
    """Not enough live replicas to complete a storage operation."""


class PolicyError(ReproError):
    """A user policy / rule definition is invalid."""


class AssignmentError(ReproError):
    """The VIP-to-instance assignment problem is malformed or infeasible."""


class InfeasibleError(AssignmentError):
    """No assignment satisfies the constraints (Eq. 1-7 of the paper)."""


class ControllerError(ReproError):
    """Invalid controller operation (unknown VIP, duplicate instance, ...)."""


class LeadershipLost(ControllerError):
    """A controller replica stopped being the acting leader.

    Carries the epoch it held and why it stepped down (superseded by a
    newer claim, lease expired, or the lease store went silent), so the
    flight recorder and tests can distinguish a clean hand-off from a
    store outage.
    """

    def __init__(self, holder: str, epoch: int, reason: str):
        super().__init__(f"{holder} lost leadership at epoch {epoch}: {reason}")
        self.holder = holder
        self.epoch = epoch
        self.reason = reason


class StaleLeaderEpoch(ControllerError):
    """A control-plane push carried a lease epoch older than one the
    receiver has already accepted (dueling-controller fencing).

    Raised by the receiver-side fence gates on instances and the L4 LB;
    the stale leader catches it, records the rejection, and steps down.
    """

    def __init__(self, receiver: str, kind: str, got_epoch: int,
                 got_holder: str, current_epoch: int, current_holder: str):
        super().__init__(
            f"{receiver} rejected {kind} from {got_holder}@e{got_epoch}: "
            f"fenced at {current_holder}@e{current_epoch}"
        )
        self.receiver = receiver
        self.kind = kind
        self.got_epoch = got_epoch
        self.got_holder = got_holder
        self.current_epoch = current_epoch
        self.current_holder = current_holder


class ScaleEventConflict(ControllerError):
    """A scale event was requested while another one is still in flight
    (a drain racing a scale-up decision) or inside a cooldown window.

    The autoscaler serializes scale events: at most one direction may be
    in flight at a time, and a fresh decision inside the cooldown is
    refused rather than queued -- queued intent goes stale faster than
    the signals that produced it.
    """

    def __init__(self, requested: str, blocker: str, until: float):
        super().__init__(
            f"scale {requested} refused: {blocker} in flight "
            f"(clear at t={until:.2f})"
        )
        self.requested = requested
        self.blocker = blocker
        self.until = until


class SpareExhausted(ControllerError):
    """A scale-out decision wanted more instances than the spare pool
    holds and no spawn hook is configured.

    Carries the shortfall so the policy engine can record a partial
    scale-out and the flight recorder can show capacity starvation.
    """

    def __init__(self, wanted: int, available: int):
        super().__init__(
            f"scale-out wanted {wanted} instance(s), spare pool has "
            f"{available} and no spawn hook"
        )
        self.wanted = wanted
        self.available = available


class LeaseStoreUnavailable(KvStoreError):
    """The leader-lease record could not be read or renewed because the
    backing store cluster is unreachable (timeout or zero live servers).

    Not a demotion by itself: the holder keeps acting until its lease
    expiry (plus any configured step-down grace), which is exactly the
    window the fencing epoch exists to make safe.
    """

    def __init__(self, holder: str, op: str):
        super().__init__(f"{holder}: lease {op} got no answer from the store")
        self.holder = holder
        self.op = op
