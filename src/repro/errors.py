"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single except clause without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Examples: scheduling an event in the past, or running a loop that was
    already stopped.
    """


class NetworkError(ReproError):
    """Invalid network operation (unknown address, duplicate host, ...)."""


class AddressError(NetworkError):
    """An IP address or endpoint string could not be parsed or allocated."""


class SnatExhausted(NetworkError):
    """No SNAT port range is left to allocate for a VIP.

    Carries the VIP and the instance that asked, so operators (and the
    overload experiments) can tell *which* service ran out of outbound
    ports rather than seeing a generic network failure.
    """

    def __init__(self, vip: str, instance_ip: str):
        super().__init__(
            f"SNAT port space exhausted for VIP {vip} "
            f"(requested by {instance_ip})"
        )
        self.vip = vip
        self.instance_ip = instance_ip


class TcpError(ReproError):
    """A TCP endpoint was driven into an invalid operation for its state."""


class HttpError(ReproError):
    """Malformed HTTP message or invalid client/server usage."""


class HttpParseError(HttpError):
    """Raw bytes could not be parsed as an HTTP message."""


class SlowClientTimeout(HttpError):
    """A peer fed request bytes slower than the progress deadline allows
    (the slow-loris guard).

    Carries the peer and the deadline so operators can distinguish an
    attack pattern (many peers, one source range) from a genuinely slow
    client.
    """

    def __init__(self, peer: str, deadline: float):
        super().__init__(
            f"no request progress from {peer} within {deadline:.3f}s"
        )
        self.peer = peer
        self.deadline = deadline


class KvStoreError(ReproError):
    """Key-value store (Memcached substrate) failure."""


class StoreUnavailableError(KvStoreError):
    """Not enough live replicas to complete a storage operation."""


class PolicyError(ReproError):
    """A user policy / rule definition is invalid."""


class AssignmentError(ReproError):
    """The VIP-to-instance assignment problem is malformed or infeasible."""


class InfeasibleError(AssignmentError):
    """No assignment satisfies the constraints (Eq. 1-7 of the paper)."""


class ControllerError(ReproError):
    """Invalid controller operation (unknown VIP, duplicate instance, ...)."""
