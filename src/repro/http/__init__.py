"""HTTP/1.0 and HTTP/1.1 on top of the simulated TCP.

Provides the request/response model and incremental parser shared by the
backend servers, the YODA instances (which must parse the request header to
select a server) and the HAProxy baseline; plus the two client shapes the
paper's evaluation uses: a browser emulator (page + embedded objects, HTTP
timeout, optional retry) and an ApacheBench-like request generator.
"""

from repro.http.client import BrowserClient, FetchResult, HttpFetcher, PageLoadResult
from repro.http.message import HttpRequest, HttpResponse, Headers
from repro.http.parser import HttpParser, ParsedMessage
from repro.http.server import BackendHttpServer, StaticSite

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "Headers",
    "HttpParser",
    "ParsedMessage",
    "BackendHttpServer",
    "StaticSite",
    "HttpFetcher",
    "FetchResult",
    "BrowserClient",
    "PageLoadResult",
]
