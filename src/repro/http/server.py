"""Backend HTTP server (the paper's Apache/2.2.3 stand-in).

Serves a :class:`StaticSite` (path -> object) over the simulated TCP with a
configurable service-time model.  Supports HTTP/1.0 (close after response),
HTTP/1.1 keep-alive, and pipelining with strictly in-order responses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.errors import HttpError, SlowClientTimeout
from repro.http.message import HttpRequest, HttpResponse
from repro.http.parser import HttpParser
from repro.http import tls
from repro.net.host import Host
from repro.obs import OBS
from repro.sim.events import EventLoop
from repro.tcp.endpoint import ConnectionHandler, TcpConnection, TcpStack


class StaticSite:
    """A set of web objects: path -> bytes (or a size, synthesized lazily)."""

    def __init__(self, objects: Optional[Dict[str, Union[bytes, int]]] = None):
        self._objects: Dict[str, Union[bytes, int]] = dict(objects or {})

    def add(self, path: str, content: Union[bytes, int]) -> None:
        self._objects[path] = content

    def __contains__(self, path: str) -> bool:
        return path in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def paths(self) -> List[str]:
        return list(self._objects)

    def get(self, path: str) -> Optional[bytes]:
        content = self._objects.get(path)
        if content is None:
            return None
        if isinstance(content, int):
            return _synthesize(path, content)
        return content

    def size_of(self, path: str) -> Optional[int]:
        content = self._objects.get(path)
        if content is None:
            return None
        return content if isinstance(content, int) else len(content)


def _synthesize(path: str, size: int) -> bytes:
    """Deterministic filler content of exactly ``size`` bytes."""
    stamp = f"<!-- {path} -->".encode()
    if size <= len(stamp):
        return stamp[:size]
    filler = b"x" * (size - len(stamp))
    return stamp + filler


# long-lived (streaming) responses: /stream/<chunks>/<chunk_bytes>/<interval_ms>
# is served as a paced chunked download -- the workload for flows that must
# outlive instance and region failures.
STREAM_PATH_PREFIX = "/stream/"


def parse_stream_path(path: str):
    """``/stream/<chunks>/<chunk_bytes>/<interval_ms>`` -> tuple or None."""
    if not path.startswith(STREAM_PATH_PREFIX):
        return None
    parts = path[len(STREAM_PATH_PREFIX):].split("/")
    if len(parts) != 3:
        return None
    try:
        chunks, chunk_bytes, interval_ms = (int(p) for p in parts)
    except ValueError:
        return None
    if chunks < 1 or chunk_bytes < 1 or interval_ms < 0:
        return None
    return chunks, chunk_bytes, interval_ms


@dataclass
class _PacedBody:
    """A serialized response delivered chunk-by-chunk on a timer."""

    data: bytes
    chunk: int
    interval: float


@dataclass
class ServiceTimeModel:
    """How long the backend takes to produce a response.

    service = base + per_byte * len(body).  The paper's 133 ms no-LB
    baseline is Internet RTT + this; experiments calibrate ``base``.
    """

    base: float = 0.004
    per_byte: float = 0.0

    def delay(self, response: HttpResponse) -> float:
        return self.base + self.per_byte * len(response.body)


class BackendHttpServer:
    """One backend server VM: host + TCP stack + request handling."""

    def __init__(
        self,
        host: Host,
        loop: EventLoop,
        site: StaticSite,
        port: int = 80,
        service_model: Optional[ServiceTimeModel] = None,
        stack: Optional[TcpStack] = None,
        tls_certificate: Optional["tls.Certificate"] = None,
        progress_deadline: Optional[float] = None,
        session_tickets: bool = False,
    ):
        self.host = host
        self.loop = loop
        self.site = site
        self.port = port
        self.service_model = service_model or ServiceTimeModel()
        self.stack = stack or TcpStack(host, loop)
        self.tls_certificate = tls_certificate
        # slow-loris guard: a connection must complete each request within
        # this many seconds of its first byte, or be reset (None = off)
        self.progress_deadline = progress_deadline
        # issue deterministic TLS session tickets after full handshakes
        self.session_tickets = session_tickets
        self.stack.listen(port, self._accept)
        self.requests_served = 0
        self.active_requests = 0
        self.bytes_served = 0
        self.slow_client_timeouts = 0
        self.slow_clients: List[SlowClientTimeout] = []

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def ip(self) -> str:
        return self.host.ip

    def fail(self) -> None:
        self.host.fail()

    def recover(self) -> None:
        self.host.recover()

    def _accept(self, conn: TcpConnection) -> ConnectionHandler:
        if self.tls_certificate is not None:
            return _TlsServerConnection(self)
        return _ServerConnection(self)

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Map a request to a response.  Override for dynamic behaviour."""
        stream = parse_stream_path(request.path)
        if stream is not None:
            chunks, chunk_bytes, interval_ms = stream
            # NOTE: no per-backend header here -- a resumed flow replays
            # this response from a *different* backend, and the paper's
            # duplicate-suppression trick needs the two byte streams to be
            # identical given the path alone
            return HttpResponse(
                200,
                headers={
                    "Server": "Apache/2.2.3 (sim)",
                    "X-Stream-Chunk": str(chunk_bytes),
                    "X-Stream-Interval": f"{interval_ms / 1000.0:.6f}",
                },
                body=_synthesize(request.path, chunks * chunk_bytes),
                version=request.version,
            )
        body = self.site.get(request.path)
        if body is None:
            return HttpResponse(404, body=b"not found", version=request.version)
        return HttpResponse(
            200,
            headers={"Server": "Apache/2.2.3 (sim)", "X-Backend": self.host.name},
            body=body,
            version=request.version,
        )


class _ServerConnection(ConnectionHandler):
    """Per-connection state: parser + in-order pipelined response queue."""

    def __init__(self, server: BackendHttpServer):
        self.server = server
        self.parser = HttpParser("request")
        self._ready: Dict[int, object] = {}  # request id -> serialized response
        self._next_id = 0  # id assigned to the next arriving request
        self._next_to_send = 0  # pipelining: responses go out in arrival order
        self._closing = False
        self._streaming = False  # a paced response is mid-delivery
        self._obs_spans: Dict[int, object] = {}
        # slow-loris guard bookkeeping
        self._progress_timer = None
        self._partial_bytes = 0  # request bytes since the last complete request

    def on_connected(self, conn: TcpConnection) -> None:
        self._arm_progress_timer(conn)

    def on_data(self, conn: TcpConnection, data: bytes) -> None:
        self._partial_bytes += len(data)
        try:
            parsed = self.parser.feed(data)
        except HttpError:
            conn.abort("bad-request")
            return
        if parsed:
            self._partial_bytes = 0
            self._arm_progress_timer(conn)
        for item in parsed:
            self._start_request(conn, item.message)

    # -- slow-loris guard ------------------------------------------------------
    def _arm_progress_timer(self, conn: TcpConnection) -> None:
        deadline = self.server.progress_deadline
        if deadline is None:
            return
        if self._progress_timer is not None:
            self._progress_timer.cancel()
        self._progress_timer = self.server.loop.call_later(
            deadline, self._progress_expired, conn
        )

    def _progress_expired(self, conn: TcpConnection) -> None:
        self._progress_timer = None
        if not conn.state.can_send:
            return
        if self._partial_bytes == 0:
            # an idle keep-alive connection is not a slow client; keep
            # watching in case a trickled request starts later
            self._arm_progress_timer(conn)
            return
        err = SlowClientTimeout(str(conn.remote), self.server.progress_deadline)
        self.server.slow_client_timeouts += 1
        self.server.slow_clients.append(err)
        conn.abort("slow-client")

    def on_closed(self, conn: TcpConnection) -> None:
        if self._progress_timer is not None:
            self._progress_timer.cancel()
            self._progress_timer = None

    def on_error(self, conn: TcpConnection, reason: str) -> None:
        self.on_closed(conn)

    def _start_request(self, conn: TcpConnection, request: HttpRequest) -> None:
        req_id = self._next_id
        self._next_id += 1
        self.server.active_requests += 1
        if OBS.enabled:
            self._obs_spans[req_id] = OBS.tracer.start(
                "backend.serve", self.server.name, ctx=conn.obs_ctx,
                attrs={"path": request.path})
        response = self.server.handle_request(request)
        keep_alive = _wants_keep_alive(request)
        if not keep_alive:
            response.headers.set("Connection", "close")
        delay = self.server.service_model.delay(response)
        self.server.loop.call_later(
            delay, self._finish_request, conn, req_id, response, keep_alive
        )

    def _finish_request(
        self, conn: TcpConnection, req_id: int, response: HttpResponse,
        keep_alive: bool,
    ) -> None:
        self.server.active_requests -= 1
        self.server.requests_served += 1
        self.server.bytes_served += len(response.body)
        self._obs_finish(req_id, response)
        self._ready[req_id] = self._serialize(response)
        if not keep_alive:
            self._closing = True
        self._flush(conn)

    def _serialize(self, response: HttpResponse) -> object:
        data = response.serialize()
        interval = response.headers.get("X-Stream-Interval")
        if interval is not None:
            chunk = int(response.headers.get("X-Stream-Chunk") or "1460")
            return _PacedBody(data, chunk, float(interval))
        return data

    def _obs_finish(self, req_id: int, response: HttpResponse) -> None:
        span = self._obs_spans.pop(req_id, None)
        if OBS.enabled and span is not None:
            OBS.tracer.end(span, ok=response.ok, status=response.status)

    @property
    def _pending(self) -> bool:
        return self._next_to_send < self._next_id

    def _flush(self, conn: TcpConnection) -> None:
        """Send completed responses strictly in arrival order."""
        while not self._streaming and self._next_to_send in self._ready:
            data = self._ready.pop(self._next_to_send)
            if isinstance(data, _PacedBody):
                # a paced response blocks the pipeline until delivered
                self._streaming = True
                self._pace(conn, data, 0)
                break
            self._next_to_send += 1
            if conn.state.can_send:
                conn.send(data)
        if (self._closing and not self._pending and not self._streaming
                and conn.state.can_send):
            conn.close()

    def _pace(self, conn: TcpConnection, paced: _PacedBody, offset: int) -> None:
        if not conn.state.can_send:
            self._streaming = False
            return
        end = min(offset + paced.chunk, len(paced.data))
        conn.send(paced.data[offset:end])
        if end < len(paced.data):
            self.server.loop.call_later(paced.interval, self._pace, conn,
                                        paced, end)
        else:
            self._streaming = False
            self._next_to_send += 1
            self._flush(conn)

    def on_remote_close(self, conn: TcpConnection) -> None:
        if not self._pending:
            conn.close()
        else:
            self._closing = True


def _wants_keep_alive(request: HttpRequest) -> bool:
    connection = (request.headers.get("Connection") or "").lower()
    if request.version == "HTTP/1.0":
        return connection == "keep-alive"
    return connection != "close"


class _TlsServerConnection(_ServerConnection):
    """TLS-terminating connection: record layer around the HTTP handling.

    The handshake response is *deterministic* given the certificate, so
    when YODA replays a buffered client handshake to this backend, the
    backend emits byte-identical records to those the YODA instance
    already served the client (which YODA then suppresses).
    """

    def __init__(self, server: BackendHttpServer):
        super().__init__(server)
        self.codec = tls.TlsCodec()
        self.established = False
        self._sni = ""
        self._resumed = False

    def on_data(self, conn: TcpConnection, data: bytes) -> None:
        try:
            records = self.codec.feed(data)
        except HttpError:
            conn.abort("bad-tls-record")
            return
        for rtype, payload in records:
            if rtype == tls.CLIENT_HELLO:
                self._sni, ticket = tls.parse_hello(payload)
                self._resumed = (ticket is not None
                                 and self.server.session_tickets)
                if self._resumed:
                    # abbreviated handshake: YODA validated the ticket
                    # against the flow store before any byte reached us
                    conn.send(tls.session_ticket(ticket))
                else:
                    conn.send(
                        tls.certificate_flight(self.server.tls_certificate))
            elif rtype == tls.KEY_EXCHANGE:
                self.established = True
                if self.server.session_tickets and not self._resumed:
                    # deterministic ticket: the YODA instance mints the
                    # same one, so our replayed flight stays byte-identical
                    conn.send(tls.session_ticket(tls.ticket_for(self._sni)))
            elif rtype == tls.APP_DATA:
                try:
                    parsed = self.parser.feed(payload)
                except HttpError:
                    conn.abort("bad-request")
                    return
                for item in parsed:
                    self._start_request(conn, item.message)
            # RETRY_PING records are handshake noise: ignored

    def _finish_request(self, conn: TcpConnection, req_id: int,
                        response: HttpResponse, keep_alive: bool) -> None:
        self.server.active_requests -= 1
        self.server.requests_served += 1
        self.server.bytes_served += len(response.body)
        self._obs_finish(req_id, response)
        self._ready[req_id] = tls.app_data(response.serialize())  # no pacing over TLS
        if not keep_alive:
            self._closing = True
        self._flush(conn)
